//! Input-slot bookkeeping: which external value feeds which circuit input.

use agq_structure::fx::FxHashMap;
use agq_structure::{Elem, RelId, Tuple, WeightId};

/// Identity of one circuit input slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SlotKey {
    /// The weight `w(t̄)` of a declared weight symbol.
    Weight(WeightId, Tuple),
    /// The indicator weight `v_i(a)` of the `i`-th free variable
    /// (the querying trick in the proof of Theorem 8).
    FreeVar(u8, Elem),
    /// The indicator `[R(t̄)]` of a relation atom (dynamic-atom mode,
    /// Lemma 40's `v⁺_R`).
    AtomPos(RelId, Tuple),
    /// The indicator `[¬R(t̄)]` (Lemma 40's `v⁻_R`; general semirings
    /// have no subtraction, so the negation needs its own input).
    AtomNeg(RelId, Tuple),
}

/// Dense slot numbering with key ↔ index maps.
#[derive(Default, Debug, Clone)]
pub struct SlotRegistry {
    map: FxHashMap<SlotKey, u32>,
    keys: Vec<SlotKey>,
}

impl SlotRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slot for `key`, allocating one if new.
    pub fn intern(&mut self, key: SlotKey) -> u32 {
        if let Some(&s) = self.map.get(&key) {
            return s;
        }
        let s = self.keys.len() as u32;
        self.map.insert(key, s);
        self.keys.push(key);
        s
    }

    /// The slot for `key`, if any gate reads it.
    pub fn lookup(&self, key: &SlotKey) -> Option<u32> {
        self.map.get(key).copied()
    }

    /// The key of a slot.
    pub fn key(&self, slot: u32) -> SlotKey {
        self.keys[slot as usize]
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no slots were allocated.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterate over `(slot, key)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, SlotKey)> + '_ {
        self.keys.iter().enumerate().map(|(i, k)| (i as u32, *k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut r = SlotRegistry::new();
        let k1 = SlotKey::Weight(WeightId(0), Tuple::unary(3));
        let k2 = SlotKey::FreeVar(1, 3);
        let s1 = r.intern(k1);
        let s2 = r.intern(k2);
        assert_ne!(s1, s2);
        assert_eq!(r.intern(k1), s1);
        assert_eq!(r.lookup(&k1), Some(s1));
        assert_eq!(r.key(s2), k2);
        assert_eq!(r.len(), 2);
    }
}
