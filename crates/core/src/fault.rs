//! Deterministic fail-point injection for chaos testing.
//!
//! # Fault model
//!
//! A **fail-point** is a named site in the serving or durability path
//! where a test can script a fault. Production code calls one of two
//! hooks:
//!
//! * [`io_point`] — sites that can legitimately fail with an I/O error
//!   (WAL appends, snapshot writes). Returns `Err` when an `Error` fault
//!   fires, so the caller's existing error path is exercised.
//! * [`point`] — sites with no error channel (in-memory shard apply,
//!   batch workers). Only `Panic` and `Delay` faults fire here; `Error`
//!   specs are ignored.
//!
//! Without the `failpoints` cargo feature both hooks compile to inlined
//! no-ops — zero branches, zero atomics — so the production binary pays
//! nothing (measured by `bench8` in the experiment harness). With the
//! feature enabled, each site keeps a hit counter and a scripted
//! schedule, and every firing decision is a pure function of
//! `(schedule, hit number)` — **deterministic**: the same schedule and
//! the same call sequence produce the same faults, which is what lets
//! the chaos suite shrink failures and replay them by seed.
//!
//! # Schedule format
//!
//! A schedule is a list of [`FaultSpec`]s per site; the first spec whose
//! [`Trigger`] matches the current hit number decides the fault:
//!
//! | trigger | fires on |
//! |---|---|
//! | `Nth(n)` | exactly the `n`-th hit (1-based) |
//! | `Range(a, b)` | every hit in `a..=b` (a burst) |
//! | `Every(k)` | hits `k`, `2k`, `3k`, … |
//! | `Seeded { seed, per_mille }` | hit `h` iff `splitmix64(seed ⊕ h) mod 1000 < per_mille` |
//!
//! `Seeded` is how the chaos proptests derive an arbitrary-but-replayable
//! fault pattern from a proptest-chosen seed: no RNG state is shared with
//! the system under test, so injecting faults never perturbs *which*
//! faults fire later.
//!
//! # Registered sites
//!
//! | site | hook | guards |
//! |---|---|---|
//! | `wal.append` | [`io_point`] | every WAL append attempt (inside the retry loop of `DurabilityPolicy::append`) |
//! | `shard.apply` | [`point`] | per shard group, before in-memory apply in `ShardedEngine` |
//! | `batch.worker` | [`point`] | entry of each spawned shard batch worker |
//! | `snapshot.save` | [`io_point`] | snapshot artifact serialization in `agq-persist` |
//!
//! # Hygiene
//!
//! The registry is process-global (sites are reached from shard worker
//! threads, so it must be), which means chaos tests that share a process
//! must serialize access to it and [`clear_all`] between cases. A panic
//! raised by a firing fail-point deliberately happens *after* the
//! registry lock is released, so the registry itself never poisons.

#[cfg(feature = "failpoints")]
mod enabled {
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// What a firing fail-point does to the caller.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FaultKind {
        /// Return `Err(io::ErrorKind::Other)` from [`super::io_point`].
        /// Ignored at [`super::point`] sites (they have no error channel).
        Error,
        /// Panic with a message naming the site and hit number.
        Panic,
        /// Sleep for the given number of milliseconds, then proceed
        /// normally — for shaking out lock-ordering and timing windows.
        DelayMs(u64),
    }

    /// Which hits of a site a [`FaultSpec`] fires on. All variants are
    /// pure functions of the (1-based) hit number, never of wall-clock
    /// time or global RNG state.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Trigger {
        /// Exactly the `n`-th hit.
        Nth(u64),
        /// Every hit in `a..=b` — an error burst.
        Range(u64, u64),
        /// Hits `k, 2k, 3k, …` (`Every(0)` never fires).
        Every(u64),
        /// Hit `h` fires iff `splitmix64(seed ^ h) % 1000 < per_mille`:
        /// a deterministic pseudo-random schedule replayable by seed.
        Seeded {
            /// Mixes into the hit number; different seeds give
            /// independent-looking schedules.
            seed: u64,
            /// Firing rate out of 1000 (e.g. `150` ≈ 15% of hits).
            per_mille: u16,
        },
    }

    impl Trigger {
        fn fires(&self, hit: u64) -> bool {
            match *self {
                Trigger::Nth(n) => hit == n,
                Trigger::Range(a, b) => a <= hit && hit <= b,
                Trigger::Every(k) => k != 0 && hit.is_multiple_of(k),
                Trigger::Seeded { seed, per_mille } => {
                    splitmix64(seed ^ hit) % 1000 < u64::from(per_mille)
                }
            }
        }
    }

    /// One scripted fault: fire `kind` whenever `trigger` matches.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct FaultSpec {
        /// The fault to inject.
        pub kind: FaultKind,
        /// When to inject it.
        pub trigger: Trigger,
    }

    impl FaultSpec {
        /// `Error` on the hits matched by `trigger`.
        pub fn error(trigger: Trigger) -> Self {
            FaultSpec {
                kind: FaultKind::Error,
                trigger,
            }
        }

        /// `Panic` on the hits matched by `trigger`.
        pub fn panic(trigger: Trigger) -> Self {
            FaultSpec {
                kind: FaultKind::Panic,
                trigger,
            }
        }

        /// `DelayMs(ms)` on the hits matched by `trigger`.
        pub fn delay_ms(ms: u64, trigger: Trigger) -> Self {
            FaultSpec {
                kind: FaultKind::DelayMs(ms),
                trigger,
            }
        }
    }

    /// SplitMix64 finalizer — a well-mixed bijection on `u64`, so the
    /// `Seeded` trigger needs no mutable RNG state.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    #[derive(Default)]
    struct Site {
        hits: u64,
        specs: Vec<FaultSpec>,
    }

    fn registry() -> MutexGuard<'static, HashMap<String, Site>> {
        static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        // A panic injected at a site never happens under this lock (see
        // `io_point`), but a *test* thread may still die while holding
        // it — recover rather than cascade the poison.
        REGISTRY
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Append `spec` to `site`'s schedule. The site's hit counter is NOT
    /// reset — call [`clear`] or [`clear_all`] first for a fresh script.
    pub fn configure(site: &str, spec: FaultSpec) {
        registry()
            .entry(site.to_string())
            .or_default()
            .specs
            .push(spec);
    }

    /// Drop `site`'s schedule and reset its hit counter.
    pub fn clear(site: &str) {
        registry().remove(site);
    }

    /// Drop every schedule and hit counter — run between chaos cases.
    pub fn clear_all() {
        registry().clear();
    }

    /// How many times `site` has been reached since its last [`clear`].
    pub fn hit_count(site: &str) -> u64 {
        registry().get(site).map_or(0, |s| s.hits)
    }

    /// Count the hit and look up the firing fault, releasing the
    /// registry lock before the caller acts on it.
    fn check(site: &str) -> Option<(FaultKind, u64)> {
        let mut reg = registry();
        let entry = reg.entry(site.to_string()).or_default();
        entry.hits += 1;
        let hit = entry.hits;
        entry
            .specs
            .iter()
            .find(|s| s.trigger.fires(hit))
            .map(|s| (s.kind, hit))
    }

    /// Fail-point hook for sites with an I/O error channel.
    pub fn io_point(site: &str) -> std::io::Result<()> {
        match check(site) {
            None => Ok(()),
            Some((FaultKind::Error, hit)) => Err(std::io::Error::other(format!(
                "failpoint {site}: injected I/O error (hit {hit})"
            ))),
            Some((FaultKind::Panic, hit)) => {
                panic!("failpoint {site}: injected panic (hit {hit})")
            }
            Some((FaultKind::DelayMs(ms), _)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                Ok(())
            }
        }
    }

    /// Fail-point hook for in-memory sites (no error channel): `Panic`
    /// and `DelayMs` fire, `Error` specs are ignored.
    pub fn point(site: &str) {
        match check(site) {
            None | Some((FaultKind::Error, _)) => {}
            Some((FaultKind::Panic, hit)) => {
                panic!("failpoint {site}: injected panic (hit {hit})")
            }
            Some((FaultKind::DelayMs(ms), _)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// The registry is process-global; in-crate tests share one
        /// mutex so schedules never interleave.
        fn serial() -> MutexGuard<'static, ()> {
            static GATE: Mutex<()> = Mutex::new(());
            GATE.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        #[test]
        fn nth_and_range_fire_deterministically() {
            let _g = serial();
            clear_all();
            configure("t.site", FaultSpec::error(Trigger::Nth(2)));
            configure("t.site", FaultSpec::error(Trigger::Range(4, 5)));
            let fired: Vec<bool> = (0..6).map(|_| io_point("t.site").is_err()).collect();
            assert_eq!(fired, [false, true, false, true, true, false]);
            assert_eq!(hit_count("t.site"), 6);
            clear_all();
        }

        #[test]
        fn seeded_schedule_replays_identically() {
            let _g = serial();
            clear_all();
            let spec = FaultSpec::error(Trigger::Seeded {
                seed: 0xDEAD_BEEF,
                per_mille: 250,
            });
            configure("t.seeded", spec);
            let first: Vec<bool> = (0..64).map(|_| io_point("t.seeded").is_err()).collect();
            clear_all();
            configure("t.seeded", spec);
            let second: Vec<bool> = (0..64).map(|_| io_point("t.seeded").is_err()).collect();
            assert_eq!(first, second, "seeded schedule must replay by seed");
            let rate = first.iter().filter(|&&b| b).count();
            assert!(rate > 0 && rate < 64, "≈25% rate, got {rate}/64");
            clear_all();
        }

        #[test]
        fn point_ignores_error_specs() {
            let _g = serial();
            clear_all();
            configure("t.mem", FaultSpec::error(Trigger::Every(1)));
            point("t.mem"); // must not panic, must not error
            assert_eq!(hit_count("t.mem"), 1);
            clear_all();
        }

        #[test]
        fn injected_panic_names_site_and_hit() {
            let _g = serial();
            clear_all();
            configure("t.boom", FaultSpec::panic(Trigger::Nth(1)));
            let err = std::panic::catch_unwind(|| point("t.boom")).unwrap_err();
            let msg = err.downcast_ref::<String>().expect("string payload");
            assert!(msg.contains("t.boom"), "payload: {msg}");
            clear_all();
        }
    }
}

#[cfg(feature = "failpoints")]
pub use enabled::{
    clear, clear_all, configure, hit_count, io_point, point, FaultKind, FaultSpec, Trigger,
};

/// No-op stub: the `failpoints` feature is disabled, so this compiles to
/// `Ok(())` and inlines away.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn io_point(_site: &str) -> std::io::Result<()> {
    Ok(())
}

/// No-op stub: the `failpoints` feature is disabled, so this compiles to
/// nothing and inlines away.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn point(_site: &str) {}
