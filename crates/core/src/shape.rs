//! Shapes: ancestor-merge patterns of variable tuples in a rooted forest
//! (the combinatorial core of Lemma 32 / Lemma 29).
//!
//! A *shape* for `k` variables records, for a tuple of pairwise-distinct
//! elements of a rooted forest, the isomorphism type of the union of their
//! root paths: which variables sit on which chains, where chains merge,
//! and at what depths. Every distinct tuple matches exactly one shape, so
//! summing per-shape circuits counts every tuple exactly once (the mutual
//! exclusivity that Lemma 32 establishes through atomic types).
//!
//! Enumeration inserts variables one at a time in a fixed order; each
//! insertion either (a) marks an existing unmarked node, (b) hangs a fresh
//! chain below an existing node, or (c) starts a fresh root chain. With
//! the insertion order fixed, every abstract shape is generated exactly
//! once: the ancestor closure of the first `i` variables is an invariant
//! of the abstract shape, and variable-labeled forests have no nontrivial
//! automorphisms fixing the labels.

/// One shape over variables `0..k`. Node `0..len` in creation order;
/// `parent[root] == u32::MAX`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shape {
    /// Parent of each node (`u32::MAX` for roots).
    pub parent: Vec<u32>,
    /// Depth of each node (roots at 0).
    pub depth: Vec<u8>,
    /// The variable marked at a node, if any.
    pub var_at: Vec<Option<u8>>,
    /// Inverse map: the node of each variable.
    pub var_node: Vec<u32>,
}

impl Shape {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the shape has no nodes (only for `k = 0`).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Maximum node depth.
    pub fn max_depth(&self) -> u8 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// The children lists (computed; shapes are tiny).
    pub fn children(&self) -> Vec<Vec<u32>> {
        let mut ch = vec![Vec::new(); self.len()];
        for (n, &p) in self.parent.iter().enumerate() {
            if p != u32::MAX {
                ch[p as usize].push(n as u32);
            }
        }
        ch
    }

    /// Root nodes.
    pub fn roots(&self) -> Vec<u32> {
        (0..self.len() as u32)
            .filter(|&n| self.parent[n as usize] == u32::MAX)
            .collect()
    }

    /// Is `a` an ancestor of (or equal to) `b`?
    pub fn is_ancestor(&self, a: u32, b: u32) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let p = self.parent[cur as usize];
            if p == u32::MAX {
                return false;
            }
            cur = p;
        }
    }

    /// Are two nodes on a common root path?
    pub fn comparable(&self, a: u32, b: u32) -> bool {
        self.is_ancestor(a, b) || self.is_ancestor(b, a)
    }
}

/// Enumerate every shape for `k` variables with depth ≤ `max_depth`,
/// pruning (during enumeration) partial shapes that violate a
/// comparability requirement: `require_comparable` lists variable pairs
/// that must lie on a common root path (because a positive atom or a
/// weight factor links them — tuples are cliques in the Gaifman graph and
/// DFS forests make cliques chains).
///
/// Returns `None` when more than `cap` shapes would be produced.
pub fn enumerate_shapes(
    k: usize,
    max_depth: u8,
    require_comparable: &[(u8, u8)],
    cap: usize,
) -> Option<Vec<Shape>> {
    let mut out = Vec::new();
    let mut shape = Shape {
        parent: Vec::new(),
        depth: Vec::new(),
        var_at: Vec::new(),
        var_node: Vec::new(),
    };
    if insert_rec(k, max_depth, require_comparable, cap, &mut shape, &mut out) {
        Some(out)
    } else {
        None
    }
}

fn insert_rec(
    k: usize,
    max_depth: u8,
    req: &[(u8, u8)],
    cap: usize,
    shape: &mut Shape,
    out: &mut Vec<Shape>,
) -> bool {
    let i = shape.var_node.len();
    if i == k {
        if out.len() >= cap {
            return false;
        }
        out.push(shape.clone());
        return true;
    }
    let var = i as u8;
    // (a) mark an existing unmarked node
    for n in 0..shape.len() as u32 {
        if shape.var_at[n as usize].is_none() {
            shape.var_at[n as usize] = Some(var);
            shape.var_node.push(n);
            let mut over_cap = false;
            if check_req(shape, var, req) {
                over_cap = !insert_rec(k, max_depth, req, cap, shape, out);
            }
            shape.var_node.pop();
            shape.var_at[n as usize] = None;
            if over_cap {
                return false;
            }
        }
    }
    // (b) hang a fresh chain below an existing node, (c) fresh root chain
    let anchors: Vec<(Option<u32>, u8)> = {
        let mut a: Vec<(Option<u32>, u8)> = shape
            .parent
            .iter()
            .enumerate()
            .map(|(n, _)| (Some(n as u32), shape.depth[n]))
            .collect();
        a.push((None, 0));
        a
    };
    for (anchor, base_depth) in anchors {
        let start_depth = match anchor {
            Some(_) => base_depth + 1,
            None => 0,
        };
        for target in start_depth..=max_depth {
            // chain of nodes at depths start_depth..=target below anchor
            let first_new = shape.len();
            let mut parent = anchor;
            for d in start_depth..=target {
                let id = shape.len() as u32;
                shape.parent.push(parent.map_or(u32::MAX, |p| p));
                shape.depth.push(d);
                shape.var_at.push(None);
                parent = Some(id);
            }
            let leaf = shape.len() - 1;
            shape.var_at[leaf] = Some(var);
            shape.var_node.push(leaf as u32);
            if check_req(shape, var, req) && !insert_rec(k, max_depth, req, cap, shape, out) {
                // undo before propagating failure
                shape.var_node.pop();
                shape.parent.truncate(first_new);
                shape.depth.truncate(first_new);
                shape.var_at.truncate(first_new);
                return false;
            }
            shape.var_node.pop();
            shape.parent.truncate(first_new);
            shape.depth.truncate(first_new);
            shape.var_at.truncate(first_new);
        }
    }
    true
}

/// Check all requirements whose later variable is `var`.
fn check_req(shape: &Shape, var: u8, req: &[(u8, u8)]) -> bool {
    for &(a, b) in req {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if hi != var || lo as usize >= shape.var_node.len() {
            continue;
        }
        let na = shape.var_node[lo as usize];
        let nb = shape.var_node[hi as usize];
        if !shape.comparable(na, nb) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(k: usize, d: u8) -> usize {
        enumerate_shapes(k, d, &[], usize::MAX).unwrap().len()
    }

    #[test]
    fn one_variable_counts_depths() {
        // one var: a chain ending at each depth 0..=d
        for d in 0..5u8 {
            assert_eq!(count(1, d), d as usize + 1);
        }
    }

    #[test]
    fn two_variables_depth_zero() {
        // depth 0: both vars are roots of trivial chains — 1 shape
        assert_eq!(count(2, 0), 1);
    }

    #[test]
    fn two_variables_depth_one_exhaustive() {
        // Enumerate by hand: v0 at depth 0 or 1 (chain), v1 inserted.
        // Shapes = equality types of (a,b), a≠b, in forests of depth ≤1:
        //  (0,0): two roots
        //  (0,1): root + child-of-other-root; a above b; b above a — but
        //  these differ: v0 root & v1 its child; v0 root & v1 child of a
        //  DIFFERENT root (v1's chain root unmarked); v0 at depth1 ...
        // Just pin the number and cross-validate against the embedding
        // count test below.
        assert_eq!(count(2, 1), 7);
    }

    #[test]
    fn every_node_is_ancestor_of_a_variable() {
        for shape in enumerate_shapes(3, 2, &[], usize::MAX).unwrap() {
            for n in 0..shape.len() as u32 {
                let has_descendant_var = shape.var_node.iter().any(|&vn| shape.is_ancestor(n, vn));
                assert!(has_descendant_var, "dangling node in {shape:?}");
            }
        }
    }

    #[test]
    fn shapes_are_pairwise_distinct() {
        let shapes = enumerate_shapes(3, 2, &[], usize::MAX).unwrap();
        // canonical key: for every var pair, the meet pattern + depths
        let mut keys = std::collections::HashSet::new();
        for s in &shapes {
            let mut key = Vec::new();
            for v in 0..3usize {
                key.push(s.depth[s.var_node[v] as usize] as i32);
            }
            for a in 0..3usize {
                for b in a + 1..3 {
                    key.push(meet_depth(s, s.var_node[a], s.var_node[b]));
                }
            }
            assert!(keys.insert(key), "duplicate equality type: {s:?}");
        }
    }

    /// Depth of deepest common ancestor, or -1.
    fn meet_depth(s: &Shape, a: u32, b: u32) -> i32 {
        let chain = |mut n: u32| {
            let mut c = vec![n];
            while s.parent[n as usize] != u32::MAX {
                n = s.parent[n as usize];
                c.push(n);
            }
            c
        };
        let ca = chain(a);
        let cb = chain(b);
        for n in &ca {
            if cb.contains(n) {
                return s.depth[*n as usize] as i32;
            }
        }
        -1
    }

    /// Cross-validation: the number of k-tuples of distinct nodes of a
    /// concrete forest must equal the sum over shapes of embedding counts
    /// — which we verify here by brute force for a small forest, checking
    /// both coverage and exclusivity of shapes.
    #[test]
    fn shapes_partition_distinct_tuples() {
        // forest: two trees — path 0-1-2 (0 root) and single root 3
        let parent = [u32::MAX, 0, 1, u32::MAX];
        let depth = [0u8, 1, 2, 0];
        let n = 4u32;
        let matches = |s: &Shape, tuple: &[u32]| -> bool {
            // try to embed: var v at tuple[v]; internal nodes forced
            // check depths and parent consistency of the closure
            let mut node_img = vec![u32::MAX; s.len()];
            for (v, &fv) in s.var_node.iter().enumerate() {
                node_img[fv as usize] = tuple[v];
            }
            // propagate upwards repeatedly
            for _ in 0..s.len() {
                for i in 0..s.len() {
                    if node_img[i] != u32::MAX {
                        let p = s.parent[i];
                        if p != u32::MAX {
                            let img_parent = parent[node_img[i] as usize];
                            if img_parent == u32::MAX {
                                return false; // shape node has parent, image is root
                            }
                            if node_img[p as usize] == u32::MAX {
                                node_img[p as usize] = img_parent;
                            } else if node_img[p as usize] != img_parent {
                                return false;
                            }
                        }
                    }
                }
            }
            // all nodes placed, depths match, images distinct
            let mut seen = std::collections::HashSet::new();
            for i in 0..s.len() {
                if node_img[i] == u32::MAX {
                    return false;
                }
                if s.depth[i] != depth[node_img[i] as usize] {
                    return false;
                }
                if !seen.insert(node_img[i]) {
                    return false;
                }
            }
            // roots must map to roots
            for &r in &s.roots() {
                if parent[node_img[r as usize] as usize] != u32::MAX {
                    return false;
                }
            }
            true
        };
        for k in 1..=3usize {
            let shapes = enumerate_shapes(k, 2, &[], usize::MAX).unwrap();
            // all k-tuples of distinct nodes
            let mut tuples = vec![vec![]];
            for _ in 0..k {
                let mut next = Vec::new();
                for t in &tuples {
                    for v in 0..n {
                        if !t.contains(&v) {
                            let mut t2: Vec<u32> = t.clone();
                            t2.push(v);
                            next.push(t2);
                        }
                    }
                }
                tuples = next;
            }
            for t in &tuples {
                let hits = shapes.iter().filter(|s| matches(s, t)).count();
                assert_eq!(hits, 1, "tuple {t:?} matched {hits} shapes (k={k})");
            }
        }
    }

    #[test]
    fn comparability_requirements_prune() {
        let all = count(2, 2);
        let chained = enumerate_shapes(2, 2, &[(0, 1)], usize::MAX).unwrap().len();
        assert!(chained < all, "{chained} vs {all}");
        for s in enumerate_shapes(2, 2, &[(0, 1)], usize::MAX).unwrap() {
            assert!(s.comparable(s.var_node[0], s.var_node[1]));
        }
    }

    #[test]
    fn cap_is_respected() {
        assert!(enumerate_shapes(3, 3, &[], 5).is_none());
    }

    #[test]
    fn zero_variables_single_empty_shape() {
        let shapes = enumerate_shapes(0, 3, &[], usize::MAX).unwrap();
        assert_eq!(shapes.len(), 1);
        assert!(shapes[0].is_empty());
    }
}
