//! Guarded quantifier elimination — the documented substitute for the
//! paper's imported Theorem 3 (Dvořák–Král–Thomas).
//!
//! Quantified subformulas with **at most one free variable** are
//! materialized as fresh unary predicates: the Boolean-semiring query
//! `P(x) ≡ Σ_y [ψ(x, y)]` is compiled with Theorem 6 and evaluated at
//! every element with the constant-time finite-semiring engine — `O(|A|)`
//! total. Unary predicates never change the Gaifman graph, so the
//! extended structure stays in the same sparsity class. Subformulas with
//! two or more free variables are rejected (`UnsupportedQuantifier`);
//! that fragment needs the full DKT machinery, which the paper cites
//! rather than proves (see DESIGN.md §3).

use crate::compile::{compile, CompileOptions};
use crate::engine::FiniteEngine;
use crate::CompileError;
use agq_logic::{normalize, Expr, Formula};
use agq_semiring::{Bool, Semiring};
use agq_structure::{Structure, WeightedStructure};
use std::sync::Arc;

/// Rewrite every quantified bracket of `expr` into quantifier-free form,
/// materializing helper predicates on an extended copy of `a`.
///
/// Returns the rewritten expression and the (possibly extended)
/// structure; weight symbols keep their ids, so existing
/// [`WeightedStructure`]s remain valid for the original symbols.
pub fn eliminate_quantifiers<S: Semiring>(
    expr: &Expr<S>,
    a: &Structure,
    opts: &CompileOptions,
) -> Result<(Expr<S>, Arc<Structure>), CompileError> {
    let mut work = Working {
        a: a.clone(),
        extended: false,
        opts,
        fresh: 0,
    };
    let expr = rewrite_expr(expr, &mut work)?;
    Ok((expr, Arc::new(work.a)))
}

struct Working<'o> {
    a: Structure,
    extended: bool,
    opts: &'o CompileOptions,
    fresh: u32,
}

impl Working<'_> {
    /// Add a fresh unary relation and fill it with `members`.
    fn materialize(&mut self, members: &[u32]) -> agq_structure::RelId {
        // Extend the signature (clone-on-write: signatures are shared).
        let mut sig = (**self.a.signature()).clone();
        let name = format!("__qe{}", self.fresh);
        self.fresh += 1;
        let rel = sig.add_relation(&name, 1);
        let mut b = Structure::new(Arc::new(sig), self.a.domain_size());
        // copy existing relations
        for r in self.a.signature().relation_ids() {
            for t in self.a.relation(r).iter() {
                b.insert(r, t.as_slice());
            }
        }
        for &m in members {
            b.insert(rel, &[m]);
        }
        self.a = b;
        self.extended = true;
        rel
    }
}

fn rewrite_expr<S: Semiring>(e: &Expr<S>, w: &mut Working<'_>) -> Result<Expr<S>, CompileError> {
    Ok(match e {
        Expr::Const(_) | Expr::Weight(..) => e.clone(),
        Expr::Bracket(f) => Expr::Bracket(rewrite_formula(f, w)?),
        Expr::Add(es) => Expr::Add(
            es.iter()
                .map(|x| rewrite_expr(x, w))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Mul(es) => Expr::Mul(
            es.iter()
                .map(|x| rewrite_expr(x, w))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Sum(vs, inner) => Expr::Sum(vs.clone(), Box::new(rewrite_expr(inner, w)?)),
    })
}

fn rewrite_formula(f: &Formula, w: &mut Working<'_>) -> Result<Formula, CompileError> {
    if f.is_quantifier_free() {
        return Ok(f.clone());
    }
    Ok(match f {
        Formula::True | Formula::False | Formula::Rel(..) | Formula::Eq(..) => f.clone(),
        Formula::Not(g) => Formula::Not(Box::new(rewrite_formula(g, w)?)),
        Formula::And(fs) => Formula::And(
            fs.iter()
                .map(|g| rewrite_formula(g, w))
                .collect::<Result<_, _>>()?,
        ),
        Formula::Or(fs) => Formula::Or(
            fs.iter()
                .map(|g| rewrite_formula(g, w))
                .collect::<Result<_, _>>()?,
        ),
        Formula::Forall(v, g) => {
            // ∀y ψ ≡ ¬∃y ¬ψ
            let inner = Formula::Exists(*v, Box::new(g.clone().not()));
            rewrite_formula(&Formula::Not(Box::new(inner)), w)?
        }
        Formula::Exists(v, g) => {
            // innermost first
            let g = rewrite_formula(g, w)?;
            let mut free = g.free_vars();
            free.retain(|x| x != v);
            match free.len() {
                0 => {
                    // a sentence: evaluate Σ_v [g] in B
                    let q: Expr<Bool> = Expr::Bracket(g.clone()).sum_over([*v]);
                    let truth = eval_bool_closed(&q, w)?;
                    if truth {
                        Formula::True
                    } else {
                        Formula::False
                    }
                }
                1 => {
                    let x = free[0];
                    // P := { a : ∃v g(a, v) }
                    let q: Expr<Bool> = Expr::Bracket(g.clone()).sum_over([*v]);
                    let members = eval_bool_unary(&q, x, w)?;
                    let rel = w.materialize(&members);
                    Formula::Rel(rel, vec![x])
                }
                _ => {
                    return Err(CompileError::UnsupportedQuantifier {
                        formula: format!("{f:?}"),
                    })
                }
            }
        }
    })
}

fn eval_bool_closed<'o>(q: &Expr<Bool>, w: &mut Working<'o>) -> Result<bool, CompileError> {
    let nf = normalize(q)?;
    let compiled = compile(&w.a, &nf, w.opts)?;
    let weights: WeightedStructure<Bool> = WeightedStructure::new(Arc::new(w.a.clone()));
    let engine: FiniteEngine<Bool> = FiniteEngine::new(compiled, &weights);
    Ok(engine.value().0)
}

fn eval_bool_unary<'o>(
    q: &Expr<Bool>,
    x: agq_logic::Var,
    w: &mut Working<'o>,
) -> Result<Vec<u32>, CompileError> {
    let nf = normalize(q)?;
    debug_assert_eq!(nf.free_vars(), vec![x]);
    let compiled = compile(&w.a, &nf, w.opts)?;
    let weights: WeightedStructure<Bool> = WeightedStructure::new(Arc::new(w.a.clone()));
    let mut engine: FiniteEngine<Bool> = FiniteEngine::new(compiled, &weights);
    let mut members = Vec::new();
    for a in 0..w.a.domain_size() as u32 {
        if engine.query(&[a]).0 {
            members.push(a);
        }
    }
    Ok(members)
}
