//! Batch-update coalescing shared by every `apply_batch` entry point.
//!
//! Every layer of the update stack (core [`crate::QueryEngine`], the
//! enumeration index, the sharded engine) accepts whole batches and must
//! agree on the same coalescing rule: **the last update to a
//! `(rel, tuple)` pair wins**, earlier ones are dead. This module holds
//! the one implementation of that rule so the layers cannot drift, plus
//! the hasher it runs on.
//!
//! The hasher is a multiply-rotate hash (the `rustc`/Firefox "FxHash"
//! construction) rather than the standard library's SipHash: coalescing
//! hashes every incoming update, and on hot-key churn workloads the hash
//! itself — not the circuit sweep — dominates the per-update cost.
//! SipHash's DoS hardening buys nothing here because the keys are the
//! caller's own tuples, already bounded by the compiled slot registry.

use crate::engine::TupleUpdate;
use agq_structure::{Elem, RelId};
use std::borrow::Borrow;
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher for small fixed-shape keys (relation ids and
/// element tuples). Not DoS-resistant; do not use for attacker-chosen
/// keys.
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Coalesce a batch per `(rel, tuple)` — the **last** update to a tuple
/// wins — pushing one reference per surviving update into `out` (cleared
/// first). The output is in *reverse* chronological order; callers that
/// care about ordering among distinct tuples (none of the engines do —
/// distinct tuples commute) should not rely on it.
///
/// The enumeration engine coalesces once here and feeds the deduplicated
/// slice to both of its sub-indexes, so the quadratic-looking
/// re-coalescing inside each layer only ever sees already-distinct
/// tuples.
pub fn coalesce_updates<'a, U: Borrow<TupleUpdate>>(
    updates: &'a [U],
    out: &mut Vec<&'a TupleUpdate>,
) {
    out.clear();
    let mut seen: FxHashSet<(RelId, &[Elem])> =
        FxHashSet::with_capacity_and_hasher(updates.len(), FxBuildHasher::default());
    for u in updates.iter().rev() {
        let u = u.borrow();
        if seen.insert((u.rel, &u.tuple[..])) {
            out.push(u);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_update_wins_and_order_is_reverse() {
        let r = RelId(0);
        let ups = vec![
            TupleUpdate::insert(r, &[1, 2]),
            TupleUpdate::insert(r, &[3, 4]),
            TupleUpdate::remove(r, &[1, 2]),
        ];
        let mut out = Vec::new();
        coalesce_updates(&ups, &mut out);
        assert_eq!(out.len(), 2);
        // reverse chronological: the (1,2) removal is the survivor
        assert_eq!(out[0], &ups[2]);
        assert_eq!(out[1], &ups[1]);
    }

    #[test]
    fn borrowed_and_owned_slices_agree() {
        let r = RelId(0);
        let ups = vec![TupleUpdate::insert(r, &[7]), TupleUpdate::remove(r, &[7])];
        let refs: Vec<&TupleUpdate> = ups.iter().collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        coalesce_updates(&ups, &mut a);
        coalesce_updates(&refs, &mut b);
        assert_eq!(a, b);
    }
}
