//! The Theorem 8 evaluator: dynamic weighted-query evaluation with
//! free-variable queries.
//!
//! # Plan/state architecture
//!
//! A bound query is two halves:
//!
//! * the **immutable plan** — the [`CompiledQuery`] (circuit, slot
//!   registry, literal table, free-variable order) behind an `Arc`, plus
//!   the derived [`EvalPlan`] (parent CSR, per-slot input-gate CSR,
//!   memoized per-`FreeVar`-slot peek cones). Nothing in the plan changes
//!   under weight or relation updates, and it is `Send + Sync`;
//! * the **mutable state** — the [`DynEvaluator`]'s gate values and
//!   permanent maintenance structures, plus reusable query scratch.
//!
//! [`QueryEngine::new`] builds both at once; [`QueryEngine::from_parts`]
//! instantiates another *state* over already-built plan halves. That is
//! the shard constructor: a sharded engine compiles once, then creates
//! one cheap `QueryEngine` per Gaifman shard, all pointing at the same
//! plan (see `agq-enumerate`'s `ShardedEngine`). Each shard state absorbs
//! only its own shard's updates; a point query at a tuple of that shard
//! reads only the cone above the tuple's indicator slots, which — because
//! compiled tuples are Gaifman cliques — never leaves the shard's
//! component, so the other shards' staleness is invisible.
//!
//! Point queries run over the memoized cones
//! ([`DynEvaluator::peek_memo`]): the cone topology above each `v_i(a)`
//! indicator slot is static, so it is precomputed in the plan and each
//! query is one topological sweep — no per-query cone discovery.
//! [`QueryEngine::query_with`] is the `&self` form that takes external
//! scratch, which is what batch workers and shard read-locks use.

use crate::compile::CompiledQuery;
use crate::slots::SlotKey;
use agq_circuit::{DynEvaluator, EvalPlan, FiniteMaint, PeekScratch, PermMaint, RingMaint};
use agq_perm::SegTreePerm;
use agq_semiring::Semiring;
use agq_structure::{Elem, RelId, Tuple, WeightId, WeightedStructure};
use std::sync::Arc;

/// `std::thread::available_parallelism()` re-reads cgroup limits from the
/// filesystem on every call (~10µs on Linux) — far too slow for per-batch
/// dispatch decisions. Resolve it once per process.
fn available_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// One Gaifman-preserving database update: set the membership of `tuple`
/// in relation `rel`. The shared update language of every index bound to
/// a compiled query — [`QueryEngine::apply_update`] patches the dynamic
/// evaluator, and `agq-enumerate`'s `AnswerIndex::apply_update` patches
/// the answer enumeration index — so one update object can drive every
/// structure derived from the same database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TupleUpdate {
    /// The relation.
    pub rel: RelId,
    /// The tuple (must be a clique of the compile-time Gaifman graph).
    pub tuple: Vec<Elem>,
    /// `true` inserts, `false` removes.
    pub present: bool,
}

impl TupleUpdate {
    /// Insert `tuple` into `rel`.
    pub fn insert(rel: RelId, tuple: &[Elem]) -> Self {
        TupleUpdate {
            rel,
            tuple: tuple.to_vec(),
            present: true,
        }
    }

    /// Remove `tuple` from `rel`.
    pub fn remove(rel: RelId, tuple: &[Elem]) -> Self {
        TupleUpdate {
            rel,
            tuple: tuple.to_vec(),
            present: false,
        }
    }
}

/// A durability hook: a sink that records committed update batches as a
/// write-ahead-log stream. Engines that ingest [`TupleUpdate`] batches
/// call [`append_batch`](WalSink::append_batch) once per *applied* batch,
/// tagging it with a monotonically increasing log sequence number (LSN);
/// a snapshot taken at LSN `n` plus a replay of every logged batch with
/// LSN `> n` reconstructs the live state (replay overlap is harmless —
/// tuple updates are idempotent set-membership writes).
///
/// The trait lives here, below the engines in the dependency graph, so
/// any engine layer can carry a sink without knowing the on-disk format;
/// `agq-persist` provides the checksummed file-backed implementation.
pub trait WalSink: Send {
    /// Append one committed batch under sequence number `lsn`.
    fn append_batch(&mut self, lsn: u64, updates: &[TupleUpdate]) -> std::io::Result<()>;

    /// Flush buffered records to durable storage.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// What an engine does when a WAL append still fails after the
/// [`DurabilityPolicy`]'s bounded retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalFailure {
    /// Reject the batch: nothing is applied in memory, the LSN is not
    /// advanced, and the caller gets a typed WAL error. Durability is
    /// preserved at the cost of availability.
    FailStop,
    /// Apply the batch anyway and keep serving, but mark the engine
    /// `wal_degraded` so health reporting (and operators) can see that
    /// the in-memory state has run ahead of the durable log. Availability
    /// is preserved at the cost of durability.
    FailOpen,
}

/// How hard an engine tries to journal a batch before giving up, and
/// what "giving up" means. Engines journal **write-ahead**: the batch is
/// appended (and flushed) under this policy *before* any in-memory state
/// changes, so [`WalFailure::FailStop`] can reject a batch with the
/// engine untouched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// Total append attempts (≥ 1; `0` is treated as `1`).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub backoff: std::time::Duration,
    /// Behaviour after the last attempt fails.
    pub on_failure: WalFailure,
}

impl Default for DurabilityPolicy {
    /// Three attempts, 1 ms initial backoff, fail-stop.
    fn default() -> Self {
        DurabilityPolicy {
            attempts: 3,
            backoff: std::time::Duration::from_millis(1),
            on_failure: WalFailure::FailStop,
        }
    }
}

impl DurabilityPolicy {
    /// The default retry schedule but fail-open on exhaustion.
    pub fn fail_open() -> Self {
        DurabilityPolicy {
            on_failure: WalFailure::FailOpen,
            ..DurabilityPolicy::default()
        }
    }

    /// Append + flush one batch under this policy's retry schedule.
    /// Returns the last error once `attempts` attempts have failed; the
    /// caller decides between fail-stop and fail-open via
    /// [`on_failure`](DurabilityPolicy::on_failure). Each attempt passes
    /// through the `wal.append` fail-point.
    pub fn append(
        &self,
        sink: &mut dyn WalSink,
        lsn: u64,
        updates: &[TupleUpdate],
    ) -> std::io::Result<()> {
        let attempts = self.attempts.max(1);
        let mut delay = self.backoff;
        for attempt in 1..=attempts {
            let res = crate::fault::io_point("wal.append")
                .and_then(|()| sink.append_batch(lsn, updates))
                .and_then(|()| sink.flush());
            match res {
                Ok(()) => return Ok(()),
                Err(e) if attempt == attempts => return Err(e),
                Err(_) => {
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    delay = delay.saturating_mul(2);
                }
            }
        }
        unreachable!("loop returns on the last attempt")
    }
}

/// Why an engine state could not be instantiated over given plan halves —
/// the typed replacement for the assertion failures a corrupt or
/// mismatched snapshot used to trigger deep inside the evaluator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartsError {
    /// The evaluation plan was derived from a different circuit than the
    /// compiled query (slot counts disagree).
    SlotCountMismatch {
        /// Slots the plan's circuit expects.
        plan: usize,
        /// Slots the compiled query's registry carries.
        compiled: usize,
    },
    /// Literal-table length disagrees between plan circuit and query.
    LitCountMismatch {
        /// Literals the plan's circuit expects.
        plan: usize,
        /// Literals the compiled query carries.
        compiled: usize,
    },
    /// A saved evaluator state does not fit the plan (wrong vector
    /// lengths — e.g. a snapshot from a different query or version).
    SavedState(&'static str),
}

impl std::fmt::Display for PartsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartsError::SlotCountMismatch { plan, compiled } => write!(
                f,
                "plan/query slot count mismatch: plan circuit has {plan}, compiled query {compiled}"
            ),
            PartsError::LitCountMismatch { plan, compiled } => write!(
                f,
                "plan/query literal count mismatch: plan circuit has {plan}, compiled query {compiled}"
            ),
            PartsError::SavedState(msg) => write!(f, "saved state does not fit plan: {msg}"),
        }
    }
}

impl std::error::Error for PartsError {}

/// A compiled weighted query bound to live weight values: supports point
/// queries at free-variable tuples, batched zero-restore queries, weight
/// updates, and (in dynamic-atom mode) Gaifman-preserving relation
/// updates.
///
/// * General semirings: `O(log |A|)` per query/update (via segment-tree
///   permanents), tight by Proposition 14.
/// * Rings and finite semirings: `O(1)` per query/update.
///
/// Point queries run over a non-mutating overlay ([`DynEvaluator::peek`]):
/// the `v_i` indicator slots of the queried tuple are patched only inside
/// the query-bounded cone, so nothing is committed or rolled back —
/// roughly half the maintenance work of the classic `2|x̄|`-update trick
/// (kept as [`QueryEngine::query_via_updates`] for comparison).
pub struct QueryEngine<S: Semiring, P: PermMaint<S>> {
    compiled: Arc<CompiledQuery<S>>,
    eval: DynEvaluator<S, P>,
    scratch: PeekScratch<S>,
    patch_buf: Vec<(u32, S)>,
}

/// Theorem 8 engine for arbitrary semirings (logarithmic updates).
pub type GeneralEngine<S> = QueryEngine<S, SegTreePerm<S>>;
/// Theorem 8 engine for rings (constant-time updates, Corollary 17).
pub type RingEngine<S> = QueryEngine<S, RingMaint<S>>;
/// Theorem 8 engine for finite semirings (constant-time updates,
/// Corollary 20).
pub type FiniteEngine<S> = QueryEngine<S, FiniteMaint<S>>;

impl<S: Semiring, P: PermMaint<S>> QueryEngine<S, P> {
    /// Bind a compiled query to concrete weights (and, in dynamic-atom
    /// mode, the current relation contents). Derives the evaluation plan
    /// with memoized cones for every `FreeVar` indicator slot.
    pub fn new(compiled: CompiledQuery<S>, weights: &WeightedStructure<S>) -> Self {
        let compiled = Arc::new(compiled);
        let plan = Arc::new(Self::build_plan(&compiled));
        Self::from_parts(compiled, plan, weights)
    }

    /// Derive the shared evaluation plan of a compiled query: adjacency
    /// CSR plus memoized peek cones for the `FreeVar` indicator slots
    /// (their cone topology is static and query-bounded, so point queries
    /// become one precomputed-cone sweep).
    pub fn build_plan(compiled: &CompiledQuery<S>) -> EvalPlan {
        let cone_slots: Vec<u32> = compiled
            .slots
            .iter()
            .filter(|(_, key)| matches!(key, SlotKey::FreeVar(..)))
            .map(|(slot, _)| slot)
            .collect();
        EvalPlan::with_cones(compiled.circuit.clone(), &cone_slots)
    }

    /// Instantiate a mutable engine *state* over shared plan halves —
    /// the per-shard constructor of the sharded engine. Cost: one circuit
    /// evaluation; no compilation, no adjacency rebuild.
    pub fn from_parts(
        compiled: Arc<CompiledQuery<S>>,
        plan: Arc<EvalPlan>,
        weights: &WeightedStructure<S>,
    ) -> Self {
        match Self::try_from_parts(compiled, plan, weights) {
            Ok(engine) => engine,
            Err(e) => panic!("QueryEngine::from_parts: {e}"),
        }
    }

    /// Fallible form of [`from_parts`](Self::from_parts): validates that
    /// the plan actually belongs to the compiled query before touching the
    /// evaluator, so recovery paths loading plan halves from disk get a
    /// typed [`PartsError`] instead of an assertion panic.
    pub fn try_from_parts(
        compiled: Arc<CompiledQuery<S>>,
        plan: Arc<EvalPlan>,
        weights: &WeightedStructure<S>,
    ) -> Result<Self, PartsError> {
        Self::check_plan(&compiled, &plan)?;
        let a = weights.structure();
        let slot_values: Vec<S> = compiled
            .slots
            .iter()
            .map(|(_, key)| match key {
                SlotKey::Weight(w, t) => weights.get(w, t.as_slice()),
                SlotKey::FreeVar(..) => S::zero(),
                SlotKey::AtomPos(r, t) => {
                    if a.holds(r, t.as_slice()) {
                        S::one()
                    } else {
                        S::zero()
                    }
                }
                SlotKey::AtomNeg(r, t) => {
                    if a.holds(r, t.as_slice()) {
                        S::zero()
                    } else {
                        S::one()
                    }
                }
            })
            .collect();
        let eval = DynEvaluator::from_plan(plan, &slot_values, &compiled.lits);
        Ok(QueryEngine {
            compiled,
            eval,
            scratch: PeekScratch::new(),
            patch_buf: Vec::new(),
        })
    }

    /// Reinstate an engine from a saved evaluator state (`slot_values`
    /// and committed `gate_values` as exposed by
    /// [`evaluator`](Self::evaluator)) without re-evaluating the circuit:
    /// the restore half of snapshot/restore.
    pub fn from_saved(
        compiled: Arc<CompiledQuery<S>>,
        plan: Arc<EvalPlan>,
        slot_values: Vec<S>,
        gate_values: Vec<S>,
    ) -> Result<Self, PartsError> {
        Self::check_plan(&compiled, &plan)?;
        let eval = DynEvaluator::from_saved(plan, slot_values, gate_values)
            .map_err(PartsError::SavedState)?;
        Ok(QueryEngine {
            compiled,
            eval,
            scratch: PeekScratch::new(),
            patch_buf: Vec::new(),
        })
    }

    fn check_plan(compiled: &CompiledQuery<S>, plan: &EvalPlan) -> Result<(), PartsError> {
        let circuit = plan.circuit();
        if circuit.num_slots() != compiled.slots.len() {
            return Err(PartsError::SlotCountMismatch {
                plan: circuit.num_slots(),
                compiled: compiled.slots.len(),
            });
        }
        if circuit.num_lits() != compiled.lits.len() {
            return Err(PartsError::LitCountMismatch {
                plan: circuit.num_lits(),
                compiled: compiled.lits.len(),
            });
        }
        Ok(())
    }

    /// The live evaluator state (read-only; snapshotting reads
    /// `slot_values()` / `gate_values()` through this).
    pub fn evaluator(&self) -> &DynEvaluator<S, P> {
        &self.eval
    }

    /// The compiled query this engine runs.
    pub fn compiled(&self) -> &CompiledQuery<S> {
        &self.compiled
    }

    /// The compiled query behind its shareable `Arc`.
    pub fn compiled_arc(&self) -> &Arc<CompiledQuery<S>> {
        &self.compiled
    }

    /// The shared evaluation plan (for instantiating sibling states).
    pub fn plan(&self) -> &Arc<EvalPlan> {
        self.eval.plan()
    }

    /// Value of a closed query (meaningless when free variables exist —
    /// with all indicators at 0 every free term contributes 0).
    pub fn value(&self) -> &S {
        self.eval.output()
    }

    /// Value at a free-variable tuple, via the zero-restore overlay: the
    /// `v_i` indicator slots are patched to `1` only inside the
    /// query-bounded cone — which is memoized in the plan, so the query
    /// is one topological sweep with no state mutation or restore pass.
    pub fn query(&mut self, tuple: &[Elem]) -> S {
        let mut patches = std::mem::take(&mut self.patch_buf);
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.query_with(tuple, &mut scratch, &mut patches);
        self.patch_buf = patches;
        self.scratch = scratch;
        out
    }

    /// [`QueryEngine::query`] through caller-provided scratch, taking
    /// `&self`: the form used by batch workers and by shard read-locks
    /// (the evaluator is never mutated, so any number of `query_with`
    /// calls may run concurrently on one engine).
    pub fn query_with(
        &self,
        tuple: &[Elem],
        scratch: &mut PeekScratch<S>,
        patches: &mut Vec<(u32, S)>,
    ) -> S {
        patches.clear();
        match self.free_var_patches(tuple, patches) {
            true => self.eval.peek_memo(patches, scratch),
            false => S::zero(),
        }
    }

    /// Values at many free-variable tuples. Equivalent to mapping
    /// [`QueryEngine::query`] over `tuples`, with per-query setup
    /// amortized across one reusable scratch per worker.
    ///
    /// Because the zero-restore overlay never mutates the evaluator, the
    /// batch fans out over threads — something the classic update/restore
    /// path structurally cannot do. `threads = 0` uses one worker per
    /// available core; results are returned in input order regardless.
    pub fn query_batch(&self, tuples: &[&[Elem]]) -> Vec<S>
    where
        P: Sync,
    {
        self.query_batch_threads(tuples, 0)
    }

    /// [`QueryEngine::query_batch`] with an explicit worker count
    /// (`0` = one per core, `1` = run on the calling thread).
    pub fn query_batch_threads(&self, tuples: &[&[Elem]], threads: usize) -> Vec<S>
    where
        P: Sync,
    {
        let threads = match threads {
            0 => available_cores(),
            t => t,
        }
        .min(tuples.len())
        .max(1);
        let run_chunk = |chunk: &[&[Elem]], out: &mut Vec<S>| {
            let mut scratch = PeekScratch::new();
            let mut patches = Vec::new();
            for tuple in chunk {
                out.push(self.query_with(tuple, &mut scratch, &mut patches));
            }
        };
        if threads <= 1 {
            let mut out = Vec::with_capacity(tuples.len());
            run_chunk(tuples, &mut out);
            return out;
        }
        let chunk_size = tuples.len().div_ceil(threads);
        let mut results: Vec<Vec<S>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let run_chunk = &run_chunk;
            let handles: Vec<_> = tuples
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(chunk.len());
                        run_chunk(chunk, &mut out);
                        out
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("batch worker"));
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Value at a free-variable tuple via the classic `2|x̄|`
    /// update/restore cycles of the Theorem 8 proof. Kept as the measured
    /// baseline of the zero-restore path; prefer [`QueryEngine::query`].
    pub fn query_via_updates(&mut self, tuple: &[Elem]) -> S {
        let mut patches = Vec::with_capacity(tuple.len());
        match self.free_var_patches(tuple, &mut patches) {
            true => self.eval.peek_with(&patches),
            false => S::zero(),
        }
    }

    /// Build the `v_i(a) := 1` patch list for `tuple`; false when some
    /// indicator has no slot (no gate reads `v_i(a)`: no shape can place
    /// the variable there, so the value is structurally zero).
    fn free_var_patches(&self, tuple: &[Elem], patches: &mut Vec<(u32, S)>) -> bool {
        assert_eq!(
            tuple.len(),
            self.compiled.free_vars.len(),
            "query tuple arity mismatch"
        );
        for (i, &a) in tuple.iter().enumerate() {
            match self.compiled.slots.lookup(&SlotKey::FreeVar(i as u8, a)) {
                Some(slot) => patches.push((slot, S::one())),
                None => return false,
            }
        }
        true
    }

    /// Update a weight: `w(t̄) := value`. Returns false when the weight is
    /// structurally irrelevant (no gate reads it; the query value cannot
    /// depend on it).
    pub fn set_weight(&mut self, w: WeightId, t: &[Elem], value: S) -> bool {
        match self
            .compiled
            .slots
            .lookup(&SlotKey::Weight(w, Tuple::new(t)))
        {
            Some(slot) => {
                self.eval.set_input(slot, value);
                true
            }
            None => false,
        }
    }

    /// Apply a [`TupleUpdate`] (dynamic-atom mode only). Equivalent to
    /// [`QueryEngine::set_atom`]; returns false when the tuple has no
    /// compiled atom slots (a structural zero). Routed through the batch
    /// machinery ([`QueryEngine::apply_batch`] at size one), so the two
    /// paths cannot diverge; net no-ops (presence already at the target)
    /// short-circuit before any gate is touched.
    pub fn apply_update(&mut self, u: &TupleUpdate) -> bool {
        self.set_atom(u.rel, &u.tuple, u.present)
    }

    /// Apply a whole batch of [`TupleUpdate`]s with **one** coalesced
    /// dirty-propagation sweep ([`DynEvaluator::set_inputs`]): updates are
    /// deduplicated per tuple (the last update to a `(rel, tuple)` wins),
    /// net no-ops are dropped, and the union of touched slots is repaired
    /// in a single topological pass — gates shared by several update cones
    /// are recomputed once per batch instead of once per update.
    ///
    /// Accepts `&[TupleUpdate]` or `&[&TupleUpdate]`. Returns the number
    /// of coalesced updates with compiled atom slots (updates on tuples
    /// without any are structural zeros and count as unapplied, matching
    /// [`QueryEngine::apply_update`]'s `false`).
    pub fn apply_batch<U: std::borrow::Borrow<TupleUpdate>>(&mut self, updates: &[U]) -> usize {
        let mut coalesced = Vec::with_capacity(updates.len());
        crate::batch::coalesce_updates(updates, &mut coalesced);
        self.apply_batch_coalesced(&coalesced)
    }

    /// [`QueryEngine::apply_batch`] for a batch that is **already
    /// coalesced** (at most one update per `(rel, tuple)`, e.g. by
    /// [`crate::coalesce_updates`]) — skips the dedup pass so a stack
    /// that coalesced at its top layer does not pay for it again here.
    /// Tuples duplicated within `updates` are staged against the same
    /// pre-batch state, so which duplicate wins is unspecified: callers
    /// must guarantee distinctness.
    pub fn apply_batch_coalesced(&mut self, updates: &[&TupleUpdate]) -> usize {
        let mut patches = std::mem::take(&mut self.patch_buf);
        patches.clear();
        let mut applied = 0usize;
        for u in updates {
            if self.stage_atom(u.rel, &u.tuple, u.present, &mut patches) {
                applied += 1;
            }
        }
        self.eval.set_inputs(&patches);
        patches.clear();
        self.patch_buf = patches;
        applied
    }

    /// Dynamic-atom mode only: insert/remove a tuple of relation `r`
    /// (must preserve the Gaifman graph — tuples over non-cliques were
    /// compiled away as structural zeros and return false). This is the
    /// batch path at size one.
    pub fn set_atom(&mut self, r: RelId, t: &[Elem], present: bool) -> bool {
        let mut patches = std::mem::take(&mut self.patch_buf);
        patches.clear();
        let staged = self.stage_atom(r, t, present, &mut patches);
        self.eval.set_inputs(&patches);
        patches.clear();
        self.patch_buf = patches;
        staged
    }

    /// Stage the slot patches of one atom flip into `patches`, skipping
    /// slots already at the target value (net no-ops). Returns whether the
    /// tuple has compiled atom slots at all.
    fn stage_atom(&self, r: RelId, t: &[Elem], present: bool, patches: &mut Vec<(u32, S)>) -> bool {
        let tuple = Tuple::new(t);
        let pos = self.compiled.slots.lookup(&SlotKey::AtomPos(r, tuple));
        let neg = self.compiled.slots.lookup(&SlotKey::AtomNeg(r, tuple));
        if pos.is_none() && neg.is_none() {
            return false;
        }
        let (pv, nv) = if present {
            (S::one(), S::zero())
        } else {
            (S::zero(), S::one())
        };
        if let Some(slot) = pos {
            if *self.eval.slot_value(slot) != pv {
                patches.push((slot, pv));
            }
        }
        if let Some(slot) = neg {
            if *self.eval.slot_value(slot) != nv {
                patches.push((slot, nv));
            }
        }
        true
    }
}
