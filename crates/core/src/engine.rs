//! The Theorem 8 evaluator: dynamic weighted-query evaluation with
//! free-variable queries.

use crate::compile::CompiledQuery;
use crate::slots::SlotKey;
use agq_circuit::{DynEvaluator, FiniteMaint, PermMaint, RingMaint};
use agq_perm::SegTreePerm;
use agq_semiring::Semiring;
use agq_structure::{Elem, RelId, Tuple, WeightId, WeightedStructure};

/// A compiled weighted query bound to live weight values: supports point
/// queries at free-variable tuples, weight updates, and (in dynamic-atom
/// mode) Gaifman-preserving relation updates.
///
/// * General semirings: `O(log |A|)` per query/update (via segment-tree
///   permanents), tight by Proposition 14.
/// * Rings and finite semirings: `O(1)` per query/update.
pub struct QueryEngine<S: Semiring, P: PermMaint<S>> {
    compiled: CompiledQuery<S>,
    eval: DynEvaluator<S, P>,
}

/// Theorem 8 engine for arbitrary semirings (logarithmic updates).
pub type GeneralEngine<S> = QueryEngine<S, SegTreePerm<S>>;
/// Theorem 8 engine for rings (constant-time updates, Corollary 17).
pub type RingEngine<S> = QueryEngine<S, RingMaint<S>>;
/// Theorem 8 engine for finite semirings (constant-time updates,
/// Corollary 20).
pub type FiniteEngine<S> = QueryEngine<S, FiniteMaint<S>>;

impl<S: Semiring, P: PermMaint<S>> QueryEngine<S, P> {
    /// Bind a compiled query to concrete weights (and, in dynamic-atom
    /// mode, the current relation contents).
    pub fn new(compiled: CompiledQuery<S>, weights: &WeightedStructure<S>) -> Self {
        let a = weights.structure();
        let slot_values: Vec<S> = compiled
            .slots
            .iter()
            .map(|(_, key)| match key {
                SlotKey::Weight(w, t) => weights.get(w, t.as_slice()),
                SlotKey::FreeVar(..) => S::zero(),
                SlotKey::AtomPos(r, t) => {
                    if a.holds(r, t.as_slice()) {
                        S::one()
                    } else {
                        S::zero()
                    }
                }
                SlotKey::AtomNeg(r, t) => {
                    if a.holds(r, t.as_slice()) {
                        S::zero()
                    } else {
                        S::one()
                    }
                }
            })
            .collect();
        let eval = DynEvaluator::new(
            compiled.circuit.clone(),
            &slot_values,
            &compiled.lits,
        );
        QueryEngine { compiled, eval }
    }

    /// The compiled query this engine runs.
    pub fn compiled(&self) -> &CompiledQuery<S> {
        &self.compiled
    }

    /// Value of a closed query (meaningless when free variables exist —
    /// with all indicators at 0 every free term contributes 0).
    pub fn value(&self) -> &S {
        self.eval.output()
    }

    /// Value at a free-variable tuple (the `v_i`-indicator trick: `2|x|`
    /// temporary updates, as in the paper's proof).
    pub fn query(&mut self, tuple: &[Elem]) -> S {
        assert_eq!(
            tuple.len(),
            self.compiled.free_vars.len(),
            "query tuple arity mismatch"
        );
        let mut patches = Vec::with_capacity(tuple.len());
        for (i, &a) in tuple.iter().enumerate() {
            match self
                .compiled
                .slots
                .lookup(&SlotKey::FreeVar(i as u8, a))
            {
                Some(slot) => patches.push((slot, S::one())),
                // No gate reads v_i(a): no shape can place the variable
                // there, so the value is structurally zero.
                None => return S::zero(),
            }
        }
        self.eval.peek_with(&patches)
    }

    /// Update a weight: `w(t̄) := value`. Returns false when the weight is
    /// structurally irrelevant (no gate reads it; the query value cannot
    /// depend on it).
    pub fn set_weight(&mut self, w: WeightId, t: &[Elem], value: S) -> bool {
        match self.compiled.slots.lookup(&SlotKey::Weight(w, Tuple::new(t))) {
            Some(slot) => {
                self.eval.set_input(slot, value);
                true
            }
            None => false,
        }
    }

    /// Dynamic-atom mode only: insert/remove a tuple of relation `r`
    /// (must preserve the Gaifman graph — tuples over non-cliques were
    /// compiled away as structural zeros and return false).
    pub fn set_atom(&mut self, r: RelId, t: &[Elem], present: bool) -> bool {
        let tuple = Tuple::new(t);
        let pos = self.compiled.slots.lookup(&SlotKey::AtomPos(r, tuple));
        let neg = self.compiled.slots.lookup(&SlotKey::AtomNeg(r, tuple));
        if pos.is_none() && neg.is_none() {
            return false;
        }
        let (pv, nv) = if present {
            (S::one(), S::zero())
        } else {
            (S::zero(), S::one())
        };
        if let Some(slot) = pos {
            self.eval.set_input(slot, pv);
        }
        if let Some(slot) = neg {
            self.eval.set_input(slot, nv);
        }
        true
    }
}
