//! The Theorem 8 evaluator: dynamic weighted-query evaluation with
//! free-variable queries.

use crate::compile::CompiledQuery;
use crate::slots::SlotKey;
use agq_circuit::{DynEvaluator, FiniteMaint, PeekScratch, PermMaint, RingMaint};
use agq_perm::SegTreePerm;
use agq_semiring::Semiring;
use agq_structure::{Elem, RelId, Tuple, WeightId, WeightedStructure};

/// One Gaifman-preserving database update: set the membership of `tuple`
/// in relation `rel`. The shared update language of every index bound to
/// a compiled query — [`QueryEngine::apply_update`] patches the dynamic
/// evaluator, and `agq-enumerate`'s `AnswerIndex::apply_update` patches
/// the answer enumeration index — so one update object can drive every
/// structure derived from the same database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TupleUpdate {
    /// The relation.
    pub rel: RelId,
    /// The tuple (must be a clique of the compile-time Gaifman graph).
    pub tuple: Vec<Elem>,
    /// `true` inserts, `false` removes.
    pub present: bool,
}

impl TupleUpdate {
    /// Insert `tuple` into `rel`.
    pub fn insert(rel: RelId, tuple: &[Elem]) -> Self {
        TupleUpdate {
            rel,
            tuple: tuple.to_vec(),
            present: true,
        }
    }

    /// Remove `tuple` from `rel`.
    pub fn remove(rel: RelId, tuple: &[Elem]) -> Self {
        TupleUpdate {
            rel,
            tuple: tuple.to_vec(),
            present: false,
        }
    }
}

/// A compiled weighted query bound to live weight values: supports point
/// queries at free-variable tuples, batched zero-restore queries, weight
/// updates, and (in dynamic-atom mode) Gaifman-preserving relation
/// updates.
///
/// * General semirings: `O(log |A|)` per query/update (via segment-tree
///   permanents), tight by Proposition 14.
/// * Rings and finite semirings: `O(1)` per query/update.
///
/// Point queries run over a non-mutating overlay ([`DynEvaluator::peek`]):
/// the `v_i` indicator slots of the queried tuple are patched only inside
/// the query-bounded cone, so nothing is committed or rolled back —
/// roughly half the maintenance work of the classic `2|x̄|`-update trick
/// (kept as [`QueryEngine::query_via_updates`] for comparison).
pub struct QueryEngine<S: Semiring, P: PermMaint<S>> {
    compiled: CompiledQuery<S>,
    eval: DynEvaluator<S, P>,
    scratch: PeekScratch<S>,
    patch_buf: Vec<(u32, S)>,
}

/// Theorem 8 engine for arbitrary semirings (logarithmic updates).
pub type GeneralEngine<S> = QueryEngine<S, SegTreePerm<S>>;
/// Theorem 8 engine for rings (constant-time updates, Corollary 17).
pub type RingEngine<S> = QueryEngine<S, RingMaint<S>>;
/// Theorem 8 engine for finite semirings (constant-time updates,
/// Corollary 20).
pub type FiniteEngine<S> = QueryEngine<S, FiniteMaint<S>>;

impl<S: Semiring, P: PermMaint<S>> QueryEngine<S, P> {
    /// Bind a compiled query to concrete weights (and, in dynamic-atom
    /// mode, the current relation contents).
    pub fn new(compiled: CompiledQuery<S>, weights: &WeightedStructure<S>) -> Self {
        let a = weights.structure();
        let slot_values: Vec<S> = compiled
            .slots
            .iter()
            .map(|(_, key)| match key {
                SlotKey::Weight(w, t) => weights.get(w, t.as_slice()),
                SlotKey::FreeVar(..) => S::zero(),
                SlotKey::AtomPos(r, t) => {
                    if a.holds(r, t.as_slice()) {
                        S::one()
                    } else {
                        S::zero()
                    }
                }
                SlotKey::AtomNeg(r, t) => {
                    if a.holds(r, t.as_slice()) {
                        S::zero()
                    } else {
                        S::one()
                    }
                }
            })
            .collect();
        let eval = DynEvaluator::new(compiled.circuit.clone(), &slot_values, &compiled.lits);
        QueryEngine {
            compiled,
            eval,
            scratch: PeekScratch::new(),
            patch_buf: Vec::new(),
        }
    }

    /// The compiled query this engine runs.
    pub fn compiled(&self) -> &CompiledQuery<S> {
        &self.compiled
    }

    /// Value of a closed query (meaningless when free variables exist —
    /// with all indicators at 0 every free term contributes 0).
    pub fn value(&self) -> &S {
        self.eval.output()
    }

    /// Value at a free-variable tuple, via the zero-restore overlay: the
    /// `v_i` indicator slots are patched to `1` only inside the
    /// query-bounded cone, with no state mutation or restore pass.
    pub fn query(&mut self, tuple: &[Elem]) -> S {
        let mut patches = std::mem::take(&mut self.patch_buf);
        patches.clear();
        let out = match self.free_var_patches(tuple, &mut patches) {
            true => self.eval.peek(&patches, &mut self.scratch),
            false => S::zero(),
        };
        self.patch_buf = patches;
        out
    }

    /// Values at many free-variable tuples. Equivalent to mapping
    /// [`QueryEngine::query`] over `tuples`, with per-query setup
    /// amortized across one reusable scratch per worker.
    ///
    /// Because the zero-restore overlay never mutates the evaluator, the
    /// batch fans out over threads — something the classic update/restore
    /// path structurally cannot do. `threads = 0` uses one worker per
    /// available core; results are returned in input order regardless.
    pub fn query_batch(&self, tuples: &[&[Elem]]) -> Vec<S>
    where
        P: Sync,
    {
        self.query_batch_threads(tuples, 0)
    }

    /// [`QueryEngine::query_batch`] with an explicit worker count
    /// (`0` = one per core, `1` = run on the calling thread).
    pub fn query_batch_threads(&self, tuples: &[&[Elem]], threads: usize) -> Vec<S>
    where
        P: Sync,
    {
        let threads = match threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            t => t,
        }
        .min(tuples.len())
        .max(1);
        let run_chunk = |chunk: &[&[Elem]], out: &mut Vec<S>| {
            let mut scratch = PeekScratch::new();
            let mut patches = Vec::new();
            for tuple in chunk {
                patches.clear();
                out.push(match self.free_var_patches(tuple, &mut patches) {
                    true => self.eval.peek(&patches, &mut scratch),
                    false => S::zero(),
                });
            }
        };
        if threads <= 1 {
            let mut out = Vec::with_capacity(tuples.len());
            run_chunk(tuples, &mut out);
            return out;
        }
        let chunk_size = tuples.len().div_ceil(threads);
        let mut results: Vec<Vec<S>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let run_chunk = &run_chunk;
            let handles: Vec<_> = tuples
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(chunk.len());
                        run_chunk(chunk, &mut out);
                        out
                    })
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("batch worker"));
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Value at a free-variable tuple via the classic `2|x̄|`
    /// update/restore cycles of the Theorem 8 proof. Kept as the measured
    /// baseline of the zero-restore path; prefer [`QueryEngine::query`].
    pub fn query_via_updates(&mut self, tuple: &[Elem]) -> S {
        let mut patches = Vec::with_capacity(tuple.len());
        match self.free_var_patches(tuple, &mut patches) {
            true => self.eval.peek_with(&patches),
            false => S::zero(),
        }
    }

    /// Build the `v_i(a) := 1` patch list for `tuple`; false when some
    /// indicator has no slot (no gate reads `v_i(a)`: no shape can place
    /// the variable there, so the value is structurally zero).
    fn free_var_patches(&self, tuple: &[Elem], patches: &mut Vec<(u32, S)>) -> bool {
        assert_eq!(
            tuple.len(),
            self.compiled.free_vars.len(),
            "query tuple arity mismatch"
        );
        for (i, &a) in tuple.iter().enumerate() {
            match self.compiled.slots.lookup(&SlotKey::FreeVar(i as u8, a)) {
                Some(slot) => patches.push((slot, S::one())),
                None => return false,
            }
        }
        true
    }

    /// Update a weight: `w(t̄) := value`. Returns false when the weight is
    /// structurally irrelevant (no gate reads it; the query value cannot
    /// depend on it).
    pub fn set_weight(&mut self, w: WeightId, t: &[Elem], value: S) -> bool {
        match self
            .compiled
            .slots
            .lookup(&SlotKey::Weight(w, Tuple::new(t)))
        {
            Some(slot) => {
                self.eval.set_input(slot, value);
                true
            }
            None => false,
        }
    }

    /// Apply a [`TupleUpdate`] (dynamic-atom mode only). Equivalent to
    /// [`QueryEngine::set_atom`]; returns false when the tuple has no
    /// compiled atom slots (a structural zero).
    pub fn apply_update(&mut self, u: &TupleUpdate) -> bool {
        self.set_atom(u.rel, &u.tuple, u.present)
    }

    /// Dynamic-atom mode only: insert/remove a tuple of relation `r`
    /// (must preserve the Gaifman graph — tuples over non-cliques were
    /// compiled away as structural zeros and return false).
    pub fn set_atom(&mut self, r: RelId, t: &[Elem], present: bool) -> bool {
        let tuple = Tuple::new(t);
        let pos = self.compiled.slots.lookup(&SlotKey::AtomPos(r, tuple));
        let neg = self.compiled.slots.lookup(&SlotKey::AtomNeg(r, tuple));
        if pos.is_none() && neg.is_none() {
            return false;
        }
        let (pv, nv) = if present {
            (S::one(), S::zero())
        } else {
            (S::zero(), S::one())
        };
        if let Some(slot) = pos {
            self.eval.set_input(slot, pv);
        }
        if let Some(slot) = neg {
            self.eval.set_input(slot, nv);
        }
        true
    }
}
