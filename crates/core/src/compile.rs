//! The Theorem 6 compiler: weighted expression × structure → circuit.
//!
//! Compilation decomposes over color sets `D` (identity (12)–(13) of the
//! paper): each `D` contributes an independent family of gates, built
//! against the DFS forest of `G[D]`. That independence is exploited twice:
//!
//! * **sequentially**, each `(D, term)` unit is instantiated straight into
//!   the main builder;
//! * **in parallel** ([`CompileOptions::threads`]), workers instantiate
//!   units into *local* builders with local slot registries, and a
//!   deterministic merge replays the unit gate streams into the main
//!   builder in color-set order, re-interning inputs and constants.
//!
//! The merge performs exactly the interning and peephole decisions the
//! sequential path would, so the parallel compiler's output circuit is
//! **byte-identical** to the sequential one (checked by the differential
//! test suite).

use crate::shape::{enumerate_shapes, Shape};
use crate::slots::{SlotKey, SlotRegistry};
use crate::term::{expand_distinct, DistinctTerm};
use crate::CompileError;
use agq_circuit::{Circuit, CircuitBuilder, CircuitStats, ConstRef, GateDef, GateId};
use agq_graph::Graph;
use agq_logic::{NormalForm, Var};
use agq_semiring::Semiring;
use agq_structure::fx::FxHashMap;
use agq_structure::gaifman::gaifman_graph;
use agq_structure::{Elem, RelId, Structure, Tuple, WeightId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Compilation knobs.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Reject color sets whose DFS forest is deeper than this (the
    /// observable bounded-expansion precondition).
    pub depth_cap: u32,
    /// Reject terms that need more than this many shapes.
    pub max_shapes: usize,
    /// Compile relational atoms as 0/1 *inputs* instead of static checks,
    /// enabling Gaifman-preserving updates (Theorem 24 / Lemma 40).
    pub dynamic_atoms: bool,
    /// Worker threads for compilation: `0` = one per available core,
    /// `1` = sequential. The parallel compiler's output is byte-identical
    /// to the sequential one.
    pub threads: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            depth_cap: 24,
            max_shapes: 200_000,
            dynamic_atoms: false,
            threads: 0,
        }
    }
}

/// What the compiler produced, plus measurements for the experiments.
#[derive(Clone, Debug)]
pub struct CompileReport {
    /// Colors used by the low-treedepth coloring.
    pub num_colors: u32,
    /// Color sets visited.
    pub num_subsets: usize,
    /// Shapes instantiated (over all terms, sets, surjections).
    pub shapes_instantiated: usize,
    /// Deepest DFS forest over the visited color sets.
    pub max_forest_depth: u32,
    /// Structural circuit statistics.
    pub stats: CircuitStats,
}

/// A compiled weighted query: the circuit, its input-slot registry, the
/// literal (coefficient) table, and the free-variable order.
#[derive(Clone, Debug)]
pub struct CompiledQuery<S> {
    /// The circuit (Theorem 6 output).
    pub circuit: Arc<Circuit>,
    /// Input slot identities.
    pub slots: SlotRegistry,
    /// Coefficient table for [`agq_circuit::ConstRef::Lit`] gates.
    pub lits: Vec<S>,
    /// Free variables in query-tuple order.
    pub free_vars: Vec<Var>,
    /// Compilation measurements.
    pub report: CompileReport,
}

/// Compile a normalized weighted expression against a structure.
///
/// The circuit depends on the structure and (in static-atom mode) its
/// relations, but **not** on any weight values — weights are circuit
/// inputs, exactly as in the paper's `Σ(w)`-circuit definition.
pub fn compile<S: Semiring>(
    a: &Structure,
    nf: &NormalForm<S>,
    opts: &CompileOptions,
) -> Result<CompiledQuery<S>, CompileError> {
    let free_vars = nf.free_vars();
    assert!(
        free_vars.len() <= u8::MAX as usize,
        "too many free variables"
    );

    // Distinctness expansion of every term.
    let mut dterms: Vec<DistinctTerm<S>> = Vec::new();
    for t in &nf.terms {
        dterms.extend(expand_distinct(t, &free_vars));
    }
    let p = dterms.iter().map(|d| d.k).max().unwrap_or(0);

    let gaifman = gaifman_graph(a);
    let coloring = agq_graph::low_treedepth_coloring(&gaifman, p.max(1));
    let classes = coloring.classes();

    let mut emit = Emit::new();
    let mut lits: Vec<S> = Vec::new();

    // Literal table: intern per-term coefficients.
    let coeff_gate: Vec<GateId> = dterms
        .iter()
        .map(|d| {
            if d.coeff.is_one() {
                emit.builder.one()
            } else {
                let idx = match lits.iter().position(|l: &S| *l == d.coeff) {
                    Some(i) => i as u32,
                    None => {
                        lits.push(d.coeff.clone());
                        (lits.len() - 1) as u32
                    }
                };
                emit.builder.lit(idx)
            }
        })
        .collect();

    let mut top_gates: Vec<GateId> = Vec::new();
    let mut report = CompileReport {
        num_colors: coloring.num_colors,
        num_subsets: 0,
        shapes_instantiated: 0,
        max_forest_depth: 0,
        stats: CircuitStats {
            num_gates: 0,
            num_edges: 0,
            depth: 0,
            max_fanout: 0,
            max_add_fanin: 0,
            max_perm_rows: 0,
            max_perm_cols: 0,
        },
    };

    // Constant terms (k = 0) contribute their coefficient directly.
    for (ti, d) in dterms.iter().enumerate() {
        if d.k == 0 {
            top_gates.push(coeff_gate[ti]);
        }
    }

    // Enumerate color sets D of size 1..=p; for each, build the DFS forest
    // of G[D] once and instantiate every compatible (term, surjection,
    // shape) triple — identity (12)–(13) of the paper.
    let num_colors = coloring.num_colors as usize;
    let mut subset: Vec<u32> = Vec::new();
    let mut subsets: Vec<Vec<u32>> = Vec::new();
    enumerate_subsets(num_colors, p, &mut subset, 0, &mut subsets);

    let shared = Shared {
        a,
        gaifman: &gaifman,
        colors: &coloring.colors,
        opts,
        dterms: &dterms,
        plan_cache: Mutex::new(FxHashMap::default()),
        leaf_interner: Mutex::new(LeafInterner::default()),
    };

    let threads = match opts.threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        t => t,
    }
    .min(subsets.len())
    .max(1);

    if threads <= 1 {
        // Sequential: units go straight into the main builder.
        let mut forest = SubForest::new(a.domain_size());
        let mut ctx = InstCtx::new();
        for d_set in &subsets {
            forest.build(
                &gaifman,
                d_set.iter().map(|&c| classes[c as usize].as_slice()),
                &coloring.colors,
                d_set,
            );
            if forest.preorder.is_empty() {
                forest.reset();
                continue;
            }
            report.num_subsets += 1;
            let depth = forest.max_depth;
            if depth > opts.depth_cap {
                forest.reset();
                return Err(CompileError::DepthCapExceeded {
                    depth,
                    cap: opts.depth_cap,
                });
            }
            report.max_forest_depth = report.max_forest_depth.max(depth);
            ctx.begin_dset();
            for (ti, dt) in dterms.iter().enumerate() {
                if dt.k < d_set.len() || dt.k == 0 {
                    continue;
                }
                let tops = match instantiate_term(
                    &shared,
                    &forest,
                    depth as u8,
                    d_set,
                    ti,
                    dt,
                    &mut emit,
                    &mut ctx,
                    &mut report.shapes_instantiated,
                ) {
                    Ok(t) => t,
                    Err(e) => {
                        forest.reset();
                        return Err(e);
                    }
                };
                push_term_sum(&mut emit.builder, coeff_gate[ti], &tops, &mut top_gates);
            }
            forest.reset();
        }
    } else {
        // Parallel: workers instantiate (color set × term) units into
        // local builders; the merge below replays them in order.
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<DsetOut, CompileError>>>> =
            (0..subsets.len()).map(|_| Mutex::new(None)).collect();
        let colors = &coloring.colors;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut forest = SubForest::new(a.domain_size());
                    let mut ctx = InstCtx::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= subsets.len() {
                            break;
                        }
                        let out = process_dset_unit(
                            &shared,
                            &mut forest,
                            &mut ctx,
                            &subsets[idx],
                            &classes,
                            colors,
                        );
                        *results[idx].lock().expect("result lock") = Some(out);
                    }
                });
            }
        });
        // Deterministic merge, in color-set order. The first failing
        // color set (in order) reports its error, as sequentially.
        for cell in results {
            let out = cell
                .into_inner()
                .expect("result lock")
                .expect("worker completed")?;
            report.num_subsets += out.num_subsets;
            report.shapes_instantiated += out.shapes_instantiated;
            report.max_forest_depth = report.max_forest_depth.max(out.forest_depth);
            for tu in &out.term_units {
                let tops = merge_term_unit(&mut emit, tu);
                push_term_sum(&mut emit.builder, coeff_gate[tu.ti], &tops, &mut top_gates);
            }
        }
    }

    let output = add_balanced(&mut emit.builder, &top_gates);
    // Relabel once so exclusive add-gate children become contiguous id
    // runs — the dense-run tier of the evaluators sweeps those as value
    // slices. Pure id renaming: deterministic, semantics-preserving.
    let circuit = emit.builder.finish(output).cluster_adds();
    report.stats = circuit.stats();
    Ok(CompiledQuery {
        circuit: Arc::new(circuit),
        slots: emit.slots,
        lits,
        free_vars,
        report,
    })
}

/// Sum a term's instantiation gates, apply its coefficient, and collect
/// the result (no-op when the term contributed nothing).
fn push_term_sum(
    builder: &mut CircuitBuilder,
    coeff: GateId,
    tops: &[GateId],
    top_gates: &mut Vec<GateId>,
) {
    if !tops.is_empty() {
        let sum = add_balanced(builder, tops);
        let gated = builder.mul(coeff, sum);
        top_gates.push(gated);
    }
}

fn enumerate_subsets(
    num_colors: usize,
    p: usize,
    cur: &mut Vec<u32>,
    from: usize,
    out: &mut Vec<Vec<u32>>,
) {
    if !cur.is_empty() {
        out.push(cur.clone());
    }
    if cur.len() == p {
        return;
    }
    for c in from..num_colors {
        cur.push(c as u32);
        enumerate_subsets(num_colors, p, cur, c + 1, out);
        cur.pop();
    }
}

/// Enumerate surjections `vars → d_set` (as color-per-var assignments).
fn surjections(k: usize, d_set: &[u32], assign: &mut [u32], i: usize, f: &mut impl FnMut(&[u32])) {
    if i == k {
        // surjectivity check
        if d_set.iter().all(|c| assign.iter().any(|a| a == c)) {
            f(assign);
        }
        return;
    }
    // prune: remaining slots must cover missing colors
    let missing = d_set.iter().filter(|c| !assign[..i].contains(c)).count();
    if missing > k - i {
        return;
    }
    for &c in d_set {
        assign[i] = c;
        surjections(k, d_set, assign, i + 1, f);
    }
}

/// Fan-in of the add gates emitted for term and top-level sums. Wide
/// gates keep the data-sized aggregates as few flat child segments the
/// dense-run sweep of `agq_circuit` can evaluate as value slices (after
/// `Circuit::cluster_adds` makes the children contiguous); the chunked
/// recursion keeps depth logarithmic for sums wider than one gate.
const ADD_FANIN: usize = 64;

fn add_balanced(b: &mut CircuitBuilder, gates: &[GateId]) -> GateId {
    match gates.len() {
        0 => b.zero(),
        1 => gates[0],
        n if n <= ADD_FANIN => b.add(gates),
        _ => {
            // Left-to-right chunks preserve the summand (enumeration)
            // order; each chunk becomes one wide gate.
            let chunks: Vec<GateId> = gates.chunks(ADD_FANIN).map(|c| b.add(c)).collect();
            add_balanced(b, &chunks)
        }
    }
}

// ---------------------------------------------------------------------
// Shape plans: a term's atoms and weights decided against a shape.
// ---------------------------------------------------------------------

/// Sentinel for "structurally zero / absent" in the dense scratch table.
const NO_GATE: u32 = u32::MAX;

/// An atom decided against the shape: evaluated at a forest node `u`
/// (where the deepest argument lands) against the ancestors of `u` at the
/// recorded absolute depths.
#[derive(Clone, Debug)]
struct AtomCheck {
    rel: RelId,
    arg_depths: Vec<u8>,
    positive: bool,
}

#[derive(Clone, Debug)]
enum WeightRead {
    /// A declared weight `w(ancestors at depths …)`.
    Decl(WeightId, Vec<u8>),
    /// A free-variable indicator `v_pos(u)`.
    Free(u8),
}

/// Per-shape compilation plan for one term.
/// Shapes of one term with their plans, shared across color sets.
type PlanSet = Arc<Vec<(Shape, ShapePlan)>>;

/// Sentinel for "not a leaf" in [`ShapePlan::leaf_prog`]/`leaf_guard`.
const NO_PROG: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct ShapePlan {
    /// Checks per shape node.
    checks: Vec<Vec<AtomCheck>>,
    /// Weight reads per shape node.
    reads: Vec<Vec<WeightRead>>,
    /// Shape children lists.
    children: Vec<Vec<u32>>,
    /// Shape roots.
    roots: Vec<u32>,
    /// Shape nodes grouped by depth (instantiation visits only matches).
    nodes_by_depth: Vec<Vec<u32>>,
    /// Interned *guard* id per leaf node (`NO_PROG` for internal nodes):
    /// the node's depth, atom checks, and killing weight reads. Two leaf
    /// nodes with one guard accept exactly the same forest nodes, so
    /// survivor lists are cached per (guard, color) across a color set.
    leaf_guard: Vec<u32>,
    /// Interned *program* id per leaf node (`NO_PROG` for internal
    /// nodes): the guard plus every factor-producing read. Two leaf nodes
    /// with one program produce identical cell gates, so gate lists are
    /// cached per (program, color) within a compilation unit.
    leaf_prog: Vec<u32>,
}

/// Interner for leaf guards and programs (scoped to one `compile` call,
/// shared by all workers). Ids are only used as cache keys — the actual
/// checks/reads are re-read from the shape node that carries them.
#[derive(Default)]
struct LeafInterner {
    guards: FxHashMap<Vec<u32>, u32>,
    progs: FxHashMap<Vec<u32>, u32>,
}

impl LeafInterner {
    fn intern(map: &mut FxHashMap<Vec<u32>, u32>, key: Vec<u32>) -> u32 {
        let next = map.len() as u32;
        *map.entry(key).or_insert(next)
    }
}

/// Canonical encodings of a leaf's kill conditions and factor reads.
fn leaf_keys(depth: u8, checks: &[AtomCheck], reads: &[WeightRead]) -> (Vec<u32>, Vec<u32>) {
    let mut guard: Vec<u32> = vec![depth as u32];
    for c in checks {
        guard.push(c.rel.0);
        guard.push(c.positive as u32);
        guard.push(c.arg_depths.len() as u32);
        guard.extend(c.arg_depths.iter().map(|&d| d as u32));
    }
    // Weight reads of arity ≥ 2 carry a support/clique condition that can
    // kill the node, so they belong to the guard as well as the program.
    let mut prog = guard.clone();
    for r in reads {
        match r {
            WeightRead::Decl(w, depths) => {
                if depths.len() >= 2 {
                    guard.push(u32::MAX - 1);
                    guard.push(w.0);
                    guard.extend(depths.iter().map(|&d| d as u32));
                }
                prog.push(u32::MAX - 1);
                prog.push(w.0);
                prog.push(depths.len() as u32);
                prog.extend(depths.iter().map(|&d| d as u32));
            }
            WeightRead::Free(pos) => {
                prog.push(u32::MAX - 2);
                prog.push(*pos as u32);
            }
        }
    }
    (guard, prog)
}

fn analyze<S: Semiring>(
    dt: &DistinctTerm<S>,
    shape: &Shape,
    interner: &Mutex<LeafInterner>,
) -> Option<ShapePlan> {
    let n = shape.len();
    let mut nodes_by_depth: Vec<Vec<u32>> = vec![Vec::new(); shape.max_depth() as usize + 1];
    for t in 0..n as u32 {
        nodes_by_depth[shape.depth[t as usize] as usize].push(t);
    }
    let mut plan = ShapePlan {
        checks: vec![Vec::new(); n],
        reads: vec![Vec::new(); n],
        children: shape.children(),
        roots: shape.roots(),
        nodes_by_depth,
        leaf_guard: vec![NO_PROG; n],
        leaf_prog: vec![NO_PROG; n],
    };
    for lit in &dt.rel_lits {
        let nodes: Vec<u32> = lit
            .args
            .iter()
            .map(|&v| shape.var_node[v as usize])
            .collect();
        let comparable = pairwise_comparable(shape, &nodes);
        if !comparable {
            if lit.positive {
                return None; // a clique atom cannot hold off a root path
            }
            continue; // ¬R holds vacuously for this shape
        }
        let deepest = *nodes
            .iter()
            .max_by_key(|&&n| shape.depth[n as usize])
            .expect("atom has arguments");
        plan.checks[deepest as usize].push(AtomCheck {
            rel: lit.rel,
            arg_depths: nodes.iter().map(|&n| shape.depth[n as usize]).collect(),
            positive: lit.positive,
        });
    }
    for (w, args) in &dt.weights {
        let nodes: Vec<u32> = args.iter().map(|&v| shape.var_node[v as usize]).collect();
        if !pairwise_comparable(shape, &nodes) {
            return None; // weights are supported on tuples, i.e. cliques
        }
        let deepest = *nodes
            .iter()
            .max_by_key(|&&n| shape.depth[n as usize])
            .expect("weight has arguments");
        plan.reads[deepest as usize].push(WeightRead::Decl(
            *w,
            nodes.iter().map(|&n| shape.depth[n as usize]).collect(),
        ));
    }
    for &(pos, var) in &dt.free_reads {
        let node = shape.var_node[var as usize];
        plan.reads[node as usize].push(WeightRead::Free(pos));
    }
    // Intern leaf guards/programs. Every leaf is a variable node (every
    // node has a variable among its descendants), which is what lets the
    // instantiation drive leaves from (depth, color) buckets.
    for t in 0..n {
        if plan.children[t].is_empty() {
            debug_assert!(shape.var_at[t].is_some(), "leaf without a variable");
            let (gkey, pkey) = leaf_keys(shape.depth[t], &plan.checks[t], &plan.reads[t]);
            let mut int = interner.lock().expect("leaf interner");
            plan.leaf_guard[t] = LeafInterner::intern(&mut int.guards, gkey);
            plan.leaf_prog[t] = LeafInterner::intern(&mut int.progs, pkey);
        }
    }
    Some(plan)
}

fn pairwise_comparable(shape: &Shape, nodes: &[u32]) -> bool {
    for i in 0..nodes.len() {
        for j in i + 1..nodes.len() {
            if !shape.comparable(nodes[i], nodes[j]) {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------
// Compilation context and the Lemma 29 instantiation.
// ---------------------------------------------------------------------

/// Read-only state shared by every compilation unit (and every worker
/// thread in parallel mode).
struct Shared<'a, S> {
    a: &'a Structure,
    gaifman: &'a Graph,
    colors: &'a [u32],
    opts: &'a CompileOptions,
    dterms: &'a [DistinctTerm<S>],
    /// `(term index, forest depth)` → analyzed shapes.
    plan_cache: Mutex<FxHashMap<(usize, u8), PlanSet>>,
    /// Leaf guard/program interner backing the instantiation caches.
    leaf_interner: Mutex<LeafInterner>,
}

impl<S: Semiring> Shared<'_, S> {
    fn plans_for(
        &self,
        ti: usize,
        dt: &DistinctTerm<S>,
        depth: u8,
    ) -> Result<PlanSet, CompileError> {
        if let Some(p) = self
            .plan_cache
            .lock()
            .expect("plan cache")
            .get(&(ti, depth))
        {
            return Ok(p.clone());
        }
        // Computed outside the lock: a racing worker may duplicate the
        // work, but the value is deterministic, so either insert wins.
        let shapes = enumerate_shapes(dt.k, depth, &dt.comparability, self.opts.max_shapes).ok_or(
            CompileError::TooManyShapes {
                cap: self.opts.max_shapes,
            },
        )?;
        let plans: Vec<(Shape, ShapePlan)> = shapes
            .into_iter()
            .filter_map(|s| analyze(dt, &s, &self.leaf_interner).map(|p| (s, p)))
            .collect();
        let plans = Arc::new(plans);
        self.plan_cache
            .lock()
            .expect("plan cache")
            .insert((ti, depth), plans.clone());
        Ok(plans)
    }

    /// Whether a tuple's distinct elements are pairwise adjacent in the
    /// Gaifman graph (the invariant Gaifman-preserving updates maintain).
    fn is_clique(&self, tuple: &[Elem]) -> bool {
        for i in 0..tuple.len() {
            for j in i + 1..tuple.len() {
                if tuple[i] != tuple[j] && !self.gaifman.has_edge(tuple[i], tuple[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether some relation of matching arity contains the tuple — the
    /// weight-support condition of Section 3.
    fn on_support(&self, tuple: &[Elem]) -> bool {
        let sig = self.a.signature();
        sig.relation_ids()
            .any(|r| sig.relation_arity(r) == tuple.len() && self.a.holds(r, tuple))
    }
}

/// Mutable gate-emission state: a builder, its slot registry, and scratch
/// buffers. The sequential path uses one; each parallel unit uses its
/// own, merged later.
struct Emit {
    builder: CircuitBuilder,
    slots: SlotRegistry,
    /// One input gate per slot.
    input_cache: FxHashMap<u32, GateId>,
}

impl Emit {
    fn new() -> Self {
        Emit {
            builder: CircuitBuilder::new(),
            slots: SlotRegistry::new(),
            input_cache: FxHashMap::default(),
        }
    }

    fn input(&mut self, key: SlotKey) -> GateId {
        let slot = self.slots.intern(key);
        if let Some(&g) = self.input_cache.get(&slot) {
            return g;
        }
        let g = self.builder.input(slot);
        self.input_cache.insert(slot, g);
        g
    }
}

/// A leaf's cached cell list: (preorder position, gate id) pairs.
type LeafCells = Arc<Vec<(u32, u32)>>;

/// Per-worker instantiation scratch. Replaces the old dense
/// (shape node × preorder position) table that was `memset` for every
/// (surjection, shape) pair — the profiled super-linear re-scan of
/// `AnswerIndex::build` (1.3G cells cleared and 320M nodes scanned at
/// n = 4000 for ~260k final gates).
///
/// * `table`/`table_stamp` — the same dense cell table, but
///   generation-stamped: "clearing" is one counter bump.
/// * `filled` — positions filled per shape node, so internal shape nodes
///   visit only the parents of filled child cells instead of every
///   forest node.
/// * `survivors` — per color set: forest positions passing a leaf's
///   checks, cached per (guard, color) and shared across every
///   surjection, shape, and term of the color set.
/// * `leaf_gates` — per compilation unit: a leaf's (position, cell gate)
///   list per (program, color). Unit-scoped (not color-set-scoped)
///   because gate ids are builder-local, and the parallel compiler gives
///   every (color set, term) unit its own builder — caching wider would
///   break the sequential/parallel byte-identity.
struct InstCtx {
    table: Vec<u32>,
    table_stamp: Vec<u32>,
    stamp: u32,
    filled: Vec<Vec<u32>>,
    cand: Vec<u32>,
    cand_stamp: Vec<u32>,
    cstamp: u32,
    survivors: FxHashMap<(u32, u32), Arc<Vec<u32>>>,
    leaf_gates: FxHashMap<(u32, u32), LeafCells>,
    tuple_buf: Vec<Elem>,
}

impl InstCtx {
    fn new() -> Self {
        InstCtx {
            table: Vec::new(),
            table_stamp: Vec::new(),
            stamp: 0,
            filled: Vec::new(),
            cand: Vec::new(),
            cand_stamp: Vec::new(),
            cstamp: 0,
            survivors: FxHashMap::default(),
            leaf_gates: FxHashMap::default(),
            tuple_buf: Vec::new(),
        }
    }

    /// Enter a new color set: survivor and gate caches are stale.
    fn begin_dset(&mut self) {
        self.survivors.clear();
        self.leaf_gates.clear();
    }

    /// Enter a new (color set, term) unit: gate ids are builder-local.
    fn begin_unit(&mut self) {
        self.leaf_gates.clear();
    }

    /// Start one (surjection, shape) instantiation over `m` positions.
    fn begin_inst(&mut self, shape_len: usize, m: usize) {
        let cells = shape_len * m;
        if self.table.len() < cells {
            self.table.resize(cells, NO_GATE);
            self.table_stamp.resize(cells, 0);
        }
        if self.cand_stamp.len() < m {
            self.cand_stamp.resize(m, 0);
        }
        if self.stamp == u32::MAX {
            self.table_stamp.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
        if self.filled.len() < shape_len {
            self.filled.resize(shape_len, Vec::new());
        }
        for f in &mut self.filled[..shape_len] {
            f.clear();
        }
    }

    fn cell(&self, t: usize, m: usize, pos: usize) -> u32 {
        let i = t * m + pos;
        if self.table_stamp[i] == self.stamp {
            self.table[i]
        } else {
            NO_GATE
        }
    }

    fn set_cell(&mut self, t: usize, m: usize, pos: usize, gate: u32) {
        let i = t * m + pos;
        self.table[i] = gate;
        self.table_stamp[i] = self.stamp;
        self.filled[t].push(pos as u32);
    }
}

/// One term's contribution to one color set, built in a unit-local
/// builder: its gate stream, local slot registry, and the (local ids of)
/// its per-(surjection, shape) top gates.
struct TermUnit {
    ti: usize,
    builder: CircuitBuilder,
    slots: SlotRegistry,
    tops: Vec<GateId>,
}

/// A worker's output for one color set.
struct DsetOut {
    num_subsets: usize,
    shapes_instantiated: usize,
    forest_depth: u32,
    term_units: Vec<TermUnit>,
}

/// Parallel worker body: build the forest of one color set and
/// instantiate every eligible term into its own local builder.
fn process_dset_unit<S: Semiring>(
    shared: &Shared<'_, S>,
    forest: &mut SubForest,
    ctx: &mut InstCtx,
    d_set: &[u32],
    classes: &[Vec<u32>],
    colors: &[u32],
) -> Result<DsetOut, CompileError> {
    forest.build(
        shared.gaifman,
        d_set.iter().map(|&c| classes[c as usize].as_slice()),
        colors,
        d_set,
    );
    if forest.preorder.is_empty() {
        forest.reset();
        return Ok(DsetOut {
            num_subsets: 0,
            shapes_instantiated: 0,
            forest_depth: 0,
            term_units: Vec::new(),
        });
    }
    let depth = forest.max_depth;
    if depth > shared.opts.depth_cap {
        forest.reset();
        return Err(CompileError::DepthCapExceeded {
            depth,
            cap: shared.opts.depth_cap,
        });
    }
    let mut out = DsetOut {
        num_subsets: 1,
        shapes_instantiated: 0,
        forest_depth: depth,
        term_units: Vec::new(),
    };
    ctx.begin_dset();
    for (ti, dt) in shared.dterms.iter().enumerate() {
        if dt.k < d_set.len() || dt.k == 0 {
            continue;
        }
        let mut emit = Emit::new();
        let tops = match instantiate_term(
            shared,
            forest,
            depth as u8,
            d_set,
            ti,
            dt,
            &mut emit,
            ctx,
            &mut out.shapes_instantiated,
        ) {
            Ok(t) => t,
            Err(e) => {
                forest.reset();
                return Err(e);
            }
        };
        out.term_units.push(TermUnit {
            ti,
            builder: emit.builder,
            slots: emit.slots,
            tops,
        });
    }
    forest.reset();
    Ok(out)
}

/// Instantiate one (color set, term) unit into `emit`: every surjective
/// coloring × compatible shape. Returns the non-zero top gates.
#[allow(clippy::too_many_arguments)]
fn instantiate_term<S: Semiring>(
    shared: &Shared<'_, S>,
    forest: &SubForest,
    depth: u8,
    d_set: &[u32],
    ti: usize,
    dt: &DistinctTerm<S>,
    emit: &mut Emit,
    ctx: &mut InstCtx,
    shapes_instantiated: &mut usize,
) -> Result<Vec<GateId>, CompileError> {
    let plans = shared.plans_for(ti, dt, depth)?;
    if plans.is_empty() {
        return Ok(Vec::new());
    }
    ctx.begin_unit();
    let mut c_assign = vec![0u32; dt.k];
    let mut tops: Vec<GateId> = Vec::new();
    surjections(dt.k, d_set, &mut c_assign, 0, &mut |c_assign| {
        for (shape, plan) in plans.iter() {
            if shape.max_depth() as u32 > depth as u32 {
                continue;
            }
            *shapes_instantiated += 1;
            let g = instantiate(shared, emit, ctx, forest, shape, plan, c_assign, d_set);
            if !emit.builder.is_zero(g) {
                tops.push(g);
            }
        }
    });
    Ok(tops)
}

/// Replay one unit's gate stream into the main emitter, re-interning
/// inputs, constants, and slots. Returns the remapped top gates.
///
/// Because a unit-local builder made exactly the peephole decisions the
/// main builder would (structural zero/one status is preserved by the
/// remap), replaying through the ordinary builder API appends exactly the
/// gates the sequential compiler would have appended — this is what makes
/// the parallel output byte-identical.
fn merge_term_unit(emit: &mut Emit, unit: &TermUnit) -> Vec<GateId> {
    let mut map: Vec<GateId> = Vec::with_capacity(unit.builder.len());
    let mut kid_buf: Vec<GateId> = Vec::new();
    for g in unit.builder.gates() {
        let gid = match g {
            GateDef::Input(local_slot) => emit.input(unit.slots.key(*local_slot)),
            GateDef::Const(ConstRef::Zero) => emit.builder.zero(),
            GateDef::Const(ConstRef::One) => emit.builder.one(),
            GateDef::Const(ConstRef::Lit(_)) => {
                unreachable!("literal gates only exist in the main builder")
            }
            GateDef::Add(r) => {
                kid_buf.clear();
                kid_buf.extend(unit.builder.children(*r).iter().map(|c| map[c.0 as usize]));
                emit.builder.add(&kid_buf)
            }
            GateDef::Mul(x, y) => {
                let (x, y) = (map[x.0 as usize], map[y.0 as usize]);
                emit.builder.mul(x, y)
            }
            GateDef::Perm { rows, cols } => {
                let flat: Vec<GateId> = unit
                    .builder
                    .children(*cols)
                    .iter()
                    .map(|c| map[c.0 as usize])
                    .collect();
                emit.builder.perm_flat(*rows as usize, flat)
            }
        };
        map.push(gid);
    }
    unit.tops.iter().map(|g| map[g.0 as usize]).collect()
}

/// The surviving forest positions of a leaf guard under one color: the
/// (depth, color) bucket filtered by the leaf's atom checks and weight
/// support conditions. Computed once per (guard, color) per color set and
/// shared across every surjection, shape, and term — the fix for the
/// super-linear re-scan where every instantiation re-checked every node.
#[allow(clippy::too_many_arguments)]
fn leaf_survivors<S: Semiring>(
    shared: &Shared<'_, S>,
    ctx: &mut InstCtx,
    forest: &SubForest,
    plan: &ShapePlan,
    t: usize,
    depth: usize,
    color: u32,
    d_set: &[u32],
) -> Arc<Vec<u32>> {
    let guard = plan.leaf_guard[t];
    if let Some(s) = ctx.survivors.get(&(guard, color)) {
        return s.clone();
    }
    let local = d_set
        .iter()
        .position(|&c| c == color)
        .expect("surjection colors come from the color set");
    let bucket = forest.bucket(depth, local, d_set.len());
    let mut out: Vec<u32> = Vec::new();
    let mut tuple_buf = std::mem::take(&mut ctx.tuple_buf);
    'nodes: for &pos in bucket {
        let u = forest.preorder[pos as usize];
        for check in &plan.checks[t] {
            resolve_tuple(forest, u, &check.arg_depths, &mut tuple_buf);
            if shared.opts.dynamic_atoms {
                // positive atoms over non-cliques can never hold; negative
                // ones hold vacuously (no input gate will be read)
                if check.positive && !shared.is_clique(&tuple_buf) {
                    continue 'nodes;
                }
            } else if shared.a.holds(check.rel, &tuple_buf) != check.positive {
                continue 'nodes;
            }
        }
        for read in &plan.reads[t] {
            if let WeightRead::Decl(_, depths) = read {
                if depths.len() >= 2 {
                    resolve_tuple(forest, u, depths, &mut tuple_buf);
                    let ok = if shared.opts.dynamic_atoms {
                        shared.is_clique(&tuple_buf)
                    } else {
                        shared.on_support(&tuple_buf)
                    };
                    if !ok {
                        continue 'nodes; // weight structurally zero
                    }
                }
            }
        }
        out.push(pos);
    }
    ctx.tuple_buf = tuple_buf;
    let out = Arc::new(out);
    ctx.survivors.insert((guard, color), out.clone());
    out
}

/// The (position, cell gate) list of a leaf program under one color,
/// cached per compilation unit: survivors never change within a color
/// set, and the factor gates a survivor produces are determined by
/// (program, node) alone — surjections only move which *bucket* a leaf
/// reads, so one list serves every (surjection, shape) pair of the unit.
#[allow(clippy::too_many_arguments)]
fn leaf_cells<S: Semiring>(
    shared: &Shared<'_, S>,
    emit: &mut Emit,
    ctx: &mut InstCtx,
    forest: &SubForest,
    plan: &ShapePlan,
    t: usize,
    depth: usize,
    color: u32,
    d_set: &[u32],
) -> LeafCells {
    let prog = plan.leaf_prog[t];
    if let Some(g) = ctx.leaf_gates.get(&(prog, color)) {
        return g.clone();
    }
    let survivors = leaf_survivors(shared, ctx, forest, plan, t, depth, color, d_set);
    let mut tuple_buf = std::mem::take(&mut ctx.tuple_buf);
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(survivors.len());
    for &pos in survivors.iter() {
        let u = forest.preorder[pos as usize];
        // Leaf cell = product of the node's factors (no child permanent).
        // Factor order matches the general instantiation path: checks
        // (dynamic mode only), then reads.
        let mut gate = emit.builder.one();
        if shared.opts.dynamic_atoms {
            for check in &plan.checks[t] {
                resolve_tuple(forest, u, &check.arg_depths, &mut tuple_buf);
                if !shared.is_clique(&tuple_buf) {
                    continue; // negative atom, vacuously true (see survivors)
                }
                let key = if check.positive {
                    SlotKey::AtomPos(check.rel, Tuple::new(&tuple_buf))
                } else {
                    SlotKey::AtomNeg(check.rel, Tuple::new(&tuple_buf))
                };
                let f = emit.input(key);
                gate = emit.builder.mul(gate, f);
            }
        }
        for read in &plan.reads[t] {
            let f = match read {
                WeightRead::Decl(w, depths) => {
                    resolve_tuple(forest, u, depths, &mut tuple_buf);
                    emit.input(SlotKey::Weight(*w, Tuple::new(&tuple_buf)))
                }
                WeightRead::Free(qpos) => emit.input(SlotKey::FreeVar(*qpos, u)),
            };
            gate = emit.builder.mul(gate, f);
        }
        out.push((pos, gate.0));
    }
    ctx.tuple_buf = tuple_buf;
    let out = Arc::new(out);
    ctx.leaf_gates.insert((prog, color), out.clone());
    out
}

/// The Lemma 29 recursion, bottom-up over the forest: a gate for every
/// (shape subtree, matching-depth forest node), permanent gates over the
/// forest children, and a top permanent over (shape roots × forest roots).
///
/// Leaf shape nodes are driven by the forest's (depth, color) buckets
/// through the [`InstCtx`] survivor/gate caches; internal shape nodes
/// visit only the parents of filled child cells. Per instantiation the
/// work is proportional to the cells that exist, not to the forest.
#[allow(clippy::too_many_arguments)]
fn instantiate<S: Semiring>(
    shared: &Shared<'_, S>,
    emit: &mut Emit,
    ctx: &mut InstCtx,
    forest: &SubForest,
    shape: &Shape,
    plan: &ShapePlan,
    c_assign: &[u32],
    d_set: &[u32],
) -> GateId {
    let m = forest.preorder.len();
    ctx.begin_inst(shape.len(), m);

    for d in (0..plan.nodes_by_depth.len()).rev() {
        for ni in 0..plan.nodes_by_depth[d].len() {
            let t = plan.nodes_by_depth[d][ni] as usize;
            let kids = &plan.children[t];
            if kids.is_empty() {
                // Leaf: pull the cached (position, gate) list.
                let var = shape.var_at[t].expect("leaves carry a variable");
                let color = c_assign[var as usize];
                let cells = leaf_cells(shared, emit, ctx, forest, plan, t, d, color, d_set);
                for &(pos, gate) in cells.iter() {
                    ctx.set_cell(t, m, pos as usize, gate);
                }
                continue;
            }

            // Internal node: candidate forest nodes are the parents of
            // positions filled for some child (dedup via stamps). The
            // candidate order is deterministic — child lists and their
            // fill order are.
            if ctx.cstamp == u32::MAX {
                ctx.cand_stamp.fill(0);
                ctx.cstamp = 0;
            }
            ctx.cstamp += 1;
            ctx.cand.clear();
            for &ct in kids {
                for fi in 0..ctx.filled[ct as usize].len() {
                    let cpos = ctx.filled[ct as usize][fi];
                    let cnode = forest.preorder[cpos as usize];
                    let parent = forest.parent[cnode as usize];
                    if parent == cnode {
                        continue; // forest root: no parent cell
                    }
                    let ppos = forest.pos[parent as usize];
                    if ctx.cand_stamp[ppos as usize] != ctx.cstamp {
                        ctx.cand_stamp[ppos as usize] = ctx.cstamp;
                        ctx.cand.push(ppos);
                    }
                }
            }

            let mut cand = std::mem::take(&mut ctx.cand);
            let mut tuple_buf = std::mem::take(&mut ctx.tuple_buf);
            'nodes: for &upos in &cand {
                let u = forest.preorder[upos as usize];
                debug_assert_eq!(forest.depth[u as usize] as usize, d);
                // color requirement at variable nodes
                if let Some(var) = shape.var_at[t] {
                    if shared.colors[u as usize] != c_assign[var as usize] {
                        continue 'nodes;
                    }
                }
                let mut factors: Vec<GateId> = Vec::new();
                // atoms decided at this node
                for check in &plan.checks[t] {
                    resolve_tuple(forest, u, &check.arg_depths, &mut tuple_buf);
                    if shared.opts.dynamic_atoms {
                        if !shared.is_clique(&tuple_buf) {
                            if check.positive {
                                continue 'nodes; // can never hold
                            }
                            continue; // ¬R always true here
                        }
                        let key = if check.positive {
                            SlotKey::AtomPos(check.rel, Tuple::new(&tuple_buf))
                        } else {
                            SlotKey::AtomNeg(check.rel, Tuple::new(&tuple_buf))
                        };
                        factors.push(emit.input(key));
                    } else if shared.a.holds(check.rel, &tuple_buf) != check.positive {
                        continue 'nodes;
                    }
                }
                // weight and indicator reads
                for read in &plan.reads[t] {
                    match read {
                        WeightRead::Decl(w, depths) => {
                            resolve_tuple(forest, u, depths, &mut tuple_buf);
                            if tuple_buf.len() >= 2 {
                                let ok = if shared.opts.dynamic_atoms {
                                    shared.is_clique(&tuple_buf)
                                } else {
                                    shared.on_support(&tuple_buf)
                                };
                                if !ok {
                                    continue 'nodes; // weight structurally zero
                                }
                            }
                            factors.push(emit.input(SlotKey::Weight(*w, Tuple::new(&tuple_buf))));
                        }
                        WeightRead::Free(qpos) => {
                            factors.push(emit.input(SlotKey::FreeVar(*qpos, u)));
                        }
                    }
                }
                // permanent over (child subtrees × forest children)
                let rows = kids.len();
                let mut flat: Vec<GateId> = Vec::new();
                for &child in forest.children[u as usize].iter() {
                    let cpos = forest.pos[child as usize] as usize;
                    // prune all-zero columns before touching the builder
                    if kids
                        .iter()
                        .all(|&ct| ctx.cell(ct as usize, m, cpos) == NO_GATE)
                    {
                        continue;
                    }
                    for &ct in kids {
                        let cell = ctx.cell(ct as usize, m, cpos);
                        flat.push(if cell == NO_GATE {
                            emit.builder.zero()
                        } else {
                            GateId(cell)
                        });
                    }
                }
                let mut gate = emit.builder.perm_flat(rows, flat);
                if emit.builder.is_zero(gate) {
                    continue 'nodes;
                }
                for f in factors {
                    gate = emit.builder.mul(gate, f);
                }
                if !emit.builder.is_zero(gate) {
                    ctx.set_cell(t, m, upos as usize, gate.0);
                }
            }
            ctx.tuple_buf = tuple_buf;
            cand.clear();
            ctx.cand = cand;
        }
    }

    // top level: shape roots over forest roots
    let rows = plan.roots.len();
    let mut flat: Vec<GateId> = Vec::new();
    for &root in &forest.roots {
        let rpos = forest.pos[root as usize] as usize;
        if plan
            .roots
            .iter()
            .all(|&rt| ctx.cell(rt as usize, m, rpos) == NO_GATE)
        {
            continue;
        }
        for &rt in &plan.roots {
            let cell = ctx.cell(rt as usize, m, rpos);
            flat.push(if cell == NO_GATE {
                emit.builder.zero()
            } else {
                GateId(cell)
            });
        }
    }
    emit.builder.perm_flat(rows, flat)
}

fn resolve_tuple(forest: &SubForest, u: u32, depths: &[u8], out: &mut Vec<Elem>) {
    out.clear();
    for &d in depths {
        out.push(forest.ancestor_at(u, d as u32));
    }
}

// ---------------------------------------------------------------------
// Reusable per-color-set DFS forest.
// ---------------------------------------------------------------------

/// DFS spanning forest of the subgraph induced by a set of color classes,
/// with buffers reused across color sets (resetting only touched nodes,
/// so one pass over a color set costs `O(|A_D| + edges(A_D))`, not `O(n)`).
struct SubForest {
    parent: Vec<u32>,
    depth: Vec<u32>,
    active: Vec<bool>,
    visited: Vec<bool>,
    children: Vec<Vec<u32>>,
    preorder: Vec<u32>,
    /// Position of each node in `preorder` (dense-table index).
    pos: Vec<u32>,
    roots: Vec<u32>,
    max_depth: u32,
    /// Preorder positions bucketed by `depth * |D| + local color index`
    /// (pooled `Vec`s, cleared on reset). Leaf shape nodes draw their
    /// candidates from here instead of scanning the preorder.
    buckets: Vec<Vec<u32>>,
    buckets_used: usize,
}

impl SubForest {
    fn new(n: usize) -> Self {
        SubForest {
            parent: (0..n as u32).collect(),
            depth: vec![0; n],
            active: vec![false; n],
            visited: vec![false; n],
            children: vec![Vec::new(); n],
            preorder: Vec::new(),
            pos: vec![0; n],
            roots: Vec::new(),
            max_depth: 0,
            buckets: Vec::new(),
            buckets_used: 0,
        }
    }

    /// Candidate positions for a leaf at `depth` colored with the
    /// `local`-th color of the color set.
    fn bucket(&self, depth: usize, local: usize, dlen: usize) -> &[u32] {
        let idx = depth * dlen + local;
        if idx < self.buckets_used {
            &self.buckets[idx]
        } else {
            &[]
        }
    }

    fn build<'b>(
        &mut self,
        g: &Graph,
        classes: impl Iterator<Item = &'b [u32]>,
        colors: &[u32],
        d_set: &[u32],
    ) {
        debug_assert!(self.preorder.is_empty(), "reset before rebuild");
        let mut members: Vec<u32> = Vec::new();
        for class in classes {
            for &v in class {
                self.active[v as usize] = true;
            }
            members.extend_from_slice(class);
        }
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for &start in &members {
            if self.visited[start as usize] {
                continue;
            }
            self.visited[start as usize] = true;
            self.parent[start as usize] = start;
            self.depth[start as usize] = 0;
            self.roots.push(start);
            self.pos[start as usize] = self.preorder.len() as u32;
            self.preorder.push(start);
            stack.push((start, 0));
            while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
                let nbrs = g.neighbors(v);
                let mut advanced = false;
                while *idx < nbrs.len() {
                    let w = nbrs[*idx];
                    *idx += 1;
                    if self.active[w as usize] && !self.visited[w as usize] {
                        self.visited[w as usize] = true;
                        self.parent[w as usize] = v;
                        self.depth[w as usize] = self.depth[v as usize] + 1;
                        self.max_depth = self.max_depth.max(self.depth[w as usize]);
                        self.children[v as usize].push(w);
                        self.pos[w as usize] = self.preorder.len() as u32;
                        self.preorder.push(w);
                        stack.push((w, 0));
                        advanced = true;
                        break;
                    }
                }
                if !advanced {
                    stack.pop();
                }
            }
        }
        // (depth, color) buckets over the finished preorder
        let dlen = d_set.len();
        let need = (self.max_depth as usize + 1) * dlen;
        if self.buckets.len() < need {
            self.buckets.resize_with(need, Vec::new);
        }
        self.buckets_used = need;
        for (pos, &v) in self.preorder.iter().enumerate() {
            let local = d_set
                .iter()
                .position(|&c| c == colors[v as usize])
                .expect("forest node colored outside its color set");
            self.buckets[self.depth[v as usize] as usize * dlen + local].push(pos as u32);
        }
    }

    fn reset(&mut self) {
        for &v in &self.preorder {
            self.parent[v as usize] = v;
            self.depth[v as usize] = 0;
            self.active[v as usize] = false;
            self.visited[v as usize] = false;
            self.children[v as usize].clear();
        }
        self.preorder.clear();
        self.roots.clear();
        self.max_depth = 0;
        for b in &mut self.buckets[..self.buckets_used] {
            b.clear();
        }
        self.buckets_used = 0;
    }

    /// Ancestor of `u` at absolute depth `d ≤ depth(u)`.
    fn ancestor_at(&self, u: u32, d: u32) -> u32 {
        let mut cur = u;
        let mut cd = self.depth[u as usize];
        debug_assert!(d <= cd);
        while cd > d {
            cur = self.parent[cur as usize];
            cd -= 1;
        }
        cur
    }
}
