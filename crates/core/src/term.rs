//! Distinctness expansion: from [`SumTerm`]s to terms whose variables
//! denote pairwise *distinct* elements.
//!
//! Lemma 32 multiplies each term by the partitions of unity
//! `[x = y] + [x ≠ y]` and expands; equivalently, a term is split over all
//! set partitions of its variables, merging each block into one variable.
//! After this step shapes can place every variable at its own node.

use agq_logic::{Lit, SumTerm, Var};
use agq_perm::partitions::set_partitions;
use agq_semiring::Semiring;
use agq_structure::{RelId, WeightId};

/// A sum term whose variables (numbered `0..k`) denote pairwise distinct
/// elements. Produced by [`expand_distinct`].
#[derive(Clone, Debug)]
pub struct DistinctTerm<S> {
    /// Constant multiplier.
    pub coeff: S,
    /// Number of variables.
    pub k: usize,
    /// Relational literals; `args` index variables and may repeat after
    /// merging.
    pub rel_lits: Vec<RelLit>,
    /// Declared weight factors.
    pub weights: Vec<(WeightId, Vec<u8>)>,
    /// Free-variable indicator factors: `(query position, variable)` —
    /// the `v_i` weights of Theorem 8's querying trick. Several positions
    /// may share one variable (merged free variables).
    pub free_reads: Vec<(u8, u8)>,
    /// Variable pairs that must be ancestor-comparable in any shape
    /// (linked by a positive atom or a weight factor).
    pub comparability: Vec<(u8, u8)>,
}

/// A relational literal over distinct-term variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelLit {
    /// Relation symbol.
    pub rel: RelId,
    /// Argument variables (indices into `0..k`).
    pub args: Vec<u8>,
    /// Polarity.
    pub positive: bool,
}

/// Expand one normalized sum term over all variable partitions consistent
/// with its (in)equality literals. `free_order` fixes the query-tuple
/// positions of the free variables.
pub fn expand_distinct<S: Semiring>(term: &SumTerm<S>, free_order: &[Var]) -> Vec<DistinctTerm<S>> {
    // All variables of the term: summed ∪ free, in a fixed order.
    let mut vars: Vec<Var> = term.sum_vars.clone();
    for v in term.free_vars() {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars.sort_unstable();
    let m = vars.len();
    assert!(m <= 8, "more than 8 variables in one term");
    let index_of = |v: Var| vars.iter().position(|&w| w == v).unwrap() as u8;

    let mut out = Vec::new();
    'partition: for p in set_partitions(m) {
        // block id per variable
        let mut block_of = vec![0u8; m];
        for (bi, &mask) in p.blocks.iter().enumerate() {
            for (v, b) in block_of.iter_mut().enumerate() {
                if mask >> v & 1 == 1 {
                    *b = bi as u8;
                }
            }
        }
        // consistency with the term's equality literals
        for l in &term.lits {
            if let Lit::Eq { a, b, positive } = l {
                let same = block_of[index_of(*a) as usize] == block_of[index_of(*b) as usize];
                if same != *positive {
                    continue 'partition;
                }
            }
        }
        let mut dt = DistinctTerm {
            coeff: term.coeff.clone(),
            k: p.blocks.len(),
            rel_lits: Vec::new(),
            weights: Vec::new(),
            free_reads: Vec::new(),
            comparability: Vec::new(),
        };
        for l in &term.lits {
            if let Lit::Rel {
                rel,
                args,
                positive,
            } = l
            {
                let args: Vec<u8> = args
                    .iter()
                    .map(|v| block_of[index_of(*v) as usize])
                    .collect();
                if *positive {
                    link_all(&mut dt.comparability, &args);
                }
                dt.rel_lits.push(RelLit {
                    rel: *rel,
                    args,
                    positive: *positive,
                });
            }
        }
        for (w, args) in &term.weights {
            let args: Vec<u8> = args
                .iter()
                .map(|v| block_of[index_of(*v) as usize])
                .collect();
            link_all(&mut dt.comparability, &args);
            dt.weights.push((*w, args));
        }
        for (pos, fv) in free_order.iter().enumerate() {
            // a free variable of the query may be absent from this term;
            // then the term does not constrain that position, which is
            // wrong — the engine must still see a v_pos factor so that
            // querying (a_1..a_r) selects tuples. Terms not mentioning a
            // free variable simply never arise from `normalize` (free
            // vars of the normal form are per-term), so only attach
            // factors for variables this term mentions.
            if let Some(vi) = vars.iter().position(|&w| w == *fv) {
                dt.free_reads.push((pos as u8, block_of[vi]));
            }
        }
        // Deduplicate comparability pairs.
        dt.comparability.sort_unstable();
        dt.comparability.dedup();
        out.push(dt);
    }
    out
}

fn link_all(pairs: &mut Vec<(u8, u8)>, args: &[u8]) {
    for i in 0..args.len() {
        for j in i + 1..args.len() {
            let (a, b) = (args[i].min(args[j]), args[i].max(args[j]));
            if a != b {
                pairs.push((a, b));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_semiring::Nat;

    fn term_two_vars() -> SumTerm<Nat> {
        SumTerm {
            coeff: Nat(1),
            sum_vars: vec![Var(0), Var(1)],
            lits: vec![Lit::Rel {
                rel: RelId(0),
                args: vec![Var(0), Var(1)],
                positive: true,
            }],
            weights: vec![(WeightId(0), vec![Var(0)])],
        }
    }

    #[test]
    fn two_vars_give_two_partitions() {
        let dts = expand_distinct(&term_two_vars(), &[]);
        assert_eq!(dts.len(), 2);
        let merged = dts.iter().find(|d| d.k == 1).unwrap();
        assert_eq!(merged.rel_lits[0].args, vec![0, 0]);
        let split = dts.iter().find(|d| d.k == 2).unwrap();
        assert_eq!(split.comparability, vec![(0, 1)]);
    }

    #[test]
    fn neq_literal_blocks_merge() {
        let mut t = term_two_vars();
        t.lits.push(Lit::Eq {
            a: Var(0),
            b: Var(1),
            positive: false,
        });
        let dts = expand_distinct(&t, &[]);
        assert_eq!(dts.len(), 1);
        assert_eq!(dts[0].k, 2);
        // the ≠ literal itself is consumed by the expansion
        assert_eq!(dts[0].rel_lits.len(), 1);
    }

    #[test]
    fn free_vars_get_indicator_reads() {
        // Σ_x [E(x,z)] with z free
        let t = SumTerm::<Nat> {
            coeff: Nat(1),
            sum_vars: vec![Var(0)],
            lits: vec![Lit::Rel {
                rel: RelId(0),
                args: vec![Var(0), Var(2)],
                positive: true,
            }],
            weights: vec![],
        };
        let dts = expand_distinct(&t, &[Var(2)]);
        assert_eq!(dts.len(), 2);
        for dt in &dts {
            assert_eq!(dt.free_reads.len(), 1);
            assert_eq!(dt.free_reads[0].0, 0, "query position 0");
        }
    }
}
