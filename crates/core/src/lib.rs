//! The Theorem 6 compiler and Theorem 8 evaluator: system **S7**, the
//! paper's primary contribution.
//!
//! Given a weighted `Σ(w)`-expression `f` and a structure `A` whose
//! Gaifman graph comes from a class of bounded expansion, [`compile`]
//! produces a circuit with permanent gates that evaluates `f_A(w)` for
//! *any* weight assignment, in any semiring — Theorem 6. The circuit has
//! size `O_{f,C}(|A|)`, bounded depth, bounded fan-out, and a bounded
//! number of permanent rows; all of these are measured by
//! [`agq_circuit::CircuitStats`] and checked in the experiment suite.
//!
//! The pipeline (Section A of the paper's appendix, engineered as
//! described in `DESIGN.md`):
//!
//! 1. **Normalization** (Lemma 28, in `agq-logic`): the expression becomes
//!    a combination of sum terms `c · Σ_x̄ Π[lit] · Πw(x̄)`.
//! 2. **Guarded quantifier elimination** ([`eliminate_quantifiers`]):
//!    quantified subformulas with ≤ 1 free variable are materialized as
//!    fresh unary predicates using the Boolean-semiring evaluator — our
//!    documented substitute for the imported Theorem 3.
//! 3. **Distinctness expansion**: each term is split over partitions of
//!    its variables (the `[x=y] + [x≠y]` partition of unity of Lemma 32),
//!    leaving terms whose variables denote pairwise distinct elements.
//! 4. **Low-treedepth coloring** (Proposition 1, in `agq-graph`) and the
//!    color-set decomposition `f = Σ_{D, c surjective} f_{D,c}`
//!    (identity (12)–(13)).
//! 5. **Shapes** (Lemma 32): ancestor-merge patterns of the variables in
//!    a DFS forest of `G[D]`. Every atom of a term is *decided against the
//!    shape*: a DFS forest makes all Gaifman-adjacent pairs
//!    ancestor-comparable, so an atom either contradicts the shape
//!    (incomparable positive atom ⇒ prune), holds vacuously
//!    (incomparable negative atom), or becomes a lookup at one forest
//!    node and its ancestors. This replaces the paper's Lemma 37
//!    rewriting without changing the computed function.
//! 6. **Circuit instantiation** (Lemma 29 / Claim 1): one permanent gate
//!    per (shape subtree, forest node), columns indexed by forest
//!    children, recursively — the inductive `f = Σ_β Π_r λ_r(β(r)) ·
//!    f^r_{A_{β(r)}}` of the paper.
//!
//! [`QueryEngine`] wraps the compiled circuit with the dynamic evaluator
//! of Theorem 8: free-variable queries by the `v_i`-weight trick,
//! `O(log |A|)` updates for general semirings, `O(1)` for rings and
//! finite semirings.

mod batch;
mod compile;
mod engine;
pub mod fault;
mod qe;
mod shape;
mod slots;
mod term;

pub use batch::{coalesce_updates, FxBuildHasher, FxHashSet, FxHasher};
pub use compile::{compile, CompileOptions, CompileReport, CompiledQuery};
pub use engine::{
    DurabilityPolicy, FiniteEngine, GeneralEngine, PartsError, QueryEngine, RingEngine,
    TupleUpdate, WalFailure, WalSink,
};
pub use qe::eliminate_quantifiers;
pub use shape::{enumerate_shapes, Shape};
pub use slots::{SlotKey, SlotRegistry};
pub use term::DistinctTerm;

use std::fmt;

/// Errors surfaced by compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The DFS forest of some color set is deeper than
    /// [`CompileOptions::depth_cap`]: the input is outside the sparsity
    /// regime the theory promises (or the coloring was unlucky).
    DepthCapExceeded {
        /// The offending depth.
        depth: u32,
        /// The configured cap.
        cap: u32,
    },
    /// Shape enumeration exceeded [`CompileOptions::max_shapes`].
    TooManyShapes {
        /// The configured cap.
        cap: usize,
    },
    /// A quantified subformula could not be eliminated: it has more than
    /// one free variable (outside the guarded fragment we support in
    /// place of the imported Theorem 3).
    UnsupportedQuantifier {
        /// Rendering of the offending subformula.
        formula: String,
    },
    /// Expression normalization failed.
    Normalize(agq_logic::NormalizeError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::DepthCapExceeded { depth, cap } => write!(
                f,
                "DFS forest depth {depth} exceeds the cap {cap}: input is \
                 not sparse enough for the configured class parameters"
            ),
            CompileError::TooManyShapes { cap } => {
                write!(f, "shape enumeration exceeded the cap of {cap} shapes")
            }
            CompileError::UnsupportedQuantifier { formula } => write!(
                f,
                "cannot eliminate quantifier with ≥2 free variables: {formula}"
            ),
            CompileError::Normalize(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<agq_logic::NormalizeError> for CompileError {
    fn from(e: agq_logic::NormalizeError) -> Self {
        CompileError::Normalize(e)
    }
}
