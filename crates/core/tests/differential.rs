//! Differential tests: the full compile → circuit → dynamic-evaluate
//! pipeline (Theorems 6 + 8) against brute-force semantics, across
//! semirings, structures, and update sequences.

use agq_core::{compile, CompileOptions, FiniteEngine, GeneralEngine, RingEngine};
use agq_logic::{normalize, Expr, Formula, Var};
use agq_semiring::{Bool, Int, MinPlus, Nat};
use agq_structure::{Signature, Structure, WeightedStructure};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A random sparse directed graph structure with unary weight `w` and
/// binary weight `c` (cost on edges).
fn random_graph(n: usize, m: usize, seed: u64) -> Arc<Structure> {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    sig.add_weight("w", 1);
    sig.add_weight("u", 1);
    sig.add_weight("c", 2);
    let mut a = Structure::new(Arc::new(sig), n);
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..m {
        let x = rng.gen_range(0..n as u32);
        let y = rng.gen_range(0..n as u32);
        if x != y {
            a.insert(e, &[x, y]);
        }
    }
    Arc::new(a)
}

fn nat_weights(a: &Arc<Structure>, seed: u64) -> WeightedStructure<Nat> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let sig = a.signature().clone();
    let mut w = WeightedStructure::new(a.clone());
    let wu = sig.weight("w").unwrap();
    let uu = sig.weight("u").unwrap();
    let c = sig.weight("c").unwrap();
    for i in 0..a.domain_size() as u32 {
        w.set(wu, &[i], Nat(rng.gen_range(0..4)));
        w.set(uu, &[i], Nat(rng.gen_range(0..4)));
    }
    let e = sig.relation("E").unwrap();
    let tuples: Vec<_> = a.relation(e).iter().cloned().collect();
    for t in tuples {
        w.set(c, t.as_slice(), Nat(rng.gen_range(0..4)));
    }
    w
}

fn check_closed_nat(expr: &Expr<Nat>, a: &Arc<Structure>, seed: u64) {
    let w = nat_weights(a, seed);
    let nf = normalize(expr).unwrap();
    let compiled = compile(a, &nf, &CompileOptions::default()).unwrap();
    let engine: GeneralEngine<Nat> = GeneralEngine::new(compiled, &w);
    let expect = agq_baseline::eval_closed(expr, &w);
    assert_eq!(*engine.value(), expect);
}

#[test]
fn edge_count() {
    let e_expr = |a: &Arc<Structure>| -> Expr<Nat> {
        let e = a.signature().relation("E").unwrap();
        Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)])).sum_over([Var(0), Var(1)])
    };
    for seed in 0..5 {
        let a = random_graph(20, 30, seed);
        check_closed_nat(&e_expr(&a), &a, seed + 100);
    }
}

#[test]
fn self_loops_count() {
    // Σ_x [E(x,x)] — exercises merged variables / diagonal tuples.
    let a = {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        sig.add_weight("w", 1);
        sig.add_weight("u", 1);
        sig.add_weight("c", 2);
        let mut s = Structure::new(Arc::new(sig), 6);
        s.insert(e, &[0, 0]);
        s.insert(e, &[2, 2]);
        s.insert(e, &[1, 2]);
        Arc::new(s)
    };
    let e = a.signature().relation("E").unwrap();
    let expr: Expr<Nat> = Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(0)])).sum_over([Var(0)]);
    check_closed_nat(&expr, &a, 1);
}

#[test]
fn diagonal_via_equality() {
    // Σ_{x,y} [E(x,y) ∧ x=y] must equal the self-loop count.
    let a = random_graph(15, 40, 3);
    let e = a.signature().relation("E").unwrap();
    let f = Formula::Rel(e, vec![Var(0), Var(1)]).and(Formula::Eq(Var(0), Var(1)));
    let expr: Expr<Nat> = Expr::Bracket(f).sum_over([Var(0), Var(1)]);
    check_closed_nat(&expr, &a, 4);
}

#[test]
fn triangle_count() {
    for seed in 0..4 {
        let a = random_graph(14, 40, seed);
        let e = a.signature().relation("E").unwrap();
        let f = Formula::Rel(e, vec![Var(0), Var(1)])
            .and(Formula::Rel(e, vec![Var(1), Var(2)]))
            .and(Formula::Rel(e, vec![Var(2), Var(0)]));
        let expr: Expr<Nat> = Expr::Bracket(f).sum_over([Var(0), Var(1), Var(2)]);
        check_closed_nat(&expr, &a, seed + 7);
    }
}

#[test]
fn weighted_triangles_bag_semantics() {
    // The introduction's query: Σ [E∧E∧E] · c(x,y)·c(y,z)·c(z,x).
    for seed in 0..3 {
        let a = random_graph(12, 36, seed + 20);
        let sig = a.signature().clone();
        let e = sig.relation("E").unwrap();
        let c = sig.weight("c").unwrap();
        let f = Formula::Rel(e, vec![Var(0), Var(1)])
            .and(Formula::Rel(e, vec![Var(1), Var(2)]))
            .and(Formula::Rel(e, vec![Var(2), Var(0)]));
        let expr: Expr<Nat> = Expr::Mul(vec![
            Expr::Bracket(f),
            Expr::Weight(c, vec![Var(0), Var(1)]),
            Expr::Weight(c, vec![Var(1), Var(2)]),
            Expr::Weight(c, vec![Var(2), Var(0)]),
        ])
        .sum_over([Var(0), Var(1), Var(2)]);
        check_closed_nat(&expr, &a, seed + 60);
    }
}

#[test]
fn non_adjacent_pairs_negative_atoms() {
    // Σ_{x,y} [¬E(x,y) ∧ x≠y] · w(x)·u(y): exercises incomparable shapes
    // and vacuous negative atoms.
    for seed in 0..3 {
        let a = random_graph(12, 20, seed + 40);
        let sig = a.signature().clone();
        let e = sig.relation("E").unwrap();
        let w = sig.weight("w").unwrap();
        let u = sig.weight("u").unwrap();
        let f = Formula::Rel(e, vec![Var(0), Var(1)])
            .not()
            .and(Formula::neq(Var(0), Var(1)));
        let expr: Expr<Nat> = Expr::Mul(vec![
            Expr::Bracket(f),
            Expr::Weight(w, vec![Var(0)]),
            Expr::Weight(u, vec![Var(1)]),
        ])
        .sum_over([Var(0), Var(1)]);
        check_closed_nat(&expr, &a, seed + 80);
    }
}

#[test]
fn disjunction_and_coefficients() {
    // 3·Σ[E(x,y) ∨ E(y,x)] + 5
    let a = random_graph(13, 26, 9);
    let e = a.signature().relation("E").unwrap();
    let f = Formula::Rel(e, vec![Var(0), Var(1)]).or(Formula::Rel(e, vec![Var(1), Var(0)]));
    let expr: Expr<Nat> = Expr::Const(Nat(3))
        .times(Expr::Bracket(f).sum_over([Var(0), Var(1)]))
        .plus(Expr::Const(Nat(5)));
    check_closed_nat(&expr, &a, 10);
}

#[test]
fn product_of_aggregates() {
    // (Σ_x w(x)) · (Σ_y [E(y,y)]) — top-level multiplication of sums.
    let a = random_graph(10, 25, 31);
    let sig = a.signature().clone();
    let e = sig.relation("E").unwrap();
    let w = sig.weight("w").unwrap();
    let expr: Expr<Nat> = Expr::Weight(w, vec![Var(0)])
        .sum_over([Var(0)])
        .times(Expr::Bracket(Formula::Rel(e, vec![Var(1), Var(1)])).sum_over([Var(1)]));
    check_closed_nat(&expr, &a, 32);
}

#[test]
fn min_cost_triangle_tropical() {
    for seed in 0..3 {
        let a = random_graph(12, 40, seed + 55);
        let sig = a.signature().clone();
        let e = sig.relation("E").unwrap();
        let c = sig.weight("c").unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut w: WeightedStructure<MinPlus> = WeightedStructure::new(a.clone());
        let tuples: Vec<_> = a.relation(e).iter().cloned().collect();
        for t in &tuples {
            w.set(c, t.as_slice(), MinPlus(rng.gen_range(1..30)));
        }
        let f = Formula::Rel(e, vec![Var(0), Var(1)])
            .and(Formula::Rel(e, vec![Var(1), Var(2)]))
            .and(Formula::Rel(e, vec![Var(2), Var(0)]));
        let expr: Expr<MinPlus> = Expr::Mul(vec![
            Expr::Bracket(f),
            Expr::Weight(c, vec![Var(0), Var(1)]),
            Expr::Weight(c, vec![Var(1), Var(2)]),
            Expr::Weight(c, vec![Var(2), Var(0)]),
        ])
        .sum_over([Var(0), Var(1), Var(2)]);
        let nf = normalize(&expr).unwrap();
        let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
        let engine: GeneralEngine<MinPlus> = GeneralEngine::new(compiled, &w);
        assert_eq!(*engine.value(), agq_baseline::eval_closed(&expr, &w));
    }
}

#[test]
fn free_variable_queries() {
    // f(z) = Σ_x [E(x,z)] · w(x): query every element.
    for seed in 0..3 {
        let a = random_graph(16, 30, seed + 70);
        let sig = a.signature().clone();
        let e = sig.relation("E").unwrap();
        let wsym = sig.weight("w").unwrap();
        let expr: Expr<Nat> = Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)]))
            .times(Expr::Weight(wsym, vec![Var(0)]))
            .sum_over([Var(0)]);
        let w = nat_weights(&a, seed + 71);
        let nf = normalize(&expr).unwrap();
        let free = nf.free_vars();
        assert_eq!(free, vec![Var(1)]);
        let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
        let mut engine: GeneralEngine<Nat> = GeneralEngine::new(compiled, &w);
        for z in 0..a.domain_size() as u32 {
            let got = engine.query(&[z]);
            let expect = agq_baseline::eval_at(&expr, &w, &free, &[z]);
            assert_eq!(got, expect, "z={z} seed={seed}");
        }
    }
}

#[test]
fn two_free_variables() {
    // f(x,y) = [E(x,y)]·w(x) + [E(y,x)]·u(y)
    let a = random_graph(12, 28, 91);
    let sig = a.signature().clone();
    let e = sig.relation("E").unwrap();
    let wsym = sig.weight("w").unwrap();
    let usym = sig.weight("u").unwrap();
    let expr: Expr<Nat> = Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)]))
        .times(Expr::Weight(wsym, vec![Var(0)]))
        .plus(
            Expr::Bracket(Formula::Rel(e, vec![Var(1), Var(0)]))
                .times(Expr::Weight(usym, vec![Var(1)])),
        );
    let w = nat_weights(&a, 92);
    let nf = normalize(&expr).unwrap();
    let free = nf.free_vars();
    assert_eq!(free.len(), 2);
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let mut engine: GeneralEngine<Nat> = GeneralEngine::new(compiled, &w);
    for x in 0..12u32 {
        for y in 0..12u32 {
            let got = engine.query(&[x, y]);
            let expect = agq_baseline::eval_at(&expr, &w, &free, &[x, y]);
            assert_eq!(got, expect, "({x},{y})");
        }
    }
}

#[test]
fn dynamic_weight_updates_ring() {
    // Int semiring, constant-time engine; random update sequence.
    let a = random_graph(14, 30, 5);
    let sig = a.signature().clone();
    let e = sig.relation("E").unwrap();
    let wsym = sig.weight("w").unwrap();
    let expr: Expr<Int> = Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)]))
        .times(Expr::Weight(wsym, vec![Var(0)]))
        .times(Expr::Weight(wsym, vec![Var(1)]))
        .sum_over([Var(0), Var(1)]);
    let mut rng = SmallRng::seed_from_u64(17);
    let mut w: WeightedStructure<Int> = WeightedStructure::new(a.clone());
    for i in 0..14u32 {
        w.set(wsym, &[i], Int(rng.gen_range(-3..4)));
    }
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let mut engine: RingEngine<Int> = RingEngine::new(compiled, &w);
    for _ in 0..25 {
        let i = rng.gen_range(0..14u32);
        let v = Int(rng.gen_range(-3..4));
        w.set(wsym, &[i], v);
        engine.set_weight(wsym, &[i], v);
        assert_eq!(*engine.value(), agq_baseline::eval_closed(&expr, &w));
    }
}

#[test]
fn boolean_finite_engine_and_updates() {
    // ∃-free Boolean query via finite-semiring engine: Σ[E(x,y)]·w(x)
    // where w is a 0/1 unary weight — dynamic membership toggles.
    let a = random_graph(14, 30, 6);
    let sig = a.signature().clone();
    let e = sig.relation("E").unwrap();
    let wsym = sig.weight("w").unwrap();
    let expr: Expr<Bool> = Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)]))
        .times(Expr::Weight(wsym, vec![Var(0)]))
        .sum_over([Var(0), Var(1)]);
    let mut rng = SmallRng::seed_from_u64(18);
    let mut w: WeightedStructure<Bool> = WeightedStructure::new(a.clone());
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let mut engine: FiniteEngine<Bool> = FiniteEngine::new(compiled, &w);
    for _ in 0..30 {
        let i = rng.gen_range(0..14u32);
        let v = Bool(rng.gen_bool(0.5));
        w.set(wsym, &[i], v);
        engine.set_weight(wsym, &[i], v);
        assert_eq!(*engine.value(), agq_baseline::eval_closed(&expr, &w));
    }
}

#[test]
fn randomized_small_expressions() {
    // Catch-all: random two-variable expressions on random graphs.
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let a = random_graph(10, 22, 2000 + seed);
        let sig = a.signature().clone();
        let e = sig.relation("E").unwrap();
        let wsym = sig.weight("w").unwrap();
        let usym = sig.weight("u").unwrap();
        let x = Var(0);
        let y = Var(1);
        // random quantifier-free formula over E, =, with 2 vars
        let atoms: Vec<Formula> = vec![
            Formula::Rel(e, vec![x, y]),
            Formula::Rel(e, vec![y, x]),
            Formula::Rel(e, vec![x, x]),
            Formula::Eq(x, y),
        ];
        let mut f = atoms[rng.gen_range(0..atoms.len())].clone();
        for _ in 0..rng.gen_range(0..3) {
            let g = atoms[rng.gen_range(0..atoms.len())].clone();
            f = match rng.gen_range(0..3) {
                0 => f.and(g),
                1 => f.or(g),
                _ => f.and(g.not()),
            };
        }
        let expr: Expr<Nat> = Expr::Mul(vec![
            Expr::Bracket(f),
            Expr::Weight(wsym, vec![x]),
            Expr::Weight(usym, vec![y]),
        ])
        .sum_over([x, y]);
        check_closed_nat(&expr, &a, 3000 + seed);
    }
}

#[test]
fn unconstrained_variable_counts_domain() {
    // Σ_{x,y} w(x): y unconstrained contributes a factor |A|.
    let a = random_graph(9, 15, 77);
    let wsym = a.signature().weight("w").unwrap();
    let expr: Expr<Nat> = Expr::Weight(wsym, vec![Var(0)]).sum_over([Var(0), Var(1)]);
    check_closed_nat(&expr, &a, 78);
}

#[test]
fn quantifier_elimination_pipeline() {
    use agq_core::eliminate_quantifiers;
    // f = Σ_x [∃y E(x,y)] · w(x)
    for seed in 0..3 {
        let a = random_graph(13, 20, 300 + seed);
        let sig = a.signature().clone();
        let e = sig.relation("E").unwrap();
        let wsym = sig.weight("w").unwrap();
        let inner = Formula::Exists(Var(1), Box::new(Formula::Rel(e, vec![Var(0), Var(1)])));
        let expr: Expr<Nat> = Expr::Bracket(inner)
            .times(Expr::Weight(wsym, vec![Var(0)]))
            .sum_over([Var(0)]);
        let opts = CompileOptions::default();
        let (rewritten, a2) = eliminate_quantifiers(&expr, &a, &opts).unwrap();
        let nf = normalize(&rewritten).unwrap();
        let compiled = compile(&a2, &nf, &opts).unwrap();
        // engine weights live on the *extended* structure (same domain,
        // same weight ids)
        let mut w2: WeightedStructure<Nat> = WeightedStructure::new(a2.clone());
        let w_orig = nat_weights(&a, seed + 400);
        for i in 0..a.domain_size() as u32 {
            w2.set(wsym, &[i], w_orig.get(wsym, &[i]));
        }
        let engine: GeneralEngine<Nat> = GeneralEngine::new(compiled, &w2);
        let expect = agq_baseline::eval_closed(&expr, &w_orig);
        assert_eq!(*engine.value(), expect, "seed {seed}");
    }
}

#[test]
fn forall_and_sentences() {
    use agq_core::eliminate_quantifiers;
    // f = Σ_x [∀y (E(x,y) → E(y,x))] in a mixed graph
    let a = random_graph(10, 18, 500);
    let e = a.signature().relation("E").unwrap();
    let body = Formula::Rel(e, vec![Var(0), Var(1)])
        .not()
        .or(Formula::Rel(e, vec![Var(1), Var(0)]));
    let inner = Formula::Forall(Var(1), Box::new(body));
    let expr: Expr<Nat> = Expr::Bracket(inner).sum_over([Var(0)]);
    let opts = CompileOptions::default();
    let (rewritten, a2) = eliminate_quantifiers(&expr, &a, &opts).unwrap();
    let nf = normalize(&rewritten).unwrap();
    let compiled = compile(&a2, &nf, &opts).unwrap();
    let w2: WeightedStructure<Nat> = WeightedStructure::new(a2.clone());
    let engine: GeneralEngine<Nat> = GeneralEngine::new(compiled, &w2);
    let w_orig: WeightedStructure<Nat> = WeightedStructure::new(a.clone());
    assert_eq!(*engine.value(), agq_baseline::eval_closed(&expr, &w_orig));
}

#[test]
fn circuit_stats_are_bounded() {
    // Theorem 6's structural promises on a concrete query.
    let a = random_graph(60, 100, 600);
    let e = a.signature().relation("E").unwrap();
    let f = Formula::Rel(e, vec![Var(0), Var(1)]).and(Formula::Rel(e, vec![Var(1), Var(2)]));
    let expr: Expr<Nat> = Expr::Bracket(f).sum_over([Var(0), Var(1), Var(2)]);
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let st = compiled.report.stats;
    assert!(st.max_perm_rows <= 3, "perm rows {}", st.max_perm_rows);
    assert!(st.depth <= 64, "depth {}", st.depth);
    check_closed_nat(&expr, &a, 601);
}

#[test]
fn parallel_compile_is_byte_identical_to_sequential() {
    // The deterministic merge must reproduce the sequential gate stream,
    // child arena, slot order, and literal table exactly, across query
    // shapes (closed, free-variable, weighted, dynamic-atom).
    let seq_opts = CompileOptions {
        threads: 1,
        ..Default::default()
    };
    let par_opts = CompileOptions {
        threads: 8,
        ..Default::default()
    };

    let cases: Vec<(Arc<Structure>, Expr<Nat>)> = {
        let mut cases = Vec::new();
        for seed in 0..4 {
            let a = random_graph(24, 60, 700 + seed);
            let sig = a.signature().clone();
            let e = sig.relation("E").unwrap();
            let c = sig.weight("c").unwrap();
            let wsym = sig.weight("w").unwrap();
            let f = Formula::Rel(e, vec![Var(0), Var(1)])
                .and(Formula::Rel(e, vec![Var(1), Var(2)]))
                .and(Formula::Rel(e, vec![Var(2), Var(0)]));
            let triangle: Expr<Nat> = Expr::Mul(vec![
                Expr::Bracket(f),
                Expr::Weight(c, vec![Var(0), Var(1)]),
                Expr::Weight(c, vec![Var(1), Var(2)]),
                Expr::Weight(c, vec![Var(2), Var(0)]),
            ])
            .sum_over([Var(0), Var(1), Var(2)]);
            cases.push((a.clone(), triangle));
            // free variable + coefficient + constant term
            let free: Expr<Nat> = Expr::Const(Nat(3))
                .times(
                    Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)]))
                        .times(Expr::Weight(wsym, vec![Var(0)]))
                        .sum_over([Var(0)]),
                )
                .plus(Expr::Const(Nat(5)));
            cases.push((a, free));
        }
        cases
    };

    for (i, (a, expr)) in cases.iter().enumerate() {
        let nf = normalize(expr).unwrap();
        for dynamic_atoms in [false, true] {
            let mut s = seq_opts.clone();
            s.dynamic_atoms = dynamic_atoms;
            let mut p = par_opts.clone();
            p.dynamic_atoms = dynamic_atoms;
            let seq = compile(a, &nf, &s).unwrap();
            let par = compile(a, &nf, &p).unwrap();
            assert_eq!(
                *seq.circuit, *par.circuit,
                "case {i} (dynamic_atoms={dynamic_atoms}): circuit IR differs"
            );
            let seq_slots: Vec<_> = seq.slots.iter().collect();
            let par_slots: Vec<_> = par.slots.iter().collect();
            assert_eq!(seq_slots, par_slots, "case {i}: slot registries differ");
            assert_eq!(seq.lits, par.lits, "case {i}: literal tables differ");
            assert_eq!(seq.free_vars, par.free_vars);
            assert_eq!(seq.report.num_subsets, par.report.num_subsets);
            assert_eq!(
                seq.report.shapes_instantiated,
                par.report.shapes_instantiated
            );
            assert_eq!(seq.report.max_forest_depth, par.report.max_forest_depth);
        }
    }
}

#[test]
fn query_batch_matches_sequential_queries() {
    // query_batch ≡ query ≡ the classic update/restore path, across the
    // general and ring engines.
    for seed in 0..3 {
        let a = random_graph(16, 30, 800 + seed);
        let sig = a.signature().clone();
        let e = sig.relation("E").unwrap();
        let wsym = sig.weight("w").unwrap();
        let expr: Expr<Nat> = Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)]))
            .times(Expr::Weight(wsym, vec![Var(0)]))
            .sum_over([Var(0)]);
        let w = nat_weights(&a, 801 + seed);
        let nf = normalize(&expr).unwrap();
        let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
        let mut engine: GeneralEngine<Nat> = GeneralEngine::new(compiled, &w);
        let points: Vec<[u32; 1]> = (0..a.domain_size() as u32).map(|z| [z]).collect();
        let tuples: Vec<&[u32]> = points.iter().map(|p| p.as_slice()).collect();
        let batch = engine.query_batch(&tuples);
        for (z, got) in batch.iter().enumerate() {
            let single = engine.query(&[z as u32]);
            let classic = engine.query_via_updates(&[z as u32]);
            let expect = agq_baseline::eval_at(&expr, &w, &[Var(1)], &[z as u32]);
            assert_eq!(*got, single, "z={z}: batch vs query");
            assert_eq!(*got, classic, "z={z}: batch vs update/restore");
            assert_eq!(*got, expect, "z={z}: vs brute force");
        }
    }
}

#[test]
fn query_batch_ring_engine_with_interleaved_updates() {
    let a = random_graph(14, 28, 900);
    let sig = a.signature().clone();
    let e = sig.relation("E").unwrap();
    let wsym = sig.weight("w").unwrap();
    let expr: Expr<Int> = Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)]))
        .times(Expr::Weight(wsym, vec![Var(0)]))
        .sum_over([Var(0)]);
    let mut rng = SmallRng::seed_from_u64(901);
    let mut w: WeightedStructure<Int> = WeightedStructure::new(a.clone());
    for i in 0..14u32 {
        w.set(wsym, &[i], Int(rng.gen_range(-3..4)));
    }
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a, &nf, &CompileOptions::default()).unwrap();
    let mut engine: RingEngine<Int> = RingEngine::new(compiled, &w);
    for _ in 0..15 {
        let i = rng.gen_range(0..14u32);
        let v = Int(rng.gen_range(-3..4));
        w.set(wsym, &[i], v);
        engine.set_weight(wsym, &[i], v);
        let points: Vec<[u32; 1]> = (0..14u32).map(|z| [z]).collect();
        let tuples: Vec<&[u32]> = points.iter().map(|p| p.as_slice()).collect();
        let batch = engine.query_batch(&tuples);
        for (z, got) in batch.iter().enumerate() {
            let expect = agq_baseline::eval_at(&expr, &w, &[Var(1)], &[z as u32]);
            assert_eq!(*got, expect, "z={z}");
        }
    }
}
