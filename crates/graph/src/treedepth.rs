//! Treedepth utilities: exact computation for tiny graphs and
//! certification of elimination forests.
//!
//! The theory ties every constant in the paper to the treedepth of the
//! color-set subgraphs. These helpers let tests and diagnostics *verify*
//! decomposition quality instead of assuming it: an exact (exponential)
//! treedepth solver for small graphs, and a checker that a rooted forest
//! is a valid elimination forest (every edge ancestor–descendant), with
//! its depth as the certified treedepth upper bound.

use crate::{dfs_forest, Forest, Graph};
use std::collections::HashMap;

/// Exact treedepth of `g` (number of levels; empty graph has 0, a single
/// vertex 1). Exponential — intended for graphs with ≤ ~16 vertices in
/// tests and diagnostics.
pub fn treedepth_exact(g: &Graph) -> u32 {
    let n = g.num_vertices();
    assert!(n <= 24, "exact treedepth is exponential; n={n} too large");
    if n == 0 {
        return 0;
    }
    // adjacency masks
    let adj: Vec<u32> = (0..n)
        .map(|v| {
            g.neighbors(v as u32)
                .iter()
                .fold(0u32, |m, &u| m | (1 << u))
        })
        .collect();
    let full = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let mut memo: HashMap<u32, u32> = HashMap::new();
    td_rec(full, &adj, &mut memo)
}

fn td_rec(mask: u32, adj: &[u32], memo: &mut HashMap<u32, u32>) -> u32 {
    if mask == 0 {
        return 0;
    }
    if let Some(&v) = memo.get(&mask) {
        return v;
    }
    // decompose into connected components of the induced subgraph
    let comps = components(mask, adj);
    let result = if comps.len() > 1 {
        comps
            .into_iter()
            .map(|c| td_rec(c, adj, memo))
            .max()
            .unwrap()
    } else {
        // connected: remove the best root
        let mut best = u32::MAX;
        let mut rest = mask;
        while rest != 0 {
            let v = rest.trailing_zeros();
            rest &= rest - 1;
            let sub = mask & !(1 << v);
            best = best.min(1 + td_rec(sub, adj, memo));
            if best == 1 {
                break;
            }
        }
        best
    };
    memo.insert(mask, result);
    result
}

fn components(mask: u32, adj: &[u32]) -> Vec<u32> {
    let mut remaining = mask;
    let mut out = Vec::new();
    while remaining != 0 {
        let start = remaining.trailing_zeros();
        let mut comp = 1u32 << start;
        loop {
            let mut frontier = 0u32;
            let mut c = comp;
            while c != 0 {
                let v = c.trailing_zeros();
                c &= c - 1;
                frontier |= adj[v as usize] & mask;
            }
            let grown = comp | frontier;
            if grown == comp {
                break;
            }
            comp = grown;
        }
        out.push(comp);
        remaining &= !comp;
    }
    out
}

/// Verify that `f` is an elimination forest of `g` (every edge of `g`
/// joins an ancestor–descendant pair of `f`), returning the certified
/// treedepth upper bound `max_depth + 1`, or `None` if invalid.
pub fn certify_elimination_forest(g: &Graph, f: &Forest) -> Option<u32> {
    for (u, v) in g.edges() {
        let (du, dv) = (f.depth(u), f.depth(v));
        let (hi, lo, dhi, dlo) = if du >= dv {
            (u, v, du, dv)
        } else {
            (v, u, dv, du)
        };
        if f.ancestor_saturating(hi, dhi - dlo) != lo {
            return None;
        }
    }
    Some(f.max_depth() + 1)
}

/// The paper's Example 2 bound made checkable: a DFS forest certifies
/// treedepth within a factor — depth + 1 ≤ 2^treedepth. Returns
/// `(certified_bound, exact)` for small graphs.
pub fn dfs_vs_exact(g: &Graph) -> (u32, u32) {
    let f = dfs_forest(g);
    let cert = certify_elimination_forest(g, &f).expect("DFS forests always certify");
    (cert, treedepth_exact(g))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn exact_treedepth_of_known_graphs() {
        assert_eq!(treedepth_exact(&Graph::new(0)), 0);
        assert_eq!(treedepth_exact(&Graph::new(1)), 1);
        assert_eq!(treedepth_exact(&generators::star(8)), 2);
        assert_eq!(treedepth_exact(&generators::complete(5)), 5);
        // path on 2^k − 1 vertices has treedepth exactly k
        assert_eq!(treedepth_exact(&generators::path(7)), 3);
        assert_eq!(treedepth_exact(&generators::path(15)), 4);
        // cycles: td(C_n) = td(P_{n−1}) + 1
        assert_eq!(treedepth_exact(&generators::cycle(7)), 4);
    }

    #[test]
    fn dfs_certificate_respects_example_2_bound() {
        for g in [
            generators::path(15),
            generators::star(12),
            generators::cycle(9),
            generators::gnm(14, 18, 3),
        ] {
            let (cert, exact) = dfs_vs_exact(&g);
            assert!(cert >= exact, "certificate is an upper bound");
            assert!(
                cert <= (1u32 << exact),
                "Example 2: DFS depth+1 ≤ 2^td ({cert} vs 2^{exact})"
            );
        }
    }

    #[test]
    fn invalid_forest_is_rejected() {
        // a star-shaped forest cannot certify a path: the path edge (1,2)
        // joins two siblings (incomparable) of the star forest
        let g = generators::path(4);
        let star = generators::star(4);
        let f = dfs_forest(&star);
        assert_eq!(certify_elimination_forest(&g, &f), None);
        // while a path-shaped forest certifies anything its chain covers
        let f2 = dfs_forest(&g);
        assert_eq!(certify_elimination_forest(&g, &f2), Some(4));
    }
}
