//! Workload graph generators for tests and experiments.
//!
//! These realize the graph classes the paper names as canonical bounded
//! expansion examples: bounded degree, planar(-like), forests — plus
//! sparse Erdős–Rényi graphs (bounded expansion with high probability at
//! constant average degree) and dense/adversarial graphs used to exercise
//! the depth-cap diagnostics.

use crate::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Path on `n` vertices.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n as u32).map(|v| (v - 1, v)))
}

/// Cycle on `n ≥ 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3);
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    edges.push((n as u32 - 1, 0));
    Graph::from_edges(n, edges)
}

/// Star with `n − 1` leaves.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    Graph::from_edges(n, (1..n as u32).map(|v| (0, v)))
}

/// Complete graph `K_n` (dense; used to test diagnostics, not claims).
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in u + 1..n as u32 {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, edges)
}

/// `w × h` grid (planar, 2-degenerate).
pub fn grid(w: usize, h: usize) -> Graph {
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    let mut edges = Vec::with_capacity(2 * w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                edges.push((idx(x, y), idx(x + 1, y)));
            }
            if y + 1 < h {
                edges.push((idx(x, y), idx(x, y + 1)));
            }
        }
    }
    Graph::from_edges(w * h, edges)
}

/// Grid with one random diagonal per cell: still planar, slightly denser.
pub fn planar_like(w: usize, h: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    let mut g = grid(w, h);
    let mut extra = Vec::new();
    for y in 0..h.saturating_sub(1) {
        for x in 0..w.saturating_sub(1) {
            if rng.gen_bool(0.5) {
                extra.push((idx(x, y), idx(x + 1, y + 1)));
            } else {
                extra.push((idx(x + 1, y), idx(x, y + 1)));
            }
        }
    }
    for (u, v) in extra {
        g.insert_edge(u, v);
    }
    g.normalize();
    g
}

/// Erdős–Rényi `G(n, m)`: `m` edges sampled uniformly (duplicates and
/// self-loops dropped, so the result may have slightly fewer edges).
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges = (0..m).map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
    Graph::from_edges(n, edges)
}

/// Uniform random recursive forest: vertex `v > 0` attaches to a uniform
/// earlier vertex with probability `1 − root_prob`, else becomes a root.
pub fn random_forest(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n);
    for v in 1..n as u32 {
        if rng.gen_bool(0.05) {
            continue; // new root
        }
        let u = rng.gen_range(0..v);
        edges.push((u, v));
    }
    Graph::from_edges(n, edges)
}

/// Random graph of maximum degree ≤ `d`: repeatedly sample pairs, insert
/// when both endpoints have residual capacity.
pub fn bounded_degree(n: usize, d: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut deg = vec![0usize; n];
    let mut g = Graph::new(n);
    let target = n * d / 2;
    let mut placed = 0;
    for _ in 0..target * 8 {
        if placed >= target {
            break;
        }
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v || deg[u as usize] >= d || deg[v as usize] >= d || g.has_edge(u, v) {
            continue;
        }
        g.insert_edge(u, v);
        // insert_edge leaves lists unsorted; has_edge needs sorted lists,
        // so normalize incrementally (cheap for bounded degree).
        g.normalize();
        deg[u as usize] += 1;
        deg[v as usize] += 1;
        placed += 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_sizes() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(grid(3, 4).num_edges(), 3 * 4 * 2 - 3 - 4);
    }

    #[test]
    fn gnm_is_deterministic_per_seed() {
        let a = gnm(50, 100, 7);
        let b = gnm(50, 100, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.edges().eq(b.edges()));
    }

    #[test]
    fn forest_is_acyclic() {
        let g = random_forest(300, 2);
        // forests have m ≤ n − #components; verify via DFS back-edge check
        let f = crate::dfs_forest(&g);
        assert_eq!(
            g.num_edges() + f.roots().len(),
            g.num_vertices(),
            "forest edge count"
        );
    }

    #[test]
    fn bounded_degree_respects_cap() {
        let g = bounded_degree(120, 4, 3);
        assert!(g.max_degree() <= 4);
        assert!(g.num_edges() > 100, "should be near-saturated");
    }

    #[test]
    fn planar_like_is_denser_than_grid() {
        let g = grid(10, 10);
        let p = planar_like(10, 10, 1);
        assert!(p.num_edges() > g.num_edges());
    }
}
