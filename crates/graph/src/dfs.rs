//! DFS spanning forests with the ancestor–descendant edge property
//! (Example 2 of the paper).

use crate::Graph;

/// A rooted spanning forest of a graph, with depths and parent pointers.
///
/// Built by depth-first search, so **every edge of the underlying graph
/// connects an ancestor–descendant pair** — the property (Example 2) that
/// reduces bounded-treedepth structures to labelled forests of bounded
/// depth. On a graph with no path of length `L`, the forest depth is < `L`,
/// hence bounded when the treedepth is (depth < 2^treedepth).
#[derive(Clone, Debug)]
pub struct Forest {
    /// `parent[v]` — parent of `v`, or `v` itself for roots (paper
    /// convention: the `parent` function fixes roots).
    parent: Vec<u32>,
    /// `depth[v]` — 0 for roots.
    depth: Vec<u32>,
    /// Vertices in DFS preorder (parents precede children).
    preorder: Vec<u32>,
    /// Children lists.
    children: Vec<Vec<u32>>,
    roots: Vec<u32>,
    max_depth: u32,
}

impl Forest {
    /// Parent of `v` (itself for roots).
    pub fn parent(&self, v: u32) -> u32 {
        self.parent[v as usize]
    }

    /// Depth of `v` (roots have depth 0).
    pub fn depth(&self, v: u32) -> u32 {
        self.depth[v as usize]
    }

    /// Whether `v` is a root.
    pub fn is_root(&self, v: u32) -> bool {
        self.parent[v as usize] == v
    }

    /// The roots, in discovery order.
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Children of `v`.
    pub fn children(&self, v: u32) -> &[u32] {
        &self.children[v as usize]
    }

    /// Vertices in DFS preorder (every parent precedes its children).
    pub fn preorder(&self) -> &[u32] {
        &self.preorder
    }

    /// Maximum depth over all vertices.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.parent.len()
    }

    /// The `parentⁱ(v)` of the paper's forest signature: walk `i` steps
    /// toward the root, saturating there (roots map to themselves).
    pub fn ancestor_saturating(&self, v: u32, i: u32) -> u32 {
        let mut cur = v;
        for _ in 0..i {
            cur = self.parent[cur as usize];
        }
        cur
    }

    /// The ancestor of `v` at absolute depth `j`, or `None` if `j` exceeds
    /// `depth(v)`.
    pub fn ancestor_at_depth(&self, v: u32, j: u32) -> Option<u32> {
        let d = self.depth(v);
        (j <= d).then(|| self.ancestor_saturating(v, d - j))
    }
}

/// Build a DFS spanning forest of `g` restricted to the vertices with
/// `active[v]` (pass all-true for the whole graph). Inactive vertices get
/// `parent = v`, `depth = 0` and do not appear in the preorder.
pub fn dfs_forest_on(g: &Graph, active: &[bool]) -> Forest {
    let n = g.num_vertices();
    assert_eq!(active.len(), n);
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut depth = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut preorder = Vec::new();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    let mut max_depth = 0;
    // Iterative DFS: stack of (vertex, next-neighbor-index).
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if visited[start as usize] || !active[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        roots.push(start);
        preorder.push(start);
        stack.push((start, 0));
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            let nbrs = g.neighbors(v);
            let mut advanced = false;
            while *idx < nbrs.len() {
                let u = nbrs[*idx];
                *idx += 1;
                if active[u as usize] && !visited[u as usize] {
                    visited[u as usize] = true;
                    parent[u as usize] = v;
                    depth[u as usize] = depth[v as usize] + 1;
                    max_depth = max_depth.max(depth[u as usize]);
                    children[v as usize].push(u);
                    preorder.push(u);
                    stack.push((u, 0));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                stack.pop();
            }
        }
    }
    Forest {
        parent,
        depth,
        preorder,
        children,
        roots,
        max_depth,
    }
}

/// DFS spanning forest over all vertices.
pub fn dfs_forest(g: &Graph) -> Forest {
    dfs_forest_on(g, &vec![true; g.num_vertices()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// The load-bearing invariant: every graph edge joins comparable nodes.
    fn assert_edges_vertical(g: &Graph, f: &Forest) {
        for (u, v) in g.edges() {
            let (du, dv) = (f.depth(u), f.depth(v));
            let (hi, lo, dhi, dlo) = if du >= dv {
                (u, v, du, dv)
            } else {
                (v, u, dv, du)
            };
            let anc = f.ancestor_saturating(hi, dhi - dlo);
            assert_eq!(anc, lo, "edge ({u},{v}) not ancestor-descendant");
        }
    }

    #[test]
    fn path_graph_forest() {
        let g = generators::path(10);
        let f = dfs_forest(&g);
        assert_eq!(f.roots().len(), 1);
        assert_eq!(f.max_depth(), 9);
        assert_edges_vertical(&g, &f);
    }

    #[test]
    fn edges_vertical_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::gnm(200, 380, seed);
            let f = dfs_forest(&g);
            assert_edges_vertical(&g, &f);
            // spanning: every vertex reachable appears once in preorder
            assert_eq!(f.preorder().len(), 200);
        }
    }

    #[test]
    fn parents_precede_children_in_preorder() {
        let g = generators::grid(5, 7);
        let f = dfs_forest(&g);
        let mut pos = vec![usize::MAX; g.num_vertices()];
        for (i, &v) in f.preorder().iter().enumerate() {
            pos[v as usize] = i;
        }
        for v in 0..g.num_vertices() as u32 {
            if !f.is_root(v) {
                assert!(pos[f.parent(v) as usize] < pos[v as usize]);
            }
        }
    }

    #[test]
    fn restricted_forest_ignores_inactive() {
        let g = generators::path(6);
        let mut active = vec![true; 6];
        active[3] = false; // splits the path
        let f = dfs_forest_on(&g, &active);
        assert_eq!(f.preorder().len(), 5);
        assert_eq!(f.roots().len(), 2);
    }

    #[test]
    fn ancestor_lookup() {
        let g = generators::path(5);
        let f = dfs_forest(&g);
        let deep = *f.preorder().last().unwrap();
        assert_eq!(f.ancestor_at_depth(deep, 0), Some(f.roots()[0]));
        assert_eq!(f.ancestor_at_depth(deep, f.depth(deep)), Some(deep));
        assert_eq!(f.ancestor_at_depth(f.roots()[0], 3), None);
        // saturating walk stops at the root
        assert_eq!(f.ancestor_saturating(deep, 100), f.roots()[0]);
    }
}
