//! Undirected simple graphs with adjacency lists.

/// An undirected simple graph on vertices `0..n`.
///
/// Stored as sorted, deduplicated adjacency lists; self-loops and parallel
/// edges supplied by builders are dropped. All the sparse-decomposition
/// machinery of this crate operates on this type.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    m: usize,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Build from an edge list (self-loops and duplicates ignored).
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.insert_edge(u, v);
        }
        g.normalize();
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Neighbors of `v`, sorted ascending.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Whether the edge `{u, v}` is present (binary search).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Insert an edge; duplicates allowed until [`Graph::normalize`].
    ///
    /// Intended for bulk construction; not for use after `normalize`
    /// unless `normalize` is called again.
    pub fn insert_edge(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        assert!(
            (u as usize) < self.adj.len() && (v as usize) < self.adj.len(),
            "edge ({u},{v}) out of range"
        );
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
    }

    /// Sort and deduplicate adjacency lists; recomputes the edge count.
    pub fn normalize(&mut self) {
        let mut m2 = 0;
        for list in &mut self.adj {
            list.sort_unstable();
            list.dedup();
            m2 += list.len();
        }
        self.m = m2 / 2;
    }

    /// Iterate over edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            let u = u as u32;
            list.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The subgraph induced by `keep` (vertices keep their original ids;
    /// edges to dropped vertices vanish). `keep[v]` marks survival.
    pub fn induced_where(&self, keep: &[bool]) -> Graph {
        assert_eq!(keep.len(), self.adj.len());
        let mut g = Graph::new(self.adj.len());
        for (u, v) in self.edges() {
            if keep[u as usize] && keep[v as usize] {
                g.insert_edge(u, v);
            }
        }
        g.normalize();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_dedups() {
        let g = Graph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 2), (2, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn edge_iteration_is_canonical() {
        let g = Graph::from_edges(3, [(2, 1), (0, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn induced_subgraph_drops_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let keep = vec![true, false, true, true];
        let h = g.induced_where(&keep);
        assert_eq!(h.num_edges(), 1);
        assert!(h.has_edge(2, 3));
        assert!(!h.has_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = Graph::new(2);
        g.insert_edge(0, 5);
    }
}
