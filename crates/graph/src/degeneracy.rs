//! Degeneracy orderings and bounded out-degree acyclic orientations
//! (the engine of Lemma 37).

use crate::Graph;

/// An acyclic orientation of a graph with explicit out-neighbor lists.
///
/// Produced by [`degeneracy_orientation`]: out-degree is bounded by the
/// degeneracy, and the orientation is acyclic because all arcs point
/// forward in the elimination order. The paper's Lemma 37 encodes each arc
/// `v → u` as a unary function `f_i(v) = u` where `i` is the arc's position
/// in `v`'s out-list; [`Orientation::out`] exposes exactly that indexing.
#[derive(Clone, Debug)]
pub struct Orientation {
    /// `out[v]` = out-neighbors of `v`, in a fixed order.
    out: Vec<Vec<u32>>,
    /// The elimination order (first-removed first).
    order: Vec<u32>,
    /// The degeneracy `d` = max out-degree.
    degeneracy: usize,
}

impl Orientation {
    /// Out-neighbors of `v` in arc order (`f_1(v), f_2(v), …`).
    pub fn out(&self, v: u32) -> &[u32] {
        &self.out[v as usize]
    }

    /// The `i`-th out-neighbor of `v` (0-based), or `None`.
    pub fn out_at(&self, v: u32, i: usize) -> Option<u32> {
        self.out[v as usize].get(i).copied()
    }

    /// Maximum out-degree (= degeneracy of the input graph).
    pub fn max_out_degree(&self) -> usize {
        self.degeneracy
    }

    /// The elimination order that produced this orientation.
    pub fn elimination_order(&self) -> &[u32] {
        &self.order
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }
}

/// Compute a degeneracy ordering by the classic bucket-queue algorithm
/// (repeatedly remove a minimum-degree vertex), in `O(n + m)` time, and
/// orient every edge from the earlier-removed endpoint to the later one.
pub fn degeneracy_orientation(g: &Graph) -> Orientation {
    let n = g.num_vertices();
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v as u32)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as u32);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    // `cursor` is a lower bound on the minimum true degree among the
    // unremoved vertices: removing a min-degree vertex lowers neighbor
    // degrees by one, so the bound decreases by at most one per step.
    // Entries are re-pushed on every decrement, so stale entries (already
    // removed, or degree since changed) are simply skipped. Total work is
    // O(n + m) because each decrement causes one push.
    let mut cursor = 0usize;
    for _ in 0..n {
        let v = loop {
            match buckets[cursor].pop() {
                Some(v) if !removed[v as usize] && degree[v as usize] == cursor => break v,
                Some(_) => continue, // stale
                None => cursor += 1,
            }
        };
        removed[v as usize] = true;
        order.push(v);
        for &u in g.neighbors(v) {
            if !removed[u as usize] {
                degree[u as usize] -= 1;
                buckets[degree[u as usize]].push(u);
            }
        }
        cursor = cursor.saturating_sub(1);
    }

    // Position in removal order; arcs go earlier → later.
    let mut pos = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v as usize] = i as u32;
    }
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, v) in g.edges() {
        if pos[u as usize] < pos[v as usize] {
            out[u as usize].push(v);
        } else {
            out[v as usize].push(u);
        }
    }
    let degeneracy = out.iter().map(Vec::len).max().unwrap_or(0);
    Orientation {
        out,
        order,
        degeneracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn check_acyclic_and_covering(g: &Graph, o: &Orientation) {
        // Every edge oriented exactly once.
        let mut count = 0;
        for v in 0..g.num_vertices() as u32 {
            for &u in o.out(v) {
                assert!(g.has_edge(v, u));
                count += 1;
            }
        }
        assert_eq!(count, g.num_edges());
        // Acyclicity: arcs follow elimination positions strictly.
        let mut pos = vec![0usize; g.num_vertices()];
        for (i, &v) in o.elimination_order().iter().enumerate() {
            pos[v as usize] = i;
        }
        for v in 0..g.num_vertices() as u32 {
            for &u in o.out(v) {
                assert!(pos[v as usize] < pos[u as usize]);
            }
        }
    }

    #[test]
    fn tree_has_degeneracy_one() {
        let g = generators::path(50);
        let o = degeneracy_orientation(&g);
        assert_eq!(o.max_out_degree(), 1);
        check_acyclic_and_covering(&g, &o);
    }

    #[test]
    fn cycle_has_degeneracy_two() {
        let g = generators::cycle(9);
        let o = degeneracy_orientation(&g);
        assert_eq!(o.max_out_degree(), 2);
        check_acyclic_and_covering(&g, &o);
    }

    #[test]
    fn complete_graph_degeneracy() {
        let g = generators::complete(6);
        let o = degeneracy_orientation(&g);
        assert_eq!(o.max_out_degree(), 5);
        check_acyclic_and_covering(&g, &o);
    }

    #[test]
    fn grid_degeneracy_at_most_two() {
        let g = generators::grid(8, 11);
        let o = degeneracy_orientation(&g);
        assert!(o.max_out_degree() <= 2, "grids are 2-degenerate");
        check_acyclic_and_covering(&g, &o);
    }

    #[test]
    fn random_sparse_has_small_outdegree() {
        let g = generators::gnm(500, 1000, 3);
        let o = degeneracy_orientation(&g);
        check_acyclic_and_covering(&g, &o);
        assert!(o.max_out_degree() <= 8, "got {}", o.max_out_degree());
    }

    #[test]
    fn empty_and_singleton() {
        let g = Graph::new(0);
        assert_eq!(degeneracy_orientation(&g).num_vertices(), 0);
        let g = Graph::new(1);
        let o = degeneracy_orientation(&g);
        assert_eq!(o.max_out_degree(), 0);
    }
}
