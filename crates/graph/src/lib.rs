//! Sparse-graph toolbox: system **S3** of the reproduction.
//!
//! The paper's algorithms never see the input database directly; they see
//! its *Gaifman graph* and exploit three structural tools available on
//! classes of bounded expansion:
//!
//! * **degeneracy orientations** (Lemma 37): every graph from a bounded
//!   expansion class is `d`-degenerate, and a greedy linear-time algorithm
//!   produces an acyclic orientation with out-degree ≤ `d`
//!   ([`degeneracy::degeneracy_orientation`]);
//! * **low-treedepth colorings** (Proposition 1, [16]): a vertex coloring
//!   such that any `p` color classes induce a subgraph of bounded
//!   treedepth ([`ltd::low_treedepth_coloring`], via transitive–fraternal
//!   augmentation);
//! * **DFS spanning forests** (Example 2): on a graph of treedepth `t`, a
//!   DFS forest has depth < 2^t and every edge connects an
//!   ancestor–descendant pair ([`dfs::dfs_forest`]) — the property that
//!   lets every binary atom be decided by a shape plus a unary label.
//!
//! [`generators`] provides the workload graphs for the experiment suite
//! (random sparse, bounded-degree, grids/planar-like, random forests).

pub mod degeneracy;
pub mod dfs;
pub mod generators;
#[allow(clippy::module_inception)]
pub mod graph;
pub mod ltd;
pub mod treedepth;

pub use degeneracy::{degeneracy_orientation, Orientation};
pub use dfs::{dfs_forest, Forest};
pub use graph::Graph;
pub use ltd::{low_treedepth_coloring, LtdColoring};
pub use treedepth::{certify_elimination_forest, treedepth_exact};
