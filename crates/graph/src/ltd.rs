//! Low-treedepth colorings via transitive–fraternal augmentation
//! (Proposition 1; Nešetřil & Ossona de Mendez, *Grad II*).
//!
//! A class of bounded expansion admits, for every `p`, a coloring with
//! constantly many colors such that any ≤ `p` classes induce a subgraph of
//! bounded treedepth. We implement the classic constructive scheme:
//! repeatedly orient the (growing) graph with bounded out-degree and add
//! *transitive* (`u→v→w ⇒ u−w`) and *fraternal* (`u→v←w ⇒ u−w`) edges,
//! then greedily color the final augmented graph along its degeneracy
//! order.
//!
//! Correctness of the downstream decomposition — identity (12)–(13) of the
//! paper — holds for **any** coloring; quality only affects the constants.
//! The compiler therefore *measures* the DFS-forest depth of every used
//! color set and enforces a configurable cap (see `agq-core`), which makes
//! the bounded-expansion precondition observable instead of assumed.

use crate::{degeneracy_orientation, Graph};

/// A vertex coloring intended to have the low-treedepth property.
#[derive(Clone, Debug)]
pub struct LtdColoring {
    /// `colors[v] ∈ 0..num_colors`.
    pub colors: Vec<u32>,
    /// Number of colors used.
    pub num_colors: u32,
}

impl LtdColoring {
    /// The vertices of each color class.
    pub fn classes(&self) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); self.num_colors as usize];
        for (v, &c) in self.colors.iter().enumerate() {
            out[c as usize].push(v as u32);
        }
        out
    }
}

/// Compute a low-treedepth coloring for color-set size `p`.
///
/// `p − 1` augmentation rounds are performed (one round already yields a
/// proper coloring whose pairs of classes induce star forests — bounded
/// treedepth for `p = 2`). Augmentation can densify adversarial inputs;
/// the growth is capped at `max_edges = 64·n + m` edges, after which
/// remaining rounds are skipped (soundness is unaffected, see module doc).
pub fn low_treedepth_coloring(g: &Graph, p: usize) -> LtdColoring {
    let n = g.num_vertices();
    let rounds = p.saturating_sub(1);
    let max_edges = 64 * n + g.num_edges();
    let mut h = g.clone();
    for _ in 0..rounds {
        let o = degeneracy_orientation(&h);
        let mut new_edges: Vec<(u32, u32)> = Vec::new();
        for v in 0..n as u32 {
            let outs = o.out(v);
            // transitive: v → u → w gives v − w
            for &u in outs {
                for &w in o.out(u) {
                    if w != v && !h.has_edge(v, w) {
                        new_edges.push((v, w));
                    }
                }
            }
            // fraternal: u ← v → w … both out-neighbors of v become adjacent
            for (i, &u) in outs.iter().enumerate() {
                for &w in &outs[i + 1..] {
                    if !h.has_edge(u, w) {
                        new_edges.push((u, w));
                    }
                }
            }
        }
        if new_edges.is_empty() {
            break;
        }
        for (u, v) in new_edges {
            h.insert_edge(u, v);
        }
        h.normalize();
        if h.num_edges() > max_edges {
            break;
        }
    }
    greedy_color(&h)
}

/// Greedy coloring along the reverse degeneracy order: uses at most
/// `degeneracy + 1` colors.
pub fn greedy_color(g: &Graph) -> LtdColoring {
    let n = g.num_vertices();
    let o = degeneracy_orientation(g);
    let mut colors = vec![u32::MAX; n];
    let mut used: Vec<bool> = Vec::new();
    let mut num_colors = 0u32;
    for &v in o.elimination_order().iter().rev() {
        used.clear();
        used.resize(num_colors as usize + 1, false);
        for &u in g.neighbors(v) {
            let c = colors[u as usize];
            if c != u32::MAX && (c as usize) < used.len() {
                used[c as usize] = true;
            }
        }
        let c = used.iter().position(|&b| !b).unwrap() as u32;
        colors[v as usize] = c;
        num_colors = num_colors.max(c + 1);
    }
    if n == 0 {
        num_colors = 0;
    }
    LtdColoring { colors, num_colors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::dfs_forest_on;
    use crate::generators;

    fn is_proper(g: &Graph, c: &LtdColoring) -> bool {
        g.edges()
            .all(|(u, v)| c.colors[u as usize] != c.colors[v as usize])
    }

    /// Depth of the deepest DFS forest over all ≤p-color subsets.
    fn worst_subset_depth(g: &Graph, c: &LtdColoring, p: usize) -> u32 {
        let k = c.num_colors as usize;
        let mut worst = 0;
        // enumerate subsets of size ≤ p (k is small in these tests)
        for mask in 1u64..(1 << k) {
            if (mask.count_ones() as usize) > p {
                continue;
            }
            let active: Vec<bool> = c.colors.iter().map(|&col| mask >> col & 1 == 1).collect();
            let sub = g.induced_where(&active);
            let f = dfs_forest_on(&sub, &active);
            worst = worst.max(f.max_depth());
        }
        worst
    }

    #[test]
    fn coloring_is_proper() {
        for seed in 0..3 {
            let g = generators::gnm(300, 450, seed);
            let c = low_treedepth_coloring(&g, 3);
            assert!(is_proper(&g, &c));
        }
    }

    #[test]
    fn forest_pairs_have_small_depth() {
        let g = generators::random_forest(400, 5);
        let c = low_treedepth_coloring(&g, 2);
        assert!(c.num_colors <= 16, "{} colors", c.num_colors);
        // any 2 classes of a forest induce a forest; DFS depth should be
        // modest after augmentation-guided coloring
        let d = worst_subset_depth(&g, &c, 2);
        assert!(d <= 32, "depth {d}");
    }

    #[test]
    fn grid_triples_have_bounded_depth() {
        let g = generators::grid(12, 12);
        let c = low_treedepth_coloring(&g, 3);
        assert!(c.num_colors <= 40, "{} colors", c.num_colors);
        let d = worst_subset_depth(&g, &c, 3);
        assert!(d <= 40, "depth {d}");
    }

    #[test]
    fn sparse_random_triples_have_bounded_depth() {
        let g = generators::gnm(250, 300, 11);
        let c = low_treedepth_coloring(&g, 3);
        let d = worst_subset_depth(&g, &c, 3);
        assert!(d <= 48, "depth {d} with {} colors", c.num_colors);
    }

    #[test]
    fn path_two_colors_small_depth() {
        let g = generators::path(256);
        let c = low_treedepth_coloring(&g, 2);
        let d = worst_subset_depth(&g, &c, 2);
        // a long path must NOT keep two alternating colors: augmentation
        // forces more colors so that 2-subsets have logarithmic-ish depth
        assert!(d <= 64, "depth {d} with {} colors", c.num_colors);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        let c = low_treedepth_coloring(&g, 3);
        assert_eq!(c.num_colors, 0);
    }
}
