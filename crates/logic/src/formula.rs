//! First-order formulas and their decomposition into mutually exclusive
//! conjunctions of literals.

use crate::Var;
use agq_structure::RelId;
use std::fmt;

/// A first-order formula over a relational signature. Terms are variables
/// (function symbols are encoded as relations; the compiler reintroduces
/// functional form internally where Lemma 37 needs it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// `R(x̄)`.
    Rel(RelId, Vec<Var>),
    /// `x = y`.
    Eq(Var, Var),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction of any width.
    And(Vec<Formula>),
    /// Disjunction of any width.
    Or(Vec<Formula>),
    /// `∃x φ`.
    Exists(Var, Box<Formula>),
    /// `∀x φ`.
    Forall(Var, Box<Formula>),
}

impl Formula {
    /// `x ≠ y` convenience constructor.
    pub fn neq(a: Var, b: Var) -> Formula {
        Formula::Not(Box::new(Formula::Eq(a, b)))
    }

    /// Binary conjunction convenience constructor.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(vec![self, other])
    }

    /// Binary disjunction convenience constructor.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(vec![self, other])
    }

    /// Negation convenience constructor.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Whether the formula contains no quantifiers.
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Rel(..) | Formula::Eq(..) => true,
            Formula::Not(f) => f.is_quantifier_free(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_quantifier_free),
            Formula::Exists(..) | Formula::Forall(..) => false,
        }
    }

    /// Collect the free variables.
    pub fn free_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.free_vars_into(&mut Vec::new(), &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn free_vars_into(&self, bound: &mut Vec<Var>, out: &mut Vec<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Rel(_, args) => {
                out.extend(args.iter().filter(|v| !bound.contains(v)));
            }
            Formula::Eq(a, b) => {
                for v in [a, b] {
                    if !bound.contains(v) {
                        out.push(*v);
                    }
                }
            }
            Formula::Not(f) => f.free_vars_into(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.free_vars_into(bound, out);
                }
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                bound.push(*v);
                f.free_vars_into(bound, out);
                bound.pop();
            }
        }
    }

    /// Conservative syntactic check that every answer tuple of the
    /// formula lies inside **one** Gaifman component: in every model,
    /// the free variables are forced to denote pairwise Gaifman-connected
    /// elements.
    ///
    /// Two variables are *guaranteed connected* when every satisfying
    /// assignment links them through a chain of positive relational atoms
    /// (elements co-occurring in a present tuple are Gaifman-adjacent) or
    /// equalities. The recursion computes, per subformula, the partition
    /// of its variables into guaranteed-connected groups: positive atoms
    /// and `=` merge their variables, conjunction joins partitions,
    /// disjunction keeps only what both branches guarantee, and negation
    /// guarantees nothing. `false` is the vacuous (everything-connected)
    /// partition since it has no satisfying assignment.
    ///
    /// This is **the** admission test of the sharded engines: when it
    /// holds, per-component answer sets partition the global answer set,
    /// and a point query at a component-spanning tuple is structurally
    /// zero. A closed (arity-0) formula is *not* admitted: its single
    /// empty-tuple answer belongs to no component, so sharding would
    /// duplicate it per shard — the arity-≥-1 rule lives here rather
    /// than in each engine's admission code. The check is conservative —
    /// `false` only means sharding cannot be justified syntactically,
    /// not that answers actually span components.
    pub fn answers_component_local(&self) -> bool {
        let free = self.free_vars();
        if free.is_empty() {
            return false;
        }
        if free.len() == 1 {
            return true;
        }
        match conn_partition(self) {
            None => true, // unsatisfiable: vacuously component-local
            Some(p) => {
                let root = p.find(free[0]);
                free[1..].iter().all(|v| p.find(*v) == root)
            }
        }
    }

    /// Negation normal form (quantifier-free input only).
    fn nnf(&self, negate: bool) -> Formula {
        match self {
            Formula::True => {
                if negate {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negate {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            Formula::Rel(..) | Formula::Eq(..) => {
                if negate {
                    Formula::Not(Box::new(self.clone()))
                } else {
                    self.clone()
                }
            }
            Formula::Not(f) => f.nnf(!negate),
            Formula::And(fs) => {
                let kids: Vec<Formula> = fs.iter().map(|f| f.nnf(negate)).collect();
                if negate {
                    Formula::Or(kids)
                } else {
                    Formula::And(kids)
                }
            }
            Formula::Or(fs) => {
                let kids: Vec<Formula> = fs.iter().map(|f| f.nnf(negate)).collect();
                if negate {
                    Formula::And(kids)
                } else {
                    Formula::Or(kids)
                }
            }
            Formula::Exists(..) | Formula::Forall(..) => {
                unreachable!("nnf called on quantified formula")
            }
        }
    }
}

/// A union-find partition of a formula's variables into groups that are
/// guaranteed Gaifman-connected in every satisfying assignment.
struct Partition {
    vars: Vec<Var>,
    parent: Vec<u32>,
}

impl Partition {
    fn discrete(vars: &[Var]) -> Self {
        Partition {
            vars: vars.to_vec(),
            parent: (0..vars.len() as u32).collect(),
        }
    }

    fn idx(&self, v: Var) -> usize {
        self.vars.binary_search(&v).expect("var in universe")
    }

    fn find_idx(&self, mut i: usize) -> u32 {
        while self.parent[i] != i as u32 {
            i = self.parent[i] as usize;
        }
        i as u32
    }

    fn find(&self, v: Var) -> u32 {
        self.find_idx(self.idx(v))
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find_idx(a), self.find_idx(b));
        if ra != rb {
            self.parent[ra.max(rb) as usize] = ra.min(rb);
        }
    }

    /// Coarsest common refinement-join: merge every group of `other`
    /// into `self` (conjunction: both guarantees hold).
    fn join(&mut self, other: &Partition) {
        for i in 0..self.parent.len() {
            self.union(i, other.find_idx(i) as usize);
        }
    }

    /// Finest common coarsening-meet: keep a pair together only when
    /// both partitions do (disjunction: only common guarantees survive).
    fn meet(&self, other: &Partition) -> Partition {
        let keys: Vec<(u32, u32)> = (0..self.parent.len())
            .map(|i| (self.find_idx(i), other.find_idx(i)))
            .collect();
        let mut out = Partition::discrete(&self.vars);
        let mut first: Vec<((u32, u32), usize)> = Vec::new();
        for (i, k) in keys.iter().enumerate() {
            match first.iter().find(|(fk, _)| fk == k) {
                Some(&(_, j)) => out.union(i, j),
                None => first.push((*k, i)),
            }
        }
        out
    }
}

fn all_vars(f: &Formula, out: &mut Vec<Var>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Rel(_, args) => out.extend(args.iter().copied()),
        Formula::Eq(a, b) => out.extend([*a, *b]),
        Formula::Not(g) => all_vars(g, out),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| all_vars(g, out)),
        Formula::Exists(v, g) | Formula::Forall(v, g) => {
            out.push(*v);
            all_vars(g, out);
        }
    }
}

/// `None` is the "top" partition of an unsatisfiable subformula (every
/// guarantee holds vacuously); `Some` carries the guaranteed-connected
/// groups over the formula's full variable universe.
fn conn_partition(f: &Formula) -> Option<Partition> {
    let mut universe = Vec::new();
    all_vars(f, &mut universe);
    universe.sort_unstable();
    universe.dedup();
    conn_rec(f, &universe)
}

fn conn_rec(f: &Formula, universe: &[Var]) -> Option<Partition> {
    match f {
        Formula::True => Some(Partition::discrete(universe)),
        Formula::False => None,
        Formula::Rel(_, args) => {
            let mut p = Partition::discrete(universe);
            for w in args.windows(2) {
                let (a, b) = (p.idx(w[0]), p.idx(w[1]));
                p.union(a, b);
            }
            Some(p)
        }
        Formula::Eq(a, b) => {
            let mut p = Partition::discrete(universe);
            let (ia, ib) = (p.idx(*a), p.idx(*b));
            p.union(ia, ib);
            Some(p)
        }
        // Negation guarantees nothing positively (¬R can hold across
        // components); conservative discrete partition.
        Formula::Not(_) => Some(Partition::discrete(universe)),
        Formula::And(fs) => {
            let mut acc = Partition::discrete(universe);
            for g in fs {
                match conn_rec(g, universe) {
                    None => return None, // unsatisfiable conjunct
                    Some(p) => acc.join(&p),
                }
            }
            Some(acc)
        }
        Formula::Or(fs) => {
            let mut acc: Option<Option<Partition>> = None; // not yet seen a branch
            for g in fs {
                let p = conn_rec(g, universe);
                acc = Some(match (acc, p) {
                    (None, p) => p,
                    (Some(None), p) => p, // top meets anything = anything
                    (Some(Some(a)), None) => Some(a),
                    (Some(Some(a)), Some(b)) => Some(a.meet(&b)),
                });
            }
            acc.unwrap_or(None) // empty Or = False
        }
        Formula::Exists(_, g) | Formula::Forall(_, g) => conn_rec(g, universe),
    }
}

/// A literal: a possibly negated relational atom or (in)equality.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lit {
    /// `R(x̄)` (positive) or `¬R(x̄)`.
    Rel {
        /// Relation symbol.
        rel: RelId,
        /// Argument variables.
        args: Vec<Var>,
        /// False for a negated atom.
        positive: bool,
    },
    /// `x = y` (positive) or `x ≠ y`.
    Eq {
        /// Left variable.
        a: Var,
        /// Right variable.
        b: Var,
        /// False for `≠`.
        positive: bool,
    },
}

impl Lit {
    /// The literal with opposite polarity.
    pub fn negated(&self) -> Lit {
        match self {
            Lit::Rel {
                rel,
                args,
                positive,
            } => Lit::Rel {
                rel: *rel,
                args: args.clone(),
                positive: !positive,
            },
            Lit::Eq { a, b, positive } => Lit::Eq {
                a: *a,
                b: *b,
                positive: !positive,
            },
        }
    }

    /// Variables of the literal.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            Lit::Rel { args, .. } => args.clone(),
            Lit::Eq { a, b, .. } => vec![*a, *b],
        }
    }

    /// Is this literal trivially true (`x = x`) or trivially false
    /// (`x ≠ x`)? Returns `Some(truth)` when decidable without data.
    pub fn trivial_truth(&self) -> Option<bool> {
        match self {
            Lit::Eq { a, b, positive } if a == b => Some(*positive),
            _ => None,
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Rel {
                rel,
                args,
                positive,
            } => {
                if !positive {
                    write!(f, "¬")?;
                }
                write!(f, "R{}(", rel.0)?;
                for (i, v) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Lit::Eq { a, b, positive } => {
                write!(f, "{a}{}{b}", if *positive { "=" } else { "≠" })
            }
        }
    }
}

/// Decompose a quantifier-free formula into a **mutually exclusive**
/// disjunction of conjunctions of literals:
/// `φ ≡ C₁ ∨ C₂ ∨ …` with `Cᵢ ∧ Cⱼ` unsatisfiable for `i ≠ j`.
///
/// Exclusivity is what lets the Iverson bracket distribute:
/// `[φ] = [C₁] + [C₂] + …` in *every* semiring (Lemma 32's expansion
/// needs sums without double counting). We use
/// `f₁ ∨ f₂ ≡ f₁ ∨ (¬f₁ ∧ f₂)`, which is exclusive by construction, and
/// close under conjunction by cross products.
///
/// Clauses that contain a literal and its negation (or `x ≠ x`) are
/// dropped; `x = x` literals are removed. The expansion is exponential in
/// the formula size — a query constant, never data-sized.
///
/// # Panics
/// Panics if the formula contains quantifiers (callers run the guarded
/// quantifier elimination first; see `agq-core`).
pub fn exclusive_dnf(f: &Formula) -> Vec<Vec<Lit>> {
    assert!(
        f.is_quantifier_free(),
        "exclusive_dnf requires a quantifier-free formula"
    );
    let nnf = f.nnf(false);
    let raw = dnf_rec(&nnf);
    raw.into_iter().filter_map(simplify_clause).collect()
}

fn dnf_rec(f: &Formula) -> Vec<Vec<Lit>> {
    match f {
        Formula::True => vec![vec![]],
        Formula::False => vec![],
        Formula::Rel(rel, args) => vec![vec![Lit::Rel {
            rel: *rel,
            args: args.clone(),
            positive: true,
        }]],
        Formula::Eq(a, b) => vec![vec![Lit::Eq {
            a: *a,
            b: *b,
            positive: true,
        }]],
        Formula::Not(inner) => match inner.as_ref() {
            Formula::Rel(rel, args) => vec![vec![Lit::Rel {
                rel: *rel,
                args: args.clone(),
                positive: false,
            }]],
            Formula::Eq(a, b) => vec![vec![Lit::Eq {
                a: *a,
                b: *b,
                positive: false,
            }]],
            _ => unreachable!("input is in NNF"),
        },
        Formula::And(fs) => {
            let mut acc: Vec<Vec<Lit>> = vec![vec![]];
            for g in fs {
                let d = dnf_rec(g);
                let mut next = Vec::with_capacity(acc.len() * d.len());
                for c1 in &acc {
                    for c2 in &d {
                        let mut c = c1.clone();
                        c.extend(c2.iter().cloned());
                        next.push(c);
                    }
                }
                acc = next;
            }
            acc
        }
        Formula::Or(fs) => {
            // f₁ ∨ (¬f₁ ∧ f₂) ∨ (¬f₁ ∧ ¬f₂ ∧ f₃) ∨ …
            let mut out = Vec::new();
            for (i, g) in fs.iter().enumerate() {
                let mut guarded = Formula::And(
                    fs[..i]
                        .iter()
                        .map(|h| h.clone().not().nnf(false))
                        .chain(std::iter::once(g.clone()))
                        .collect(),
                );
                if i == 0 {
                    guarded = g.clone();
                }
                out.extend(dnf_rec(&guarded.nnf(false)));
            }
            out
        }
        Formula::Exists(..) | Formula::Forall(..) => unreachable!("quantifier-free input"),
    }
}

/// Deduplicate, drop `x = x`, detect contradictions. Returns `None` when
/// the clause is unsatisfiable on syntactic grounds.
fn simplify_clause(mut clause: Vec<Lit>) -> Option<Vec<Lit>> {
    clause.retain(|l| l.trivial_truth() != Some(true));
    if clause.iter().any(|l| l.trivial_truth() == Some(false)) {
        return None;
    }
    clause.sort();
    clause.dedup();
    for l in &clause {
        if clause.binary_search(&l.negated()).is_ok() {
            return None;
        }
    }
    Some(clause)
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: RelId = RelId(0);

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn rel(a: u32, b: u32) -> Formula {
        Formula::Rel(R, vec![v(a), v(b)])
    }

    /// Evaluate a clause / formula under a truth assignment for testing.
    fn eval_lit(l: &Lit, edges: &[(u32, u32)], eqs: bool) -> bool {
        match l {
            Lit::Rel { args, positive, .. } => {
                let present = edges.contains(&(args[0].0, args[1].0));
                present == *positive
            }
            Lit::Eq { a, b, positive } => ((a == b) || eqs) == *positive,
        }
    }

    fn eval_formula(f: &Formula, edges: &[(u32, u32)]) -> bool {
        match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Rel(_, args) => edges.contains(&(args[0].0, args[1].0)),
            Formula::Eq(a, b) => a == b,
            Formula::Not(g) => !eval_formula(g, edges),
            Formula::And(fs) => fs.iter().all(|g| eval_formula(g, edges)),
            Formula::Or(fs) => fs.iter().any(|g| eval_formula(g, edges)),
            _ => unreachable!(),
        }
    }

    /// The key property: over every assignment, exactly as many clauses
    /// hold as the formula does (0 or 1) — i.e. the decomposition is an
    /// exclusive cover.
    fn assert_exclusive_cover(f: &Formula, num_pairs: usize) {
        let clauses = exclusive_dnf(f);
        let pairs: Vec<(u32, u32)> = (0..3u32)
            .flat_map(|a| (0..3u32).map(move |b| (a, b)))
            .take(num_pairs)
            .collect();
        for mask in 0u32..(1 << pairs.len()) {
            let edges: Vec<(u32, u32)> = pairs
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, p)| *p)
                .collect();
            let want = eval_formula(f, &edges) as usize;
            let got = clauses
                .iter()
                .filter(|c| c.iter().all(|l| eval_lit(l, &edges, false)))
                .count();
            assert_eq!(got, want, "mask {mask:b} for {f:?}");
        }
    }

    #[test]
    fn disjunction_is_exclusive() {
        let f = rel(0, 1).or(rel(1, 2));
        assert_exclusive_cover(&f, 4);
    }

    #[test]
    fn nested_or_and_not() {
        let f = rel(0, 1).or(rel(1, 2).and(rel(2, 0).not())).or(rel(2, 0));
        assert_exclusive_cover(&f, 4);
    }

    #[test]
    fn demorgan_negation() {
        let f = (rel(0, 1).and(rel(1, 2))).not();
        assert_exclusive_cover(&f, 4);
    }

    #[test]
    fn contradictions_are_dropped() {
        let f = rel(0, 1).and(rel(0, 1).not());
        assert!(exclusive_dnf(&f).is_empty());
        let g = Formula::neq(v(0), v(0));
        assert!(exclusive_dnf(&g).is_empty());
    }

    #[test]
    fn trivial_equalities_are_removed() {
        let f = Formula::Eq(v(0), v(0)).and(rel(0, 1));
        let d = exclusive_dnf(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].len(), 1, "x=x dropped: {:?}", d[0]);
    }

    #[test]
    fn true_false_constants() {
        assert_eq!(exclusive_dnf(&Formula::True), vec![Vec::<Lit>::new()]);
        assert!(exclusive_dnf(&Formula::False).is_empty());
    }

    #[test]
    #[should_panic(expected = "quantifier-free")]
    fn quantifiers_rejected() {
        let f = Formula::Exists(v(0), Box::new(rel(0, 1)));
        exclusive_dnf(&f);
    }

    #[test]
    fn component_locality_check() {
        // positive atoms connect
        assert!(rel(0, 1).answers_component_local());
        assert!(rel(0, 1).and(rel(1, 2)).answers_component_local());
        // connection through a quantified middle variable
        let through = Formula::Exists(v(1), Box::new(rel(0, 1).and(rel(1, 2))));
        assert!(through.answers_component_local());
        // equality connects
        assert!(Formula::Eq(v(0), v(1)).answers_component_local());
        // negation does not
        assert!(!rel(0, 1).not().answers_component_local());
        assert!(!rel(0, 1)
            .not()
            .and(Formula::neq(v(0), v(1)))
            .answers_component_local());
        // disjunction: both branches must connect
        assert!(rel(0, 1).or(rel(1, 0)).answers_component_local());
        assert!(!rel(0, 1).or(rel(1, 2)).answers_component_local());
        // disconnected conjunction
        let s = Formula::Rel(RelId(1), vec![v(0)]);
        let t = Formula::Rel(RelId(2), vec![v(1)]);
        assert!(!s.clone().and(t).answers_component_local());
        // exactly 1 free variable is always local
        assert!(s.answers_component_local());
        // closed formulas are never admitted: the empty-tuple answer
        // belongs to no component (sharding would duplicate it)
        assert!(!Formula::True.answers_component_local());
        assert!(!Formula::False.answers_component_local());
        // unsatisfiable formulas (with free variables) are vacuously local
        assert!(Formula::False
            .and(rel(0, 1).not())
            .answers_component_local());
    }

    #[test]
    fn free_vars_respect_binders() {
        let f = Formula::Exists(v(0), Box::new(rel(0, 1).and(rel(1, 2))));
        assert_eq!(f.free_vars(), vec![v(1), v(2)]);
    }
}
