//! Weighted expressions and their normal forms: system **S5**.
//!
//! Section 3 of the paper defines `Σ(w)`-expressions — the query language
//! built from semiring constants, weight symbols, Iverson brackets `[φ]`
//! of first-order formulas, `+`, `·`, and aggregation `Σ_x`. This crate
//! provides:
//!
//! * [`Formula`] — first-order formulas over a relational signature
//!   (function symbols are represented by their graphs, as in the paper's
//!   Gaifman-graph convention);
//! * [`Expr`] — weighted expressions, generic over the semiring;
//! * [`normalize`] — the Lemma 28 simplification composed with
//!   distribution into *sum terms*: every expression is rewritten into an
//!   equivalent combination `Σ_i cᵢ · Σ_{x̄} Π [literal] · Π w(x)`, with
//!   the bracket formulas decomposed into **mutually exclusive**
//!   conjunctions of literals (the exclusivity that Lemma 32 needs for
//!   sums of shapes to count each tuple exactly once);
//! * failure-mode checks: quantified brackets are surfaced as
//!   [`NormalizeError::Quantifier`] so the caller can run the guarded
//!   quantifier elimination of `agq-core` first.

mod expr;
mod formula;
mod norm;
mod parser;

pub use expr::Expr;
pub use formula::{exclusive_dnf, Formula, Lit};
pub use norm::{normalize, NormalForm, NormalizeError, SumTerm};
pub use parser::{parse_expr, parse_formula, ParseError, VarTable};

/// A query variable (interned per query; use small consecutive ids).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}
