//! A text surface syntax for weighted expressions and formulas.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! expr    := term ('+' term)*
//! term    := factor ('*' factor)*
//! factor  := NUMBER                      — semiring constant (via the
//!                                          caller-supplied literal parser)
//!          | 'sum' vars '.' term         — Σ_{vars} (scopes over the
//!                                          following product)
//!          | '[' formula ']'             — Iverson bracket
//!          | name '(' vars ')'           — weight symbol (resolved
//!                                          against the signature)
//!          | '(' expr ')'
//! formula := disj ; disj := conj ('|' conj)* ; conj := lit ('&' lit)*
//! lit     := '!' lit
//!          | 'exists' var '.' lit | 'forall' var '.' lit
//!          | name '(' vars ')'           — relation symbol
//!          | var '=' var | var '!=' var
//!          | 'true' | 'false' | '(' formula ')'
//! vars    := var (',' var)*
//! ```
//!
//! Variables are interned in order of first appearance; the returned
//! [`VarTable`] maps names to [`Var`]s (free variables keep stable
//! positions for querying).
//!
//! ```
//! use agq_logic::{parse_expr, Expr};
//! use agq_semiring::Nat;
//! use agq_structure::Signature;
//!
//! let mut sig = Signature::new();
//! sig.add_relation("E", 2);
//! sig.add_weight("w", 1);
//! let (expr, vars) = parse_expr::<Nat>(
//!     "sum x,y. [E(x,y) & !(x = y)] * w(x) * w(y)",
//!     &sig,
//!     |s| s.parse::<u64>().ok().map(Nat),
//! ).unwrap();
//! assert!(expr.free_vars().is_empty());
//! assert_eq!(vars.names().len(), 2);
//! # let _: Expr<Nat> = expr;
//! ```

use crate::expr::Expr;
use crate::formula::Formula;
use crate::Var;
use agq_semiring::Semiring;
use agq_structure::Signature;
use std::fmt;

/// Variable name interning produced by the parser.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    /// The interned names, indexed by `Var` id.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Lookup a variable by name.
    pub fn var(&self, name: &str) -> Option<Var> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }

    fn intern(&mut self, name: &str) -> Var {
        match self.names.iter().position(|n| n == name) {
            Some(i) => Var(i as u32),
            None => {
                self.names.push(name.to_owned());
                Var(self.names.len() as u32 - 1)
            }
        }
    }
}

/// Parse errors with byte offsets into the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a weighted expression. `lit` parses semiring literals (numbers).
pub fn parse_expr<S: Semiring>(
    src: &str,
    sig: &Signature,
    lit: impl Fn(&str) -> Option<S>,
) -> Result<(Expr<S>, VarTable), ParseError> {
    let mut p = Parser::new(src, sig);
    let e = p.expr(&lit)?;
    p.skip_ws();
    if p.pos < p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok((e, p.vars))
}

/// Parse a bare first-order formula (for [`crate::Formula`]-level APIs
/// such as answer enumeration).
pub fn parse_formula(src: &str, sig: &Signature) -> Result<(Formula, VarTable), ParseError> {
    let mut p = Parser::new(src, sig);
    let f = p.formula()?;
    p.skip_ws();
    if p.pos < p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok((f, p.vars))
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    sig: &'a Signature,
    vars: VarTable,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, sig: &'a Signature) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            sig,
            vars: VarTable::default(),
        }
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start || self.src[start].is_ascii_digit() {
            self.pos = start;
            None
        } else {
            Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
        }
    }

    fn number(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_digit()
                || self.src[self.pos] == b'.'
                || self.src[self.pos] == b'-' && self.pos == start)
        {
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let end = self.pos + kw.len();
        if end <= self.src.len()
            && &self.src[self.pos..end] == kw.as_bytes()
            && end.checked_sub(self.src.len()).is_none_or(|_| true)
            && (end == self.src.len()
                || !(self.src[end].is_ascii_alphanumeric() || self.src[end] == b'_'))
        {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn var_list(&mut self) -> Result<Vec<Var>, ParseError> {
        let mut out = Vec::new();
        loop {
            let name = self.ident().ok_or_else(|| self.err("expected variable"))?;
            out.push(self.vars.intern(&name));
            if !self.eat(b',') {
                break;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------ expressions

    fn expr<S: Semiring>(
        &mut self,
        lit: &impl Fn(&str) -> Option<S>,
    ) -> Result<Expr<S>, ParseError> {
        let mut terms = vec![self.term(lit)?];
        while self.eat(b'+') {
            terms.push(self.term(lit)?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("nonempty")
        } else {
            Expr::Add(terms)
        })
    }

    fn term<S: Semiring>(
        &mut self,
        lit: &impl Fn(&str) -> Option<S>,
    ) -> Result<Expr<S>, ParseError> {
        let mut factors = vec![self.factor(lit)?];
        while self.eat(b'*') {
            factors.push(self.factor(lit)?);
        }
        Ok(if factors.len() == 1 {
            factors.pop().expect("nonempty")
        } else {
            Expr::Mul(factors)
        })
    }

    fn factor<S: Semiring>(
        &mut self,
        lit: &impl Fn(&str) -> Option<S>,
    ) -> Result<Expr<S>, ParseError> {
        self.skip_ws();
        if self.keyword("sum") {
            let vars = self.var_list()?;
            self.expect(b'.')?;
            // the sum scopes over the whole following product
            let body = self.term(lit)?;
            return Ok(Expr::Sum(vars, Box::new(body)));
        }
        if self.eat(b'[') {
            let f = self.formula()?;
            self.expect(b']')?;
            return Ok(Expr::Bracket(f));
        }
        if self.eat(b'(') {
            let e = self.expr(lit)?;
            self.expect(b')')?;
            return Ok(e);
        }
        let save = self.pos;
        if let Some(name) = self.ident() {
            self.expect(b'(')?;
            let args = self.var_list()?;
            self.expect(b')')?;
            return match self.sig.weight(&name) {
                Some(w) => {
                    if self.sig.weight_arity(w) != args.len() {
                        self.pos = save;
                        Err(self.err(&format!(
                            "weight {name} has arity {}, got {}",
                            self.sig.weight_arity(w),
                            args.len()
                        )))
                    } else {
                        Ok(Expr::Weight(w, args))
                    }
                }
                None => {
                    self.pos = save;
                    Err(self.err(&format!(
                        "unknown weight symbol {name:?} (relations go inside [..])"
                    )))
                }
            };
        }
        if let Some(num) = self.number() {
            return match lit(&num) {
                Some(s) => Ok(Expr::Const(s)),
                None => Err(self.err(&format!("cannot parse literal {num:?} in this semiring"))),
            };
        }
        Err(self.err("expected a factor"))
    }

    // ------------------------------------------------ formulas

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.conj()?];
        while self.eat(b'|') {
            parts.push(self.conj()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Formula::Or(parts)
        })
    }

    fn conj(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.literal()?];
        while self.eat(b'&') {
            parts.push(self.literal()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Formula::And(parts)
        })
    }

    fn literal(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        if self.eat(b'!') {
            return Ok(Formula::Not(Box::new(self.literal()?)));
        }
        if self.keyword("exists") {
            let name = self.ident().ok_or_else(|| self.err("expected variable"))?;
            let v = self.vars.intern(&name);
            self.expect(b'.')?;
            return Ok(Formula::Exists(v, Box::new(self.literal()?)));
        }
        if self.keyword("forall") {
            let name = self.ident().ok_or_else(|| self.err("expected variable"))?;
            let v = self.vars.intern(&name);
            self.expect(b'.')?;
            return Ok(Formula::Forall(v, Box::new(self.literal()?)));
        }
        if self.keyword("true") {
            return Ok(Formula::True);
        }
        if self.keyword("false") {
            return Ok(Formula::False);
        }
        if self.eat(b'(') {
            let f = self.formula()?;
            self.expect(b')')?;
            return Ok(f);
        }
        let save = self.pos;
        if let Some(name) = self.ident() {
            // relation atom or equality
            self.skip_ws();
            if self.peek() == Some(b'(') {
                self.expect(b'(')?;
                let args = self.var_list()?;
                self.expect(b')')?;
                return match self.sig.relation(&name) {
                    Some(r) => {
                        if self.sig.relation_arity(r) != args.len() {
                            self.pos = save;
                            Err(self.err(&format!(
                                "relation {name} has arity {}, got {}",
                                self.sig.relation_arity(r),
                                args.len()
                            )))
                        } else {
                            Ok(Formula::Rel(r, args))
                        }
                    }
                    None => {
                        self.pos = save;
                        Err(self.err(&format!("unknown relation symbol {name:?}")))
                    }
                };
            }
            // equality / inequality
            let a = self.vars.intern(&name);
            if self.eat(b'=') {
                let rhs = self.ident().ok_or_else(|| self.err("expected variable"))?;
                let b = self.vars.intern(&rhs);
                return Ok(Formula::Eq(a, b));
            }
            if self.peek() == Some(b'!') {
                self.pos += 1;
                self.expect(b'=')?;
                let rhs = self.ident().ok_or_else(|| self.err("expected variable"))?;
                let b = self.vars.intern(&rhs);
                return Ok(Formula::neq(a, b));
            }
            self.pos = save;
            return Err(self.err("expected '(', '=' or '!=' after identifier"));
        }
        Err(self.err("expected a formula"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_semiring::{MinPlus, Nat};

    fn sig() -> Signature {
        let mut s = Signature::new();
        s.add_relation("E", 2);
        s.add_relation("S", 1);
        s.add_weight("w", 1);
        s.add_weight("c", 2);
        s
    }

    fn nat(s: &str) -> Option<Nat> {
        s.parse::<u64>().ok().map(Nat)
    }

    #[test]
    fn parses_triangle_query() {
        let (e, vars) = parse_expr::<Nat>(
            "sum x,y,z. [E(x,y) & E(y,z) & E(z,x)] * c(x,y) * c(y,z) * c(z,x)",
            &sig(),
            nat,
        )
        .unwrap();
        assert!(e.free_vars().is_empty());
        assert_eq!(vars.names(), &["x", "y", "z"]);
        match e {
            Expr::Sum(vs, _) => assert_eq!(vs.len(), 3),
            other => panic!("expected Sum, got {other:?}"),
        }
    }

    #[test]
    fn parses_constants_and_addition() {
        let (e, _) = parse_expr::<Nat>("3 * sum x. w(x) + 5", &sig(), nat).unwrap();
        // precedence: (3 * Σ) + 5
        assert!(matches!(e, Expr::Add(_)));
    }

    #[test]
    fn parses_quantifiers_and_negation() {
        let (f, vars) = parse_formula("exists y. (E(x,y) & !S(y)) | x = y", &sig()).unwrap();
        assert!(!f.is_quantifier_free());
        assert_eq!(vars.var("x"), Some(Var(1)));
    }

    #[test]
    fn parses_inequality() {
        let (f, _) = parse_formula("E(x,y) & x != y", &sig()).unwrap();
        let clauses = crate::exclusive_dnf(&f);
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].len(), 2);
    }

    #[test]
    fn semantic_equivalence_with_ast_construction() {
        let s = sig();
        let (parsed, vars) = parse_expr::<Nat>("sum x,y. [E(x,y)] * w(x)", &s, nat).unwrap();
        let x = vars.var("x").unwrap();
        let y = vars.var("y").unwrap();
        let manual: Expr<Nat> = Expr::Bracket(Formula::Rel(s.relation("E").unwrap(), vec![x, y]))
            .times(Expr::Weight(s.weight("w").unwrap(), vec![x]))
            .sum_over([x, y]);
        // equality up to nesting: compare normal forms
        let a = crate::normalize(&parsed).unwrap();
        let b = crate::normalize(&manual).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tropical_literals() {
        let (e, _) = parse_expr::<MinPlus>("sum x. c(x,x) + 7", &sig(), |s| {
            s.parse::<u64>().ok().map(MinPlus)
        })
        .unwrap();
        assert!(matches!(e, Expr::Add(_)));
    }

    #[test]
    fn error_unknown_symbol() {
        let err = parse_expr::<Nat>("sum x. q(x)", &sig(), nat).unwrap_err();
        assert!(err.message.contains("unknown weight symbol"), "{err}");
    }

    #[test]
    fn error_wrong_arity() {
        let err = parse_expr::<Nat>("w(x,y)", &sig(), nat).unwrap_err();
        assert!(err.message.contains("arity"), "{err}");
    }

    #[test]
    fn error_trailing_input() {
        let err = parse_expr::<Nat>("w(x) )", &sig(), nat).unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn error_relation_in_expression_position() {
        let err = parse_expr::<Nat>("E(x,y)", &sig(), nat).unwrap_err();
        assert!(err.message.contains("relations go inside"), "{err}");
    }
}
