//! Normalization of weighted expressions into sum terms (Lemma 28 +
//! the distribution step of Lemma 32).

use crate::expr::Expr;
use crate::formula::{exclusive_dnf, Lit};
use crate::Var;
use agq_semiring::Semiring;
use agq_structure::WeightId;
use std::fmt;

/// One *sum term*: `coeff · Σ_{sum_vars} Π [lit] · Π w(x̄)`.
///
/// The normal form of every weighted expression is a finite sum of these
/// (mutual exclusivity of the bracket decomposition guarantees no double
/// counting). Variables not in `sum_vars` are free; the compiler treats
/// them via the `v_i`-weight trick of Theorem 8.
#[derive(Clone, Debug, PartialEq)]
pub struct SumTerm<S> {
    /// Constant multiplier.
    pub coeff: S,
    /// Variables aggregated over (deduplicated; may include variables
    /// that no literal or weight mentions — those simply range over the
    /// whole domain).
    pub sum_vars: Vec<Var>,
    /// Conjunction of literals (the Iverson factor).
    pub lits: Vec<Lit>,
    /// Weight factors (symbol, argument variables). A symbol may repeat.
    pub weights: Vec<(WeightId, Vec<Var>)>,
}

impl<S: Semiring> SumTerm<S> {
    fn constant(coeff: S) -> Self {
        SumTerm {
            coeff,
            sum_vars: Vec::new(),
            lits: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Variables mentioned by literals or weights.
    pub fn mentioned_vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = self
            .lits
            .iter()
            .flat_map(Lit::vars)
            .chain(self.weights.iter().flat_map(|(_, vs)| vs.iter().copied()))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Free variables: mentioned but not summed.
    pub fn free_vars(&self) -> Vec<Var> {
        self.mentioned_vars()
            .into_iter()
            .filter(|v| !self.sum_vars.contains(v))
            .collect()
    }

    fn substitute(&mut self, from: Var, to: Var) {
        let sub = |v: &mut Var| {
            if *v == from {
                *v = to;
            }
        };
        for l in &mut self.lits {
            match l {
                Lit::Rel { args, .. } => args.iter_mut().for_each(sub),
                Lit::Eq { a, b, .. } => {
                    sub(a);
                    sub(b);
                }
            }
        }
        for (_, args) in &mut self.weights {
            args.iter_mut().for_each(sub);
        }
    }

    /// Resolve positive equalities by substitution, drop trivial literals,
    /// detect contradictions. Returns `None` for a provably-zero term.
    fn simplify(mut self) -> Option<Self> {
        // Iterate: each pass resolves one equality involving a sum var.
        loop {
            let mut resolved = None;
            for (i, l) in self.lits.iter().enumerate() {
                if let Lit::Eq {
                    a,
                    b,
                    positive: true,
                } = l
                {
                    if a == b {
                        resolved = Some((i, None));
                        break;
                    }
                    // Substitute a sum var by the other side (free vars
                    // must be preserved as representatives).
                    if self.sum_vars.contains(a) {
                        resolved = Some((i, Some((*a, *b))));
                        break;
                    }
                    if self.sum_vars.contains(b) {
                        resolved = Some((i, Some((*b, *a))));
                        break;
                    }
                    // both free: keep the literal as a runtime check
                }
            }
            match resolved {
                None => break,
                Some((i, subst)) => {
                    self.lits.remove(i);
                    if let Some((from, to)) = subst {
                        self.substitute(from, to);
                        self.sum_vars.retain(|v| *v != from);
                    }
                }
            }
        }
        self.lits.retain(|l| l.trivial_truth() != Some(true));
        if self.lits.iter().any(|l| l.trivial_truth() == Some(false)) {
            return None;
        }
        self.lits.sort();
        self.lits.dedup();
        for l in &self.lits {
            if self.lits.binary_search(&l.negated()).is_ok() {
                return None;
            }
        }
        if self.coeff.is_zero() {
            return None;
        }
        self.sum_vars.sort_unstable();
        self.sum_vars.dedup();
        Some(self)
    }
}

impl<S: fmt::Debug> fmt::Display for SumTerm<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}·Σ_{{", self.coeff)?;
        for (i, v) in self.sum_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")?;
        for l in &self.lits {
            write!(f, " [{l}]")?;
        }
        for (w, args) in &self.weights {
            write!(f, " w{}(", w.0)?;
            for (i, v) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// The normal form: a sum of [`SumTerm`]s.
#[derive(Clone, Debug, PartialEq)]
pub struct NormalForm<S> {
    /// The terms; the expression is their sum.
    pub terms: Vec<SumTerm<S>>,
}

impl<S: Semiring> NormalForm<S> {
    /// Free variables across all terms.
    pub fn free_vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = self.terms.iter().flat_map(|t| t.free_vars()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Largest number of sum variables in any term (the `k` that bounds
    /// permanent rows and drives all the exponential-in-query constants).
    pub fn max_sum_vars(&self) -> usize {
        self.terms
            .iter()
            .map(|t| t.sum_vars.len())
            .max()
            .unwrap_or(0)
    }
}

/// Failure modes of normalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormalizeError {
    /// A bracket contains a quantifier; run guarded quantifier elimination
    /// (in `agq-core`) before normalizing.
    Quantifier {
        /// Rendering of the offending subformula.
        formula: String,
    },
}

impl fmt::Display for NormalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalizeError::Quantifier { formula } => write!(
                f,
                "bracket contains quantifiers ({formula}); apply guarded \
                 quantifier elimination first"
            ),
        }
    }
}

impl std::error::Error for NormalizeError {}

/// Normalize an expression into a sum of [`SumTerm`]s, performing the
/// Lemma 28 simplification (brackets → exclusive literal conjunctions)
/// and distributing `·` over `+` and pushing `Σ` inward, with
/// capture-avoiding renaming of bound variables.
pub fn normalize<S: Semiring>(expr: &Expr<S>) -> Result<NormalForm<S>, NormalizeError> {
    let mut fresh = expr.max_var().map_or(0, |m| m + 1);
    let terms = rec(expr, &mut fresh)?;
    let terms = terms.into_iter().filter_map(SumTerm::simplify).collect();
    Ok(NormalForm { terms })
}

fn rec<S: Semiring>(expr: &Expr<S>, fresh: &mut u32) -> Result<Vec<SumTerm<S>>, NormalizeError> {
    match expr {
        Expr::Const(s) => Ok(vec![SumTerm::constant(s.clone())]),
        Expr::Weight(w, args) => {
            let mut t = SumTerm::constant(S::one());
            t.weights.push((*w, args.clone()));
            Ok(vec![t])
        }
        Expr::Bracket(f) => {
            if !f.is_quantifier_free() {
                return Err(NormalizeError::Quantifier {
                    formula: format!("{f:?}"),
                });
            }
            Ok(exclusive_dnf(f)
                .into_iter()
                .map(|clause| {
                    let mut t = SumTerm::constant(S::one());
                    t.lits = clause;
                    t
                })
                .collect())
        }
        Expr::Add(es) => {
            let mut out = Vec::new();
            for e in es {
                out.extend(rec(e, fresh)?);
            }
            Ok(out)
        }
        Expr::Mul(es) => {
            let mut acc = vec![SumTerm::constant(S::one())];
            for e in es {
                let terms = rec(e, fresh)?;
                let mut next = Vec::with_capacity(acc.len() * terms.len());
                for t1 in &acc {
                    for t2 in &terms {
                        next.push(multiply(t1, t2, fresh));
                    }
                }
                acc = next;
            }
            Ok(acc)
        }
        Expr::Sum(vars, e) => {
            let mut terms = rec(e, fresh)?;
            for t in &mut terms {
                for v in vars {
                    if t.sum_vars.contains(v) {
                        // Shadowed: the outer Σ_v sees no free v; it
                        // contributes an unconstrained fresh variable
                        // (a factor of |A|).
                        let nv = Var(*fresh);
                        *fresh += 1;
                        t.sum_vars.push(nv);
                    } else {
                        t.sum_vars.push(*v);
                    }
                }
            }
            Ok(terms)
        }
    }
}

/// Multiply two sum terms: `(Σ_x̄ P)(Σ_ȳ Q) = Σ_{x̄ ȳ'} P·Q'` after
/// renaming the right term's bound variables away from everything.
fn multiply<S: Semiring>(a: &SumTerm<S>, b: &SumTerm<S>, fresh: &mut u32) -> SumTerm<S> {
    let mut b = b.clone();
    let bound: Vec<Var> = b.sum_vars.clone();
    for v in bound {
        let nv = Var(*fresh);
        *fresh += 1;
        b.substitute(v, nv);
        for sv in &mut b.sum_vars {
            if *sv == v {
                *sv = nv;
            }
        }
    }
    let mut out = a.clone();
    out.coeff = a.coeff.mul(&b.coeff);
    out.sum_vars.extend(b.sum_vars);
    out.lits.extend(b.lits);
    out.weights.extend(b.weights);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Formula;
    use agq_semiring::Nat;
    use agq_structure::RelId;

    const E: RelId = RelId(0);
    const W: WeightId = WeightId(0);

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn edge(a: u32, b: u32) -> Formula {
        Formula::Rel(E, vec![v(a), v(b)])
    }

    #[test]
    fn triangle_query_normalizes_to_one_term() {
        // Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ E(z,x)] · w(x,y)
        let f = edge(0, 1).and(edge(1, 2)).and(edge(2, 0));
        let e: Expr<Nat> = Expr::Bracket(f)
            .times(Expr::Weight(W, vec![v(0), v(1)]))
            .sum_over([v(0), v(1), v(2)]);
        let nf = normalize(&e).unwrap();
        assert_eq!(nf.terms.len(), 1);
        let t = &nf.terms[0];
        assert_eq!(t.sum_vars.len(), 3);
        assert_eq!(t.lits.len(), 3);
        assert_eq!(t.weights.len(), 1);
        assert!(nf.free_vars().is_empty());
    }

    #[test]
    fn disjunction_splits_into_exclusive_terms() {
        let e: Expr<Nat> = Expr::Bracket(edge(0, 1).or(edge(1, 0))).sum_over([v(0), v(1)]);
        let nf = normalize(&e).unwrap();
        assert_eq!(nf.terms.len(), 2);
        // second term must carry the exclusion literal ¬E(x0,x1)
        let with_neg = nf
            .terms
            .iter()
            .filter(|t| {
                t.lits.iter().any(|l| {
                    matches!(
                        l,
                        Lit::Rel {
                            positive: false,
                            ..
                        }
                    )
                })
            })
            .count();
        assert_eq!(with_neg, 1);
    }

    #[test]
    fn product_of_sums_renames_bound_vars() {
        // (Σ_x w(x)) · (Σ_x w(x)) must become Σ_{x,x'} w(x)·w(x')
        let s: Expr<Nat> = Expr::Weight(W, vec![v(0)]).sum_over([v(0)]);
        let e = s.clone().times(s);
        let nf = normalize(&e).unwrap();
        assert_eq!(nf.terms.len(), 1);
        let t = &nf.terms[0];
        assert_eq!(t.sum_vars.len(), 2);
        assert_ne!(t.weights[0].1, t.weights[1].1, "bound vars distinct");
    }

    #[test]
    fn shadowed_sum_becomes_domain_factor() {
        // Σ_x Σ_x w(x): the outer sum sees no free x — it contributes an
        // unconstrained variable.
        let inner: Expr<Nat> = Expr::Weight(W, vec![v(0)]).sum_over([v(0)]);
        let e = inner.sum_over([v(0)]);
        let nf = normalize(&e).unwrap();
        assert_eq!(nf.terms.len(), 1);
        assert_eq!(nf.terms[0].sum_vars.len(), 2);
        assert_eq!(nf.terms[0].weights.len(), 1);
    }

    #[test]
    fn equalities_are_substituted_away() {
        // Σ_{x,y} [x=y] w(x,y) → Σ_x w(x,x)
        let e: Expr<Nat> = Expr::Bracket(Formula::Eq(v(0), v(1)))
            .times(Expr::Weight(W, vec![v(0), v(1)]))
            .sum_over([v(0), v(1)]);
        let nf = normalize(&e).unwrap();
        assert_eq!(nf.terms.len(), 1);
        let t = &nf.terms[0];
        assert_eq!(t.sum_vars.len(), 1);
        assert!(t.lits.is_empty());
        assert_eq!(t.weights[0].1[0], t.weights[0].1[1]);
    }

    #[test]
    fn contradictory_terms_vanish() {
        let e: Expr<Nat> = Expr::Bracket(edge(0, 1).and(edge(0, 1).not())).sum_over([v(0), v(1)]);
        let nf = normalize(&e).unwrap();
        assert!(nf.terms.is_empty());
    }

    #[test]
    fn zero_coefficients_vanish() {
        let e: Expr<Nat> = Expr::Const(Nat(0)).times(Expr::Weight(W, vec![v(0)]));
        let nf = normalize(&e).unwrap();
        assert!(nf.terms.is_empty());
    }

    #[test]
    fn quantified_bracket_is_an_error() {
        let f = Formula::Exists(v(1), Box::new(edge(0, 1)));
        let e: Expr<Nat> = Expr::Bracket(f).sum_over([v(0)]);
        let err = normalize(&e).unwrap_err();
        assert!(matches!(err, NormalizeError::Quantifier { .. }));
    }

    #[test]
    fn free_variables_survive() {
        // f(z) = Σ_x [E(x,z)] w(x): z free
        let e: Expr<Nat> = Expr::Bracket(edge(0, 1))
            .times(Expr::Weight(W, vec![v(0)]))
            .sum_over([v(0)]);
        let nf = normalize(&e).unwrap();
        assert_eq!(nf.free_vars(), vec![v(1)]);
        assert_eq!(nf.max_sum_vars(), 1);
    }
}
