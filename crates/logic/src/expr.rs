//! Weighted `Σ(w)`-expressions.

use crate::formula::Formula;
use crate::Var;
use agq_structure::WeightId;
use std::fmt;

/// A weighted expression over a semiring `S` (Section 3 of the paper):
/// constants, weight symbols applied to variables, Iverson brackets of
/// first-order formulas, `+`, `·`, and aggregation `Σ_x`.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr<S> {
    /// A semiring constant.
    Const(S),
    /// `w(x̄)` — a weight symbol applied to variables.
    Weight(WeightId, Vec<Var>),
    /// `[φ]` — 1 if the formula holds, 0 otherwise.
    Bracket(Formula),
    /// Sum of subexpressions.
    Add(Vec<Expr<S>>),
    /// Product of subexpressions.
    Mul(Vec<Expr<S>>),
    /// `Σ_{x̄} e` — aggregation over all values of the listed variables.
    Sum(Vec<Var>, Box<Expr<S>>),
}

impl<S> Expr<S> {
    /// `e1 + e2` convenience constructor.
    pub fn plus(self, other: Expr<S>) -> Expr<S> {
        Expr::Add(vec![self, other])
    }

    /// `e1 · e2` convenience constructor.
    pub fn times(self, other: Expr<S>) -> Expr<S> {
        Expr::Mul(vec![self, other])
    }

    /// `Σ_x e` convenience constructor.
    pub fn sum_over(self, vars: impl IntoIterator<Item = Var>) -> Expr<S> {
        Expr::Sum(vars.into_iter().collect(), Box::new(self))
    }

    /// Free variables of the expression (weight arguments and free formula
    /// variables, minus `Σ`-bound ones).
    pub fn free_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.free_vars_into(&mut Vec::new(), &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn free_vars_into(&self, bound: &mut Vec<Var>, out: &mut Vec<Var>) {
        match self {
            Expr::Const(_) => {}
            Expr::Weight(_, args) => {
                out.extend(args.iter().filter(|v| !bound.contains(v)));
            }
            Expr::Bracket(f) => {
                out.extend(f.free_vars().into_iter().filter(|v| !bound.contains(v)));
            }
            Expr::Add(es) | Expr::Mul(es) => {
                for e in es {
                    e.free_vars_into(bound, out);
                }
            }
            Expr::Sum(vars, e) => {
                let depth = bound.len();
                bound.extend(vars.iter().copied());
                e.free_vars_into(bound, out);
                bound.truncate(depth);
            }
        }
    }

    /// The largest variable id mentioned anywhere (bound or free), used to
    /// mint fresh variables during normalization.
    pub fn max_var(&self) -> Option<u32> {
        match self {
            Expr::Const(_) => None,
            Expr::Weight(_, args) => args.iter().map(|v| v.0).max(),
            Expr::Bracket(f) => max_var_formula(f),
            Expr::Add(es) | Expr::Mul(es) => es.iter().filter_map(Expr::max_var).max(),
            Expr::Sum(vars, e) => vars
                .iter()
                .map(|v| v.0)
                .max()
                .into_iter()
                .chain(e.max_var())
                .max(),
        }
    }
}

fn max_var_formula(f: &Formula) -> Option<u32> {
    match f {
        Formula::True | Formula::False => None,
        Formula::Rel(_, args) => args.iter().map(|v| v.0).max(),
        Formula::Eq(a, b) => Some(a.0.max(b.0)),
        Formula::Not(g) => max_var_formula(g),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().filter_map(max_var_formula).max(),
        Formula::Exists(v, g) | Formula::Forall(v, g) => {
            Some(max_var_formula(g).map_or(v.0, |m| m.max(v.0)))
        }
    }
}

impl<S: fmt::Debug> fmt::Display for Expr<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(s) => write!(f, "{s:?}"),
            Expr::Weight(w, args) => {
                write!(f, "w{}(", w.0)?;
                for (i, v) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Expr::Bracket(formula) => write!(f, "[{formula:?}]"),
            Expr::Add(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Mul(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Sum(vars, e) => {
                write!(f, "Σ_{{")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}} {e}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_semiring::Nat;
    use agq_structure::RelId;

    #[test]
    fn free_vars_of_sum() {
        let x = Var(0);
        let y = Var(1);
        let e: Expr<Nat> = Expr::Bracket(Formula::Rel(RelId(0), vec![x, y]))
            .times(Expr::Weight(WeightId(0), vec![x]))
            .sum_over([x]);
        assert_eq!(e.free_vars(), vec![y]);
        assert_eq!(e.max_var(), Some(1));
    }

    #[test]
    fn display_roundtrips_shape() {
        let x = Var(0);
        let e: Expr<Nat> = Expr::Weight(WeightId(0), vec![x]).sum_over([x]);
        assert_eq!(format!("{e}"), "Σ_{x0} w0(x0)");
    }
}
