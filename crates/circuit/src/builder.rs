//! Circuit construction with topological invariants and zero/one pruning.

use crate::{Circuit, ConstRef, GateDef, GateId};

/// Builds a [`Circuit`] gate by gate. Children must already exist, so ids
/// are topological by construction. Trivial algebra is folded eagerly:
/// multiplying by a known `0`/`1` constant, adding `0`s, and permanents
/// with a structurally-zero column for some row short-circuit, which is
/// what keeps compiled circuits linear-size under support pruning.
#[derive(Default)]
pub struct CircuitBuilder {
    gates: Vec<GateDef>,
    num_slots: u32,
    num_lits: u32,
    zero: Option<GateId>,
    one: Option<GateId>,
}

impl CircuitBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, def: GateDef) -> GateId {
        let id = GateId(self.gates.len() as u32);
        self.gates.push(def);
        id
    }

    /// An input gate reading `slot`.
    pub fn input(&mut self, slot: u32) -> GateId {
        self.num_slots = self.num_slots.max(slot + 1);
        self.push(GateDef::Input(slot))
    }

    /// The shared `0` constant gate.
    pub fn zero(&mut self) -> GateId {
        if let Some(z) = self.zero {
            return z;
        }
        let z = self.push(GateDef::Const(ConstRef::Zero));
        self.zero = Some(z);
        z
    }

    /// The shared `1` constant gate.
    pub fn one(&mut self) -> GateId {
        if let Some(o) = self.one {
            return o;
        }
        let o = self.push(GateDef::Const(ConstRef::One));
        self.one = Some(o);
        o
    }

    /// A literal-table constant gate.
    pub fn lit(&mut self, index: u32) -> GateId {
        self.num_lits = self.num_lits.max(index + 1);
        self.push(GateDef::Const(ConstRef::Lit(index)))
    }

    /// Is this gate the structural zero constant?
    pub fn is_zero(&self, g: GateId) -> bool {
        matches!(self.gates[g.0 as usize], GateDef::Const(ConstRef::Zero))
    }

    /// Is this gate the structural one constant?
    pub fn is_one(&self, g: GateId) -> bool {
        matches!(self.gates[g.0 as usize], GateDef::Const(ConstRef::One))
    }

    /// Sum of `children`, folding structural zeros.
    pub fn add(&mut self, children: &[GateId]) -> GateId {
        let kids: Vec<GateId> = children
            .iter()
            .copied()
            .filter(|&g| !self.is_zero(g))
            .collect();
        match kids.len() {
            0 => self.zero(),
            1 => kids[0],
            _ => self.push(GateDef::Add(kids)),
        }
    }

    /// Product of two gates, folding structural zeros and ones.
    pub fn mul(&mut self, a: GateId, b: GateId) -> GateId {
        if self.is_zero(a) || self.is_zero(b) {
            return self.zero();
        }
        if self.is_one(a) {
            return b;
        }
        if self.is_one(b) {
            return a;
        }
        self.push(GateDef::Mul(a, b))
    }

    /// Product of a list of gates.
    pub fn mul_all(&mut self, gs: &[GateId]) -> GateId {
        let mut acc = self.one();
        for &g in gs {
            acc = self.mul(acc, g);
        }
        acc
    }

    /// Permanent gate over columns of height `rows`.
    ///
    /// Structural pruning: columns that are all-zero are dropped (they can
    /// never be selected); if fewer columns than rows remain, the permanent
    /// is structurally zero. A 1-row permanent over a single column is that
    /// column's entry; a 0-row permanent is `1`.
    pub fn perm(&mut self, rows: usize, cols: &[[GateId; 2]]) -> GateId
    where
        [GateId; 2]: Sized,
    {
        // convenience wrapper for the common 2-row case
        let flat: Vec<GateId> = cols.iter().flat_map(|c| c.iter().copied()).collect();
        self.perm_flat(rows, flat)
    }

    /// Permanent gate from column-major flattened children
    /// (`flat.len() = rows · n`).
    pub fn perm_flat(&mut self, rows: usize, flat: Vec<GateId>) -> GateId {
        assert!(rows <= agq_perm::MAX_ROWS, "too many permanent rows");
        if rows == 0 {
            return self.one();
        }
        assert_eq!(flat.len() % rows, 0, "ragged permanent matrix");
        // Drop all-zero columns.
        let mut kept: Vec<GateId> = Vec::with_capacity(flat.len());
        for col in flat.chunks_exact(rows) {
            if col.iter().any(|&g| !self.is_zero(g)) {
                kept.extend_from_slice(col);
            }
        }
        let n = kept.len() / rows;
        if n < rows {
            return self.zero();
        }
        if rows == 1 && n == 1 {
            return kept[0];
        }
        self.push(GateDef::Perm {
            rows: rows as u8,
            cols: kept,
        })
    }

    /// Finish with the given output gate.
    pub fn finish(self, output: GateId) -> Circuit {
        assert!(
            (output.0 as usize) < self.gates.len(),
            "output gate out of range"
        );
        Circuit {
            gates: self.gates,
            num_slots: self.num_slots,
            num_lits: self.num_lits,
            output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_semiring::Nat;

    #[test]
    fn zero_one_folding() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let z = b.zero();
        let o = b.one();
        assert_eq!(b.mul(x, o), x);
        assert_eq!(b.mul(x, z), z);
        assert_eq!(b.add(&[x, z]), x);
        assert_eq!(b.add(&[z, z]), z);
        let c = b.finish(x);
        assert_eq!(c.eval(&[Nat(7)], &[]), Nat(7));
    }

    #[test]
    fn perm_drops_zero_columns() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let z = b.zero();
        // 1-row permanent = sum; zero column dropped, singleton collapses
        let p = b.perm_flat(1, vec![x, z, y]);
        let c = b.finish(p);
        assert_eq!(c.eval(&[Nat(3), Nat(4)], &[]), Nat(7));
    }

    #[test]
    fn underfull_perm_is_zero() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let z = b.zero();
        // 2 rows but only one nonzero column
        let p = b.perm_flat(2, vec![x, x, z, z]);
        assert!(b.is_zero(p));
    }

    #[test]
    fn zero_row_perm_is_one() {
        let mut b = CircuitBuilder::new();
        let p = b.perm_flat(0, vec![]);
        assert!(b.is_one(p));
    }

    #[test]
    fn ids_are_topological() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let m = b.mul(x, y);
        let s = b.add(&[m, x]);
        let c = b.finish(s);
        for (i, g) in c.gates().iter().enumerate() {
            let ok = match g {
                GateDef::Input(_) | GateDef::Const(_) => true,
                GateDef::Add(ks) => ks.iter().all(|k| (k.0 as usize) < i),
                GateDef::Mul(a, b2) => (a.0 as usize) < i && (b2.0 as usize) < i,
                GateDef::Perm { cols, .. } => cols.iter().all(|k| (k.0 as usize) < i),
            };
            assert!(ok, "gate {i} references later gate");
        }
    }
}
