//! Circuit construction with topological invariants and zero/one pruning.

use crate::{ChildRange, Circuit, ConstRef, GateDef, GateId};

/// Builds a [`Circuit`] gate by gate. Children must already exist, so ids
/// are topological by construction. Trivial algebra is folded eagerly:
/// multiplying by a known `0`/`1` constant, adding `0`s, and permanents
/// with a structurally-zero column for some row short-circuit, which is
/// what keeps compiled circuits linear-size under support pruning.
///
/// Child lists are appended to one shared arena (see the crate docs on
/// the flat IR); a finished circuit owns exactly two gate buffers no
/// matter how many gates it has.
#[derive(Default)]
pub struct CircuitBuilder {
    gates: Vec<GateDef>,
    children: Vec<GateId>,
    num_slots: u32,
    num_lits: u32,
    zero: Option<GateId>,
    one: Option<GateId>,
}

impl CircuitBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, def: GateDef) -> GateId {
        let id = GateId(self.gates.len() as u32);
        self.gates.push(def);
        id
    }

    /// Append `kids` to the arena, returning their range.
    fn intern_children(&mut self, kids: &[GateId]) -> ChildRange {
        let start = self.children.len() as u32;
        self.children.extend_from_slice(kids);
        ChildRange {
            start,
            len: kids.len() as u32,
        }
    }

    /// An input gate reading `slot`.
    pub fn input(&mut self, slot: u32) -> GateId {
        self.num_slots = self.num_slots.max(slot + 1);
        self.push(GateDef::Input(slot))
    }

    /// The shared `0` constant gate.
    pub fn zero(&mut self) -> GateId {
        if let Some(z) = self.zero {
            return z;
        }
        let z = self.push(GateDef::Const(ConstRef::Zero));
        self.zero = Some(z);
        z
    }

    /// The shared `1` constant gate.
    pub fn one(&mut self) -> GateId {
        if let Some(o) = self.one {
            return o;
        }
        let o = self.push(GateDef::Const(ConstRef::One));
        self.one = Some(o);
        o
    }

    /// A literal-table constant gate.
    pub fn lit(&mut self, index: u32) -> GateId {
        self.num_lits = self.num_lits.max(index + 1);
        self.push(GateDef::Const(ConstRef::Lit(index)))
    }

    /// Is this gate the structural zero constant?
    pub fn is_zero(&self, g: GateId) -> bool {
        matches!(self.gates[g.0 as usize], GateDef::Const(ConstRef::Zero))
    }

    /// Is this gate the structural one constant?
    pub fn is_one(&self, g: GateId) -> bool {
        matches!(self.gates[g.0 as usize], GateDef::Const(ConstRef::One))
    }

    /// Sum of `children`, folding structural zeros.
    pub fn add(&mut self, children: &[GateId]) -> GateId {
        let nonzero = children.iter().filter(|&&g| !self.is_zero(g)).count();
        match nonzero {
            0 => self.zero(),
            1 => *children
                .iter()
                .find(|&&g| !self.is_zero(g))
                .expect("one nonzero child"),
            _ => {
                let start = self.children.len() as u32;
                for &g in children {
                    if !self.is_zero(g) {
                        self.children.push(g);
                    }
                }
                self.push(GateDef::Add(ChildRange {
                    start,
                    len: nonzero as u32,
                }))
            }
        }
    }

    /// Product of two gates, folding structural zeros and ones.
    pub fn mul(&mut self, a: GateId, b: GateId) -> GateId {
        if self.is_zero(a) || self.is_zero(b) {
            return self.zero();
        }
        if self.is_one(a) {
            return b;
        }
        if self.is_one(b) {
            return a;
        }
        self.push(GateDef::Mul(a, b))
    }

    /// Product of a list of gates.
    pub fn mul_all(&mut self, gs: &[GateId]) -> GateId {
        let mut acc = self.one();
        for &g in gs {
            acc = self.mul(acc, g);
        }
        acc
    }

    /// Permanent gate over columns of height `rows`.
    ///
    /// Structural pruning: columns that are all-zero are dropped (they can
    /// never be selected); if fewer columns than rows remain, the permanent
    /// is structurally zero. A 1-row permanent over a single column is that
    /// column's entry; a 0-row permanent is `1`.
    pub fn perm(&mut self, rows: usize, cols: &[[GateId; 2]]) -> GateId
    where
        [GateId; 2]: Sized,
    {
        // convenience wrapper for the common 2-row case
        let flat: Vec<GateId> = cols.iter().flat_map(|c| c.iter().copied()).collect();
        self.perm_flat(rows, flat)
    }

    /// Permanent gate from column-major flattened children
    /// (`flat.len() = rows · n`).
    pub fn perm_flat(&mut self, rows: usize, mut flat: Vec<GateId>) -> GateId {
        assert!(rows <= agq_perm::MAX_ROWS, "too many permanent rows");
        if rows == 0 {
            return self.one();
        }
        assert_eq!(flat.len() % rows, 0, "ragged permanent matrix");
        // Drop all-zero columns, compacting in place.
        let mut write = 0;
        for ci in 0..flat.len() / rows {
            let col = &flat[ci * rows..(ci + 1) * rows];
            if col.iter().any(|&g| !self.is_zero(g)) {
                flat.copy_within(ci * rows..(ci + 1) * rows, write);
                write += rows;
            }
        }
        flat.truncate(write);
        let n = flat.len() / rows;
        if n < rows {
            return self.zero();
        }
        if rows == 1 && n == 1 {
            return flat[0];
        }
        let cols = self.intern_children(&flat);
        self.push(GateDef::Perm {
            rows: rows as u8,
            cols,
        })
    }

    /// The gates built so far, in topological order (read access for
    /// deterministic circuit merging — see agq-core's parallel compiler).
    pub fn gates(&self) -> &[GateDef] {
        &self.gates
    }

    /// Resolve a child range against this builder's arena (read access
    /// for deterministic circuit merging).
    pub fn children(&self, range: ChildRange) -> &[GateId] {
        &self.children[range.start as usize..(range.start + range.len) as usize]
    }

    /// Number of gates built so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether no gates were built yet.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Finish with the given output gate.
    pub fn finish(self, output: GateId) -> Circuit {
        assert!(
            (output.0 as usize) < self.gates.len(),
            "output gate out of range"
        );
        Circuit {
            gates: self.gates,
            children: self.children,
            num_slots: self.num_slots,
            num_lits: self.num_lits,
            output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_semiring::Nat;

    #[test]
    fn zero_one_folding() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let z = b.zero();
        let o = b.one();
        assert_eq!(b.mul(x, o), x);
        assert_eq!(b.mul(x, z), z);
        assert_eq!(b.add(&[x, z]), x);
        assert_eq!(b.add(&[z, z]), z);
        let c = b.finish(x);
        assert_eq!(c.eval(&[Nat(7)], &[]), Nat(7));
    }

    #[test]
    fn perm_drops_zero_columns() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let z = b.zero();
        // 1-row permanent = sum; zero column dropped, singleton collapses
        let p = b.perm_flat(1, vec![x, z, y]);
        let c = b.finish(p);
        assert_eq!(c.eval(&[Nat(3), Nat(4)], &[]), Nat(7));
    }

    #[test]
    fn underfull_perm_is_zero() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let z = b.zero();
        // 2 rows but only one nonzero column
        let p = b.perm_flat(2, vec![x, x, z, z]);
        assert!(b.is_zero(p));
    }

    #[test]
    fn zero_row_perm_is_one() {
        let mut b = CircuitBuilder::new();
        let p = b.perm_flat(0, vec![]);
        assert!(b.is_one(p));
    }

    #[test]
    fn add_folds_interior_zeros() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let z = b.zero();
        let s = b.add(&[x, z, y, z]);
        let c = b.finish(s);
        match c.gates()[s.0 as usize] {
            GateDef::Add(r) => assert_eq!(c.children(r), &[x, y]),
            ref g => panic!("expected add, got {g:?}"),
        }
        assert_eq!(c.eval(&[Nat(3), Nat(4)], &[]), Nat(7));
    }

    #[test]
    fn ids_are_topological() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let m = b.mul(x, y);
        let s = b.add(&[m, x]);
        let c = b.finish(s);
        for (i, g) in c.gates().iter().enumerate() {
            let ok = match g {
                GateDef::Input(_) | GateDef::Const(_) => true,
                GateDef::Add(r) => c.children(*r).iter().all(|k| (k.0 as usize) < i),
                GateDef::Mul(a, b2) => (a.0 as usize) < i && (b2.0 as usize) < i,
                GateDef::Perm { cols, .. } => c.children(*cols).iter().all(|k| (k.0 as usize) < i),
            };
            assert!(ok, "gate {i} references later gate");
        }
    }
}
