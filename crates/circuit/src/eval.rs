//! One-shot circuit evaluation, and the bulk-sum kernels shared with the
//! dynamic evaluators.
//!
//! # Kernel contract (fold order and when bulk paths engage)
//!
//! Every add-gate sum in the engine — one-shot [`eval_gates`], the dynamic
//! evaluator's recompute/drain, the peek overlays, and the enumeration
//! count side — produces values **bit-identical** to the *canonical fold*:
//! the 4-lane chunked accumulation of [`agq_semiring::lane_sum_slice`]
//! (element `4k+j` → lane `j`, lanes merged `(l0+l1)+(l2+l3)`, tail
//! scalar). [`sum_children`] below is that fold expressed as a gather over
//! child gate ids; the two are maintained in lockstep.
//!
//! The vectorized paths replace the gather with slice kernels without
//! breaking that contract, by engaging in two tiers:
//!
//! 1. **Full run** — the gate's children are one contiguous ascending id
//!    range, so the child sequence *is* a `&values[lo..hi]` slice. Handing
//!    it to [`Semiring::sum_slice`] preserves the operand sequence, and
//!    `sum_slice` is specified to reproduce the canonical fold bit-for-bit
//!    (its default *is* `lane_sum_slice`; specialized overrides are only
//!    permitted for carriers whose addition is order/grouping-insensitive
//!    at the bit level). Safe for **every** carrier, floats included.
//! 2. **Per-run decomposition** — children split into several maximal
//!    contiguous runs, each summed as a slice and the partial sums folded.
//!    This changes the *grouping* of the sum, so it is gated on
//!    [`Semiring::ORDER_INSENSITIVE_ADD`]; order-sensitive carriers
//!    (`F64`, `MaxF`, `Rat`, `Poly`, pairs) fall back to the scalar
//!    gather whenever the segment is not a single full run.
//!
//! A carrier may specialize `sum_slice`/`add_assign_slices` iff any fold
//! of any permutation of the summands yields the same bits (declared via
//! `ORDER_INSENSITIVE_ADD = true`); the machine-word carriers (`Nat`,
//! `Int`, `Bool`, `Mod`, integer tropicals) do, with tight loops LLVM
//! auto-vectorizes. The differential suite in
//! `tests/vector_differential.rs` pins the bit-identity across all three
//! evaluator backends.

use crate::{Circuit, ConstRef, GateDef};
use agq_perm::PrefixPerm;
use agq_semiring::Semiring;

use crate::GateId;

/// Shortest run worth routing through [`Semiring::sum_slice`]: below
/// this, the call + bounds overhead beats any vectorization win, so
/// shorter runs fold scalar.
pub(crate) const MIN_RUN: usize = 4;

/// Whether `kids` is a single contiguous ascending id run (`lo, lo+1, …`),
/// i.e. the child sequence coincides with `&values[lo..lo+len]`.
#[inline]
pub(crate) fn is_full_run(kids: &[GateId]) -> bool {
    kids.windows(2).all(|w| w[1].0 == w[0].0 + 1)
}

/// Sum an add gate's child segment using the precomputed maximal
/// contiguous runs `(lo, len)` from the plan's dense-run analysis.
///
/// Tier selection per the module contract: single full run → bulk
/// [`Semiring::sum_slice`] for any carrier; several runs → per-run slices
/// only for `ORDER_INSENSITIVE_ADD` carriers (short runs are folded
/// scalar — the slice-call overhead only pays off from ~4 elements);
/// otherwise the canonical scalar gather.
pub(crate) fn sum_add<S: Semiring>(kids: &[GateId], runs: &[(u32, u32)], values: &[S]) -> S {
    if let [(lo, len)] = runs {
        if *len as usize == kids.len() {
            return S::sum_slice(&values[*lo as usize..(*lo + *len) as usize]);
        }
    }
    if S::ORDER_INSENSITIVE_ADD && !runs.is_empty() {
        let mut acc = S::zero();
        for &(lo, len) in runs {
            let seg = &values[lo as usize..(lo + len) as usize];
            if len as usize >= MIN_RUN {
                acc.add_assign(&S::sum_slice(seg));
            } else {
                for v in seg {
                    acc.add_assign(v);
                }
            }
        }
        return acc;
    }
    sum_children(kids, |c| &values[c.0 as usize])
}

/// Chunked accumulation over an addition gate's child segment of the CSR
/// arena: four independent accumulator lanes folded at the end, so wide
/// fan-in sums (the domain-sized aggregates at the circuit root) pipeline
/// instead of serializing on one accumulator. Every evaluation path —
/// one-shot [`eval_gates`], the dynamic evaluator's recompute, and the
/// peek overlays — sums through this helper, so add-gate values are
/// bit-identical across paths even for non-associative carriers (floats).
pub(crate) fn sum_children<'a, S, F>(children: &[GateId], get: F) -> S
where
    S: Semiring + 'a,
    F: Fn(GateId) -> &'a S,
{
    const LANES: usize = 4;
    if children.len() < 2 * LANES {
        let mut acc = S::zero();
        for &c in children {
            acc.add_assign(get(c));
        }
        return acc;
    }
    let mut lanes = [S::zero(), S::zero(), S::zero(), S::zero()];
    let chunks = children.chunks_exact(LANES);
    let rest = chunks.remainder();
    for chunk in chunks {
        for (lane, &c) in lanes.iter_mut().zip(chunk) {
            lane.add_assign(get(c));
        }
    }
    let [a, b, c, d] = lanes;
    let mut acc = a.add(&b).add(&c.add(&d));
    for &g in rest {
        acc.add_assign(get(g));
    }
    acc
}

/// Evaluate every gate of `circuit` in topological order, returning the
/// full value vector. Permanent gates use the streaming subset DP
/// (`O(n·2^k·k)` per gate, linear overall for fixed `k`).
pub fn eval_gates<S: Semiring>(circuit: &Circuit, slots: &[S], lits: &[S]) -> Vec<S> {
    let mut values: Vec<S> = Vec::with_capacity(circuit.gates().len());
    // One column buffer reused across every permanent gate (hoisted out of
    // the gate loop; `clear` keeps the allocation).
    let mut col_buf: Vec<S> = Vec::new();
    for gate in circuit.gates() {
        let v = match gate {
            GateDef::Input(slot) => slots[*slot as usize].clone(),
            GateDef::Const(ConstRef::Zero) => S::zero(),
            GateDef::Const(ConstRef::One) => S::one(),
            GateDef::Const(ConstRef::Lit(i)) => lits[*i as usize].clone(),
            GateDef::Add(children) => {
                let kids = circuit.children(*children);
                // Dense fast path: a contiguous ascending child range is a
                // value slice (tier 1 of the kernel contract — safe for
                // every carrier). The O(len) id scan is integer compares
                // against a gather of O(len) random loads + clones.
                if kids.len() >= MIN_RUN && is_full_run(kids) {
                    let lo = kids[0].0 as usize;
                    S::sum_slice(&values[lo..lo + kids.len()])
                } else {
                    sum_children(kids, |c| &values[c.0 as usize])
                }
            }
            GateDef::Mul(a, b) => values[a.0 as usize].mul(&values[b.0 as usize]),
            GateDef::Perm { rows, cols } => {
                let k = *rows as usize;
                let mut acc = PrefixPerm::new(k);
                for col in circuit.children(*cols).chunks_exact(k) {
                    col_buf.clear();
                    col_buf.extend(col.iter().map(|g| values[g.0 as usize].clone()));
                    acc.push_col(&col_buf);
                }
                acc.total().clone()
            }
        };
        values.push(v);
    }
    values
}

#[cfg(test)]
mod tests {
    use crate::CircuitBuilder;
    use agq_semiring::Nat;

    #[test]
    fn nested_gates_evaluate() {
        // (x0 + x1) · perm1([x0, x1, 1])
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let s = b.add(&[x0, x1]);
        let one = b.one();
        let p = b.perm_flat(1, vec![x0, x1, one]);
        let m = b.mul(s, p);
        let c = b.finish(m);
        // (2+3) * (2+3+1) = 30
        assert_eq!(c.eval(&[Nat(2), Nat(3)], &[]), Nat(30));
    }

    #[test]
    fn three_row_perm_inside_circuit() {
        let mut b = CircuitBuilder::new();
        let inputs: Vec<_> = (0..9).map(|i| b.input(i)).collect();
        let cols: Vec<_> = (0..3)
            .map(|c| [inputs[c * 3], inputs[c * 3 + 1], inputs[c * 3 + 2]])
            .collect();
        let flat: Vec<_> = cols.iter().flat_map(|x| x.iter().copied()).collect();
        let p = b.perm_flat(3, flat);
        let c = b.finish(p);
        let slots: Vec<Nat> = (1..=9).map(Nat).collect();
        // permanent of [[1,4,7],[2,5,8],[3,6,9]] (column-major cols) = 450
        let m = agq_perm::ColMatrix::from_rows(&[
            vec![Nat(1), Nat(4), Nat(7)],
            vec![Nat(2), Nat(5), Nat(8)],
            vec![Nat(3), Nat(6), Nat(9)],
        ]);
        assert_eq!(c.eval(&slots, &[]), agq_perm::perm_naive(&m));
    }
}
