//! One-shot circuit evaluation.

use crate::{Circuit, ConstRef, GateDef};
use agq_perm::PrefixPerm;
use agq_semiring::Semiring;

use crate::GateId;

/// Chunked accumulation over an addition gate's child segment of the CSR
/// arena: four independent accumulator lanes folded at the end, so wide
/// fan-in sums (the domain-sized aggregates at the circuit root) pipeline
/// instead of serializing on one accumulator. Every evaluation path —
/// one-shot [`eval_gates`], the dynamic evaluator's recompute, and the
/// peek overlays — sums through this helper, so add-gate values are
/// bit-identical across paths even for non-associative carriers (floats).
pub(crate) fn sum_children<'a, S, F>(children: &[GateId], get: F) -> S
where
    S: Semiring + 'a,
    F: Fn(GateId) -> &'a S,
{
    const LANES: usize = 4;
    if children.len() < 2 * LANES {
        let mut acc = S::zero();
        for &c in children {
            acc.add_assign(get(c));
        }
        return acc;
    }
    let mut lanes = [S::zero(), S::zero(), S::zero(), S::zero()];
    let chunks = children.chunks_exact(LANES);
    let rest = chunks.remainder();
    for chunk in chunks {
        for (lane, &c) in lanes.iter_mut().zip(chunk) {
            lane.add_assign(get(c));
        }
    }
    let [a, b, c, d] = lanes;
    let mut acc = a.add(&b).add(&c.add(&d));
    for &g in rest {
        acc.add_assign(get(g));
    }
    acc
}

/// Evaluate every gate of `circuit` in topological order, returning the
/// full value vector. Permanent gates use the streaming subset DP
/// (`O(n·2^k·k)` per gate, linear overall for fixed `k`).
pub fn eval_gates<S: Semiring>(circuit: &Circuit, slots: &[S], lits: &[S]) -> Vec<S> {
    let mut values: Vec<S> = Vec::with_capacity(circuit.gates().len());
    for gate in circuit.gates() {
        let v = match gate {
            GateDef::Input(slot) => slots[*slot as usize].clone(),
            GateDef::Const(ConstRef::Zero) => S::zero(),
            GateDef::Const(ConstRef::One) => S::one(),
            GateDef::Const(ConstRef::Lit(i)) => lits[*i as usize].clone(),
            GateDef::Add(children) => {
                sum_children(circuit.children(*children), |c| &values[c.0 as usize])
            }
            GateDef::Mul(a, b) => values[a.0 as usize].mul(&values[b.0 as usize]),
            GateDef::Perm { rows, cols } => {
                let k = *rows as usize;
                let mut acc = PrefixPerm::new(k);
                let mut col_buf: Vec<S> = Vec::with_capacity(k);
                for col in circuit.children(*cols).chunks_exact(k) {
                    col_buf.clear();
                    col_buf.extend(col.iter().map(|g| values[g.0 as usize].clone()));
                    acc.push_col(&col_buf);
                }
                acc.total().clone()
            }
        };
        values.push(v);
    }
    values
}

#[cfg(test)]
mod tests {
    use crate::CircuitBuilder;
    use agq_semiring::Nat;

    #[test]
    fn nested_gates_evaluate() {
        // (x0 + x1) · perm1([x0, x1, 1])
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let s = b.add(&[x0, x1]);
        let one = b.one();
        let p = b.perm_flat(1, vec![x0, x1, one]);
        let m = b.mul(s, p);
        let c = b.finish(m);
        // (2+3) * (2+3+1) = 30
        assert_eq!(c.eval(&[Nat(2), Nat(3)], &[]), Nat(30));
    }

    #[test]
    fn three_row_perm_inside_circuit() {
        let mut b = CircuitBuilder::new();
        let inputs: Vec<_> = (0..9).map(|i| b.input(i)).collect();
        let cols: Vec<_> = (0..3)
            .map(|c| [inputs[c * 3], inputs[c * 3 + 1], inputs[c * 3 + 2]])
            .collect();
        let flat: Vec<_> = cols.iter().flat_map(|x| x.iter().copied()).collect();
        let p = b.perm_flat(3, flat);
        let c = b.finish(p);
        let slots: Vec<Nat> = (1..=9).map(Nat).collect();
        // permanent of [[1,4,7],[2,5,8],[3,6,9]] (column-major cols) = 450
        let m = agq_perm::ColMatrix::from_rows(&[
            vec![Nat(1), Nat(4), Nat(7)],
            vec![Nat(2), Nat(5), Nat(8)],
            vec![Nat(3), Nat(6), Nat(9)],
        ]);
        assert_eq!(c.eval(&slots, &[]), agq_perm::perm_naive(&m));
    }
}
