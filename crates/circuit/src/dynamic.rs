//! Dynamic circuit evaluation under input updates (Theorem 8's engine).

use crate::csr::{Csr, CsrBuilder};
use crate::{Circuit, GateDef, GateId};
use agq_perm::{ColMatrix, FinitePerm, RingPerm, SegTreePerm};
use agq_semiring::{FiniteSemiring, Ring, Semiring};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A maintenance structure for one permanent gate: how updates to matrix
/// entries are absorbed and the permanent re-read.
///
/// The three implementations are exactly the paper's case split:
///
/// | semiring  | structure                  | update cost      | ref |
/// |-----------|----------------------------|------------------|-----|
/// | arbitrary | [`SegTreePerm`]            | `O(3^k log n)`   | Cor. 13 (tight, Prop. 14) |
/// | ring      | [`RingPerm`]               | `O_k(1)`         | Cor. 17 |
/// | finite    | [`FinitePerm`]             | `O_{k,|S|}(1)`   | Cor. 20 |
pub trait PermMaint<S: Semiring> {
    /// Build from the initial matrix.
    fn build(m: ColMatrix<S>) -> Self;
    /// Overwrite one entry.
    fn update(&mut self, row: usize, col: usize, value: S);
    /// Current permanent. Reads are free: implementations cache the value
    /// across updates.
    fn total(&self) -> &S;
    /// The permanent with some entries replaced, computed **without
    /// mutating** the structure (the zero-restore query path). Later
    /// patches to the same entry win.
    fn peek(&self, patches: &[(usize, usize, S)]) -> S;
}

impl<S: Semiring> PermMaint<S> for SegTreePerm<S> {
    fn build(m: ColMatrix<S>) -> Self {
        SegTreePerm::build(m)
    }
    fn update(&mut self, row: usize, col: usize, value: S) {
        SegTreePerm::update(self, row, col, value);
    }
    fn total(&self) -> &S {
        SegTreePerm::total(self)
    }
    fn peek(&self, patches: &[(usize, usize, S)]) -> S {
        SegTreePerm::peek(self, patches)
    }
}

/// Ring-backed permanent maintenance (constant-time updates). The total
/// is cached so reads return a reference.
pub struct RingMaint<S: Ring> {
    perm: RingPerm<S>,
    total: S,
}

impl<S: Ring> PermMaint<S> for RingMaint<S> {
    fn build(m: ColMatrix<S>) -> Self {
        let perm = RingPerm::build(m);
        let total = perm.total();
        RingMaint { perm, total }
    }
    fn update(&mut self, row: usize, col: usize, value: S) {
        self.perm.update(row, col, value);
        self.total = self.perm.total();
    }
    fn total(&self) -> &S {
        &self.total
    }
    fn peek(&self, patches: &[(usize, usize, S)]) -> S {
        self.perm.peek(patches)
    }
}

/// Finite-semiring permanent maintenance (constant-time updates). The
/// total is cached so reads return a reference.
pub struct FiniteMaint<S: FiniteSemiring> {
    perm: FinitePerm<S>,
    total: S,
}

impl<S: FiniteSemiring> PermMaint<S> for FiniteMaint<S> {
    fn build(m: ColMatrix<S>) -> Self {
        let perm = FinitePerm::build(m);
        let total = perm.total();
        FiniteMaint { perm, total }
    }
    fn update(&mut self, row: usize, col: usize, value: S) {
        self.perm.update(row, col, value);
        self.total = self.perm.total();
    }
    fn total(&self) -> &S {
        &self.total
    }
    fn peek(&self, patches: &[(usize, usize, S)]) -> S {
        self.perm.peek(patches)
    }
}

#[derive(Clone, Copy, Debug)]
enum ParentRef {
    Add(u32),
    Mul(u32),
    Perm { gate: u32, row: u8, col: u32 },
}

/// Sentinel for "gate is not a permanent" in the dense perm index.
const NO_PERM: u32 = u32::MAX;

/// Dynamic evaluator: caches every gate value and repairs them under input
/// updates, routing permanent-entry changes through a [`PermMaint`].
///
/// Update cost is `O(affected gates · per-gate cost)`; for circuits
/// produced by the Theorem 6 compiler the number of affected gates per
/// input is query-bounded (bounded fan-out, bounded depth), giving the
/// `O(log |A|)` / `O(1)` bounds of Theorem 8.
///
/// Like the circuit itself, the evaluator's adjacency is flat: parent
/// lists and per-slot input-gate lists are [`Csr`] buffers (one offset
/// table plus one contiguous payload each), built in two counting
/// passes — no per-gate allocations, no per-update clones.
pub struct DynEvaluator<S: Semiring, P: PermMaint<S>> {
    circuit: Arc<Circuit>,
    values: Vec<S>,
    /// Parents of each gate.
    parents: Csr<ParentRef>,
    /// Gate id → index into `perms` (`NO_PERM` for non-perm gates).
    perm_index: Vec<u32>,
    /// Perm-gate maintenance structures, dense, in gate order.
    perms: Vec<P>,
    /// Input gates of each slot.
    slot_gates: Csr<u32>,
    slot_values: Vec<S>,
}

impl<S: Semiring, P: PermMaint<S>> DynEvaluator<S, P> {
    /// Build from an initial input assignment, evaluating once.
    pub fn new(circuit: Arc<Circuit>, slots: &[S], lits: &[S]) -> Self {
        assert_eq!(slots.len(), circuit.num_slots());
        assert_eq!(lits.len(), circuit.num_lits());
        let values = crate::eval_gates(&circuit, slots, lits);
        let gates = circuit.gates();
        let n = gates.len();

        // Pass 1: count parent references and input gates per slot.
        let mut parents = CsrBuilder::new(n);
        let mut slot_gates = CsrBuilder::new(circuit.num_slots());
        let mut num_perms = 0usize;
        for g in gates {
            match g {
                GateDef::Input(slot) => slot_gates.count(*slot as usize),
                GateDef::Const(_) => {}
                GateDef::Add(r) => {
                    for c in circuit.children(*r) {
                        parents.count(c.0 as usize);
                    }
                }
                GateDef::Mul(a, b) => {
                    parents.count(a.0 as usize);
                    parents.count(b.0 as usize);
                }
                GateDef::Perm { cols, .. } => {
                    num_perms += 1;
                    for c in circuit.children(*cols) {
                        parents.count(c.0 as usize);
                    }
                }
            }
        }

        // Pass 2: fill the flat buffers and build perm maintenance state.
        let mut parents = parents.finish_counts(ParentRef::Add(0));
        let mut slot_gates = slot_gates.finish_counts(0u32);
        let mut perm_index = vec![NO_PERM; n];
        let mut perms: Vec<P> = Vec::with_capacity(num_perms);
        for (i, g) in gates.iter().enumerate() {
            match g {
                GateDef::Input(slot) => slot_gates.place(*slot as usize, i as u32),
                GateDef::Const(_) => {}
                GateDef::Add(r) => {
                    for c in circuit.children(*r) {
                        parents.place(c.0 as usize, ParentRef::Add(i as u32));
                    }
                }
                GateDef::Mul(a, b) => {
                    parents.place(a.0 as usize, ParentRef::Mul(i as u32));
                    parents.place(b.0 as usize, ParentRef::Mul(i as u32));
                }
                GateDef::Perm { rows, cols } => {
                    let k = *rows as usize;
                    let cols = circuit.children(*cols);
                    let mut m = ColMatrix::with_capacity(k, cols.len() / k);
                    let mut buf = Vec::with_capacity(k);
                    for (ci, col) in cols.chunks_exact(k).enumerate() {
                        buf.clear();
                        buf.extend(col.iter().map(|g| values[g.0 as usize].clone()));
                        m.push_col(&buf);
                        for (r, child) in col.iter().enumerate() {
                            parents.place(
                                child.0 as usize,
                                ParentRef::Perm {
                                    gate: i as u32,
                                    row: r as u8,
                                    col: ci as u32,
                                },
                            );
                        }
                    }
                    perm_index[i] = perms.len() as u32;
                    perms.push(P::build(m));
                }
            }
        }
        DynEvaluator {
            circuit,
            values,
            parents: parents.finish(),
            perm_index,
            perms,
            slot_gates: slot_gates.finish(),
            slot_values: slots.to_vec(),
        }
    }

    /// Current output value.
    pub fn output(&self) -> &S {
        &self.values[self.circuit.output().0 as usize]
    }

    /// Current value of any gate.
    pub fn value(&self, g: GateId) -> &S {
        &self.values[g.0 as usize]
    }

    /// Current value of an input slot.
    pub fn slot_value(&self, slot: u32) -> &S {
        &self.slot_values[slot as usize]
    }

    /// Set input `slot` to `value` and repair all affected gates.
    pub fn set_input(&mut self, slot: u32, value: S) {
        if self.slot_values[slot as usize] == value {
            return;
        }
        self.slot_values[slot as usize] = value.clone();
        let mut dirty: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
        for i in 0..self.slot_gates.row(slot as usize).len() {
            let g = self.slot_gates.row(slot as usize)[i];
            if self.values[g as usize] != value {
                self.values[g as usize] = value.clone();
                self.mark_parents(g, &mut dirty);
            }
        }
        while let Some(std::cmp::Reverse(g)) = dirty.pop() {
            // Deduplicate: the same gate may be queued multiple times.
            if dirty.peek() == Some(&std::cmp::Reverse(g)) {
                continue;
            }
            let new = self.recompute(g);
            if self.values[g as usize] != new {
                self.values[g as usize] = new;
                self.mark_parents(g, &mut dirty);
            }
        }
    }

    /// Evaluate the output with some slots *temporarily* overwritten via
    /// full update/restore cycles — the literal query-by-updates trick of
    /// Theorem 8. Prefer [`DynEvaluator::peek`], which computes the same
    /// value without touching (and then repairing) persistent state.
    pub fn peek_with(&mut self, patches: &[(u32, S)]) -> S {
        let saved: Vec<(u32, S)> = patches
            .iter()
            .map(|(s, _)| (*s, self.slot_values[*s as usize].clone()))
            .collect();
        for (s, v) in patches {
            self.set_input(*s, v.clone());
        }
        let out = self.output().clone();
        for (s, v) in saved.into_iter().rev() {
            self.set_input(s, v);
        }
        out
    }

    /// Evaluate the output with some slots overwritten, **without
    /// mutating any state**: only the query-bounded cone above the
    /// patched slots is recomputed, into `scratch`'s overlay. Permanent
    /// gates answer through the non-mutating [`PermMaint::peek`], so
    /// nothing has to be committed or rolled back. The scratch is reused
    /// across calls; clearing is `O(touched)`.
    pub fn peek(&self, patches: &[(u32, S)], scratch: &mut PeekScratch<S>) -> S {
        scratch.begin();
        // Later patches to one slot win; resolve that *before* propagating
        // so a patch back to the base value cancels an earlier one.
        let mut resolved = std::mem::take(&mut scratch.resolved);
        resolved.clear();
        for (i, (slot, _)) in patches.iter().enumerate() {
            match resolved.iter_mut().find(|&&mut (s, _)| s == *slot) {
                Some((_, pi)) => *pi = i,
                None => resolved.push((*slot, i)),
            }
        }
        for &(slot, pi) in &resolved {
            let v = &patches[pi].1;
            let slot = slot as usize;
            if self.slot_values[slot] == *v {
                continue;
            }
            for &g in self.slot_gates.row(slot) {
                if self.values[g as usize] != *v {
                    scratch.set(g, v.clone());
                    self.mark_parents_overlay(g, scratch);
                }
            }
        }
        scratch.resolved = resolved;
        while let Some(std::cmp::Reverse(g)) = scratch.dirty.pop() {
            if scratch.dirty.peek() == Some(&std::cmp::Reverse(g)) {
                continue;
            }
            let new = match &self.circuit.gates()[g as usize] {
                GateDef::Perm { .. } => {
                    // Assemble this permanent's patch list from the flat
                    // per-query buffer (no duplicates possible: every
                    // (row, col) has exactly one child gate, finalized
                    // once).
                    let pi = self.perm_index[g as usize];
                    let mut buf = std::mem::take(&mut scratch.perm_buf);
                    buf.clear();
                    buf.extend(
                        scratch
                            .perm_patches
                            .iter()
                            .filter(|&(p, _r, _c, _v)| *p == pi)
                            .map(|(_p, r, c, v)| (*r as usize, *c as usize, v.clone())),
                    );
                    let out = self.perms[pi as usize].peek(&buf);
                    scratch.perm_buf = buf;
                    out
                }
                _ => self.recompute_overlay(g, scratch),
            };
            if new != self.values[g as usize] {
                scratch.set(g, new);
                self.mark_parents_overlay(g, scratch);
            }
        }
        let out = self.circuit.output().0;
        scratch
            .get(out)
            .cloned()
            .unwrap_or_else(|| self.values[out as usize].clone())
    }

    /// [`DynEvaluator::peek`] with a one-off scratch (convenience for
    /// single queries; batch callers should reuse a [`PeekScratch`]).
    pub fn peek_alloc(&self, patches: &[(u32, S)]) -> S {
        let mut scratch = PeekScratch::new();
        self.peek(patches, &mut scratch)
    }

    fn mark_parents(&mut self, g: u32, dirty: &mut BinaryHeap<std::cmp::Reverse<u32>>) {
        // Perm parents absorb the new child value into their maintenance
        // structure immediately; value recomputation happens in id order.
        for i in 0..self.parents.row(g as usize).len() {
            let p = self.parents.row(g as usize)[i];
            match p {
                ParentRef::Add(pg) | ParentRef::Mul(pg) => {
                    dirty.push(std::cmp::Reverse(pg));
                }
                ParentRef::Perm { gate, row, col } => {
                    let v = self.values[g as usize].clone();
                    let pi = self.perm_index[gate as usize] as usize;
                    self.perms[pi].update(row as usize, col as usize, v);
                    dirty.push(std::cmp::Reverse(gate));
                }
            }
        }
    }

    fn mark_parents_overlay(&self, g: u32, scratch: &mut PeekScratch<S>) {
        for &p in self.parents.row(g as usize) {
            match p {
                ParentRef::Add(pg) | ParentRef::Mul(pg) => {
                    scratch.dirty.push(std::cmp::Reverse(pg));
                }
                ParentRef::Perm { gate, row, col } => {
                    let v = scratch
                        .get(g)
                        .expect("overlaid child value present")
                        .clone();
                    let pi = self.perm_index[gate as usize];
                    scratch.perm_patches.push((pi, row as u32, col, v));
                    scratch.dirty.push(std::cmp::Reverse(gate));
                }
            }
        }
    }

    fn recompute(&self, g: u32) -> S {
        match &self.circuit.gates()[g as usize] {
            GateDef::Input(_) | GateDef::Const(_) => self.values[g as usize].clone(),
            GateDef::Add(children) => {
                let mut acc = S::zero();
                for c in self.circuit.children(*children) {
                    acc.add_assign(&self.values[c.0 as usize]);
                }
                acc
            }
            GateDef::Mul(a, b) => self.values[a.0 as usize].mul(&self.values[b.0 as usize]),
            GateDef::Perm { .. } => self.perms[self.perm_index[g as usize] as usize]
                .total()
                .clone(),
        }
    }

    fn recompute_overlay(&self, g: u32, scratch: &PeekScratch<S>) -> S {
        let eff = |gate: GateId| scratch.get(gate.0).unwrap_or(&self.values[gate.0 as usize]);
        match &self.circuit.gates()[g as usize] {
            GateDef::Input(_) | GateDef::Const(_) => self.values[g as usize].clone(),
            GateDef::Add(children) => {
                let mut acc = S::zero();
                for c in self.circuit.children(*children) {
                    acc.add_assign(eff(*c));
                }
                acc
            }
            GateDef::Mul(a, b) => eff(*a).mul(eff(*b)),
            GateDef::Perm { .. } => unreachable!("perm gates handled in the peek loop"),
        }
    }
}

/// Reusable scratch state of the zero-restore query path
/// ([`DynEvaluator::peek`]): a value overlay over the touched gates,
/// a flat per-query permanent patch buffer, and the dirty queue. One
/// scratch serves any number of queries against evaluators of one
/// circuit; `begin` clears the buffers while keeping their capacity, so
/// the per-query cost is bounded by the scratch's high-water mark, not
/// the circuit size.
///
/// The overlay is a *small* hash map (gate → value, Fx-hashed) rather
/// than a gate-indexed array: a point query touches a query-bounded
/// handful of gates, so the whole scratch stays cache-resident instead of
/// striding through circuit-sized buffers.
pub struct PeekScratch<S> {
    overlay: agq_semiring::fx::FxHashMap<u32, S>,
    /// Flat per-query patch buffer: `(perm index, row, col, value)`.
    perm_patches: Vec<(u32, u32, u32, S)>,
    /// Assembly buffer for one permanent's patches.
    perm_buf: Vec<(usize, usize, S)>,
    dirty: BinaryHeap<std::cmp::Reverse<u32>>,
    /// Slot-dedup buffer: `(slot, index of its last patch)`.
    resolved: Vec<(u32, usize)>,
}

impl<S> PeekScratch<S> {
    /// Empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        PeekScratch {
            overlay: agq_semiring::fx::FxHashMap::default(),
            perm_patches: Vec::new(),
            perm_buf: Vec::new(),
            dirty: BinaryHeap::new(),
            resolved: Vec::new(),
        }
    }

    fn begin(&mut self) {
        self.overlay.clear();
        self.perm_patches.clear();
        self.dirty.clear();
    }

    fn set(&mut self, gate: u32, value: S) {
        self.overlay.insert(gate, value);
    }

    fn get(&self, gate: u32) -> Option<&S> {
        self.overlay.get(&gate)
    }
}

impl<S> Default for PeekScratch<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience alias: dynamic evaluation in an arbitrary semiring
/// (logarithmic updates).
pub type GeneralEvaluator<S> = DynEvaluator<S, SegTreePerm<S>>;

/// Convenience alias: dynamic evaluation in a ring (constant updates).
pub type RingEvaluator<S> = DynEvaluator<S, RingMaint<S>>;

/// Convenience alias: dynamic evaluation in a finite semiring
/// (constant updates).
pub type FiniteEvaluator<S> = DynEvaluator<S, FiniteMaint<S>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;
    use agq_semiring::{Bool, Int, MinPlus, Nat};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Σ_{i≠j} a_i·b_j circuit with 2n slots plus a final +lit.
    fn test_circuit(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let mut flat = Vec::new();
        for i in 0..n {
            let a = b.input(i as u32);
            let w = b.input((n + i) as u32);
            let m = b.mul(a, w); // extra structure: perm entries are gates
            flat.push(a);
            flat.push(m);
        }
        let p = b.perm_flat(2, flat);
        let l = b.lit(0);
        let s = b.add(&[p, l]);
        b.finish(s)
    }

    fn reference_eval(slots: &[Nat], lit: Nat, n: usize) -> Nat {
        // Σ_{i≠j} a_i · (a_j · b_j) + lit
        let mut total = 0u64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    total += slots[i].0 * (slots[j].0 * slots[n + j].0);
                }
            }
        }
        Nat(total + lit.0)
    }

    #[test]
    fn dynamic_updates_match_reference_general() {
        let n = 6;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(5);
        let mut slots: Vec<Nat> = (0..2 * n).map(|_| Nat(rng.gen_range(0..5))).collect();
        let lit = Nat(3);
        let mut ev: GeneralEvaluator<Nat> = DynEvaluator::new(circuit, &slots, &[lit]);
        assert_eq!(*ev.output(), reference_eval(&slots, lit, n));
        for _ in 0..50 {
            let s = rng.gen_range(0..2 * n) as u32;
            let v = Nat(rng.gen_range(0..5));
            slots[s as usize] = v;
            ev.set_input(s, v);
            assert_eq!(*ev.output(), reference_eval(&slots, lit, n));
        }
    }

    #[test]
    fn ring_and_general_agree() {
        let n = 5;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(9);
        let slots: Vec<Int> = (0..2 * n).map(|_| Int(rng.gen_range(-3..4))).collect();
        let mut gen: GeneralEvaluator<Int> = DynEvaluator::new(circuit.clone(), &slots, &[Int(0)]);
        let mut ring: RingEvaluator<Int> = DynEvaluator::new(circuit, &slots, &[Int(0)]);
        for _ in 0..40 {
            let s = rng.gen_range(0..2 * n) as u32;
            let v = Int(rng.gen_range(-3..4));
            gen.set_input(s, v);
            ring.set_input(s, v);
            assert_eq!(gen.output(), ring.output());
        }
    }

    #[test]
    fn finite_evaluator_bool() {
        let n = 4;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(21);
        let slots: Vec<Bool> = (0..2 * n).map(|_| Bool(rng.gen_bool(0.5))).collect();
        let mut fin: FiniteEvaluator<Bool> =
            DynEvaluator::new(circuit.clone(), &slots, &[Bool(false)]);
        let mut gen: GeneralEvaluator<Bool> = DynEvaluator::new(circuit, &slots, &[Bool(false)]);
        for _ in 0..40 {
            let s = rng.gen_range(0..2 * n) as u32;
            let v = Bool(rng.gen_bool(0.5));
            fin.set_input(s, v);
            gen.set_input(s, v);
            assert_eq!(fin.output(), gen.output());
        }
    }

    #[test]
    fn peek_restores_state() {
        let n = 4;
        let circuit = Arc::new(test_circuit(n));
        let slots: Vec<MinPlus> = (0..2 * n).map(|i| MinPlus(i as u64 + 1)).collect();
        let mut ev: GeneralEvaluator<MinPlus> = DynEvaluator::new(circuit, &slots, &[MinPlus::INF]);
        let before = *ev.output();
        let _ = ev.peek_with(&[(0, MinPlus(0)), (3, MinPlus::INF)]);
        assert_eq!(*ev.output(), before);
    }

    /// Run random overlay peeks against `peek_with` on one evaluator and
    /// check values agree and no state changes (the evaluator is also
    /// updated between peeks to vary the base state).
    fn overlay_agrees_with_peek_with<P: PermMaint<Int>>(seed: u64) {
        let n = 5;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(seed);
        let slots: Vec<Int> = (0..2 * n).map(|_| Int(rng.gen_range(-3..4))).collect();
        let mut ev: DynEvaluator<Int, P> = DynEvaluator::new(circuit, &slots, &[Int(2)]);
        let mut scratch = PeekScratch::new();
        for round in 0..40 {
            let patches: Vec<(u32, Int)> = (0..rng.gen_range(1..4))
                .map(|_| (rng.gen_range(0..2 * n) as u32, Int(rng.gen_range(-3..4))))
                .collect();
            let before = *ev.output();
            let peeked = ev.peek(&patches, &mut scratch);
            assert_eq!(*ev.output(), before, "overlay peek must not mutate");
            let classic = ev.peek_with(&patches);
            assert_eq!(peeked, classic, "round {round}: overlay vs peek_with");
            assert_eq!(*ev.output(), before, "peek_with must restore");
            // mutate the base state and keep going
            let s = rng.gen_range(0..2 * n) as u32;
            ev.set_input(s, Int(rng.gen_range(-3..4)));
        }
    }

    #[test]
    fn overlay_peek_general_backend() {
        overlay_agrees_with_peek_with::<SegTreePerm<Int>>(31);
    }

    #[test]
    fn overlay_peek_ring_backend() {
        overlay_agrees_with_peek_with::<RingMaint<Int>>(32);
    }

    #[test]
    fn overlay_peek_finite_backend() {
        // Nat is not finite; use Bool for the finite backend instead.
        let n = 5;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(33);
        let slots: Vec<Bool> = (0..2 * n).map(|_| Bool(rng.gen_bool(0.5))).collect();
        let mut ev: FiniteEvaluator<Bool> = DynEvaluator::new(circuit, &slots, &[Bool(true)]);
        let mut scratch = PeekScratch::new();
        for _ in 0..40 {
            let patches: Vec<(u32, Bool)> = (0..rng.gen_range(1..4))
                .map(|_| (rng.gen_range(0..2 * n) as u32, Bool(rng.gen_bool(0.5))))
                .collect();
            let before = *ev.output();
            let peeked = ev.peek(&patches, &mut scratch);
            assert_eq!(*ev.output(), before);
            assert_eq!(peeked, ev.peek_with(&patches));
            let s = rng.gen_range(0..2 * n) as u32;
            ev.set_input(s, Bool(rng.gen_bool(0.5)));
        }
    }

    #[test]
    fn peek_alloc_matches_scratch_reuse() {
        let n = 4;
        let circuit = Arc::new(test_circuit(n));
        let slots: Vec<Nat> = (0..2 * n).map(|i| Nat(i as u64 % 3)).collect();
        let ev: GeneralEvaluator<Nat> = DynEvaluator::new(circuit, &slots, &[Nat(1)]);
        let patches = [(0u32, Nat(7)), (5u32, Nat(0))];
        let mut scratch = PeekScratch::new();
        assert_eq!(ev.peek(&patches, &mut scratch), ev.peek_alloc(&patches));
        // empty patch list returns the current output
        assert_eq!(ev.peek(&[], &mut scratch), *ev.output());
    }
}
