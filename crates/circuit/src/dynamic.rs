//! Dynamic circuit evaluation under input updates (Theorem 8's engine).
//!
//! # Batched updates and coalesced dirty propagation
//!
//! [`DynEvaluator::set_inputs`] absorbs a whole batch of slot overwrites
//! with **one** dirty-propagation sweep. "Dirty" across a batch means: a
//! gate is queued the moment any child's committed value changes, and is
//! recomputed exactly once, after every child it can see has settled.
//! The single sweep is sound because the queue is a min-heap over gate
//! ids and children always precede parents in the gate arena — popping
//! in ascending id order is a topological schedule no matter how many
//! slots seeded the queue, so interleaving the cones of all batched
//! updates cannot reorder a parent before a child. Gates shared by
//! several update cones (the wide aggregation gates near the root) are
//! therefore recomputed once per batch instead of once per update, which
//! is where the batch throughput win comes from.
//!
//! Permanent-entry changes are coalesced the same way: child-value
//! changes destined for a permanent gate are buffered per sweep and
//! flushed through [`PermMaint::update_batch`] when that gate pops, so a
//! segment-tree backend repairs the union of the touched root paths once
//! ([`agq_perm::SegTreePerm::update_batch`]) rather than per entry.
//!
//! The single-update path ([`DynEvaluator::set_input`]) is the batch
//! path at size one — there is no separate cascade to diverge from.
//! Within a batch, later entries for the same slot win, and entries that
//! net out to the current committed value are dropped before any gate is
//! touched.

use crate::csr::{Csr, CsrBuilder};
use crate::eval::{sum_add, sum_children, MIN_RUN};
use crate::{Circuit, GateDef, GateId};
use agq_perm::{ColMatrix, FinitePerm, RingPerm, SegTreePerm};
use agq_semiring::{FiniteSemiring, Ring, Semiring};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A maintenance structure for one permanent gate: how updates to matrix
/// entries are absorbed and the permanent re-read.
///
/// The three implementations are exactly the paper's case split:
///
/// | semiring  | structure                  | update cost      | ref |
/// |-----------|----------------------------|------------------|-----|
/// | arbitrary | [`SegTreePerm`]            | `O(3^k log n)`   | Cor. 13 (tight, Prop. 14) |
/// | ring      | [`RingPerm`]               | `O_k(1)`         | Cor. 17 |
/// | finite    | [`FinitePerm`]             | `O_{k,|S|}(1)`   | Cor. 20 |
pub trait PermMaint<S: Semiring> {
    /// Build from the initial matrix.
    fn build(m: ColMatrix<S>) -> Self;
    /// Overwrite one entry.
    fn update(&mut self, row: usize, col: usize, value: S);
    /// Overwrite several entries at once. Implementations may repair
    /// shared internal structure once for the whole batch; the default
    /// applies the patches one by one. Later patches to the same entry
    /// win.
    fn update_batch(&mut self, patches: &[(usize, usize, S)]) {
        for (row, col, v) in patches {
            self.update(*row, *col, v.clone());
        }
    }
    /// Current permanent. Reads are free: implementations cache the value
    /// across updates.
    fn total(&self) -> &S;
    /// The permanent with some entries replaced, computed **without
    /// mutating** the structure (the zero-restore query path). Later
    /// patches to the same entry win.
    fn peek(&self, patches: &[(usize, usize, S)]) -> S;
}

impl<S: Semiring> PermMaint<S> for SegTreePerm<S> {
    fn build(m: ColMatrix<S>) -> Self {
        SegTreePerm::build(m)
    }
    fn update(&mut self, row: usize, col: usize, value: S) {
        SegTreePerm::update(self, row, col, value);
    }
    fn update_batch(&mut self, patches: &[(usize, usize, S)]) {
        SegTreePerm::update_batch(self, patches);
    }
    fn total(&self) -> &S {
        SegTreePerm::total(self)
    }
    fn peek(&self, patches: &[(usize, usize, S)]) -> S {
        SegTreePerm::peek(self, patches)
    }
}

/// Ring-backed permanent maintenance (constant-time updates). The total
/// is cached so reads return a reference.
pub struct RingMaint<S: Ring> {
    perm: RingPerm<S>,
    total: S,
}

impl<S: Ring> PermMaint<S> for RingMaint<S> {
    fn build(m: ColMatrix<S>) -> Self {
        let perm = RingPerm::build(m);
        let total = perm.total();
        RingMaint { perm, total }
    }
    fn update(&mut self, row: usize, col: usize, value: S) {
        self.perm.update(row, col, value);
        self.total = self.perm.total();
    }
    fn update_batch(&mut self, patches: &[(usize, usize, S)]) {
        for (row, col, v) in patches {
            self.perm.update(*row, *col, v.clone());
        }
        self.total = self.perm.total();
    }
    fn total(&self) -> &S {
        &self.total
    }
    fn peek(&self, patches: &[(usize, usize, S)]) -> S {
        self.perm.peek(patches)
    }
}

/// Finite-semiring permanent maintenance (constant-time updates). The
/// total is cached so reads return a reference.
pub struct FiniteMaint<S: FiniteSemiring> {
    perm: FinitePerm<S>,
    total: S,
}

impl<S: FiniteSemiring> PermMaint<S> for FiniteMaint<S> {
    fn build(m: ColMatrix<S>) -> Self {
        let perm = FinitePerm::build(m);
        let total = perm.total();
        FiniteMaint { perm, total }
    }
    fn update(&mut self, row: usize, col: usize, value: S) {
        self.perm.update(row, col, value);
        self.total = self.perm.total();
    }
    fn update_batch(&mut self, patches: &[(usize, usize, S)]) {
        for (row, col, v) in patches {
            self.perm.update(*row, *col, v.clone());
        }
        self.total = self.perm.total();
    }
    fn total(&self) -> &S {
        &self.total
    }
    fn peek(&self, patches: &[(usize, usize, S)]) -> S {
        self.perm.peek(patches)
    }
}

#[derive(Clone, Copy, Debug)]
enum ParentRef {
    Add(u32),
    Mul(u32),
    Perm { gate: u32, row: u8, col: u32 },
}

/// Sentinel for "gate is not a permanent" in the dense perm index.
const NO_PERM: u32 = u32::MAX;

/// Visit every maximal contiguous ascending child-id run of every add
/// gate: `f(gate index, first child id, run length)`, runs in child-list
/// order. Shared by the two CSR passes of the dense-run analysis.
fn for_each_add_run(circuit: &Circuit, mut f: impl FnMut(usize, u32, u32)) {
    for (i, g) in circuit.gates().iter().enumerate() {
        let GateDef::Add(r) = g else { continue };
        let kids = circuit.children(*r);
        let mut j = 0;
        while j < kids.len() {
            let lo = kids[j].0;
            let mut len = 1u32;
            while j + (len as usize) < kids.len() && kids[j + len as usize].0 == lo + len {
                len += 1;
            }
            f(i, lo, len);
            j += len as usize;
        }
    }
}

/// The immutable half of dynamic evaluation: everything derived from the
/// circuit topology alone — parent references, per-slot input-gate lists,
/// the dense perm-gate numbering, and (optionally) memoized per-slot peek
/// cones. An `EvalPlan` carries **no values** and is `Send + Sync`, so
/// one `Arc<EvalPlan>` can back any number of [`DynEvaluator`] states —
/// the shard states of a sharded engine, the workers of a batch — without
/// re-deriving the adjacency.
pub struct EvalPlan {
    circuit: Arc<Circuit>,
    /// Parents of each gate.
    parents: Csr<ParentRef>,
    /// Gate id → dense perm index (`NO_PERM` for non-perm gates).
    perm_index: Vec<u32>,
    num_perms: usize,
    /// Input gates of each slot.
    slot_gates: Csr<u32>,
    /// Memoized peek cones: for a memoized slot, the ascending (hence
    /// topologically sorted) gate ids of every gate reachable upward from
    /// the slot's input gates. An empty row means "not memoized" (a slot
    /// read by at least one gate always has a nonempty cone).
    cones: Csr<u32>,
    /// Dense-run analysis: for each add gate, the maximal contiguous
    /// ascending runs `(first child id, length)` of its child segment, in
    /// child-list order (non-add gates have empty rows). Runs partition
    /// the child list, so the evaluators can decompose a sum per run —
    /// see the kernel contract in `eval.rs`.
    add_runs: Csr<(u32, u32)>,
}

/// Summary of the plan's dense-run analysis ([`EvalPlan::dense_run_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DenseRunStats {
    /// Number of add gates.
    pub add_gates: usize,
    /// Add gates whose whole child segment is one contiguous run.
    pub full_run_gates: usize,
    /// Total add-gate child mass (Σ fan-in).
    pub total_children: usize,
    /// Children lying in runs long enough for the bulk tier (≥ `MIN_RUN`).
    pub dense_children: usize,
}

impl DenseRunStats {
    /// Fraction of add-gate child mass the bulk tier can sweep as slices.
    pub fn coverage(&self) -> f64 {
        if self.total_children == 0 {
            return 1.0;
        }
        self.dense_children as f64 / self.total_children as f64
    }
}

impl EvalPlan {
    /// Derive the plan of `circuit` (no cone memoization).
    pub fn new(circuit: Arc<Circuit>) -> Self {
        Self::with_cones(circuit, &[])
    }

    /// Derive the plan and memoize the peek cones of `cone_slots`.
    ///
    /// A slot's cone is static topology: for query-bounded slots (the
    /// `v_i` free-variable indicators of Theorem 8) it has constant size,
    /// and memoizing it lets [`DynEvaluator::peek_memo`] evaluate a point
    /// query by a linear sweep of the precomputed cone instead of
    /// discovering it per query through a heap and a hash map.
    pub fn with_cones(circuit: Arc<Circuit>, cone_slots: &[u32]) -> Self {
        let gates = circuit.gates();
        let n = gates.len();

        // Pass 1: count parent references and input gates per slot.
        let mut parents = CsrBuilder::new(n);
        let mut slot_gates = CsrBuilder::new(circuit.num_slots());
        let mut num_perms = 0usize;
        for g in gates {
            match g {
                GateDef::Input(slot) => slot_gates.count(*slot as usize),
                GateDef::Const(_) => {}
                GateDef::Add(r) => {
                    for c in circuit.children(*r) {
                        parents.count(c.0 as usize);
                    }
                }
                GateDef::Mul(a, b) => {
                    parents.count(a.0 as usize);
                    parents.count(b.0 as usize);
                }
                GateDef::Perm { cols, .. } => {
                    num_perms += 1;
                    for c in circuit.children(*cols) {
                        parents.count(c.0 as usize);
                    }
                }
            }
        }

        // Pass 2: fill the flat adjacency buffers.
        let mut parents = parents.finish_counts(ParentRef::Add(0));
        let mut slot_gates = slot_gates.finish_counts(0u32);
        let mut perm_index = vec![NO_PERM; n];
        let mut next_perm = 0u32;
        for (i, g) in gates.iter().enumerate() {
            match g {
                GateDef::Input(slot) => slot_gates.place(*slot as usize, i as u32),
                GateDef::Const(_) => {}
                GateDef::Add(r) => {
                    for c in circuit.children(*r) {
                        parents.place(c.0 as usize, ParentRef::Add(i as u32));
                    }
                }
                GateDef::Mul(a, b) => {
                    parents.place(a.0 as usize, ParentRef::Mul(i as u32));
                    parents.place(b.0 as usize, ParentRef::Mul(i as u32));
                }
                GateDef::Perm { rows, cols } => {
                    let k = *rows as usize;
                    for (ci, col) in circuit.children(*cols).chunks_exact(k).enumerate() {
                        for (r, child) in col.iter().enumerate() {
                            parents.place(
                                child.0 as usize,
                                ParentRef::Perm {
                                    gate: i as u32,
                                    row: r as u8,
                                    col: ci as u32,
                                },
                            );
                        }
                    }
                    perm_index[i] = next_perm;
                    next_perm += 1;
                }
            }
        }
        let parents = parents.finish();
        let slot_gates = slot_gates.finish();

        // Cone memoization: ascend from each requested slot's input gates
        // through the parent lists, stamping visits; sort for the
        // topological sweep of `peek_memo`.
        let mut stamp = vec![u32::MAX; n];
        let mut cone_of: Vec<(u32, Vec<u32>)> = Vec::with_capacity(cone_slots.len());
        let mut stack: Vec<u32> = Vec::new();
        for (si, &slot) in cone_slots.iter().enumerate() {
            let mut cone: Vec<u32> = Vec::new();
            stack.clear();
            for &g in slot_gates.row(slot as usize) {
                if stamp[g as usize] != si as u32 {
                    stamp[g as usize] = si as u32;
                    stack.push(g);
                    cone.push(g);
                }
            }
            while let Some(g) = stack.pop() {
                for &p in parents.row(g as usize) {
                    let pg = match p {
                        ParentRef::Add(pg) | ParentRef::Mul(pg) => pg,
                        ParentRef::Perm { gate, .. } => gate,
                    };
                    if stamp[pg as usize] != si as u32 {
                        stamp[pg as usize] = si as u32;
                        stack.push(pg);
                        cone.push(pg);
                    }
                }
            }
            cone.sort_unstable();
            cone_of.push((slot, cone));
        }
        let mut cones = CsrBuilder::new(circuit.num_slots());
        for (slot, cone) in &cone_of {
            for _ in cone {
                cones.count(*slot as usize);
            }
        }
        let mut cones = cones.finish_counts(0u32);
        for (slot, cone) in &cone_of {
            for &g in cone {
                cones.place(*slot as usize, g);
            }
        }

        // Dense-run analysis: maximal contiguous ascending child-id runs
        // per add gate, in child-list order (two counting passes into the
        // shared CSR layout like everything else here).
        let mut counting = CsrBuilder::new(n);
        for_each_add_run(&circuit, |i, _, _| counting.count(i));
        let mut add_runs = counting.finish_counts((0u32, 0u32));
        for_each_add_run(&circuit, |i, lo, len| add_runs.place(i, (lo, len)));

        EvalPlan {
            circuit,
            parents,
            perm_index,
            num_perms,
            slot_gates,
            cones: cones.finish(),
            add_runs: add_runs.finish(),
        }
    }

    fn cone(&self, slot: u32) -> &[u32] {
        self.cones.row(slot as usize)
    }

    /// The circuit this plan describes.
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// Whether `slot`'s peek cone was memoized.
    pub fn has_cone(&self, slot: u32) -> bool {
        !self.cones.row(slot as usize).is_empty()
    }

    /// The maximal contiguous child-id runs `(first child id, length)` of
    /// gate `g`'s child segment (empty for non-add gates). The runs
    /// partition the child list in order.
    pub fn add_runs(&self, g: u32) -> &[(u32, u32)] {
        self.add_runs.row(g as usize)
    }

    /// Aggregate dense-run coverage over every add gate of the plan.
    pub fn dense_run_stats(&self) -> DenseRunStats {
        let mut stats = DenseRunStats::default();
        for (i, g) in self.circuit.gates().iter().enumerate() {
            let GateDef::Add(r) = g else { continue };
            stats.add_gates += 1;
            stats.total_children += r.len();
            let runs = self.add_runs.row(i);
            if let [(_, len)] = runs {
                if *len as usize == r.len() {
                    stats.full_run_gates += 1;
                }
            }
            stats.dense_children += runs
                .iter()
                .filter(|&&(_, len)| len as usize >= MIN_RUN)
                .map(|&(_, len)| len as usize)
                .sum::<usize>();
        }
        stats
    }
}

/// Dynamic evaluator: caches every gate value and repairs them under input
/// updates, routing permanent-entry changes through a [`PermMaint`].
///
/// Update cost is `O(affected gates · per-gate cost)`; for circuits
/// produced by the Theorem 6 compiler the number of affected gates per
/// input is query-bounded (bounded fan-out, bounded depth), giving the
/// `O(log |A|)` / `O(1)` bounds of Theorem 8.
///
/// The evaluator is the **mutable half** of the plan/state split: it owns
/// only the per-gate value buffer, the per-perm-gate maintenance
/// structures, and the slot values; all adjacency lives in a shared
/// [`EvalPlan`] (see [`DynEvaluator::from_plan`]). Instantiating another
/// state over the same plan costs one circuit evaluation — no counting
/// passes, no adjacency rebuild.
pub struct DynEvaluator<S: Semiring, P: PermMaint<S>> {
    plan: Arc<EvalPlan>,
    values: Vec<S>,
    /// Perm-gate maintenance structures, dense, in gate order.
    perms: Vec<P>,
    slot_values: Vec<S>,
    /// Reused dirty queue of the update sweep (min-heap over gate ids =
    /// topological schedule).
    dirty: BinaryHeap<std::cmp::Reverse<u32>>,
    /// Perm-entry patches buffered during the current sweep:
    /// `(perm index, row, col, value)`, flushed through
    /// [`PermMaint::update_batch`] when the owning perm gate pops.
    perm_pending: Vec<(u32, u32, u32, S)>,
    /// Assembly buffer for one perm gate's flush.
    perm_flush: Vec<(usize, usize, S)>,
}

impl<S: Semiring, P: PermMaint<S>> DynEvaluator<S, P> {
    /// Build from an initial input assignment, deriving a fresh plan and
    /// evaluating once. Equivalent to
    /// `DynEvaluator::from_plan(Arc::new(EvalPlan::new(circuit)), …)`.
    pub fn new(circuit: Arc<Circuit>, slots: &[S], lits: &[S]) -> Self {
        Self::from_plan(Arc::new(EvalPlan::new(circuit)), slots, lits)
    }

    /// Instantiate a mutable evaluation state over a shared immutable
    /// plan, evaluating the circuit once at `slots`/`lits`.
    pub fn from_plan(plan: Arc<EvalPlan>, slots: &[S], lits: &[S]) -> Self {
        let circuit = &plan.circuit;
        assert_eq!(slots.len(), circuit.num_slots());
        assert_eq!(lits.len(), circuit.num_lits());
        let values = crate::eval_gates(circuit, slots, lits);
        let mut perms: Vec<P> = Vec::with_capacity(plan.num_perms);
        for g in circuit.gates() {
            if let GateDef::Perm { rows, cols } = g {
                let k = *rows as usize;
                let cols = circuit.children(*cols);
                let mut m = ColMatrix::with_capacity(k, cols.len() / k);
                let mut buf = Vec::with_capacity(k);
                for col in cols.chunks_exact(k) {
                    buf.clear();
                    buf.extend(col.iter().map(|g| values[g.0 as usize].clone()));
                    m.push_col(&buf);
                }
                perms.push(P::build(m));
            }
        }
        DynEvaluator {
            plan,
            values,
            perms,
            slot_values: slots.to_vec(),
            dirty: BinaryHeap::new(),
            perm_pending: Vec::new(),
            perm_flush: Vec::new(),
        }
    }

    /// Reinstate a previously saved state over a shared plan without
    /// re-evaluating the circuit: `slot_values` and `values` are the
    /// vectors a live evaluator exposed via
    /// [`slot_value`](Self::slot_value) / [`gate_values`](Self::gate_values).
    ///
    /// Perm maintenance structures are rebuilt with [`PermMaint::build`]
    /// on matrices gathered from the saved `values` — valid because the
    /// update sweep keeps every perm matrix entry equal to the committed
    /// value of its child gate, so the pair `(slot_values, values)` fully
    /// determines the perm state. Lengths are validated (a corrupt
    /// snapshot yields `Err`, not a later out-of-bounds panic); the gate
    /// values themselves are trusted, exactly as a live engine trusts its
    /// own committed buffer.
    pub fn from_saved(
        plan: Arc<EvalPlan>,
        slot_values: Vec<S>,
        values: Vec<S>,
    ) -> Result<Self, &'static str> {
        let circuit = &plan.circuit;
        if slot_values.len() != circuit.num_slots() {
            return Err("saved slot-value count does not match plan");
        }
        if values.len() != circuit.len() {
            return Err("saved gate-value count does not match plan");
        }
        let mut perms: Vec<P> = Vec::with_capacity(plan.num_perms);
        for g in circuit.gates() {
            if let GateDef::Perm { rows, cols } = g {
                let k = *rows as usize;
                let cols = circuit.children(*cols);
                let mut m = ColMatrix::with_capacity(k, cols.len() / k);
                let mut buf = Vec::with_capacity(k);
                for col in cols.chunks_exact(k) {
                    buf.clear();
                    buf.extend(col.iter().map(|g| values[g.0 as usize].clone()));
                    m.push_col(&buf);
                }
                perms.push(P::build(m));
            }
        }
        Ok(DynEvaluator {
            plan,
            values,
            perms,
            slot_values,
            dirty: BinaryHeap::new(),
            perm_pending: Vec::new(),
            perm_flush: Vec::new(),
        })
    }

    /// The shared immutable plan.
    pub fn plan(&self) -> &Arc<EvalPlan> {
        &self.plan
    }

    /// The whole slot-value vector, indexed by slot id (the mutable
    /// counterpart of [`gate_values`](Self::gate_values), exposed for
    /// state snapshotting).
    pub fn slot_values(&self) -> &[S] {
        &self.slot_values
    }

    /// Current output value.
    pub fn output(&self) -> &S {
        &self.values[self.plan.circuit.output().0 as usize]
    }

    /// Current value of any gate.
    pub fn value(&self, g: GateId) -> &S {
        &self.values[g.0 as usize]
    }

    /// Current value of an input slot.
    pub fn slot_value(&self, slot: u32) -> &S {
        &self.slot_values[slot as usize]
    }

    /// The whole committed gate-value vector, indexed by gate id. Lets
    /// rank-table builders scan an add gate's dense child range as one
    /// slice instead of gathering per child.
    pub fn gate_values(&self) -> &[S] {
        &self.values
    }

    /// The maintenance structure of a permanent gate (`None` for
    /// non-permanent gates). Gives rank-descent callers access to
    /// backend-specific queries — e.g. the row-subset permanents of
    /// [`SegTreePerm::peek_rows`] — beyond the [`PermMaint`] interface.
    pub fn perm_maint(&self, g: GateId) -> Option<&P> {
        match self.plan.perm_index[g.0 as usize] {
            NO_PERM => None,
            pi => Some(&self.perms[pi as usize]),
        }
    }

    /// Set input `slot` to `value` and repair all affected gates. This is
    /// [`DynEvaluator::set_inputs`] at batch size one.
    pub fn set_input(&mut self, slot: u32, value: S) {
        if self.slot_values[slot as usize] == value {
            return;
        }
        self.set_inputs(&[(slot, value)]);
    }

    /// Overwrite several slots and repair all affected gates with **one**
    /// dirty-propagation sweep (see the module docs for why the single
    /// sweep is sound). Later entries for the same slot win; entries equal
    /// to the slot's committed value seed nothing and are dropped for
    /// free.
    pub fn set_inputs(&mut self, updates: &[(u32, S)]) {
        // Commit all slot values first so later entries win and seeding
        // reads each slot's final value.
        for (slot, v) in updates {
            self.slot_values[*slot as usize] = v.clone();
        }
        for (s, _) in updates {
            let slot = *s as usize;
            // A slot listed twice is seeded idempotently: the second pass
            // finds the gate values already equal to the committed value.
            for i in 0..self.plan.slot_gates.row(slot).len() {
                let g = self.plan.slot_gates.row(slot)[i];
                if self.values[g as usize] != self.slot_values[slot] {
                    self.values[g as usize] = self.slot_values[slot].clone();
                    self.mark_parents(g);
                }
            }
        }
        self.drain_dirty();
    }

    /// One topological sweep over the dirty queue: ascending gate ids,
    /// each gate recomputed at most once, buffered perm-entry patches
    /// flushed when their perm gate pops (every changed child has a
    /// smaller id, so all its patches are already buffered).
    fn drain_dirty(&mut self) {
        while let Some(std::cmp::Reverse(g)) = self.dirty.pop() {
            // Deduplicate: the same gate may be queued multiple times.
            if self.dirty.peek() == Some(&std::cmp::Reverse(g)) {
                continue;
            }
            let new = match &self.plan.circuit.gates()[g as usize] {
                GateDef::Perm { .. } => {
                    let pi = self.plan.perm_index[g as usize];
                    let mut buf = std::mem::take(&mut self.perm_flush);
                    buf.clear();
                    let mut i = 0;
                    while i < self.perm_pending.len() {
                        if self.perm_pending[i].0 == pi {
                            let (_, r, c, v) = self.perm_pending.swap_remove(i);
                            buf.push((r as usize, c as usize, v));
                        } else {
                            i += 1;
                        }
                    }
                    if !buf.is_empty() {
                        self.perms[pi as usize].update_batch(&buf);
                    }
                    self.perm_flush = buf;
                    self.perms[pi as usize].total().clone()
                }
                _ => self.recompute(g),
            };
            if self.values[g as usize] != new {
                self.values[g as usize] = new;
                self.mark_parents(g);
            }
        }
        debug_assert!(
            self.perm_pending.is_empty(),
            "perm patches left unflushed after the sweep"
        );
    }

    /// Evaluate the output with some slots *temporarily* overwritten via
    /// full update/restore cycles — the literal query-by-updates trick of
    /// Theorem 8. Prefer [`DynEvaluator::peek`], which computes the same
    /// value without touching (and then repairing) persistent state.
    pub fn peek_with(&mut self, patches: &[(u32, S)]) -> S {
        let saved: Vec<(u32, S)> = patches
            .iter()
            .map(|(s, _)| (*s, self.slot_values[*s as usize].clone()))
            .collect();
        for (s, v) in patches {
            self.set_input(*s, v.clone());
        }
        let out = self.output().clone();
        for (s, v) in saved.into_iter().rev() {
            self.set_input(s, v);
        }
        out
    }

    /// Evaluate the output with some slots overwritten, **without
    /// mutating any state**: only the query-bounded cone above the
    /// patched slots is recomputed, into `scratch`'s overlay. Permanent
    /// gates answer through the non-mutating [`PermMaint::peek`], so
    /// nothing has to be committed or rolled back. The scratch is reused
    /// across calls; clearing is `O(touched)`.
    pub fn peek(&self, patches: &[(u32, S)], scratch: &mut PeekScratch<S>) -> S {
        scratch.begin();
        // Later patches to one slot win; resolve that *before* propagating
        // so a patch back to the base value cancels an earlier one.
        let mut resolved = std::mem::take(&mut scratch.resolved);
        resolved.clear();
        for (i, (slot, _)) in patches.iter().enumerate() {
            match resolved.iter_mut().find(|&&mut (s, _)| s == *slot) {
                Some((_, pi)) => *pi = i,
                None => resolved.push((*slot, i)),
            }
        }
        for &(slot, pi) in &resolved {
            let v = &patches[pi].1;
            let slot = slot as usize;
            if self.slot_values[slot] == *v {
                continue;
            }
            for &g in self.plan.slot_gates.row(slot) {
                if self.values[g as usize] != *v {
                    scratch.set(g, v.clone());
                    self.mark_parents_overlay(g, scratch);
                }
            }
        }
        scratch.resolved = resolved;
        while let Some(std::cmp::Reverse(g)) = scratch.dirty.pop() {
            if scratch.dirty.peek() == Some(&std::cmp::Reverse(g)) {
                continue;
            }
            let new = match &self.plan.circuit.gates()[g as usize] {
                GateDef::Perm { .. } => {
                    // Assemble this permanent's patch list from the flat
                    // per-query buffer (no duplicates possible: every
                    // (row, col) has exactly one child gate, finalized
                    // once).
                    let pi = self.plan.perm_index[g as usize];
                    let mut buf = std::mem::take(&mut scratch.perm_buf);
                    buf.clear();
                    buf.extend(
                        scratch
                            .perm_patches
                            .iter()
                            .filter(|&(p, _r, _c, _v)| *p == pi)
                            .map(|(_p, r, c, v)| (*r as usize, *c as usize, v.clone())),
                    );
                    let out = self.perms[pi as usize].peek(&buf);
                    scratch.perm_buf = buf;
                    out
                }
                _ => self.recompute_overlay(g, scratch),
            };
            if new != self.values[g as usize] {
                scratch.set(g, new);
                self.mark_parents_overlay(g, scratch);
            }
        }
        let out = self.plan.circuit.output().0;
        scratch
            .get(out)
            .cloned()
            .unwrap_or_else(|| self.values[out as usize].clone())
    }

    /// [`DynEvaluator::peek`] over the **memoized cones** of the patched
    /// slots: the union cone is the merge of the per-slot gate lists
    /// precomputed in the plan ([`EvalPlan::with_cones`]), evaluated by
    /// one ascending sweep — no heap, no hash map, no per-query cone
    /// discovery. Falls back to [`DynEvaluator::peek`] when some patched
    /// slot has no memoized cone.
    pub fn peek_memo(&self, patches: &[(u32, S)], scratch: &mut PeekScratch<S>) -> S {
        if patches.iter().any(|&(s, _)| !self.plan.has_cone(s)) {
            return self.peek(patches, scratch);
        }
        // Resolve duplicate slots: later patches win.
        let mut resolved = std::mem::take(&mut scratch.resolved);
        resolved.clear();
        for (i, (slot, _)) in patches.iter().enumerate() {
            match resolved.iter_mut().find(|&&mut (s, _)| s == *slot) {
                Some((_, pi)) => *pi = i,
                None => resolved.push((*slot, i)),
            }
        }
        // Merge the cones of the effectively-changed slots.
        let mut cone = std::mem::take(&mut scratch.cone);
        cone.clear();
        for &(slot, pi) in &resolved {
            if self.slot_values[slot as usize] != patches[pi].1 {
                cone.extend_from_slice(self.plan.cone(slot));
            }
        }
        cone.sort_unstable();
        cone.dedup();
        if cone.is_empty() {
            scratch.cone = cone;
            scratch.resolved = resolved;
            return self.output().clone();
        }
        // One topological sweep over the merged cone (ascending gate ids;
        // children precede parents in the arena).
        let mut vals = std::mem::take(&mut scratch.cone_vals);
        vals.clear();
        scratch.perm_patches.clear();
        let lookup = |cone: &[u32], vals: &[S], gate: u32| -> Option<usize> {
            cone.binary_search(&gate).ok().filter(|&i| i < vals.len())
        };
        for (ci, &g) in cone.iter().enumerate() {
            let v = match &self.plan.circuit.gates()[g as usize] {
                GateDef::Input(slot) => match resolved.iter().find(|&&(s, _)| s == *slot) {
                    Some(&(_, pi)) => patches[pi].1.clone(),
                    None => self.values[g as usize].clone(),
                },
                GateDef::Const(_) => self.values[g as usize].clone(),
                GateDef::Add(children) => {
                    let kids = self.plan.circuit.children(*children);
                    if S::ORDER_INSENSITIVE_ADD {
                        // Per-run decomposition: a run is a contiguous id
                        // range, so one sorted probe into the (ascending)
                        // cone decides whether any of its children are
                        // overlaid. Untouched runs sum straight off the
                        // committed value slice; touched runs gather
                        // through the overlay lookup.
                        let mut acc = S::zero();
                        for &(lo, len) in self.plan.add_runs(g) {
                            let hi = lo + len;
                            let probe = cone.partition_point(|&x| x < lo);
                            if probe < cone.len() && cone[probe] < hi {
                                for c in lo..hi {
                                    match lookup(&cone, &vals, c) {
                                        Some(i) => acc.add_assign(&vals[i]),
                                        None => acc.add_assign(&self.values[c as usize]),
                                    }
                                }
                            } else if len as usize >= MIN_RUN {
                                let seg = &self.values[lo as usize..hi as usize];
                                acc.add_assign(&S::sum_slice(seg));
                            } else {
                                for v in &self.values[lo as usize..hi as usize] {
                                    acc.add_assign(v);
                                }
                            }
                        }
                        acc
                    } else {
                        sum_children(kids, |c| match lookup(&cone, &vals, c.0) {
                            Some(i) => &vals[i],
                            None => &self.values[c.0 as usize],
                        })
                    }
                }
                GateDef::Mul(a, b) => {
                    let eff = |g: GateId| match lookup(&cone, &vals, g.0) {
                        Some(i) => &vals[i],
                        None => &self.values[g.0 as usize],
                    };
                    eff(*a).mul(eff(*b))
                }
                GateDef::Perm { .. } => {
                    let pi = self.plan.perm_index[g as usize];
                    let mut buf = std::mem::take(&mut scratch.perm_buf);
                    buf.clear();
                    buf.extend(
                        scratch
                            .perm_patches
                            .iter()
                            .filter(|&(p, _r, _c, _v)| *p == pi)
                            .map(|(_p, r, c, v)| (*r as usize, *c as usize, v.clone())),
                    );
                    let out = self.perms[pi as usize].peek(&buf);
                    scratch.perm_buf = buf;
                    out
                }
            };
            // Feed changed values to perm parents (processed later in the
            // sweep); Add/Mul parents re-read children directly.
            if v != self.values[g as usize] {
                for &p in self.plan.parents.row(g as usize) {
                    if let ParentRef::Perm { gate, row, col } = p {
                        let pi = self.plan.perm_index[gate as usize];
                        scratch.perm_patches.push((pi, row as u32, col, v.clone()));
                    }
                }
            }
            debug_assert_eq!(ci, vals.len());
            vals.push(v);
        }
        let out_gate = self.plan.circuit.output().0;
        let out = match cone.binary_search(&out_gate) {
            Ok(i) => vals[i].clone(),
            Err(_) => self.values[out_gate as usize].clone(),
        };
        scratch.cone = cone;
        scratch.cone_vals = vals;
        scratch.resolved = resolved;
        out
    }

    /// [`DynEvaluator::peek`] with a one-off scratch (convenience for
    /// single queries; batch callers should reuse a [`PeekScratch`]).
    pub fn peek_alloc(&self, patches: &[(u32, S)]) -> S {
        let mut scratch = PeekScratch::new();
        self.peek(patches, &mut scratch)
    }

    fn mark_parents(&mut self, g: u32) {
        // Perm parents get the new child value buffered as a pending
        // patch; it is flushed in one `update_batch` when the perm gate
        // pops. A child changes value at most once per sweep, so each
        // (perm, row, col) carries at most one patch.
        for i in 0..self.plan.parents.row(g as usize).len() {
            let p = self.plan.parents.row(g as usize)[i];
            match p {
                ParentRef::Add(pg) | ParentRef::Mul(pg) => {
                    self.dirty.push(std::cmp::Reverse(pg));
                }
                ParentRef::Perm { gate, row, col } => {
                    let v = self.values[g as usize].clone();
                    let pi = self.plan.perm_index[gate as usize];
                    self.perm_pending.push((pi, row as u32, col, v));
                    self.dirty.push(std::cmp::Reverse(gate));
                }
            }
        }
    }

    fn mark_parents_overlay(&self, g: u32, scratch: &mut PeekScratch<S>) {
        for &p in self.plan.parents.row(g as usize) {
            match p {
                ParentRef::Add(pg) | ParentRef::Mul(pg) => {
                    scratch.dirty.push(std::cmp::Reverse(pg));
                }
                ParentRef::Perm { gate, row, col } => {
                    let v = scratch
                        .get(g)
                        .expect("overlaid child value present")
                        .clone();
                    let pi = self.plan.perm_index[gate as usize];
                    scratch.perm_patches.push((pi, row as u32, col, v));
                    scratch.dirty.push(std::cmp::Reverse(gate));
                }
            }
        }
    }

    fn recompute(&self, g: u32) -> S {
        match &self.plan.circuit.gates()[g as usize] {
            GateDef::Input(_) | GateDef::Const(_) => self.values[g as usize].clone(),
            GateDef::Add(children) => sum_add(
                self.plan.circuit.children(*children),
                self.plan.add_runs(g),
                &self.values,
            ),
            GateDef::Mul(a, b) => self.values[a.0 as usize].mul(&self.values[b.0 as usize]),
            GateDef::Perm { .. } => self.perms[self.plan.perm_index[g as usize] as usize]
                .total()
                .clone(),
        }
    }

    /// Discovery-peek recompute. Stays a scalar gather on purpose: the
    /// overlay is a hash map, so testing a run for overlaid children
    /// costs as much as gathering it — the dense tier only pays off in
    /// [`DynEvaluator::peek_memo`], where the sorted cone makes the
    /// membership probe one binary search.
    fn recompute_overlay(&self, g: u32, scratch: &PeekScratch<S>) -> S {
        let eff = |gate: GateId| scratch.get(gate.0).unwrap_or(&self.values[gate.0 as usize]);
        match &self.plan.circuit.gates()[g as usize] {
            GateDef::Input(_) | GateDef::Const(_) => self.values[g as usize].clone(),
            GateDef::Add(children) => {
                sum_children(self.plan.circuit.children(*children), |c| eff(c))
            }
            GateDef::Mul(a, b) => eff(*a).mul(eff(*b)),
            GateDef::Perm { .. } => unreachable!("perm gates handled in the peek loop"),
        }
    }
}

impl<S: Ring, P: PermMaint<S>> DynEvaluator<S, P> {
    /// [`DynEvaluator::set_inputs`] with **delta repair** of addition
    /// gates: over a ring, a dirtied add gate settles as
    /// `new = old + Σ δ_child` from the accumulated deltas of its
    /// changed children, instead of re-summing its whole fan-in. The
    /// sweep therefore costs O(1) per touched gate *edge* even through
    /// data-sized aggregation gates — the count-evaluator flush path of
    /// rank maintenance, where the gates near the root sum over the
    /// whole color-set family and a `sum_children` per batch would
    /// dominate ingestion. Multiplication gates recompute in O(1)
    /// (binary) and permanent gates flush through
    /// [`PermMaint::update_batch`] exactly as in the plain sweep.
    ///
    /// Deltas accumulate in a small hash map keyed by gate id rather
    /// than a dense per-gate side array: a sweep touches a
    /// cone-bounded handful of gates, so the map stays cache-resident
    /// where a circuit-sized array would stride through cold memory
    /// (measured ~40% slower on the 16k-node ingestion workload).
    ///
    /// Exactness caveat: values are maintained through ring identities,
    /// so for wrapping carriers (`Nat` = ℤ/2⁶⁴) results are the true
    /// values mod 2⁶⁴ — exact whenever the true values fit the word.
    pub fn set_inputs_delta(&mut self, updates: &[(u32, S)]) {
        let mut deltas: agq_semiring::fx::FxHashMap<u32, S> = Default::default();
        for (slot, v) in updates {
            self.slot_values[*slot as usize] = v.clone();
        }
        for (s, _) in updates {
            let slot = *s as usize;
            for i in 0..self.plan.slot_gates.row(slot).len() {
                let g = self.plan.slot_gates.row(slot)[i];
                let new = self.slot_values[slot].clone();
                if self.values[g as usize] != new {
                    let d = new.sub(&self.values[g as usize]);
                    self.values[g as usize] = new;
                    self.mark_parents_delta(g, &d, &mut deltas);
                }
            }
        }
        while let Some(std::cmp::Reverse(g)) = self.dirty.pop() {
            if self.dirty.peek() == Some(&std::cmp::Reverse(g)) {
                continue;
            }
            let new = match &self.plan.circuit.gates()[g as usize] {
                GateDef::Perm { .. } => {
                    let pi = self.plan.perm_index[g as usize];
                    let mut buf = std::mem::take(&mut self.perm_flush);
                    buf.clear();
                    let mut i = 0;
                    while i < self.perm_pending.len() {
                        if self.perm_pending[i].0 == pi {
                            let (_, r, c, v) = self.perm_pending.swap_remove(i);
                            buf.push((r as usize, c as usize, v));
                        } else {
                            i += 1;
                        }
                    }
                    if !buf.is_empty() {
                        self.perms[pi as usize].update_batch(&buf);
                    }
                    self.perm_flush = buf;
                    self.perms[pi as usize].total().clone()
                }
                GateDef::Add(_) => match deltas.remove(&g) {
                    Some(d) => self.values[g as usize].add(&d),
                    None => self.values[g as usize].clone(),
                },
                _ => self.recompute(g),
            };
            if self.values[g as usize] != new {
                let d = new.sub(&self.values[g as usize]);
                self.values[g as usize] = new;
                self.mark_parents_delta(g, &d, &mut deltas);
            }
        }
        debug_assert!(
            self.perm_pending.is_empty(),
            "perm patches left unflushed after the delta sweep"
        );
    }

    /// [`DynEvaluator::mark_parents`], accumulating the child's delta
    /// into each addition parent's pending-delta slot.
    fn mark_parents_delta(
        &mut self,
        g: u32,
        d: &S,
        deltas: &mut agq_semiring::fx::FxHashMap<u32, S>,
    ) {
        for i in 0..self.plan.parents.row(g as usize).len() {
            let p = self.plan.parents.row(g as usize)[i];
            match p {
                ParentRef::Add(pg) => {
                    let slot = deltas.entry(pg).or_insert_with(S::zero);
                    *slot = slot.add(d);
                    self.dirty.push(std::cmp::Reverse(pg));
                }
                ParentRef::Mul(pg) => {
                    self.dirty.push(std::cmp::Reverse(pg));
                }
                ParentRef::Perm { gate, row, col } => {
                    let v = self.values[g as usize].clone();
                    let pi = self.plan.perm_index[gate as usize];
                    self.perm_pending.push((pi, row as u32, col, v));
                    self.dirty.push(std::cmp::Reverse(gate));
                }
            }
        }
    }
}

/// Reusable scratch state of the zero-restore query path
/// ([`DynEvaluator::peek`]): a value overlay over the touched gates,
/// a flat per-query permanent patch buffer, and the dirty queue. One
/// scratch serves any number of queries against evaluators of one
/// circuit; `begin` clears the buffers while keeping their capacity, so
/// the per-query cost is bounded by the scratch's high-water mark, not
/// the circuit size.
///
/// The overlay is a *small* hash map (gate → value, Fx-hashed) rather
/// than a gate-indexed array: a point query touches a query-bounded
/// handful of gates, so the whole scratch stays cache-resident instead of
/// striding through circuit-sized buffers.
pub struct PeekScratch<S> {
    overlay: agq_semiring::fx::FxHashMap<u32, S>,
    /// Flat per-query patch buffer: `(perm index, row, col, value)`.
    perm_patches: Vec<(u32, u32, u32, S)>,
    /// Assembly buffer for one permanent's patches.
    perm_buf: Vec<(usize, usize, S)>,
    dirty: BinaryHeap<std::cmp::Reverse<u32>>,
    /// Slot-dedup buffer: `(slot, index of its last patch)`.
    resolved: Vec<(u32, usize)>,
    /// Merged-cone gate ids ([`DynEvaluator::peek_memo`]).
    cone: Vec<u32>,
    /// Values parallel to `cone`.
    cone_vals: Vec<S>,
}

impl<S> PeekScratch<S> {
    /// Empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        PeekScratch {
            overlay: agq_semiring::fx::FxHashMap::default(),
            perm_patches: Vec::new(),
            perm_buf: Vec::new(),
            dirty: BinaryHeap::new(),
            resolved: Vec::new(),
            cone: Vec::new(),
            cone_vals: Vec::new(),
        }
    }

    fn begin(&mut self) {
        self.overlay.clear();
        self.perm_patches.clear();
        self.dirty.clear();
    }

    fn set(&mut self, gate: u32, value: S) {
        self.overlay.insert(gate, value);
    }

    fn get(&self, gate: u32) -> Option<&S> {
        self.overlay.get(&gate)
    }
}

impl<S> Default for PeekScratch<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// Convenience alias: dynamic evaluation in an arbitrary semiring
/// (logarithmic updates).
pub type GeneralEvaluator<S> = DynEvaluator<S, SegTreePerm<S>>;

/// Convenience alias: dynamic evaluation in a ring (constant updates).
pub type RingEvaluator<S> = DynEvaluator<S, RingMaint<S>>;

/// Convenience alias: dynamic evaluation in a finite semiring
/// (constant updates).
pub type FiniteEvaluator<S> = DynEvaluator<S, FiniteMaint<S>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;
    use agq_semiring::{Bool, Int, MinPlus, Nat};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Σ_{i≠j} a_i·b_j circuit with 2n slots plus a final +lit.
    fn test_circuit(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let mut flat = Vec::new();
        for i in 0..n {
            let a = b.input(i as u32);
            let w = b.input((n + i) as u32);
            let m = b.mul(a, w); // extra structure: perm entries are gates
            flat.push(a);
            flat.push(m);
        }
        let p = b.perm_flat(2, flat);
        let l = b.lit(0);
        let s = b.add(&[p, l]);
        b.finish(s)
    }

    fn reference_eval(slots: &[Nat], lit: Nat, n: usize) -> Nat {
        // Σ_{i≠j} a_i · (a_j · b_j) + lit
        let mut total = 0u64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    total += slots[i].0 * (slots[j].0 * slots[n + j].0);
                }
            }
        }
        Nat(total + lit.0)
    }

    #[test]
    fn dynamic_updates_match_reference_general() {
        let n = 6;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(5);
        let mut slots: Vec<Nat> = (0..2 * n).map(|_| Nat(rng.gen_range(0..5))).collect();
        let lit = Nat(3);
        let mut ev: GeneralEvaluator<Nat> = DynEvaluator::new(circuit, &slots, &[lit]);
        assert_eq!(*ev.output(), reference_eval(&slots, lit, n));
        for _ in 0..50 {
            let s = rng.gen_range(0..2 * n) as u32;
            let v = Nat(rng.gen_range(0..5));
            slots[s as usize] = v;
            ev.set_input(s, v);
            assert_eq!(*ev.output(), reference_eval(&slots, lit, n));
        }
    }

    #[test]
    fn ring_and_general_agree() {
        let n = 5;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(9);
        let slots: Vec<Int> = (0..2 * n).map(|_| Int(rng.gen_range(-3..4))).collect();
        let mut gen: GeneralEvaluator<Int> = DynEvaluator::new(circuit.clone(), &slots, &[Int(0)]);
        let mut ring: RingEvaluator<Int> = DynEvaluator::new(circuit, &slots, &[Int(0)]);
        for _ in 0..40 {
            let s = rng.gen_range(0..2 * n) as u32;
            let v = Int(rng.gen_range(-3..4));
            gen.set_input(s, v);
            ring.set_input(s, v);
            assert_eq!(gen.output(), ring.output());
        }
    }

    #[test]
    fn finite_evaluator_bool() {
        let n = 4;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(21);
        let slots: Vec<Bool> = (0..2 * n).map(|_| Bool(rng.gen_bool(0.5))).collect();
        let mut fin: FiniteEvaluator<Bool> =
            DynEvaluator::new(circuit.clone(), &slots, &[Bool(false)]);
        let mut gen: GeneralEvaluator<Bool> = DynEvaluator::new(circuit, &slots, &[Bool(false)]);
        for _ in 0..40 {
            let s = rng.gen_range(0..2 * n) as u32;
            let v = Bool(rng.gen_bool(0.5));
            fin.set_input(s, v);
            gen.set_input(s, v);
            assert_eq!(fin.output(), gen.output());
        }
    }

    #[test]
    fn peek_restores_state() {
        let n = 4;
        let circuit = Arc::new(test_circuit(n));
        let slots: Vec<MinPlus> = (0..2 * n).map(|i| MinPlus(i as u64 + 1)).collect();
        let mut ev: GeneralEvaluator<MinPlus> = DynEvaluator::new(circuit, &slots, &[MinPlus::INF]);
        let before = *ev.output();
        let _ = ev.peek_with(&[(0, MinPlus(0)), (3, MinPlus::INF)]);
        assert_eq!(*ev.output(), before);
    }

    /// Run random overlay peeks against `peek_with` on one evaluator and
    /// check values agree and no state changes (the evaluator is also
    /// updated between peeks to vary the base state).
    fn overlay_agrees_with_peek_with<P: PermMaint<Int>>(seed: u64) {
        let n = 5;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(seed);
        let slots: Vec<Int> = (0..2 * n).map(|_| Int(rng.gen_range(-3..4))).collect();
        let mut ev: DynEvaluator<Int, P> = DynEvaluator::new(circuit, &slots, &[Int(2)]);
        let mut scratch = PeekScratch::new();
        for round in 0..40 {
            let patches: Vec<(u32, Int)> = (0..rng.gen_range(1..4))
                .map(|_| (rng.gen_range(0..2 * n) as u32, Int(rng.gen_range(-3..4))))
                .collect();
            let before = *ev.output();
            let peeked = ev.peek(&patches, &mut scratch);
            assert_eq!(*ev.output(), before, "overlay peek must not mutate");
            let classic = ev.peek_with(&patches);
            assert_eq!(peeked, classic, "round {round}: overlay vs peek_with");
            assert_eq!(*ev.output(), before, "peek_with must restore");
            // mutate the base state and keep going
            let s = rng.gen_range(0..2 * n) as u32;
            ev.set_input(s, Int(rng.gen_range(-3..4)));
        }
    }

    #[test]
    fn overlay_peek_general_backend() {
        overlay_agrees_with_peek_with::<SegTreePerm<Int>>(31);
    }

    #[test]
    fn overlay_peek_ring_backend() {
        overlay_agrees_with_peek_with::<RingMaint<Int>>(32);
    }

    #[test]
    fn overlay_peek_finite_backend() {
        // Nat is not finite; use Bool for the finite backend instead.
        let n = 5;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(33);
        let slots: Vec<Bool> = (0..2 * n).map(|_| Bool(rng.gen_bool(0.5))).collect();
        let mut ev: FiniteEvaluator<Bool> = DynEvaluator::new(circuit, &slots, &[Bool(true)]);
        let mut scratch = PeekScratch::new();
        for _ in 0..40 {
            let patches: Vec<(u32, Bool)> = (0..rng.gen_range(1..4))
                .map(|_| (rng.gen_range(0..2 * n) as u32, Bool(rng.gen_bool(0.5))))
                .collect();
            let before = *ev.output();
            let peeked = ev.peek(&patches, &mut scratch);
            assert_eq!(*ev.output(), before);
            assert_eq!(peeked, ev.peek_with(&patches));
            let s = rng.gen_range(0..2 * n) as u32;
            ev.set_input(s, Bool(rng.gen_bool(0.5)));
        }
    }

    #[test]
    fn memoized_cone_peek_matches_discovery_peek() {
        let n = 5;
        let circuit = Arc::new(test_circuit(n));
        let all_slots: Vec<u32> = (0..2 * n as u32).collect();
        let plan = Arc::new(EvalPlan::with_cones(circuit, &all_slots));
        let mut rng = SmallRng::seed_from_u64(41);
        let slots: Vec<Int> = (0..2 * n).map(|_| Int(rng.gen_range(-3..4))).collect();
        let mut ev: DynEvaluator<Int, RingMaint<Int>> =
            DynEvaluator::from_plan(plan, &slots, &[Int(2)]);
        let mut scratch = PeekScratch::new();
        let mut scratch2 = PeekScratch::new();
        for round in 0..60 {
            let patches: Vec<(u32, Int)> = (0..rng.gen_range(1..4))
                .map(|_| (rng.gen_range(0..2 * n) as u32, Int(rng.gen_range(-3..4))))
                .collect();
            let before = *ev.output();
            let memo = ev.peek_memo(&patches, &mut scratch);
            assert_eq!(*ev.output(), before, "peek_memo must not mutate");
            let disc = ev.peek(&patches, &mut scratch2);
            assert_eq!(memo, disc, "round {round}: cone sweep vs discovery");
            // duplicate-slot patches: later wins in both paths
            let dup = vec![(0u32, Int(5)), (0u32, slots[0])];
            assert_eq!(
                ev.peek_memo(&dup, &mut scratch),
                ev.peek(&dup, &mut scratch2)
            );
            let s = rng.gen_range(0..2 * n) as u32;
            ev.set_input(s, Int(rng.gen_range(-3..4)));
        }
    }

    #[test]
    fn peek_memo_falls_back_without_cones() {
        let n = 4;
        let circuit = Arc::new(test_circuit(n));
        // cones only for slot 0; patching slot 1 must fall back to peek
        let plan = Arc::new(EvalPlan::with_cones(circuit, &[0]));
        assert!(plan.has_cone(0));
        assert!(!plan.has_cone(1));
        let slots: Vec<Nat> = (0..2 * n).map(|i| Nat(i as u64 % 3 + 1)).collect();
        let ev: GeneralEvaluator<Nat> = DynEvaluator::from_plan(plan, &slots, &[Nat(1)]);
        let mut scratch = PeekScratch::new();
        let patches = [(1u32, Nat(9))];
        assert_eq!(
            ev.peek_memo(&patches, &mut scratch),
            ev.peek_alloc(&patches)
        );
    }

    #[test]
    fn shared_plan_states_update_independently() {
        let n = 5;
        let circuit = Arc::new(test_circuit(n));
        let plan = Arc::new(EvalPlan::new(circuit.clone()));
        let slots: Vec<Nat> = (0..2 * n).map(|i| Nat(i as u64 % 4)).collect();
        let lit = [Nat(2)];
        let mut a: GeneralEvaluator<Nat> = DynEvaluator::from_plan(plan.clone(), &slots, &lit);
        let mut b: GeneralEvaluator<Nat> = DynEvaluator::from_plan(plan.clone(), &slots, &lit);
        // independent references: two evaluators, one fresh control each
        let mut rng = SmallRng::seed_from_u64(77);
        let mut sa = slots.clone();
        let mut sb = slots.clone();
        for _ in 0..30 {
            let s = rng.gen_range(0..2 * n);
            let v = Nat(rng.gen_range(0..4));
            if rng.gen_bool(0.5) {
                sa[s] = v;
                a.set_input(s as u32, v);
            } else {
                sb[s] = v;
                b.set_input(s as u32, v);
            }
            let fa: GeneralEvaluator<Nat> = DynEvaluator::new(circuit.clone(), &sa, &lit);
            let fb: GeneralEvaluator<Nat> = DynEvaluator::new(circuit.clone(), &sb, &lit);
            assert_eq!(a.output(), fa.output(), "state A diverged");
            assert_eq!(b.output(), fb.output(), "state B diverged");
        }
    }

    #[test]
    fn plan_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalPlan>();
    }

    /// Random batches through `set_inputs` against the same updates
    /// applied one-by-one on a control evaluator and a fresh rebuild.
    fn batch_matches_sequential<P: PermMaint<Int>>(seed: u64) {
        let n = 6;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut slots: Vec<Int> = (0..2 * n).map(|_| Int(rng.gen_range(-3..4))).collect();
        let lit = [Int(2)];
        let mut batched: DynEvaluator<Int, P> = DynEvaluator::new(circuit.clone(), &slots, &lit);
        let mut sequential: DynEvaluator<Int, P> = DynEvaluator::new(circuit.clone(), &slots, &lit);
        for round in 0..30 {
            let batch: Vec<(u32, Int)> = (0..rng.gen_range(0..10))
                .map(|_| (rng.gen_range(0..2 * n) as u32, Int(rng.gen_range(-3..4))))
                .collect();
            batched.set_inputs(&batch);
            for &(s, v) in &batch {
                sequential.set_input(s, v);
                slots[s as usize] = v;
            }
            let fresh: DynEvaluator<Int, P> = DynEvaluator::new(circuit.clone(), &slots, &lit);
            assert_eq!(batched.output(), sequential.output(), "round {round}");
            assert_eq!(batched.output(), fresh.output(), "round {round} vs rebuild");
        }
    }

    #[test]
    fn batch_matches_sequential_general() {
        batch_matches_sequential::<SegTreePerm<Int>>(101);
    }

    #[test]
    fn batch_matches_sequential_ring() {
        batch_matches_sequential::<RingMaint<Int>>(102);
    }

    #[test]
    fn batch_matches_sequential_finite() {
        let n = 5;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(103);
        let mut slots: Vec<Bool> = (0..2 * n).map(|_| Bool(rng.gen_bool(0.5))).collect();
        let lit = [Bool(false)];
        let mut batched: FiniteEvaluator<Bool> = DynEvaluator::new(circuit.clone(), &slots, &lit);
        let mut sequential: FiniteEvaluator<Bool> =
            DynEvaluator::new(circuit.clone(), &slots, &lit);
        for _ in 0..30 {
            let batch: Vec<(u32, Bool)> = (0..rng.gen_range(0..10))
                .map(|_| (rng.gen_range(0..2 * n) as u32, Bool(rng.gen_bool(0.5))))
                .collect();
            batched.set_inputs(&batch);
            for &(s, v) in &batch {
                sequential.set_input(s, v);
                slots[s as usize] = v;
            }
            let fresh: FiniteEvaluator<Bool> = DynEvaluator::new(circuit.clone(), &slots, &lit);
            assert_eq!(batched.output(), sequential.output());
            assert_eq!(batched.output(), fresh.output());
        }
    }

    /// `set_inputs_delta` (ring delta repair of add gates) must leave
    /// every gate — not just the output — in the exact state the plain
    /// recompute sweep produces.
    fn delta_matches_plain<S: Ring, P: PermMaint<S>>(seed: u64, gen: impl Fn(&mut SmallRng) -> S) {
        let n = 6;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(seed);
        let slots: Vec<S> = (0..2 * n).map(|_| gen(&mut rng)).collect();
        let lit = [gen(&mut rng)];
        let mut delta: DynEvaluator<S, P> = DynEvaluator::new(circuit.clone(), &slots, &lit);
        let mut plain: DynEvaluator<S, P> = DynEvaluator::new(circuit.clone(), &slots, &lit);
        for round in 0..40 {
            let batch: Vec<(u32, S)> = (0..rng.gen_range(0..8))
                .map(|_| (rng.gen_range(0..2 * n) as u32, gen(&mut rng)))
                .collect();
            delta.set_inputs_delta(&batch);
            plain.set_inputs(&batch);
            for g in 0..circuit.gates().len() {
                assert_eq!(
                    delta.value(GateId(g as u32)),
                    plain.value(GateId(g as u32)),
                    "round {round}, gate {g}"
                );
            }
        }
    }

    #[test]
    fn delta_matches_plain_nat() {
        delta_matches_plain::<Nat, SegTreePerm<Nat>>(104, |r| Nat(r.gen_range(0..5)));
    }

    #[test]
    fn delta_matches_plain_int() {
        delta_matches_plain::<Int, RingMaint<Int>>(105, |r| Int(r.gen_range(-4..5)));
    }

    #[test]
    fn batch_duplicate_slots_later_wins() {
        let n = 4;
        let circuit = Arc::new(test_circuit(n));
        let slots: Vec<Nat> = (0..2 * n).map(|i| Nat(i as u64 % 3)).collect();
        let mut ev: GeneralEvaluator<Nat> = DynEvaluator::new(circuit.clone(), &slots, &[Nat(1)]);
        ev.set_inputs(&[(0, Nat(9)), (2, Nat(4)), (0, Nat(7))]);
        let mut expect = slots.clone();
        expect[0] = Nat(7);
        expect[2] = Nat(4);
        let fresh: GeneralEvaluator<Nat> = DynEvaluator::new(circuit, &expect, &[Nat(1)]);
        assert_eq!(ev.output(), fresh.output());
        assert_eq!(*ev.slot_value(0), Nat(7));
        // a batch netting out to the committed values touches nothing
        ev.set_inputs(&[(0, Nat(1)), (0, Nat(7)), (2, Nat(4))]);
        assert_eq!(ev.output(), fresh.output());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let n = 3;
        let circuit = Arc::new(test_circuit(n));
        let slots: Vec<Nat> = (0..2 * n).map(|i| Nat(i as u64)).collect();
        let mut ev: RingEvaluator<Int> = {
            let slots: Vec<Int> = slots.iter().map(|v| Int(v.0 as i64)).collect();
            DynEvaluator::new(circuit, &slots, &[Int(0)])
        };
        let before = *ev.output();
        ev.set_inputs(&[]);
        assert_eq!(*ev.output(), before);
    }

    #[test]
    fn peek_alloc_matches_scratch_reuse() {
        let n = 4;
        let circuit = Arc::new(test_circuit(n));
        let slots: Vec<Nat> = (0..2 * n).map(|i| Nat(i as u64 % 3)).collect();
        let ev: GeneralEvaluator<Nat> = DynEvaluator::new(circuit, &slots, &[Nat(1)]);
        let patches = [(0u32, Nat(7)), (5u32, Nat(0))];
        let mut scratch = PeekScratch::new();
        assert_eq!(ev.peek(&patches, &mut scratch), ev.peek_alloc(&patches));
        // empty patch list returns the current output
        assert_eq!(ev.peek(&[], &mut scratch), *ev.output());
    }
}
