//! Dynamic circuit evaluation under input updates (Theorem 8's engine).

use crate::{Circuit, GateDef, GateId};
use agq_perm::{ColMatrix, FinitePerm, RingPerm, SegTreePerm};
use agq_semiring::{FiniteSemiring, Ring, Semiring};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A maintenance structure for one permanent gate: how updates to matrix
/// entries are absorbed and the permanent re-read.
///
/// The three implementations are exactly the paper's case split:
///
/// | semiring  | structure                  | update cost      | ref |
/// |-----------|----------------------------|------------------|-----|
/// | arbitrary | [`SegTreePerm`]            | `O(3^k log n)`   | Cor. 13 (tight, Prop. 14) |
/// | ring      | [`RingPerm`]               | `O_k(1)`         | Cor. 17 |
/// | finite    | [`FinitePerm`]             | `O_{k,|S|}(1)`   | Cor. 20 |
pub trait PermMaint<S: Semiring> {
    /// Build from the initial matrix.
    fn build(m: ColMatrix<S>) -> Self;
    /// Overwrite one entry.
    fn update(&mut self, row: usize, col: usize, value: S);
    /// Current permanent.
    fn total(&self) -> S;
}

impl<S: Semiring> PermMaint<S> for SegTreePerm<S> {
    fn build(m: ColMatrix<S>) -> Self {
        SegTreePerm::build(m)
    }
    fn update(&mut self, row: usize, col: usize, value: S) {
        SegTreePerm::update(self, row, col, value);
    }
    fn total(&self) -> S {
        SegTreePerm::total(self).clone()
    }
}

/// Ring-backed permanent maintenance (constant-time updates).
pub struct RingMaint<S: Ring>(RingPerm<S>);

impl<S: Ring> PermMaint<S> for RingMaint<S> {
    fn build(m: ColMatrix<S>) -> Self {
        RingMaint(RingPerm::build(m))
    }
    fn update(&mut self, row: usize, col: usize, value: S) {
        self.0.update(row, col, value);
    }
    fn total(&self) -> S {
        self.0.total()
    }
}

/// Finite-semiring permanent maintenance (constant-time updates).
pub struct FiniteMaint<S: FiniteSemiring>(FinitePerm<S>);

impl<S: FiniteSemiring> PermMaint<S> for FiniteMaint<S> {
    fn build(m: ColMatrix<S>) -> Self {
        FiniteMaint(FinitePerm::build(m))
    }
    fn update(&mut self, row: usize, col: usize, value: S) {
        self.0.update(row, col, value);
    }
    fn total(&self) -> S {
        self.0.total()
    }
}

#[derive(Clone, Copy, Debug)]
enum ParentRef {
    Add(u32),
    Mul(u32),
    Perm { gate: u32, row: u8, col: u32 },
}

/// Dynamic evaluator: caches every gate value and repairs them under input
/// updates, routing permanent-entry changes through a [`PermMaint`].
///
/// Update cost is `O(affected gates · per-gate cost)`; for circuits
/// produced by the Theorem 6 compiler the number of affected gates per
/// input is query-bounded (bounded fan-out, bounded depth), giving the
/// `O(log |A|)` / `O(1)` bounds of Theorem 8.
pub struct DynEvaluator<S: Semiring, P: PermMaint<S>> {
    circuit: Arc<Circuit>,
    values: Vec<S>,
    parents: Vec<Vec<ParentRef>>,
    /// Perm-gate maintenance structures, indexed by gate id (None for
    /// non-perm gates).
    perm_states: Vec<Option<P>>,
    /// Input gates per slot.
    slot_gates: Vec<Vec<u32>>,
    slot_values: Vec<S>,
}

impl<S: Semiring, P: PermMaint<S>> DynEvaluator<S, P> {
    /// Build from an initial input assignment, evaluating once.
    pub fn new(circuit: Arc<Circuit>, slots: &[S], lits: &[S]) -> Self {
        assert_eq!(slots.len(), circuit.num_slots());
        assert_eq!(lits.len(), circuit.num_lits());
        let values = crate::eval_gates(&circuit, slots, lits);
        let gates = circuit.gates();
        let mut parents: Vec<Vec<ParentRef>> = vec![Vec::new(); gates.len()];
        let mut perm_states: Vec<Option<P>> = Vec::with_capacity(gates.len());
        let mut slot_gates: Vec<Vec<u32>> = vec![Vec::new(); circuit.num_slots()];
        for (i, g) in gates.iter().enumerate() {
            let mut state = None;
            match g {
                GateDef::Input(slot) => slot_gates[*slot as usize].push(i as u32),
                GateDef::Const(_) => {}
                GateDef::Add(children) => {
                    for c in children {
                        parents[c.0 as usize].push(ParentRef::Add(i as u32));
                    }
                }
                GateDef::Mul(a, b) => {
                    parents[a.0 as usize].push(ParentRef::Mul(i as u32));
                    parents[b.0 as usize].push(ParentRef::Mul(i as u32));
                }
                GateDef::Perm { rows, cols } => {
                    let k = *rows as usize;
                    let mut m = ColMatrix::with_capacity(k, cols.len() / k);
                    let mut buf = Vec::with_capacity(k);
                    for (ci, col) in cols.chunks_exact(k).enumerate() {
                        buf.clear();
                        buf.extend(col.iter().map(|g| values[g.0 as usize].clone()));
                        m.push_col(&buf);
                        for (r, child) in col.iter().enumerate() {
                            parents[child.0 as usize].push(ParentRef::Perm {
                                gate: i as u32,
                                row: r as u8,
                                col: ci as u32,
                            });
                        }
                    }
                    state = Some(P::build(m));
                }
            }
            perm_states.push(state);
        }
        DynEvaluator {
            circuit,
            values,
            parents,
            perm_states,
            slot_gates,
            slot_values: slots.to_vec(),
        }
    }

    /// Current output value.
    pub fn output(&self) -> &S {
        &self.values[self.circuit.output().0 as usize]
    }

    /// Current value of any gate.
    pub fn value(&self, g: GateId) -> &S {
        &self.values[g.0 as usize]
    }

    /// Current value of an input slot.
    pub fn slot_value(&self, slot: u32) -> &S {
        &self.slot_values[slot as usize]
    }

    /// Set input `slot` to `value` and repair all affected gates.
    pub fn set_input(&mut self, slot: u32, value: S) {
        if self.slot_values[slot as usize] == value {
            return;
        }
        self.slot_values[slot as usize] = value.clone();
        let mut dirty: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
        let input_gates = self.slot_gates[slot as usize].clone();
        for g in input_gates {
            if self.values[g as usize] != value {
                self.values[g as usize] = value.clone();
                self.mark_parents(g, &mut dirty);
            }
        }
        while let Some(std::cmp::Reverse(g)) = dirty.pop() {
            // Deduplicate: the same gate may be queued multiple times.
            if dirty.peek() == Some(&std::cmp::Reverse(g)) {
                continue;
            }
            let new = self.recompute(g);
            if self.values[g as usize] != new {
                self.values[g as usize] = new;
                self.mark_parents(g, &mut dirty);
            }
        }
    }

    /// Evaluate the output with some slots *temporarily* overwritten —
    /// the query-by-updates trick of Theorem 8. State is restored.
    pub fn peek_with(&mut self, patches: &[(u32, S)]) -> S {
        let saved: Vec<(u32, S)> = patches
            .iter()
            .map(|(s, _)| (*s, self.slot_values[*s as usize].clone()))
            .collect();
        for (s, v) in patches {
            self.set_input(*s, v.clone());
        }
        let out = self.output().clone();
        for (s, v) in saved.into_iter().rev() {
            self.set_input(s, v);
        }
        out
    }

    fn mark_parents(&mut self, g: u32, dirty: &mut BinaryHeap<std::cmp::Reverse<u32>>) {
        // Perm parents absorb the new child value into their maintenance
        // structure immediately; value recomputation happens in id order.
        let parents = std::mem::take(&mut self.parents[g as usize]);
        for p in &parents {
            match *p {
                ParentRef::Add(pg) | ParentRef::Mul(pg) => {
                    dirty.push(std::cmp::Reverse(pg));
                }
                ParentRef::Perm { gate, row, col } => {
                    let v = self.values[g as usize].clone();
                    self.perm_states[gate as usize]
                        .as_mut()
                        .expect("perm state present")
                        .update(row as usize, col as usize, v);
                    dirty.push(std::cmp::Reverse(gate));
                }
            }
        }
        self.parents[g as usize] = parents;
    }

    fn recompute(&self, g: u32) -> S {
        match &self.circuit.gates()[g as usize] {
            GateDef::Input(_) | GateDef::Const(_) => self.values[g as usize].clone(),
            GateDef::Add(children) => {
                let mut acc = S::zero();
                for c in children {
                    acc.add_assign(&self.values[c.0 as usize]);
                }
                acc
            }
            GateDef::Mul(a, b) => self.values[a.0 as usize].mul(&self.values[b.0 as usize]),
            GateDef::Perm { .. } => self.perm_states[g as usize]
                .as_ref()
                .expect("perm state present")
                .total(),
        }
    }
}

/// Convenience alias: dynamic evaluation in an arbitrary semiring
/// (logarithmic updates).
pub type GeneralEvaluator<S> = DynEvaluator<S, SegTreePerm<S>>;

/// Convenience alias: dynamic evaluation in a ring (constant updates).
pub type RingEvaluator<S> = DynEvaluator<S, RingMaint<S>>;

/// Convenience alias: dynamic evaluation in a finite semiring
/// (constant updates).
pub type FiniteEvaluator<S> = DynEvaluator<S, FiniteMaint<S>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;
    use agq_semiring::{Bool, Int, MinPlus, Nat};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Σ_{i≠j} a_i·b_j circuit with 2n slots plus a final +lit.
    fn test_circuit(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let mut flat = Vec::new();
        for i in 0..n {
            let a = b.input(i as u32);
            let w = b.input((n + i) as u32);
            let m = b.mul(a, w); // extra structure: perm entries are gates
            flat.push(a);
            flat.push(m);
        }
        let p = b.perm_flat(2, flat);
        let l = b.lit(0);
        let s = b.add(&[p, l]);
        b.finish(s)
    }

    fn reference_eval(slots: &[Nat], lit: Nat, n: usize) -> Nat {
        // Σ_{i≠j} a_i · (a_j · b_j) + lit
        let mut total = 0u64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    total += slots[i].0 * (slots[j].0 * slots[n + j].0);
                }
            }
        }
        Nat(total + lit.0)
    }

    #[test]
    fn dynamic_updates_match_reference_general() {
        let n = 6;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(5);
        let mut slots: Vec<Nat> = (0..2 * n).map(|_| Nat(rng.gen_range(0..5))).collect();
        let lit = Nat(3);
        let mut ev: GeneralEvaluator<Nat> =
            DynEvaluator::new(circuit, &slots, &[lit]);
        assert_eq!(*ev.output(), reference_eval(&slots, lit, n));
        for _ in 0..50 {
            let s = rng.gen_range(0..2 * n) as u32;
            let v = Nat(rng.gen_range(0..5));
            slots[s as usize] = v;
            ev.set_input(s, v);
            assert_eq!(*ev.output(), reference_eval(&slots, lit, n));
        }
    }

    #[test]
    fn ring_and_general_agree() {
        let n = 5;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(9);
        let slots: Vec<Int> = (0..2 * n).map(|_| Int(rng.gen_range(-3..4))).collect();
        let mut gen: GeneralEvaluator<Int> =
            DynEvaluator::new(circuit.clone(), &slots, &[Int(0)]);
        let mut ring: RingEvaluator<Int> = DynEvaluator::new(circuit, &slots, &[Int(0)]);
        for _ in 0..40 {
            let s = rng.gen_range(0..2 * n) as u32;
            let v = Int(rng.gen_range(-3..4));
            gen.set_input(s, v);
            ring.set_input(s, v);
            assert_eq!(gen.output(), ring.output());
        }
    }

    #[test]
    fn finite_evaluator_bool() {
        let n = 4;
        let circuit = Arc::new(test_circuit(n));
        let mut rng = SmallRng::seed_from_u64(21);
        let slots: Vec<Bool> = (0..2 * n).map(|_| Bool(rng.gen_bool(0.5))).collect();
        let mut fin: FiniteEvaluator<Bool> =
            DynEvaluator::new(circuit.clone(), &slots, &[Bool(false)]);
        let mut gen: GeneralEvaluator<Bool> =
            DynEvaluator::new(circuit, &slots, &[Bool(false)]);
        for _ in 0..40 {
            let s = rng.gen_range(0..2 * n) as u32;
            let v = Bool(rng.gen_bool(0.5));
            fin.set_input(s, v);
            gen.set_input(s, v);
            assert_eq!(fin.output(), gen.output());
        }
    }

    #[test]
    fn peek_restores_state() {
        let n = 4;
        let circuit = Arc::new(test_circuit(n));
        let slots: Vec<MinPlus> = (0..2 * n).map(|i| MinPlus(i as u64 + 1)).collect();
        let mut ev: GeneralEvaluator<MinPlus> =
            DynEvaluator::new(circuit, &slots, &[MinPlus::INF]);
        let before = *ev.output();
        let _ = ev.peek_with(&[(0, MinPlus(0)), (3, MinPlus::INF)]);
        assert_eq!(*ev.output(), before);
    }
}
