//! Structural circuit statistics — the quantities Theorem 6 bounds.

use crate::{Circuit, GateDef, GateId};

/// Structural statistics of a circuit.
///
/// Theorem 6 promises, for a fixed query over a fixed class: linear
/// `num_gates`/`num_edges`, bounded `depth`, bounded `max_fanout`, and
/// bounded `max_perm_rows` (while `max_perm_cols` is data-sized).
/// Experiment E5 tracks all of these across scaling inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CircuitStats {
    /// Total gates.
    pub num_gates: usize,
    /// Total child references (wires).
    pub num_edges: usize,
    /// Longest path from any source to any gate (permanent gates count as
    /// one level, as in the paper).
    pub depth: usize,
    /// Maximum fan-out over all gates.
    pub max_fanout: usize,
    /// Maximum fan-in of an addition gate (query-bounded by construction;
    /// data-sized sums go through 1-row permanents).
    pub max_add_fanin: usize,
    /// Maximum number of permanent rows.
    pub max_perm_rows: usize,
    /// Maximum number of permanent columns (data-sized).
    pub max_perm_cols: usize,
}

/// Compute [`CircuitStats`] in one topological pass.
pub fn compute(circuit: &Circuit) -> CircuitStats {
    let gates = circuit.gates();
    let mut depth = vec![0usize; gates.len()];
    let mut fanout = vec![0usize; gates.len()];
    let mut num_edges = 0;
    let mut max_add_fanin = 0;
    let mut max_perm_rows = 0;
    let mut max_perm_cols = 0;

    let bump = |fanout: &mut Vec<usize>, child: GateId| {
        fanout[child.0 as usize] += 1;
    };

    for (i, g) in gates.iter().enumerate() {
        match g {
            GateDef::Input(_) | GateDef::Const(_) => {}
            GateDef::Add(children) => {
                let children = circuit.children(*children);
                max_add_fanin = max_add_fanin.max(children.len());
                num_edges += children.len();
                let mut d = 0;
                for c in children {
                    bump(&mut fanout, *c);
                    d = d.max(depth[c.0 as usize]);
                }
                depth[i] = d + 1;
            }
            GateDef::Mul(a, b) => {
                num_edges += 2;
                bump(&mut fanout, *a);
                bump(&mut fanout, *b);
                depth[i] = depth[a.0 as usize].max(depth[b.0 as usize]) + 1;
            }
            GateDef::Perm { rows, cols } => {
                let cols = circuit.children(*cols);
                let k = *rows as usize;
                max_perm_rows = max_perm_rows.max(k);
                max_perm_cols = max_perm_cols.max(cols.len() / k.max(1));
                num_edges += cols.len();
                let mut d = 0;
                for c in cols {
                    bump(&mut fanout, *c);
                    d = d.max(depth[c.0 as usize]);
                }
                depth[i] = d + 1;
            }
        }
    }

    CircuitStats {
        num_gates: gates.len(),
        num_edges,
        depth: depth.iter().copied().max().unwrap_or(0),
        max_fanout: fanout.iter().copied().max().unwrap_or(0),
        max_add_fanin,
        max_perm_rows,
        max_perm_cols,
    }
}

#[cfg(test)]
mod tests {
    use crate::CircuitBuilder;

    #[test]
    fn stats_of_small_circuit() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let m = b.mul(x, y);
        let p = b.perm_flat(2, vec![x, y, m, x]);
        let s = b.add(&[p, m]);
        let c = b.finish(s);
        let st = c.stats();
        assert_eq!(st.num_gates, 5);
        assert_eq!(st.max_perm_rows, 2);
        assert_eq!(st.max_perm_cols, 2);
        assert_eq!(st.depth, 3); // input → mul → perm → add
        assert!(st.max_fanout >= 2);
        assert_eq!(st.max_add_fanin, 2);
    }
}
