//! Gate relabeling for dense-run coverage: [`Circuit::cluster_adds`].
//!
//! The vectorized evaluation tier (see `eval.rs`) turns an add gate's
//! child gather into a `&values[lo..hi]` slice sum whenever the children
//! occupy a contiguous ascending id range. Builder-assigned ids are
//! creation order, which interleaves the children of different gates —
//! after the compiler's parallel merge, an add gate's summands are
//! typically scattered across the id space and nothing is a run.
//!
//! `cluster_adds` renames gate ids (nothing else: gate count, child-list
//! orders, slot/literal numbering, and evaluation results are all
//! preserved) so that exclusive children of a gate become consecutive
//! ids in child-list order. The traversal is a grouped reverse-Kahn
//! sweep: walk the DAG parents-first, and whenever a gate releases its
//! last reference to a group of children, emit that group consecutively;
//! reversing the emission order then yields a children-first numbering in
//! which those groups are ascending contiguous runs. Shared (fan-out > 1)
//! children are emitted with their *last* releasing parent and split runs
//! locally — exactly the gates the dense tier's run analysis reports as
//! residual gather mass.
//!
//! The pass is deterministic (a pure function of the IR), so it preserves
//! the compiler's sequential ≡ parallel byte-identity guarantee, and it
//! maintains the topological invariant: a child's last parent is emitted
//! before it, hence the child's new id is smaller after reversal.

use crate::{ChildRange, Circuit, GateDef, GateId};

impl Circuit {
    /// Relabel gate ids to maximize contiguous child runs under add (and
    /// perm) gates, preserving semantics: same gates, same child-list
    /// orders, same evaluation results; only the numbering changes.
    ///
    /// Intended to run once at the end of compilation. Callers holding
    /// `GateId`s into the *old* numbering must not mix them with the
    /// returned circuit.
    pub fn cluster_adds(&self) -> Circuit {
        let n = self.gates.len();
        if n == 0 {
            return self.clone();
        }

        // Reference counts: one per occurrence in any child list.
        let mut refs = vec![0u32; n];
        for gate in &self.gates {
            match gate {
                GateDef::Add(r) | GateDef::Perm { cols: r, .. } => {
                    for c in self.children(*r) {
                        refs[c.0 as usize] += 1;
                    }
                }
                GateDef::Mul(a, b) => {
                    refs[a.0 as usize] += 1;
                    refs[b.0 as usize] += 1;
                }
                GateDef::Input(_) | GateDef::Const(_) => {}
            }
        }

        // Grouped reverse-Kahn emission, parents first. Each stack entry
        // is a group of gates that became ready together; a group's
        // members are emitted consecutively and therefore end up as one
        // contiguous ascending run after the final reversal.
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut stack: Vec<Vec<u32>> = Vec::new();
        let mut roots: Vec<u32> = (0..n as u32).filter(|&g| refs[g as usize] == 0).collect();
        // Descending, so the output (largest root) keeps the largest id.
        roots.sort_unstable_by(|a, b| b.cmp(a));
        stack.push(roots);

        let mut ready: Vec<u32> = Vec::new();
        while let Some(group) = stack.pop() {
            order.extend_from_slice(&group);
            for &g in &group {
                ready.clear();
                // Children visited in REVERSE child-list order: the
                // ready group is emitted in that order, so after the
                // final reversal the run reads in child-list order.
                let mut release = |c: GateId| {
                    let r = &mut refs[c.0 as usize];
                    *r -= 1;
                    if *r == 0 {
                        ready.push(c.0);
                    }
                };
                match &self.gates[g as usize] {
                    GateDef::Add(r) | GateDef::Perm { cols: r, .. } => {
                        for c in self.children(*r).iter().rev() {
                            release(*c);
                        }
                    }
                    GateDef::Mul(a, b) => {
                        release(*b);
                        release(*a);
                    }
                    GateDef::Input(_) | GateDef::Const(_) => {}
                }
                if !ready.is_empty() {
                    stack.push(std::mem::take(&mut ready));
                }
            }
        }
        debug_assert_eq!(order.len(), n, "grouped Kahn sweep must emit every gate");

        // order[i] gets new id n-1-i (children-first after reversal).
        let mut new_id = vec![0u32; n];
        for (i, &g) in order.iter().enumerate() {
            new_id[g as usize] = (n - 1 - i) as u32;
        }

        let mut gates: Vec<GateDef> = Vec::with_capacity(n);
        let mut children: Vec<GateId> = Vec::with_capacity(self.children.len());
        let remap = |r: &ChildRange, children: &mut Vec<GateId>| {
            let start = children.len() as u32;
            children.extend(
                self.children(*r)
                    .iter()
                    .map(|c| GateId(new_id[c.0 as usize])),
            );
            ChildRange { start, len: r.len }
        };
        for i in (0..n).rev() {
            let def = match &self.gates[order[i] as usize] {
                GateDef::Input(s) => GateDef::Input(*s),
                GateDef::Const(c) => GateDef::Const(*c),
                GateDef::Add(r) => GateDef::Add(remap(r, &mut children)),
                GateDef::Mul(a, b) => {
                    GateDef::Mul(GateId(new_id[a.0 as usize]), GateId(new_id[b.0 as usize]))
                }
                GateDef::Perm { rows, cols } => GateDef::Perm {
                    rows: *rows,
                    cols: remap(cols, &mut children),
                },
            };
            gates.push(def);
        }

        Circuit {
            gates,
            children,
            num_slots: self.num_slots,
            num_lits: self.num_lits,
            output: GateId(new_id[self.output.0 as usize]),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::eval::is_full_run;
    use crate::{Circuit, CircuitBuilder, GateDef};
    use agq_semiring::{Nat, F64};

    /// Two wide adds sharing nothing, combined at the output — builder ids
    /// interleave their children; the pass must make both full runs.
    fn interleaved_adds() -> Circuit {
        let mut b = CircuitBuilder::new();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..6 {
            xs.push(b.input(i));
            ys.push(b.input(6 + i));
        }
        let a1 = b.add(&xs);
        let a2 = b.add(&ys);
        let m = b.mul(a1, a2);
        b.finish(m)
    }

    fn add_run_fraction(c: &Circuit) -> (usize, usize) {
        let mut full = 0;
        let mut total = 0;
        for g in c.gates() {
            if let GateDef::Add(r) = g {
                total += 1;
                if is_full_run(c.children(*r)) {
                    full += 1;
                }
            }
        }
        (full, total)
    }

    #[test]
    fn clustering_preserves_semantics_and_creates_runs() {
        let c = interleaved_adds();
        let r = c.cluster_adds();
        assert_eq!(r.len(), c.len());
        assert_eq!(r.num_slots(), c.num_slots());
        let slots: Vec<Nat> = (1..=12).map(Nat).collect();
        assert_eq!(c.eval(&slots, &[]), r.eval(&slots, &[]));
        let (full, total) = add_run_fraction(&r);
        assert_eq!((full, total), (2, 2), "both adds should become full runs");
    }

    #[test]
    fn clustering_keeps_topological_invariant() {
        let r = interleaved_adds().cluster_adds();
        for (i, g) in r.gates().iter().enumerate() {
            let check = |c: crate::GateId| {
                assert!((c.0 as usize) < i, "child {c:?} not below gate {i}");
            };
            match g {
                GateDef::Add(cr) | GateDef::Perm { cols: cr, .. } => {
                    r.children(*cr).iter().copied().for_each(check)
                }
                GateDef::Mul(a, b) => {
                    check(*a);
                    check(*b);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn clustering_is_deterministic_and_stable() {
        let a = interleaved_adds().cluster_adds();
        let b = interleaved_adds().cluster_adds();
        assert_eq!(a, b, "pure function of the IR");
        // A second application may renumber again but must stay semantically
        // identical and keep the runs it created.
        let c = a.cluster_adds();
        let slots: Vec<Nat> = (1..=12).map(Nat).collect();
        assert_eq!(a.eval(&slots, &[]), c.eval(&slots, &[]));
        assert_eq!(add_run_fraction(&a), add_run_fraction(&c));
    }

    #[test]
    fn shared_children_and_perms_survive() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let s = b.add(&[x, y]);
        let p = b.perm_flat(2, vec![x, y, s, x]);
        let out = b.add(&[s, p]);
        let c = b.finish(out);
        let r = c.cluster_adds();
        let slots = [Nat(3), Nat(5)];
        assert_eq!(c.eval(&slots, &[]), r.eval(&slots, &[]));
        // Perm column order must be preserved exactly (column-major layout).
        let perm_cols: Vec<usize> = r
            .gates()
            .iter()
            .filter_map(|g| match g {
                GateDef::Perm { cols, .. } => Some(r.children(*cols).len()),
                _ => None,
            })
            .collect();
        assert_eq!(perm_cols, vec![4]);
    }

    #[test]
    fn float_values_bit_identical_after_relabel() {
        let c = interleaved_adds();
        let r = c.cluster_adds();
        let slots: Vec<F64> = (1..=12).map(|i| F64(0.1 * i as f64)).collect();
        let a = c.eval(&slots, &[]);
        let b = r.eval(&slots, &[]);
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "fold order must not drift");
    }
}
