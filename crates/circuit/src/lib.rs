//! Circuits with permanent gates: system **S6**, the target representation
//! of the Theorem 6 compiler.
//!
//! A circuit (Section 3 of the paper) is a DAG of gates: inputs, constants,
//! addition, multiplication, and **permanent gates** whose inputs form a
//! `k × n` matrix with `k` bounded by the query. The same circuit can be
//! evaluated in *any* commutative semiring — the universal property that
//! the provenance and enumeration results exploit. Constants are stored as
//! references (`0`, `1`, or an index into a per-evaluation literal table)
//! precisely so the circuit stays semiring-agnostic.
//!
//! # Flat-arena IR
//!
//! A compiled circuit is a handful of contiguous allocations, not one per
//! gate: every gate's child list lives in one shared `Vec<GateId>` arena,
//! and a [`GateDef`] stores only a [`ChildRange`] (offset + length) into
//! it. [`Circuit::children`] resolves a range to a slice. [`GateDef`] is
//! therefore `Copy`-cheap, gate iteration is cache-friendly, and circuits
//! serialize/compare as plain flat buffers. The dynamic evaluator mirrors
//! this layout: its parent lists and per-slot input-gate lists are CSR
//! (offset table + one flat buffer), built in two counting passes.
//!
//! # Evaluation
//!
//! * [`Circuit`]/[`CircuitBuilder`] — construction with topological-id
//!   invariants and peephole zero/one pruning;
//! * [`Circuit::eval`] — one-shot evaluation (streaming permanents,
//!   `O_k(size)`);
//! * [`DynEvaluator`] — the dynamic evaluator of Theorem 8: cached gate
//!   values plus a per-permanent-gate maintenance structure chosen by
//!   semiring capability ([`PermMaint`]: segment tree for general
//!   semirings, inclusion–exclusion for rings, column-type counting for
//!   finite semirings);
//! * [`CircuitStats`] — depth, fan-out, permanent-row bounds; the
//!   quantities Theorem 6 promises are constant.
//!
//! # Zero-restore queries
//!
//! [`DynEvaluator::set_input`] mutates persistent state and repairs the
//! affected cone. Point queries, however, only need the output *as if*
//! some inputs were patched: [`DynEvaluator::peek`] evaluates exactly the
//! query-bounded cone above the patched slots into a reusable
//! [`PeekScratch`] overlay — no state is written, nothing is restored,
//! and permanent gates answer through the non-mutating
//! [`PermMaint::peek`]. This halves the maintenance-structure work of the
//! classic `2|x̄|`-update trick (`peek_with`) and, taking `&self`, makes
//! batched and concurrent point queries possible.
//!
//! # Plan/state split
//!
//! The evaluator is split into an immutable, `Send + Sync` [`EvalPlan`]
//! (parent CSR, per-slot input-gate CSR, dense perm numbering, memoized
//! per-slot peek cones) and the mutable [`DynEvaluator`] state (gate
//! values, permanent maintenance structures, slot values). One
//! `Arc<EvalPlan>` backs any number of states
//! ([`DynEvaluator::from_plan`]) — this is what lets a sharded engine
//! keep one compiled plan and a cheap mutable state per Gaifman shard.
//! With cones memoized ([`EvalPlan::with_cones`]),
//! [`DynEvaluator::peek_memo`] answers point queries by a single
//! topological sweep of the precomputed cone.
//!
//! # Vectorized sweeps
//!
//! Add gates dominate sweep time on the compiled circuits (the
//! domain-sized aggregates at the root). Three pieces turn their
//! child gathers into bulk slice sums: carrier-level kernels
//! ([`agq_semiring::Semiring::sum_slice`] /
//! `add_assign_slices`, auto-vectorized for machine-word carriers), a
//! plan-time **dense-run analysis** ([`EvalPlan`] precomputes each add
//! gate's maximal contiguous child-id runs, exposed via
//! [`EvalPlan::add_runs`] and summarized by
//! [`EvalPlan::dense_run_stats`]), and the id-relabeling pass
//! [`Circuit::cluster_adds`] that the compiler applies once so exclusive
//! children actually *are* contiguous. The bit-identity rules for when a
//! sum may go through the bulk tier are documented in `eval.rs` (kernel
//! contract) and enforced by the differential tests.

mod builder;
mod csr;
mod dynamic;
mod eval;
mod relabel;
mod stats;

pub use builder::CircuitBuilder;
pub use csr::{Csr, CsrBuilder, CsrCursor};
pub use dynamic::{
    DenseRunStats, DynEvaluator, EvalPlan, FiniteEvaluator, FiniteMaint, GeneralEvaluator,
    PeekScratch, PermMaint, RingEvaluator, RingMaint,
};
pub use eval::eval_gates;
pub use stats::CircuitStats;

use agq_semiring::Semiring;

/// Index of a gate within its circuit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GateId(pub u32);

/// A semiring-agnostic constant: `0`, `1`, or the `i`-th entry of the
/// literal table supplied at evaluation time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConstRef {
    /// The additive identity.
    Zero,
    /// The multiplicative identity.
    One,
    /// An indexed literal (e.g. a coefficient of the compiled expression).
    Lit(u32),
}

/// A contiguous run of child references in the circuit's shared arena
/// (resolve with [`Circuit::children`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ChildRange {
    start: u32,
    len: u32,
}

impl ChildRange {
    /// A range of `len` children starting at arena offset `start`.
    /// Used by deserializers reconstructing a circuit from its flat
    /// buffers; [`CircuitBuilder`] is the normal way to mint ranges.
    pub fn new(start: u32, len: u32) -> Self {
        ChildRange { start, len }
    }

    /// Arena offset of the first child.
    pub fn start(self) -> u32 {
        self.start
    }

    /// Number of children in the range.
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Whether the range is empty.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    fn as_range(self) -> std::ops::Range<usize> {
        self.start as usize..(self.start + self.len) as usize
    }
}

/// One gate. Children always have smaller ids (topological invariant,
/// enforced by [`CircuitBuilder`]); child lists live in the circuit's
/// shared arena.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GateDef {
    /// External input, identified by a dense *slot* index.
    Input(u32),
    /// A constant.
    Const(ConstRef),
    /// Sum of the referenced children. The compiler emits wide (chunked
    /// data-sized) fan-in for term and top-level sums so the vectorized
    /// dense-run tier has slices to sweep; per-element products still go
    /// through 1-row permanent gates.
    Add(ChildRange),
    /// Product of two children.
    Mul(GateId, GateId),
    /// Permanent of a `rows × (cols.len()/rows)` matrix; the referenced
    /// children are column-major (entry `(r, c)` at `cols[c*rows + r]`).
    Perm {
        /// Number of rows (≤ `agq_perm::MAX_ROWS`).
        rows: u8,
        /// Column-major child references.
        cols: ChildRange,
    },
}

/// An immutable circuit with a distinguished output gate.
///
/// Storage is a flat arena: `gates` (one fixed-size [`GateDef`] each) and
/// `children` (every gate's child list, concatenated). Equality compares
/// both buffers — two circuits are `==` exactly when they are
/// byte-identical IR.
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    gates: Vec<GateDef>,
    children: Vec<GateId>,
    num_slots: u32,
    num_lits: u32,
    output: GateId,
}

impl Circuit {
    /// Reassemble a circuit from its flat buffers (the inverse of
    /// reading them back via [`gates`](Self::gates) /
    /// [`child_arena`](Self::child_arena) / the scalar accessors).
    ///
    /// Every structural invariant the builder enforces is re-checked so
    /// that a corrupted or adversarial byte stream yields an `Err`
    /// instead of out-of-bounds panics later: child ranges must lie
    /// inside the arena, every referenced gate id (children, `Mul`
    /// operands, the output) must be *smaller* than the referencing gate
    /// (topological order) and within bounds, slot/literal references
    /// must be within the declared counts, and `Perm` column counts must
    /// be divisible by their row count.
    pub fn from_raw_parts(
        gates: Vec<GateDef>,
        children: Vec<GateId>,
        num_slots: u32,
        num_lits: u32,
        output: GateId,
    ) -> Result<Self, &'static str> {
        let n = gates.len() as u64;
        let arena = children.len() as u64;
        let check_range = |g: u64, r: ChildRange| -> Result<(), &'static str> {
            if r.start as u64 + r.len as u64 > arena {
                return Err("child range out of arena bounds");
            }
            for &c in &children[r.as_range()] {
                if (c.0 as u64) >= g {
                    return Err("child id violates topological order");
                }
            }
            Ok(())
        };
        for (g, def) in gates.iter().enumerate() {
            let g = g as u64;
            match *def {
                GateDef::Input(slot) => {
                    if slot >= num_slots {
                        return Err("input slot out of range");
                    }
                }
                GateDef::Const(ConstRef::Lit(i)) => {
                    if i >= num_lits {
                        return Err("literal index out of range");
                    }
                }
                GateDef::Const(_) => {}
                GateDef::Add(r) => check_range(g, r)?,
                GateDef::Mul(a, b) => {
                    if a.0 as u64 >= g || b.0 as u64 >= g {
                        return Err("mul operand violates topological order");
                    }
                }
                GateDef::Perm { rows, cols } => {
                    if rows == 0 || cols.len() % rows as usize != 0 {
                        return Err("perm column count not divisible by rows");
                    }
                    check_range(g, cols)?;
                }
            }
        }
        if n == 0 || output.0 as u64 >= n {
            return Err("output gate out of range");
        }
        Ok(Circuit {
            gates,
            children,
            num_slots,
            num_lits,
            output,
        })
    }

    /// The gates, in topological order.
    pub fn gates(&self) -> &[GateDef] {
        &self.gates
    }

    /// Resolve a child range to its slice of the shared arena.
    pub fn children(&self, range: ChildRange) -> &[GateId] {
        &self.children[range.as_range()]
    }

    /// The whole child arena (total wire count is its length plus two per
    /// `Mul` gate).
    pub fn child_arena(&self) -> &[GateId] {
        &self.children
    }

    /// The output gate.
    pub fn output(&self) -> GateId {
        self.output
    }

    /// Number of input slots.
    pub fn num_slots(&self) -> usize {
        self.num_slots as usize
    }

    /// Number of literal-table entries expected at evaluation.
    pub fn num_lits(&self) -> usize {
        self.num_lits as usize
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Evaluate in semiring `S`: `slots` maps input slots to values,
    /// `lits` the literal table. Runs in `O_k(size)`.
    pub fn eval<S: Semiring>(&self, slots: &[S], lits: &[S]) -> S {
        assert_eq!(slots.len(), self.num_slots as usize, "slot count mismatch");
        assert_eq!(lits.len(), self.num_lits as usize, "literal count mismatch");
        let values = eval_gates(self, slots, lits);
        values[self.output.0 as usize].clone()
    }

    /// Structural statistics.
    pub fn stats(&self) -> CircuitStats {
        stats::compute(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_semiring::{MinPlus, Nat, Poly, Semiring};

    /// Build Σ_{i≠j} a_i·b_j as a 2-row permanent over explicit inputs and
    /// check the universal property: the same circuit evaluates correctly
    /// in ℕ, the tropical semiring, and the free semiring.
    fn two_row_perm_circuit(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new();
        let mut cols = Vec::new();
        for i in 0..n {
            let a = b.input(i as u32);
            let w = b.input((n + i) as u32);
            cols.push([a, w]);
        }
        let p = b.perm(2, &cols);
        b.finish(p)
    }

    #[test]
    fn universal_evaluation_nat() {
        let c = two_row_perm_circuit(3);
        // a = [1,2,3], b = [10,20,30]
        let slots: Vec<Nat> = [1, 2, 3, 10, 20, 30].map(Nat).to_vec();
        // Σ_{i≠j} a_i b_j = (1+2+3)(10+20+30) − (10+40+90) = 360−140 = 220
        assert_eq!(c.eval(&slots, &[]), Nat(220));
    }

    #[test]
    fn universal_evaluation_minplus() {
        let c = two_row_perm_circuit(3);
        let slots: Vec<MinPlus> = [5, 1, 4, 2, 8, 3].map(MinPlus).to_vec();
        // min over i≠j of a_i + b_j: candidates 5+8=13,5+3=8,1+2=3,1+3=4,
        // 4+2=6,4+8=12 → 3
        assert_eq!(c.eval(&slots, &[]), MinPlus(3));
    }

    #[test]
    fn universal_evaluation_provenance() {
        use agq_semiring::Gen;
        let c = two_row_perm_circuit(2);
        let g = |i| Poly::var(Gen(i));
        let slots = vec![g(1), g(2), g(10), g(20)];
        let out = c.eval(&slots, &[]);
        // a1·b2 + a2·b1
        let expect = g(1).mul(&g(20)).add(&g(2).mul(&g(10)));
        assert_eq!(out, expect);
    }

    #[test]
    fn literal_constants() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let c = b.lit(0);
        let m = b.mul(x, c);
        let one = b.one();
        let s = b.add(&[m, one]);
        let circuit = b.finish(s);
        assert_eq!(circuit.eval(&[Nat(5)], &[Nat(3)]), Nat(16));
    }

    #[test]
    fn arena_holds_all_child_lists() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let s = b.add(&[x, y]);
        let p = b.perm_flat(2, vec![x, y, s, x]);
        let out = b.add(&[s, p]);
        let c = b.finish(out);
        // Add(x,y) + Perm cols (x,y,s,x) + Add(s,p) = 8 arena entries.
        assert_eq!(c.child_arena().len(), 8);
        match c.gates()[s.0 as usize] {
            GateDef::Add(r) => assert_eq!(c.children(r), &[x, y]),
            ref g => panic!("expected add, got {g:?}"),
        }
        match c.gates()[p.0 as usize] {
            GateDef::Perm { rows, cols } => {
                assert_eq!(rows, 2);
                assert_eq!(c.children(cols), &[x, y, s, x]);
            }
            ref g => panic!("expected perm, got {g:?}"),
        }
    }
}
