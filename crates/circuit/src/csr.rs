//! Shared compressed-sparse-row (CSR) adjacency buffers.
//!
//! Both evaluators over a circuit — the semiring [`crate::DynEvaluator`]
//! and the free-semiring enumeration machine of `agq-enumerate` — need
//! the same derived adjacency: parent references per gate and input
//! gates per slot. Storing those as `Vec<Vec<_>>` costs one allocation
//! per gate and a pointer chase per traversal; a CSR layout is two flat
//! buffers (an offset table and a payload), built in two counting
//! passes, mirroring how the circuit itself stores child lists in one
//! shared arena.
//!
//! [`CsrBuilder`] packages the two-pass construction: call
//! [`CsrBuilder::count`] once per item, [`CsrBuilder::finish_counts`] to
//! turn counts into offsets, [`CsrCursor::place`] once per item (any
//! order), and [`CsrCursor::finish`] for the immutable [`Csr`].

/// An immutable CSR adjacency: the items of key `k` are
/// `items[offsets[k] .. offsets[k+1]]`.
#[derive(Clone, Debug)]
pub struct Csr<T> {
    offsets: Vec<u32>,
    items: Vec<T>,
}

impl<T> Csr<T> {
    /// The items filed under `key`.
    pub fn row(&self, key: usize) -> &[T] {
        &self.items[self.offsets[key] as usize..self.offsets[key + 1] as usize]
    }

    /// Number of keys.
    pub fn num_keys(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of items across all keys.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }
}

/// Counting pass of the two-pass CSR construction.
pub struct CsrBuilder {
    offsets: Vec<u32>,
}

impl CsrBuilder {
    /// Start counting for `num_keys` keys.
    pub fn new(num_keys: usize) -> Self {
        CsrBuilder {
            offsets: vec![0; num_keys + 1],
        }
    }

    /// Announce one item filed under `key`.
    pub fn count(&mut self, key: usize) {
        self.offsets[key + 1] += 1;
    }

    /// Prefix-sum the counts and move to the placement pass. `fill` is
    /// the placeholder payload (overwritten by [`CsrCursor::place`]).
    pub fn finish_counts<T: Clone>(mut self, fill: T) -> CsrCursor<T> {
        for i in 1..self.offsets.len() {
            self.offsets[i] += self.offsets[i - 1];
        }
        let total = *self.offsets.last().expect("offsets nonempty") as usize;
        let cursor = self.offsets[..self.offsets.len() - 1].to_vec();
        CsrCursor {
            items: vec![fill; total],
            offsets: self.offsets,
            cursor,
        }
    }
}

/// Placement pass of the two-pass CSR construction.
pub struct CsrCursor<T> {
    offsets: Vec<u32>,
    cursor: Vec<u32>,
    items: Vec<T>,
}

impl<T> CsrCursor<T> {
    /// File `item` under `key`. Each key must receive exactly as many
    /// items as were counted for it.
    pub fn place(&mut self, key: usize, item: T) {
        let at = self.cursor[key];
        debug_assert!(at < self.offsets[key + 1], "overfilled CSR row {key}");
        self.items[at as usize] = item;
        self.cursor[key] = at + 1;
    }

    /// Finish the immutable CSR.
    pub fn finish(self) -> Csr<T> {
        debug_assert!(
            self.cursor
                .iter()
                .zip(self.offsets.iter().skip(1))
                .all(|(c, o)| c == o),
            "underfilled CSR row"
        );
        Csr {
            offsets: self.offsets,
            items: self.items,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_pass_roundtrip() {
        let pairs = [(0usize, 'a'), (2, 'b'), (0, 'c'), (3, 'd'), (2, 'e')];
        let mut b = CsrBuilder::new(4);
        for (k, _) in pairs {
            b.count(k);
        }
        let mut c = b.finish_counts('?');
        for (k, v) in pairs {
            c.place(k, v);
        }
        let csr = c.finish();
        assert_eq!(csr.num_keys(), 4);
        assert_eq!(csr.num_items(), 5);
        assert_eq!(csr.row(0), &['a', 'c']);
        assert_eq!(csr.row(1), &[] as &[char]);
        assert_eq!(csr.row(2), &['b', 'e']);
        assert_eq!(csr.row(3), &['d']);
    }

    #[test]
    fn empty_keys() {
        let csr = CsrBuilder::new(3).finish_counts(0u32).finish();
        assert_eq!(csr.num_items(), 0);
        for k in 0..3 {
            assert!(csr.row(k).is_empty());
        }
    }
}
