//! Differential suite for the vectorized sweep kernels.
//!
//! The kernel contract (`eval.rs` module docs) promises that every
//! evaluation path — one-shot [`eval_gates`], the dynamic evaluators'
//! recompute, and the memoized peeks — produces add-gate values
//! **bit-identical** to the canonical 4-lane fold, no matter whether a
//! gate's children happen to form dense id runs (bulk `sum_slice`
//! slices) or are scattered (scalar gather). This suite pins that
//! promise on random circuits:
//!
//! 1. an in-test *reference evaluator* that always gathers child values
//!    into a buffer and folds with [`lane_sum_slice`] — the spec, with
//!    no dense-run analysis at all;
//! 2. [`eval_gates`] on the raw builder output (scattered children →
//!    mostly scalar tier) and on the [`Circuit::cluster_adds`] relabel
//!    (dense runs → bulk tier);
//! 3. the three dynamic backends (`GeneralEvaluator`, `RingEvaluator`,
//!    `FiniteEvaluator`) after random post-build update sweeps;
//! 4. `peek_memo` overlays against a patched reference evaluation.
//!
//! Float comparisons use `f64::to_bits`, so any fold-order drift in the
//! bulk paths fails loudly rather than hiding inside an epsilon.

use agq_circuit::{
    eval_gates, Circuit, CircuitBuilder, ConstRef, DynEvaluator, FiniteEvaluator, GateDef, GateId,
    GeneralEvaluator, PeekScratch, RingEvaluator,
};
use agq_semiring::{lane_sum_slice, Mod, Nat, Semiring, F64};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Reference evaluator: scalar gather + canonical lane fold, always.
// ---------------------------------------------------------------------

fn reference_eval<S: Semiring>(c: &Circuit, slots: &[S]) -> Vec<S> {
    let mut values: Vec<S> = Vec::with_capacity(c.len());
    let mut buf: Vec<S> = Vec::new();
    for gate in c.gates() {
        let v = match gate {
            GateDef::Input(slot) => slots[*slot as usize].clone(),
            GateDef::Const(ConstRef::Zero) => S::zero(),
            GateDef::Const(ConstRef::One) => S::one(),
            GateDef::Const(ConstRef::Lit(_)) => panic!("no lits in generated circuits"),
            GateDef::Add(r) => {
                buf.clear();
                buf.extend(c.children(*r).iter().map(|g| values[g.0 as usize].clone()));
                lane_sum_slice(&buf)
            }
            GateDef::Mul(a, b) => values[a.0 as usize].mul(&values[b.0 as usize]),
            GateDef::Perm { .. } => panic!("no perm gates in generated circuits"),
        };
        values.push(v);
    }
    values
}

// ---------------------------------------------------------------------
// Random add/mul DAGs. Ops are (kind, picks) with indices taken modulo
// the current gate count; every fourth op is a Mul, the rest are Adds of
// up to ~40 children (wide enough to cross the lane-fold and MIN_RUN
// thresholds in both directions).
// ---------------------------------------------------------------------

type Ops = Vec<(u8, Vec<u16>)>;

fn ops_strategy() -> impl Strategy<Value = Ops> {
    pvec((any::<u8>(), pvec(any::<u16>(), 0..40)), 1..25)
}

fn build_circuit(n_inputs: u32, ops: &Ops) -> Circuit {
    let mut b = CircuitBuilder::new();
    let mut gates: Vec<GateId> = (0..n_inputs).map(|i| b.input(i)).collect();
    for (kind, picks) in ops {
        let pick = |p: &u16| gates[*p as usize % gates.len()];
        let g = if kind % 4 == 0 && picks.len() >= 2 {
            b.mul(pick(&picks[0]), pick(&picks[1]))
        } else {
            let kids: Vec<GateId> = picks.iter().map(pick).collect();
            b.add(&kids)
        };
        gates.push(g);
    }
    let out = b.add(&gates);
    b.finish(out)
}

/// Awkward float inputs: mixed magnitudes and signs, so any change in
/// fold order or grouping shifts the rounding and flips output bits.
fn f64_slots(n: u32, salt: u32) -> Vec<F64> {
    const TABLE: [f64; 8] = [0.1, -7.25, 1e15, -1e15, 3.333333333e-3, 1.0, 2.5e7, -1e-8];
    (0..n)
        .map(|i| F64(TABLE[((i + salt) % 8) as usize] * (1.0 + f64::from(i) * 0.5)))
        .collect()
}

fn bits(xs: &[F64]) -> Vec<u64> {
    xs.iter().map(|x| x.0.to_bits()).collect()
}

// ---------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Bulk one-shot evaluation ≡ scalar reference, bit-for-bit, on the
    /// raw (scattered) circuit AND on the clustered (dense-run) relabel
    /// — for the order-sensitive carrier where grouping drift shows.
    #[test]
    fn oneshot_bulk_matches_scalar_reference_f64(
        n_inputs in 1u32..12,
        salt in 0u32..8,
        ops in ops_strategy(),
    ) {
        let slots = f64_slots(n_inputs, salt);
        let raw = build_circuit(n_inputs, &ops);
        prop_assert_eq!(
            bits(&eval_gates(&raw, &slots, &[])),
            bits(&reference_eval(&raw, &slots))
        );

        let clustered = raw.cluster_adds();
        let got = eval_gates(&clustered, &slots, &[]);
        let want = reference_eval(&clustered, &slots);
        prop_assert_eq!(bits(&got), bits(&want));
        // The relabel must also preserve the circuit's *output* bits.
        let raw_out = eval_gates(&raw, &slots, &[]).last().unwrap().0.to_bits();
        prop_assert_eq!(got.last().unwrap().0.to_bits(), raw_out);
    }

    /// Same property for the wrapping-ℕ carrier that takes the
    /// specialized (order-insensitive, multi-run) bulk paths.
    #[test]
    fn oneshot_bulk_matches_scalar_reference_nat(
        n_inputs in 1u32..12,
        ops in ops_strategy(),
    ) {
        let slots: Vec<Nat> = (0..n_inputs).map(|i| Nat(u64::from(i) * 37 + 5)).collect();
        for c in [build_circuit(n_inputs, &ops), build_circuit(n_inputs, &ops).cluster_adds()] {
            prop_assert_eq!(eval_gates(&c, &slots, &[]), reference_eval(&c, &slots));
        }
    }

    /// Dynamic backends after post-update sweeps: every backend's gate
    /// values must match a from-scratch reference evaluation at every
    /// update step, bit-identically.
    #[test]
    fn dynamic_backends_match_reference_after_updates(
        n_inputs in 2u32..10,
        salt in 0u32..8,
        ops in ops_strategy(),
        updates in pvec((any::<u16>(), any::<u16>()), 1..12),
    ) {
        let circuit = Arc::new(build_circuit(n_inputs, &ops).cluster_adds());
        let mut slots = f64_slots(n_inputs, salt);

        let mut gen: GeneralEvaluator<F64> = DynEvaluator::new(circuit.clone(), &slots, &[]);
        let mut ring: RingEvaluator<F64> = DynEvaluator::new(circuit.clone(), &slots, &[]);
        for (slot, val) in &updates {
            let slot = u32::from(*slot) % n_inputs;
            let new = F64(f64::from(*val) * 0.125 - 1e3);
            slots[slot as usize] = new;
            gen.set_input(slot, new);
            ring.set_input(slot, new);
            let want = bits(&reference_eval(&circuit, &slots));
            prop_assert_eq!(bits(gen.gate_values()), want.clone());
            prop_assert_eq!(bits(ring.gate_values()), want);
        }

        // Finite backend over ℤ/5 (order-insensitive multi-run tier).
        let mut mslots: Vec<Mod> = (0..n_inputs).map(|i| Mod::new(u64::from(i), 5)).collect();
        let mut fin: FiniteEvaluator<Mod> = DynEvaluator::new(circuit.clone(), &mslots, &[]);
        for (slot, val) in &updates {
            let slot = u32::from(*slot) % n_inputs;
            let new = Mod::new(u64::from(*val), 5);
            mslots[slot as usize] = new;
            fin.set_input(slot, new);
            prop_assert_eq!(fin.gate_values(), &reference_eval(&circuit, &mslots)[..]);
        }
    }

    /// Memoized peeks over the dense-run plan ≡ reference evaluation of
    /// the patched inputs (overlay-aware dense tier soundness).
    #[test]
    fn peek_memo_matches_patched_reference(
        n_inputs in 2u32..10,
        salt in 0u32..8,
        ops in ops_strategy(),
        patches in pvec((any::<u16>(), any::<u16>()), 1..6),
    ) {
        let circuit = Arc::new(build_circuit(n_inputs, &ops).cluster_adds());
        let slots = f64_slots(n_inputs, salt);
        let ev: GeneralEvaluator<F64> = DynEvaluator::new(circuit.clone(), &slots, &[]);
        let mut scratch = PeekScratch::new();

        let patches: Vec<(u32, F64)> = patches
            .iter()
            .enumerate()
            .map(|(i, (slot, val))| {
                let slot = u32::from(*slot) % n_inputs;
                (slot, F64(f64::from(*val) * 0.0625 + f64::from(i as u32)))
            })
            .collect();
        let mut patched = slots.clone();
        for (slot, val) in &patches {
            patched[*slot as usize] = *val;
        }
        let want = reference_eval(&circuit, &patched).last().unwrap().0.to_bits();
        prop_assert_eq!(ev.peek_memo(&patches, &mut scratch).0.to_bits(), want);
        // Baseline (committed) values must be untouched by the peek.
        prop_assert_eq!(bits(ev.gate_values()), bits(&reference_eval(&circuit, &slots)));
    }
}

/// Clustering must turn interleaved builder output into full dense runs
/// and the one-shot dense tier must kick in — a deterministic (non-prop)
/// anchor so coverage regressions fail without relying on random draws.
#[test]
fn clustering_yields_full_runs_on_interleaved_adds() {
    let mut b = CircuitBuilder::new();
    let inputs: Vec<GateId> = (0..32).map(|i| b.input(i)).collect();
    // Two adds whose children interleave in builder order.
    let even: Vec<GateId> = inputs.iter().copied().step_by(2).collect();
    let odd: Vec<GateId> = inputs.iter().copied().skip(1).step_by(2).collect();
    let a = b.add(&even);
    let c = b.add(&odd);
    let out = b.mul(a, c);
    let raw = b.finish(out);
    let clustered = raw.cluster_adds();

    let plan = agq_circuit::EvalPlan::new(Arc::new(clustered.clone()));
    let stats = plan.dense_run_stats();
    assert_eq!(stats.add_gates, 2);
    assert_eq!(
        stats.full_run_gates, 2,
        "clustering should densify both adds"
    );
    assert!((stats.coverage() - 1.0).abs() < 1e-12);

    let slots: Vec<Nat> = (0..32).map(|i| Nat(i * i + 1)).collect();
    assert_eq!(
        eval_gates(&clustered, &slots, &[]),
        reference_eval(&clustered, &slots)
    );
    assert_eq!(
        eval_gates(&clustered, &slots, &[]).last(),
        eval_gates(&raw, &slots, &[]).last()
    );
}
