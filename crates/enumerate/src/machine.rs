//! Support tracking for circuits evaluated in the free semiring.

use agq_circuit::{Circuit, ConstRef, GateDef};
use agq_perm::support::sdr_exists;
use agq_semiring::Gen;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// An input value in the free semiring: a list of summand monomials,
/// each a (not necessarily sorted) list of generators. The empty list is
/// `0`; a single empty monomial is `1`.
pub type InputVal = Vec<Vec<Gen>>;

/// Lemma 39's structure for one permanent gate: columns bucketed by their
/// Boolean support mask, with counts for `O_k(1)` Hall checks.
#[derive(Debug)]
pub(crate) struct PermSupport {
    pub k: usize,
    /// Current support mask of each column.
    pub col_mask: Vec<u32>,
    /// `counts[mask]` = number of columns with that mask.
    pub counts: Vec<i64>,
    /// Columns per mask, in enumeration order.
    pub lists: Vec<Vec<u32>>,
    /// `pos[col]` = index of the column within its mask list.
    pub pos: Vec<u32>,
}

impl PermSupport {
    fn new(k: usize, masks: Vec<u32>) -> Self {
        let mut counts = vec![0i64; 1 << k];
        let mut lists = vec![Vec::new(); 1 << k];
        let mut pos = vec![0u32; masks.len()];
        for (c, &m) in masks.iter().enumerate() {
            counts[m as usize] += 1;
            pos[c] = lists[m as usize].len() as u32;
            lists[m as usize].push(c as u32);
        }
        PermSupport {
            k,
            col_mask: masks,
            counts,
            lists,
            pos,
        }
    }

    /// Flip one entry's support; returns the gate's new support.
    fn set_entry(&mut self, row: usize, col: usize, nonzero: bool) -> bool {
        let old = self.col_mask[col];
        let new = if nonzero {
            old | (1 << row)
        } else {
            old & !(1 << row)
        };
        if new != old {
            // remove from old list (swap-remove, fixing the moved column)
            let p = self.pos[col] as usize;
            let list = &mut self.lists[old as usize];
            let last = *list.last().expect("column in its list");
            list.swap_remove(p);
            if (last as usize) != col {
                self.pos[last as usize] = p as u32;
            }
            self.counts[old as usize] -= 1;
            // append to new list
            self.pos[col] = self.lists[new as usize].len() as u32;
            self.lists[new as usize].push(col as u32);
            self.counts[new as usize] += 1;
            self.col_mask[col] = new;
        }
        self.supported()
    }

    /// Whether the permanent is nonzero in the Boolean shadow
    /// (an SDR for all rows exists).
    pub fn supported(&self) -> bool {
        sdr_exists(self.k, &self.counts)
    }
}

/// Live list of supported children of an addition gate.
#[derive(Debug)]
pub(crate) struct AddSupport {
    /// Positions (into the gate's child list) of supported children, in
    /// enumeration order.
    pub nz: Vec<u32>,
    /// Inverse: `where_pos[child_position]` = index in `nz`, or `u32::MAX`.
    pub where_pos: Vec<u32>,
}

impl AddSupport {
    fn set(&mut self, child_pos: usize, supported: bool) {
        let cur = self.where_pos[child_pos];
        if supported && cur == u32::MAX {
            self.where_pos[child_pos] = self.nz.len() as u32;
            self.nz.push(child_pos as u32);
        } else if !supported && cur != u32::MAX {
            let p = cur as usize;
            let last = *self.nz.last().expect("nonempty");
            self.nz.swap_remove(p);
            if last as usize != child_pos {
                self.where_pos[last as usize] = p as u32;
            }
            self.where_pos[child_pos] = u32::MAX;
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum ParentRef {
    Add { gate: u32, child_pos: u32 },
    Mul(u32),
    Perm { gate: u32, row: u8, col: u32 },
}

/// The enumeration state of a circuit over the free semiring: per-slot
/// input summand lists, a Boolean support shadow of every gate, and the
/// Lemma 39 structures at permanent gates. Input updates propagate in
/// time proportional to the (query-bounded) number of affected gates.
pub struct EnumMachine {
    circuit: Arc<Circuit>,
    /// Summand lists per input slot.
    input_vals: Vec<InputVal>,
    /// Boolean support per gate.
    pub(crate) support: Vec<bool>,
    pub(crate) adds: Vec<Option<AddSupport>>,
    pub(crate) perms: Vec<Option<PermSupport>>,
    parents: Vec<Vec<ParentRef>>,
    /// Input gates per slot (updates must not scan the circuit).
    slot_gates: Vec<Vec<u32>>,
    /// Bumped on every update; outstanding cursors become invalid.
    pub(crate) version: u64,
}

impl EnumMachine {
    /// Build from initial input values.
    ///
    /// # Panics
    /// Panics if the circuit uses literal-table constants — enumeration
    /// circuits carry coefficient 1 everywhere (formal sums have no
    /// scalar action beyond ℕ, and compiled enumeration expressions use
    /// coefficient 1).
    pub fn new(circuit: Arc<Circuit>, input_vals: Vec<InputVal>) -> Self {
        assert_eq!(input_vals.len(), circuit.num_slots());
        assert_eq!(
            circuit.num_lits(),
            0,
            "enumeration circuits must not use literal constants"
        );
        let gates = circuit.gates();
        let mut support = vec![false; gates.len()];
        let mut adds: Vec<Option<AddSupport>> = Vec::with_capacity(gates.len());
        let mut perms: Vec<Option<PermSupport>> = Vec::with_capacity(gates.len());
        let mut parents: Vec<Vec<ParentRef>> = vec![Vec::new(); gates.len()];
        let mut slot_gates: Vec<Vec<u32>> = vec![Vec::new(); circuit.num_slots()];
        for (i, g) in gates.iter().enumerate() {
            let mut add_s = None;
            let mut perm_s = None;
            support[i] = match g {
                GateDef::Input(slot) => {
                    slot_gates[*slot as usize].push(i as u32);
                    !input_vals[*slot as usize].is_empty()
                }
                GateDef::Const(ConstRef::Zero) => false,
                GateDef::Const(ConstRef::One) => true,
                GateDef::Const(ConstRef::Lit(_)) => unreachable!("no lits"),
                GateDef::Add(children) => {
                    let children = circuit.children(*children);
                    let mut s = AddSupport {
                        nz: Vec::new(),
                        where_pos: vec![u32::MAX; children.len()],
                    };
                    for (p, c) in children.iter().enumerate() {
                        parents[c.0 as usize].push(ParentRef::Add {
                            gate: i as u32,
                            child_pos: p as u32,
                        });
                        if support[c.0 as usize] {
                            s.set(p, true);
                        }
                    }
                    let sup = !s.nz.is_empty();
                    add_s = Some(s);
                    sup
                }
                GateDef::Mul(a, b) => {
                    parents[a.0 as usize].push(ParentRef::Mul(i as u32));
                    parents[b.0 as usize].push(ParentRef::Mul(i as u32));
                    support[a.0 as usize] && support[b.0 as usize]
                }
                GateDef::Perm { rows, cols } => {
                    let k = *rows as usize;
                    let cols = circuit.children(*cols);
                    let mut masks = Vec::with_capacity(cols.len() / k);
                    for (ci, col) in cols.chunks_exact(k).enumerate() {
                        let mut m = 0u32;
                        for (r, child) in col.iter().enumerate() {
                            parents[child.0 as usize].push(ParentRef::Perm {
                                gate: i as u32,
                                row: r as u8,
                                col: ci as u32,
                            });
                            if support[child.0 as usize] {
                                m |= 1 << r;
                            }
                        }
                        masks.push(m);
                    }
                    let s = PermSupport::new(k, masks);
                    let sup = s.supported();
                    perm_s = Some(s);
                    sup
                }
            };
            adds.push(add_s);
            perms.push(perm_s);
        }
        EnumMachine {
            circuit,
            input_vals,
            support,
            adds,
            perms,
            parents,
            slot_gates,
            version: 0,
        }
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// Current value of an input slot.
    pub fn input(&self, slot: u32) -> &InputVal {
        &self.input_vals[slot as usize]
    }

    /// Whether the output is nonzero (at least one summand).
    pub fn output_supported(&self) -> bool {
        self.support[self.circuit.output().0 as usize]
    }

    /// Overwrite an input slot's value and repair the support shadow.
    /// Invalidates outstanding cursors.
    pub fn set_input(&mut self, slot: u32, value: InputVal) {
        self.version += 1;
        let new_support = !value.is_empty();
        self.input_vals[slot as usize] = value;
        // All input gates reading this slot flip together (indexed; an
        // update must not scan the circuit).
        let mut dirty: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
        let gates = std::mem::take(&mut self.slot_gates[slot as usize]);
        for &i in &gates {
            if self.support[i as usize] != new_support {
                self.support[i as usize] = new_support;
                self.notify_parents(i, &mut dirty);
            }
        }
        self.slot_gates[slot as usize] = gates;
        while let Some(std::cmp::Reverse(g)) = dirty.pop() {
            if dirty.peek() == Some(&std::cmp::Reverse(g)) {
                continue;
            }
            let new = self.recompute_support(g);
            if self.support[g as usize] != new {
                self.support[g as usize] = new;
                self.notify_parents(g, &mut dirty);
            }
        }
    }

    fn notify_parents(&mut self, g: u32, dirty: &mut BinaryHeap<std::cmp::Reverse<u32>>) {
        let sup = self.support[g as usize];
        let parents = std::mem::take(&mut self.parents[g as usize]);
        for p in &parents {
            match *p {
                ParentRef::Add { gate, child_pos } => {
                    self.adds[gate as usize]
                        .as_mut()
                        .expect("add support")
                        .set(child_pos as usize, sup);
                    dirty.push(std::cmp::Reverse(gate));
                }
                ParentRef::Mul(gate) => dirty.push(std::cmp::Reverse(gate)),
                ParentRef::Perm { gate, row, col } => {
                    self.perms[gate as usize]
                        .as_mut()
                        .expect("perm support")
                        .set_entry(row as usize, col as usize, sup);
                    dirty.push(std::cmp::Reverse(gate));
                }
            }
        }
        self.parents[g as usize] = parents;
    }

    fn recompute_support(&self, g: u32) -> bool {
        match &self.circuit.gates()[g as usize] {
            GateDef::Input(_) | GateDef::Const(_) => self.support[g as usize],
            GateDef::Add(_) => !self.adds[g as usize].as_ref().expect("add").nz.is_empty(),
            GateDef::Mul(a, b) => self.support[a.0 as usize] && self.support[b.0 as usize],
            GateDef::Perm { .. } => self.perms[g as usize].as_ref().expect("perm").supported(),
        }
    }

    /// Total number of summands of the output, counted by evaluating the
    /// circuit in ℕ with each input replaced by its summand count.
    /// Linear time; used by tests and progress reporting.
    pub fn count_summands(&self) -> u64 {
        use agq_semiring::Nat;
        let slots: Vec<Nat> = self
            .input_vals
            .iter()
            .map(|v| Nat(v.len() as u64))
            .collect();
        self.circuit.eval(&slots, &[]).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_circuit::CircuitBuilder;

    fn gen(i: u64) -> Vec<Gen> {
        vec![Gen(i)]
    }

    #[test]
    fn support_flows_through_gates() {
        // out = (x0 + x1) · x2
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let x2 = b.input(2);
        let s = b.add(&[x0, x1]);
        let m = b.mul(s, x2);
        let c = Arc::new(b.finish(m));
        let mut mach = EnumMachine::new(c, vec![vec![gen(1)], vec![], vec![gen(3)]]);
        assert!(mach.output_supported());
        mach.set_input(0, vec![]);
        assert!(!mach.output_supported(), "both addends zero");
        mach.set_input(1, vec![gen(2)]);
        assert!(mach.output_supported());
        mach.set_input(2, vec![]);
        assert!(!mach.output_supported(), "product by zero");
    }

    #[test]
    fn perm_support_is_hall_condition() {
        // 2×2 permanent of inputs; zeroing a full row kills it, zeroing
        // one diagonal still leaves the other.
        let mut b = CircuitBuilder::new();
        let g: Vec<_> = (0..4).map(|i| b.input(i)).collect();
        // columns (g0,g1), (g2,g3)
        let p = b.perm_flat(2, vec![g[0], g[1], g[2], g[3]]);
        let c = Arc::new(b.finish(p));
        let vals = |present: [bool; 4]| {
            (0..4)
                .map(|i| {
                    if present[i] {
                        vec![gen(i as u64)]
                    } else {
                        vec![]
                    }
                })
                .collect::<Vec<_>>()
        };
        let mut mach = EnumMachine::new(c, vals([true; 4]));
        assert!(mach.output_supported());
        // kill row 0 of both columns
        mach.set_input(0, vec![]);
        mach.set_input(2, vec![]);
        assert!(!mach.output_supported());
        // restore column 1 row 0: perm has the assignment (r0→c1, r1→c0)
        mach.set_input(2, vec![gen(9)]);
        assert!(mach.output_supported());
        // but killing row 1 of column 0 forces both rows into column 1
        mach.set_input(1, vec![]);
        assert!(!mach.output_supported());
    }

    #[test]
    fn count_summands_matches_nat_eval() {
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let s = b.add(&[x0, x1]);
        let m = b.mul(s, x1);
        let c = Arc::new(b.finish(m));
        let mach = EnumMachine::new(c, vec![vec![gen(1), gen(2)], vec![gen(3), gen(4), gen(5)]]);
        // (2 + 3) * 3 = 15
        assert_eq!(mach.count_summands(), 15);
    }
}
