//! Support tracking for circuits evaluated in the free semiring.
//!
//! # Plan/state split
//!
//! The machine mirrors the plan/state architecture of
//! [`agq_circuit::DynEvaluator`]: everything derived from the circuit
//! topology alone lives in an immutable, `Send + Sync` [`EnumPlan`] —
//! parent references and per-slot input-gate lists as [`Csr`] buffers,
//! dense add/perm side numbering, per-add-gate segment offsets, and the
//! per-perm-gate pool layout. The [`EnumMachine`] is the mutable state
//! half: input summand lists, the Boolean support shadow, the live
//! supported-children segments, and the pooled permanent support
//! structure. One `Arc<EnumPlan>` backs any number of machine states
//! ([`EnumMachine::from_plan`]) — the per-shard answer indexes of a
//! sharded engine share one plan.
//!
//! # Flat layout
//!
//! Addition gates' live supported-children lists are flattened into one
//! shared buffer ([`AddSupports`]): every add gate owns a fixed-capacity
//! segment sized by its fan-in, so membership updates are in-place
//! swap-removes with no per-gate allocation. The Lemma 39 permanent
//! support structure is likewise pooled ([`PermPool`]): per-column masks
//! and doubly-linked bucket lists live in arrays sized by the total
//! column count over all permanent gates, and per-mask bucket
//! heads/tails/counts in arrays sized by the total bucket count — moving
//! a column between buckets is an O(1) splice in flat memory, with no
//! per-gate, per-mask `Vec`s anywhere.

use agq_circuit::{Circuit, ConstRef, Csr, CsrBuilder, GateDef, GateId, GeneralEvaluator};
use agq_perm::support::sdr_exists;
use agq_semiring::{Gen, Nat};
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex, MutexGuard};

/// An input value in the free semiring: a list of summand monomials,
/// each a (not necessarily sorted) list of generators. The empty list is
/// `0`; a single empty monomial is `1`.
pub type InputVal = Vec<Vec<Gen>>;

/// Sentinel for "gate has no entry in this dense side table", and for
/// "no neighbor" in the pooled bucket lists.
const NO_IDX: u32 = u32::MAX;

/// Static layout of one permanent gate's slice of the [`PermPool`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct PermMeta {
    /// Row count `k`.
    pub k: u8,
    /// Start of this gate's columns in the pooled per-column arrays.
    pub col_base: u32,
    /// Start of this gate's `2^k` buckets in the pooled per-mask arrays.
    pub bucket_base: u32,
}

/// Lemma 39's structure for every permanent gate, pooled: columns
/// bucketed by their Boolean support mask, with counts for `O_k(1)` Hall
/// checks. Buckets are doubly-linked lists threaded through two flat
/// per-column arrays (`next`/`prev`, local column indexes), with
/// per-bucket head/tail/count arrays — one allocation each for the whole
/// circuit, O(1) splices on support flips.
#[derive(Debug)]
pub(crate) struct PermPool {
    /// Current support mask of each column (indexed by `col_base + col`).
    col_mask: Vec<u32>,
    /// Successor within the column's bucket (`NO_IDX` at the tail).
    next: Vec<u32>,
    /// Predecessor within the column's bucket (`NO_IDX` at the head).
    prev: Vec<u32>,
    /// First column of each bucket (indexed by `bucket_base + mask`).
    heads: Vec<u32>,
    /// Last column of each bucket.
    tails: Vec<u32>,
    /// Number of columns in each bucket.
    counts: Vec<i64>,
}

impl PermPool {
    fn with_layout(total_cols: usize, total_buckets: usize) -> Self {
        PermPool {
            col_mask: vec![0; total_cols],
            next: vec![NO_IDX; total_cols],
            prev: vec![NO_IDX; total_cols],
            heads: vec![NO_IDX; total_buckets],
            tails: vec![NO_IDX; total_buckets],
            counts: vec![0; total_buckets],
        }
    }

    /// Append `col` (local index) to the tail of `mask`'s bucket.
    fn push_bucket(&mut self, meta: PermMeta, mask: u32, col: u32) {
        let cb = meta.col_base as usize;
        let bb = meta.bucket_base as usize + mask as usize;
        let t = self.tails[bb];
        self.prev[cb + col as usize] = t;
        self.next[cb + col as usize] = NO_IDX;
        if t == NO_IDX {
            self.heads[bb] = col;
        } else {
            self.next[cb + t as usize] = col;
        }
        self.tails[bb] = col;
        self.counts[bb] += 1;
        self.col_mask[cb + col as usize] = mask;
    }

    /// Splice `col` out of its current bucket.
    fn unlink(&mut self, meta: PermMeta, col: u32) {
        let cb = meta.col_base as usize;
        let mask = self.col_mask[cb + col as usize];
        let bb = meta.bucket_base as usize + mask as usize;
        let p = self.prev[cb + col as usize];
        let n = self.next[cb + col as usize];
        if p == NO_IDX {
            self.heads[bb] = n;
        } else {
            self.next[cb + p as usize] = n;
        }
        if n == NO_IDX {
            self.tails[bb] = p;
        } else {
            self.prev[cb + n as usize] = p;
        }
        self.counts[bb] -= 1;
    }

    /// Flip one entry's support.
    fn set_entry(&mut self, meta: PermMeta, row: usize, col: usize, nonzero: bool) {
        let old = self.col_mask[meta.col_base as usize + col];
        let new = if nonzero {
            old | (1 << row)
        } else {
            old & !(1 << row)
        };
        if new != old {
            self.unlink(meta, col as u32);
            self.push_bucket(meta, new, col as u32);
        }
    }
}

/// Read view of one permanent gate's support structure: the Lemma 39
/// bucket lists, served from the pooled arrays.
#[derive(Clone, Copy)]
pub(crate) struct PermSupport<'m> {
    meta: PermMeta,
    pool: &'m PermPool,
}

impl PermSupport<'_> {
    /// Row count `k`.
    pub fn k(&self) -> usize {
        self.meta.k as usize
    }

    /// `counts[mask]` = number of columns with that support mask.
    pub fn counts(&self) -> &[i64] {
        let bb = self.meta.bucket_base as usize;
        &self.pool.counts[bb..bb + (1usize << self.meta.k)]
    }

    /// Current support mask of a column.
    pub fn mask_of(&self, col: u32) -> u32 {
        self.pool.col_mask[self.meta.col_base as usize + col as usize]
    }

    /// First column of `mask`'s bucket, in enumeration order.
    pub fn head(&self, mask: u32) -> Option<u32> {
        idx_opt(self.pool.heads[self.meta.bucket_base as usize + mask as usize])
    }

    /// Last column of `mask`'s bucket.
    pub fn tail(&self, mask: u32) -> Option<u32> {
        idx_opt(self.pool.tails[self.meta.bucket_base as usize + mask as usize])
    }

    /// Successor of `col` within its bucket.
    pub fn next(&self, col: u32) -> Option<u32> {
        idx_opt(self.pool.next[self.meta.col_base as usize + col as usize])
    }

    /// Predecessor of `col` within its bucket.
    pub fn prev(&self, col: u32) -> Option<u32> {
        idx_opt(self.pool.prev[self.meta.col_base as usize + col as usize])
    }

    /// Whether the permanent is nonzero in the Boolean shadow
    /// (an SDR for all rows exists).
    pub fn supported(&self) -> bool {
        sdr_exists(self.k(), self.counts())
    }
}

fn idx_opt(i: u32) -> Option<u32> {
    if i == NO_IDX {
        None
    } else {
        Some(i)
    }
}

/// Lazily maintained per-gate summand counts: the circuit evaluated in ℕ
/// with every input slot replaced by its summand-list length, kept
/// incrementally correct by a [`GeneralEvaluator`] (its `SegTreePerm<Nat>`
/// backends double as the row-subset rest-count oracle of rank descent).
///
/// The evaluator is **not** repaired eagerly on every update — that would
/// tax ingestion whether or not ranks are ever read. Instead the support
/// sweep records `(slot, new count)` patches into `pending` (one `Vec`
/// push per changed slot), and the first rank read flushes them through
/// one batched topological sweep ([`GeneralEvaluator::set_inputs`]).
/// Until the first read nothing is built at all; the initial build reads
/// the current summand lengths directly.
pub(crate) struct CountState {
    /// `None` until the first rank/count read.
    pub(crate) eval: Option<GeneralEvaluator<Nat>>,
    /// Slot count patches recorded since the last flush (only while
    /// `eval` is built; later entries for a slot win).
    pending: Vec<(u32, Nat)>,
    /// Bumped on every flush (and rebuild) — invalidates the cached
    /// prefix-sum tables below.
    count_version: u64,
    /// Per-`Add`-gate prefix sums of live-child counts in `nz` order,
    /// built lazily for wide gates so rank descent binary-searches the
    /// owning child instead of scanning a data-sized fan-in (the
    /// `Add`-gate "prefix-sum table" of direct access). Stale entries
    /// (older `version`) are rebuilt on touch.
    add_prefix: std::collections::HashMap<u32, AddPrefix, agq_core::FxBuildHasher>,
}

/// One cached `Add`-gate prefix table (see [`CountState::add_prefix`]).
struct AddPrefix {
    version: u64,
    /// `prefix[i]` = Σ counts of `nz[0..=i]` children (wrapping).
    prefix: Vec<u64>,
}

impl CountState {
    /// The count evaluator (callers go through [`EnumMachine::counts`],
    /// which guarantees it is built and flushed).
    pub(crate) fn eval(&self) -> &GeneralEvaluator<Nat> {
        self.eval.as_ref().expect("built by counts()")
    }

    /// The prefix-sum table of add gate `gate` over its live children
    /// `nz` (positions into `kids`), rebuilt if an update flush happened
    /// since it was cached.
    pub(crate) fn add_prefix_for(&mut self, gate: u32, nz: &[u32], kids: &[GateId]) -> &[u64] {
        let version = self.count_version;
        let eval = self.eval.as_ref().expect("built by counts()");
        let entry = self.add_prefix.entry(gate).or_insert(AddPrefix {
            version: u64::MAX,
            prefix: Vec::new(),
        });
        if entry.version != version || entry.prefix.len() != nz.len() {
            entry.prefix.clear();
            let mut acc = 0u64;
            // Dense fast path: when every child is live in position order
            // (the steady state of a fully-populated add gate) and the
            // children are one contiguous id run (the compiler's
            // `cluster_adds` layout), the rank table is a prefix scan of
            // one value slice — sequential loads instead of a per-child
            // `kids[pos]` → `value()` double indirection. Support churn
            // that permutes `nz` falls back to the gather, which defines
            // the enumeration order either way.
            let dense = nz.len() == kids.len()
                && !kids.is_empty()
                && nz.iter().enumerate().all(|(i, &p)| p as usize == i)
                && kids.windows(2).all(|w| w[1].0 == w[0].0 + 1);
            if dense {
                let lo = kids[0].0 as usize;
                let vals = &eval.gate_values()[lo..lo + kids.len()];
                entry.prefix.extend(vals.iter().map(|v| {
                    acc = acc.wrapping_add(v.0);
                    acc
                }));
            } else {
                entry.prefix.extend(nz.iter().map(|&pos| {
                    acc = acc.wrapping_add(eval.value(kids[pos as usize]).0);
                    acc
                }));
            }
            entry.version = version;
        }
        &entry.prefix
    }
}

/// Live supported-children lists of every addition gate, flattened: add
/// gate `ai` (dense index) owns the segment
/// `offsets[ai]..offsets[ai+1]` (offsets live in the shared plan) of
/// both `nz` and `where_pos`; its first `len[ai]` `nz` entries are the
/// supported child positions in enumeration order, and
/// `where_pos[child position]` is the index in that prefix (or
/// `u32::MAX`). Two flat buffers for the whole circuit.
#[derive(Debug)]
pub(crate) struct AddSupports {
    len: Vec<u32>,
    nz: Vec<u32>,
    where_pos: Vec<u32>,
}

impl AddSupports {
    fn with_layout(num_adds: usize, total: usize) -> Self {
        AddSupports {
            len: vec![0; num_adds],
            nz: vec![0; total],
            where_pos: vec![u32::MAX; total],
        }
    }

    /// Supported child positions of add gate `ai`, in enumeration order.
    pub fn nz(&self, offsets: &[u32], ai: usize) -> &[u32] {
        let start = offsets[ai] as usize;
        &self.nz[start..start + self.len[ai] as usize]
    }

    fn set(&mut self, offsets: &[u32], ai: usize, child_pos: usize, supported: bool) {
        let start = offsets[ai] as usize;
        let n = self.len[ai] as usize;
        let cur = self.where_pos[start + child_pos];
        if supported && cur == u32::MAX {
            self.where_pos[start + child_pos] = n as u32;
            self.nz[start + n] = child_pos as u32;
            self.len[ai] += 1;
        } else if !supported && cur != u32::MAX {
            let p = cur as usize;
            let last = self.nz[start + n - 1];
            self.nz[start + p] = last;
            self.len[ai] -= 1;
            if last as usize != child_pos {
                self.where_pos[start + last as usize] = p as u32;
            }
            self.where_pos[start + child_pos] = u32::MAX;
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum ParentRef {
    Add { gate: u32, child_pos: u32 },
    Mul(u32),
    Perm { gate: u32, row: u8, col: u32 },
}

/// The immutable half of the enumeration machine: adjacency, dense side
/// numbering, and pool layout, all derived from the circuit topology in
/// two counting passes. `Send + Sync`; shared by every state over the
/// same circuit.
pub struct EnumPlan {
    circuit: Arc<Circuit>,
    /// Parents of each gate.
    parents: Csr<ParentRef>,
    /// Input gates per slot (updates must not scan the circuit).
    slot_gates: Csr<u32>,
    /// Gate id → dense add index (`NO_IDX` for non-add gates).
    add_index: Vec<u32>,
    /// Dense add index → start of its [`AddSupports`] segment
    /// (`add_offsets[num_adds]` is the total).
    add_offsets: Vec<u32>,
    /// Dense add index → first child gate id when the gate's whole child
    /// segment is one contiguous ascending id run (`NO_IDX` otherwise).
    /// After the compiler's `cluster_adds` relabeling this covers almost
    /// every add gate; dense gates let the initial support pass read the
    /// children's support 64-wide from a bitset instead of per child.
    add_dense_lo: Vec<u32>,
    /// Gate id → dense perm index (`NO_IDX` for non-perm gates).
    perm_index: Vec<u32>,
    /// Dense perm index → pool layout.
    perm_meta: Vec<PermMeta>,
    total_cols: usize,
    total_buckets: usize,
}

impl EnumPlan {
    /// Derive the plan of `circuit`.
    ///
    /// # Panics
    /// Panics if the circuit uses literal-table constants — enumeration
    /// circuits carry coefficient 1 everywhere.
    pub fn new(circuit: Arc<Circuit>) -> Self {
        assert_eq!(
            circuit.num_lits(),
            0,
            "enumeration circuits must not use literal constants"
        );
        let gates = circuit.gates();
        let n = gates.len();

        // Counting pass: parent references, input gates per slot, dense
        // side-table sizes, and pool layout.
        let mut parents = CsrBuilder::new(n);
        let mut slot_gates = CsrBuilder::new(circuit.num_slots());
        let mut add_index = vec![NO_IDX; n];
        let mut perm_index = vec![NO_IDX; n];
        let mut add_offsets: Vec<u32> = vec![0];
        let mut add_dense_lo: Vec<u32> = Vec::new();
        let mut perm_meta: Vec<PermMeta> = Vec::new();
        let mut total_cols = 0usize;
        let mut total_buckets = 0usize;
        for (i, g) in gates.iter().enumerate() {
            match g {
                GateDef::Input(slot) => slot_gates.count(*slot as usize),
                GateDef::Const(_) => {}
                GateDef::Add(r) => {
                    add_index[i] = (add_offsets.len() - 1) as u32;
                    let last = *add_offsets.last().expect("nonempty");
                    add_offsets.push(last + r.len() as u32);
                    let kids = circuit.children(*r);
                    add_dense_lo.push(
                        if !kids.is_empty() && kids.windows(2).all(|w| w[1].0 == w[0].0 + 1) {
                            kids[0].0
                        } else {
                            NO_IDX
                        },
                    );
                    for c in kids {
                        parents.count(c.0 as usize);
                    }
                }
                GateDef::Mul(a, b) => {
                    parents.count(a.0 as usize);
                    parents.count(b.0 as usize);
                }
                GateDef::Perm { rows, cols } => {
                    let k = *rows as usize;
                    let ncols = cols.len() / k;
                    perm_index[i] = perm_meta.len() as u32;
                    perm_meta.push(PermMeta {
                        k: *rows,
                        col_base: total_cols as u32,
                        bucket_base: total_buckets as u32,
                    });
                    total_cols += ncols;
                    total_buckets += 1 << k;
                    for c in circuit.children(*cols) {
                        parents.count(c.0 as usize);
                    }
                }
            }
        }

        // Placement pass.
        let mut parents = parents.finish_counts(ParentRef::Mul(0));
        let mut slot_gates = slot_gates.finish_counts(0u32);
        for (i, g) in gates.iter().enumerate() {
            match g {
                GateDef::Input(slot) => slot_gates.place(*slot as usize, i as u32),
                GateDef::Const(_) => {}
                GateDef::Add(children) => {
                    for (p, c) in circuit.children(*children).iter().enumerate() {
                        parents.place(
                            c.0 as usize,
                            ParentRef::Add {
                                gate: i as u32,
                                child_pos: p as u32,
                            },
                        );
                    }
                }
                GateDef::Mul(a, b) => {
                    parents.place(a.0 as usize, ParentRef::Mul(i as u32));
                    parents.place(b.0 as usize, ParentRef::Mul(i as u32));
                }
                GateDef::Perm { rows, cols } => {
                    let k = *rows as usize;
                    for (ci, col) in circuit.children(*cols).chunks_exact(k).enumerate() {
                        for (r, child) in col.iter().enumerate() {
                            parents.place(
                                child.0 as usize,
                                ParentRef::Perm {
                                    gate: i as u32,
                                    row: r as u8,
                                    col: ci as u32,
                                },
                            );
                        }
                    }
                }
            }
        }

        EnumPlan {
            circuit,
            parents: parents.finish(),
            slot_gates: slot_gates.finish(),
            add_index,
            add_offsets,
            add_dense_lo,
            perm_index,
            perm_meta,
            total_cols,
            total_buckets,
        }
    }

    /// The circuit this plan describes.
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.circuit
    }
}

/// The enumeration state of a circuit over the free semiring: per-slot
/// input summand lists, a Boolean support shadow of every gate, and the
/// pooled Lemma 39 structures at permanent gates. Input updates propagate
/// in time proportional to the (query-bounded) number of affected gates,
/// with no allocation on the update path (the adjacency is immutable
/// CSR in the shared [`EnumPlan`], the dirty queue is reused).
pub struct EnumMachine {
    plan: Arc<EnumPlan>,
    /// Summand lists per input slot.
    input_vals: Vec<InputVal>,
    /// Boolean support per gate.
    pub(crate) support: Vec<bool>,
    add_sup: AddSupports,
    perms: PermPool,
    /// Reused dirty queue (drained after every update).
    dirty: BinaryHeap<std::cmp::Reverse<u32>>,
    /// Presence bitset over slots: bit `slot` is set iff the slot's value
    /// is nonzero (a non-empty summand list). Lets batched 0/1 flips
    /// compute the changed set word-at-a-time.
    slot_bits: Vec<u64>,
    /// Reused batch staging: `(word index, touched mask, desired mask)`.
    flip_words: Vec<(u32, u64, u64)>,
    /// Reused batch staging: slot-sorted copy of the incoming flips.
    flip_scratch: Vec<(u32, bool)>,
    /// Bumped on every update; outstanding cursors become invalid.
    pub(crate) version: u64,
    /// Lazily built per-gate summand counts (rank access / fast totals).
    /// Interior mutability: rank reads happen under shared references
    /// (shard read locks), but the first read builds and later reads
    /// flush pending patches.
    counts: Mutex<CountState>,
}

/// A flat, self-contained dump of an [`EnumMachine`]'s mutable state —
/// what `agq-persist` snapshots per shard. Includes the
/// history-dependent orderings (add-support prefixes, perm-pool bucket
/// links), not just the input values, so a restored machine enumerates
/// in exactly the order the live one did.
#[derive(Clone, Debug)]
pub struct MachineStateDump {
    /// Summand lists per input slot.
    pub input_vals: Vec<InputVal>,
    /// Boolean support per gate.
    pub support: Vec<bool>,
    /// Per-add-gate supported-prefix lengths.
    pub add_len: Vec<u32>,
    /// Supported child positions (first `add_len[ai]` of each segment).
    pub add_nz: Vec<u32>,
    /// Child position → index in the supported prefix (`u32::MAX` none).
    pub add_where: Vec<u32>,
    /// Perm pool: per-column support mask.
    pub perm_mask: Vec<u32>,
    /// Perm pool: bucket successor per column.
    pub perm_next: Vec<u32>,
    /// Perm pool: bucket predecessor per column.
    pub perm_prev: Vec<u32>,
    /// Perm pool: first column per bucket.
    pub perm_heads: Vec<u32>,
    /// Perm pool: last column per bucket.
    pub perm_tails: Vec<u32>,
    /// Perm pool: column count per bucket.
    pub perm_counts: Vec<i64>,
}

impl EnumMachine {
    /// Build from initial input values, deriving a fresh plan. Equivalent
    /// to `EnumMachine::from_plan(Arc::new(EnumPlan::new(circuit)), …)`.
    ///
    /// # Panics
    /// Panics if the circuit uses literal-table constants.
    pub fn new(circuit: Arc<Circuit>, input_vals: Vec<InputVal>) -> Self {
        Self::from_plan(Arc::new(EnumPlan::new(circuit)), input_vals)
    }

    /// Instantiate a mutable enumeration state over a shared immutable
    /// plan: one bottom-up support pass over the gate arena, no counting
    /// passes, no adjacency rebuild.
    pub fn from_plan(plan: Arc<EnumPlan>, input_vals: Vec<InputVal>) -> Self {
        let circuit = &plan.circuit;
        assert_eq!(input_vals.len(), circuit.num_slots());
        let gates = circuit.gates();
        let n = gates.len();
        let mut add_sup = AddSupports::with_layout(
            plan.add_offsets.len() - 1,
            *plan.add_offsets.last().expect("nonempty") as usize,
        );
        let mut perms = PermPool::with_layout(plan.total_cols, plan.total_buckets);
        let mut support = vec![false; n];
        // Word-wide mirror of `support`, maintained during this pass only:
        // dense add gates read their children's support 64 bits at a time
        // instead of one bool per child (zero words skip 64 children in
        // one compare — on the compiled circuits most mass sits under a
        // few wide add gates, so this is the bulk of the O(circuit) per
        // shard-state build).
        let mut support_bits = vec![0u64; n.div_ceil(64)];
        // Bottom-up: children precede parents, so one pass suffices.
        for (i, g) in gates.iter().enumerate() {
            support[i] = match g {
                GateDef::Input(slot) => !input_vals[*slot as usize].is_empty(),
                GateDef::Const(ConstRef::Zero) => false,
                GateDef::Const(ConstRef::One) => true,
                GateDef::Const(ConstRef::Lit(_)) => unreachable!("no lits"),
                GateDef::Add(children) => {
                    let ai = plan.add_index[i] as usize;
                    let kids = circuit.children(*children);
                    let dense = plan.add_dense_lo[ai];
                    if dense != NO_IDX {
                        let lo = dense as usize;
                        let hi = lo + kids.len();
                        let mut any = false;
                        let w0 = lo / 64;
                        for (wi, &bits) in support_bits[w0..hi.div_ceil(64)].iter().enumerate() {
                            let base = (w0 + wi) * 64;
                            let mut word = bits;
                            if base < lo {
                                word &= !0u64 << (lo - base);
                            }
                            if base + 64 > hi {
                                word &= !0u64 >> (base + 64 - hi);
                            }
                            any |= word != 0;
                            while word != 0 {
                                let b = word.trailing_zeros() as usize;
                                word &= word - 1;
                                add_sup.set(&plan.add_offsets, ai, base + b - lo, true);
                            }
                        }
                        any
                    } else {
                        for (p, c) in kids.iter().enumerate() {
                            if support[c.0 as usize] {
                                add_sup.set(&plan.add_offsets, ai, p, true);
                            }
                        }
                        !add_sup.nz(&plan.add_offsets, ai).is_empty()
                    }
                }
                GateDef::Mul(a, b) => support[a.0 as usize] && support[b.0 as usize],
                GateDef::Perm { rows, cols } => {
                    let k = *rows as usize;
                    let meta = plan.perm_meta[plan.perm_index[i] as usize];
                    for (ci, col) in circuit.children(*cols).chunks_exact(k).enumerate() {
                        let mut m = 0u32;
                        for (r, child) in col.iter().enumerate() {
                            if support[child.0 as usize] {
                                m |= 1 << r;
                            }
                        }
                        perms.push_bucket(meta, m, ci as u32);
                    }
                    PermSupport { meta, pool: &perms }.supported()
                }
            };
            if support[i] {
                support_bits[i / 64] |= 1 << (i % 64);
            }
        }
        let mut slot_bits = vec![0u64; input_vals.len().div_ceil(64)];
        for (slot, v) in input_vals.iter().enumerate() {
            if !v.is_empty() {
                slot_bits[slot / 64] |= 1 << (slot % 64);
            }
        }
        EnumMachine {
            plan,
            input_vals,
            support,
            add_sup,
            perms,
            dirty: BinaryHeap::new(),
            slot_bits,
            flip_words: Vec::new(),
            flip_scratch: Vec::new(),
            version: 0,
            counts: Mutex::new(CountState {
                eval: None,
                pending: Vec::new(),
                count_version: 0,
                add_prefix: Default::default(),
            }),
        }
    }

    /// Dump the full mutable state, **including the order-bearing
    /// internals**: the add-gate support prefixes and the permanent
    /// pool's bucket links. Enumeration and rank order depend on the
    /// update history through these (supported children are appended /
    /// swap-removed, pool columns are spliced to bucket tails), so a
    /// restore from input values alone would enumerate the same *set*
    /// in a different *order*. `EnumMachine::from_saved` over this dump
    /// reproduces the exact live order.
    pub fn dump_state(&self) -> MachineStateDump {
        MachineStateDump {
            input_vals: self.input_vals.clone(),
            support: self.support.clone(),
            add_len: self.add_sup.len.clone(),
            add_nz: self.add_sup.nz.clone(),
            add_where: self.add_sup.where_pos.clone(),
            perm_mask: self.perms.col_mask.clone(),
            perm_next: self.perms.next.clone(),
            perm_prev: self.perms.prev.clone(),
            perm_heads: self.perms.heads.clone(),
            perm_tails: self.perms.tails.clone(),
            perm_counts: self.perms.counts.clone(),
        }
    }

    /// Reinstate a machine from a saved state dump, bit-for-bit: the
    /// restored machine enumerates in exactly the order the dumped one
    /// did. Validates every array length and every stored index against
    /// the plan's layout so a corrupted dump is an `Err`, never an
    /// out-of-bounds panic in the enumeration hot path.
    pub fn from_saved(plan: Arc<EnumPlan>, dump: MachineStateDump) -> Result<Self, &'static str> {
        let circuit = &plan.circuit;
        let n = circuit.len();
        if dump.input_vals.len() != circuit.num_slots() {
            return Err("input count disagrees with the circuit");
        }
        if dump.support.len() != n {
            return Err("support length disagrees with the circuit");
        }
        let num_adds = plan.add_offsets.len() - 1;
        let add_total = *plan.add_offsets.last().expect("nonempty") as usize;
        if dump.add_len.len() != num_adds
            || dump.add_nz.len() != add_total
            || dump.add_where.len() != add_total
        {
            return Err("add-support arrays disagree with the plan layout");
        }
        for ai in 0..num_adds {
            let seg = (plan.add_offsets[ai + 1] - plan.add_offsets[ai]) as usize;
            let len = dump.add_len[ai] as usize;
            if len > seg {
                return Err("add-support prefix exceeds its segment");
            }
            let start = plan.add_offsets[ai] as usize;
            for &p in &dump.add_nz[start..start + len] {
                if p as usize >= seg {
                    return Err("add-support child position out of range");
                }
            }
            for &w in &dump.add_where[start..start + seg] {
                if w != NO_IDX && w as usize >= len {
                    return Err("add-support back-pointer out of range");
                }
            }
        }
        if dump.perm_mask.len() != plan.total_cols
            || dump.perm_next.len() != plan.total_cols
            || dump.perm_prev.len() != plan.total_cols
            || dump.perm_heads.len() != plan.total_buckets
            || dump.perm_tails.len() != plan.total_buckets
            || dump.perm_counts.len() != plan.total_buckets
        {
            return Err("perm-pool arrays disagree with the plan layout");
        }
        for (pi, meta) in plan.perm_meta.iter().enumerate() {
            // This gate's column count: distance to the next col_base
            // (metas are laid out in order) or the pool total.
            let cols = match plan.perm_meta.get(pi + 1) {
                Some(next) => (next.col_base - meta.col_base) as usize,
                None => plan.total_cols - meta.col_base as usize,
            };
            let cb = meta.col_base as usize;
            let in_range = |v: u32| -> bool { v == NO_IDX || (v as usize) < cols };
            if !dump.perm_next[cb..cb + cols].iter().all(|&v| in_range(v))
                || !dump.perm_prev[cb..cb + cols].iter().all(|&v| in_range(v))
            {
                return Err("perm-pool link out of range");
            }
            let buckets = 1usize << meta.k;
            let bb = meta.bucket_base as usize;
            if !dump.perm_heads[bb..bb + buckets]
                .iter()
                .all(|&v| in_range(v))
                || !dump.perm_tails[bb..bb + buckets]
                    .iter()
                    .all(|&v| in_range(v))
            {
                return Err("perm-pool bucket head out of range");
            }
            for &m in &dump.perm_mask[cb..cb + cols] {
                if m as usize >= buckets {
                    return Err("perm-pool column mask out of range");
                }
            }
        }
        let mut slot_bits = vec![0u64; dump.input_vals.len().div_ceil(64)];
        for (slot, v) in dump.input_vals.iter().enumerate() {
            if !v.is_empty() {
                slot_bits[slot / 64] |= 1 << (slot % 64);
            }
        }
        Ok(EnumMachine {
            plan,
            input_vals: dump.input_vals,
            support: dump.support,
            add_sup: AddSupports {
                len: dump.add_len,
                nz: dump.add_nz,
                where_pos: dump.add_where,
            },
            perms: PermPool {
                col_mask: dump.perm_mask,
                next: dump.perm_next,
                prev: dump.perm_prev,
                heads: dump.perm_heads,
                tails: dump.perm_tails,
                counts: dump.perm_counts,
            },
            dirty: BinaryHeap::new(),
            slot_bits,
            flip_words: Vec::new(),
            flip_scratch: Vec::new(),
            version: 0,
            counts: Mutex::new(CountState {
                eval: None,
                pending: Vec::new(),
                count_version: 0,
                add_prefix: Default::default(),
            }),
        })
    }

    /// The shared immutable plan.
    pub fn plan(&self) -> &Arc<EnumPlan> {
        &self.plan
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.plan.circuit
    }

    /// Current value of an input slot.
    pub fn input(&self, slot: u32) -> &InputVal {
        &self.input_vals[slot as usize]
    }

    /// Whether the output is nonzero (at least one summand).
    pub fn output_supported(&self) -> bool {
        self.support[self.plan.circuit.output().0 as usize]
    }

    /// Live supported-children list of an addition gate.
    pub(crate) fn add_nz(&self, gate: u32) -> &[u32] {
        let ai = self.plan.add_index[gate as usize];
        debug_assert_ne!(ai, NO_IDX, "not an addition gate");
        self.add_sup.nz(&self.plan.add_offsets, ai as usize)
    }

    /// Lemma 39 support structure of a permanent gate.
    pub(crate) fn perm_support(&self, gate: u32) -> PermSupport<'_> {
        let pi = self.plan.perm_index[gate as usize];
        debug_assert_ne!(pi, NO_IDX, "not a permanent gate");
        PermSupport {
            meta: self.plan.perm_meta[pi as usize],
            pool: &self.perms,
        }
    }

    /// Overwrite an input slot's value and repair the support shadow.
    /// Invalidates outstanding cursors.
    pub fn set_input(&mut self, slot: u32, value: InputVal) {
        let new_support = !value.is_empty();
        self.input_vals[slot as usize] = value;
        let (w, bit) = (slot as usize / 64, 1u64 << (slot % 64));
        if new_support {
            self.slot_bits[w] |= bit;
        } else {
            self.slot_bits[w] &= !bit;
        }
        self.note_count(slot);
        self.refresh_slot(slot, new_support);
    }

    /// Record a slot's new summand count for the lazy count evaluator
    /// (no-op until the evaluator exists — the initial build reads the
    /// summand lengths directly).
    fn note_count(&mut self, slot: u32) {
        let n = self.input_vals[slot as usize].len() as u64;
        let st = self.counts.get_mut().expect("count state lock");
        if st.eval.is_some() {
            st.pending.push((slot, Nat(n)));
        }
    }

    /// Set a 0/1-valued slot: `true` is the single empty monomial `1`,
    /// `false` the empty sum `0`. Unlike [`EnumMachine::set_input`] this
    /// reuses the slot's existing buffers, so toggling relation
    /// indicators (the [Lemma 40] dynamic-atom slots) allocates nothing.
    /// This is [`EnumMachine::set_input_bools`] at batch size one.
    ///
    /// [Lemma 40]: crate::answers
    pub fn set_input_bool(&mut self, slot: u32, present: bool) {
        self.set_input_bools(&[(slot, present)]);
    }

    /// Whether a slot currently holds a nonzero value (for 0/1 indicator
    /// slots: whether the tuple is present). Served from the presence
    /// bitset, so batch callers can drop net no-op flips without touching
    /// the summand buffers.
    pub fn input_present(&self, slot: u32) -> bool {
        self.slot_bits[slot as usize / 64] >> (slot % 64) & 1 == 1
    }

    /// Apply a batch of 0/1 slot flips with **one** dirty-propagation
    /// sweep and one version bump. Flips are staged into `u64` words of
    /// the presence bitset (later flips of the same slot win), the changed
    /// set is computed word-at-a-time as `(current XOR desired) AND
    /// touched`, and only actually-changed slots seed the sweep — a flip
    /// to the current presence costs one bit test. The single sweep is
    /// sound for the same reason as in `agq_circuit::dynamic`: the dirty
    /// queue pops in ascending gate id, which is a topological order, so
    /// gates shared by several flip cones settle once per batch.
    pub fn set_input_bools(&mut self, flips: &[(u32, bool)]) {
        self.version += 1;
        let mut words = std::mem::take(&mut self.flip_words);
        words.clear();
        // Stage per-word masks from a slot-sorted copy: the stable sort
        // keeps input order within a slot, so applying entries in order
        // makes the *last* flip of each slot win, and every flip lands in
        // the trailing word entry (no per-flip scan of `words`).
        let mut sorted = std::mem::take(&mut self.flip_scratch);
        sorted.clear();
        sorted.extend_from_slice(flips);
        sorted.sort_by_key(|&(slot, _)| slot);
        for &(slot, present) in &sorted {
            let w = slot / 64;
            let bit = 1u64 << (slot % 64);
            match words.last_mut() {
                Some(e) if e.0 == w => {
                    e.1 |= bit;
                    if present {
                        e.2 |= bit;
                    } else {
                        e.2 &= !bit;
                    }
                }
                _ => words.push((w, bit, if present { bit } else { 0 })),
            }
        }
        self.flip_scratch = sorted;
        let mut dirty = std::mem::take(&mut self.dirty);
        for &(w, touched, desired) in &words {
            let cur = self.slot_bits[w as usize];
            let changed = (cur ^ desired) & touched;
            self.slot_bits[w as usize] = (cur & !touched) | (desired & touched);
            // Normalize the summand buffer of every touched slot to the
            // 0/1 form a sequential `set_input_bool` pass would leave
            // behind; seed the sweep only from slots whose presence
            // actually changed.
            let mut rem = touched;
            while rem != 0 {
                let b = rem.trailing_zeros();
                rem &= rem - 1;
                let slot = w * 64 + b;
                let present = desired >> b & 1 == 1;
                let v = &mut self.input_vals[slot as usize];
                v.clear();
                if present {
                    // `Vec::new()` does not allocate, and the outer push
                    // reuses the slot's retained capacity.
                    v.push(Vec::new());
                }
                self.note_count(slot);
                if changed >> b & 1 == 1 {
                    for i in 0..self.plan.slot_gates.row(slot as usize).len() {
                        let g = self.plan.slot_gates.row(slot as usize)[i];
                        if self.support[g as usize] != present {
                            self.support[g as usize] = present;
                            self.notify_parents(g, &mut dirty);
                        }
                    }
                }
            }
        }
        self.drain_dirty(&mut dirty);
        self.dirty = dirty;
        self.flip_words = words;
    }

    /// Propagate a slot's (possibly changed) support through the shadow.
    fn refresh_slot(&mut self, slot: u32, new_support: bool) {
        self.version += 1;
        // All input gates reading this slot flip together (indexed; an
        // update must not scan the circuit).
        let mut dirty = std::mem::take(&mut self.dirty);
        for i in 0..self.plan.slot_gates.row(slot as usize).len() {
            let g = self.plan.slot_gates.row(slot as usize)[i];
            if self.support[g as usize] != new_support {
                self.support[g as usize] = new_support;
                self.notify_parents(g, &mut dirty);
            }
        }
        self.drain_dirty(&mut dirty);
        self.dirty = dirty;
    }

    /// Drain the dirty queue: ascending gate ids (topological), each gate
    /// settled at most once per sweep.
    fn drain_dirty(&mut self, dirty: &mut BinaryHeap<std::cmp::Reverse<u32>>) {
        while let Some(std::cmp::Reverse(g)) = dirty.pop() {
            if dirty.peek() == Some(&std::cmp::Reverse(g)) {
                continue;
            }
            let new = self.recompute_support(g);
            if self.support[g as usize] != new {
                self.support[g as usize] = new;
                self.notify_parents(g, dirty);
            }
        }
    }

    fn notify_parents(&mut self, g: u32, dirty: &mut BinaryHeap<std::cmp::Reverse<u32>>) {
        let sup = self.support[g as usize];
        for &p in self.plan.parents.row(g as usize) {
            match p {
                ParentRef::Add { gate, child_pos } => {
                    let ai = self.plan.add_index[gate as usize] as usize;
                    self.add_sup
                        .set(&self.plan.add_offsets, ai, child_pos as usize, sup);
                    dirty.push(std::cmp::Reverse(gate));
                }
                ParentRef::Mul(gate) => dirty.push(std::cmp::Reverse(gate)),
                ParentRef::Perm { gate, row, col } => {
                    let pi = self.plan.perm_index[gate as usize] as usize;
                    let meta = self.plan.perm_meta[pi];
                    self.perms.set_entry(meta, row as usize, col as usize, sup);
                    dirty.push(std::cmp::Reverse(gate));
                }
            }
        }
    }

    fn recompute_support(&self, g: u32) -> bool {
        match &self.plan.circuit.gates()[g as usize] {
            GateDef::Input(_) | GateDef::Const(_) => self.support[g as usize],
            GateDef::Add(_) => !self.add_nz(g).is_empty(),
            GateDef::Mul(a, b) => self.support[a.0 as usize] && self.support[b.0 as usize],
            GateDef::Perm { .. } => self.perm_support(g).supported(),
        }
    }

    /// Total number of summands of the output, counted by evaluating the
    /// circuit in ℕ with each input replaced by its summand count.
    /// Linear time; used by tests (as the oracle the incremental
    /// [`EnumMachine::summand_count`] is checked against).
    pub fn count_summands(&self) -> u64 {
        let slots: Vec<Nat> = self
            .input_vals
            .iter()
            .map(|v| Nat(v.len() as u64))
            .collect();
        self.plan.circuit.eval(&slots, &[]).0
    }

    /// The per-gate count state, built on first use and flushed up to
    /// date: after this call `eval` is `Some` and reflects every update
    /// applied so far. Counts wrap at `2^64` (see the crate docs for the
    /// overflow policy); ranks are exact whenever the answer count fits
    /// in a `u64`, which is also the addressable range of `answer(k)`.
    pub(crate) fn counts(&self) -> MutexGuard<'_, CountState> {
        let mut st = self.counts.lock().expect("count state lock");
        if st.eval.is_none() {
            st.pending.clear();
            st.add_prefix.clear();
            st.count_version = st.count_version.wrapping_add(1);
            let slots: Vec<Nat> = self
                .input_vals
                .iter()
                .map(|v| Nat(v.len() as u64))
                .collect();
            st.eval = Some(GeneralEvaluator::new(
                self.plan.circuit.clone(),
                &slots,
                &[],
            ));
        } else if !st.pending.is_empty() {
            // Delta repair: add gates settle from accumulated child
            // deltas instead of re-summing data-sized fan-ins, keeping
            // the flush proportional to the touched cone's edge count.
            let pending = std::mem::take(&mut st.pending);
            st.eval
                .as_mut()
                .expect("just checked")
                .set_inputs_delta(&pending);
            let mut pending = pending;
            pending.clear();
            st.pending = pending;
            st.count_version = st.count_version.wrapping_add(1);
        }
        st
    }

    /// Total number of summands of the output, served from the
    /// incrementally maintained count evaluator: `O(circuit)` on the
    /// first call, `O(pending updates)` afterwards.
    pub fn summand_count(&self) -> u64 {
        self.counts()
            .eval
            .as_ref()
            .expect("built by counts()")
            .output()
            .0
    }

    /// Exhaustive invariant verification of the mutable state against
    /// the plan: the support shadow of every gate matches a fresh
    /// bottom-up recomputation, input presence bits mirror the summand
    /// lists, every add gate's supported prefix is a duplicate-free list
    /// of exactly the supported children with consistent back-pointers,
    /// and every perm pool bucket is a coherent doubly-linked list whose
    /// masks match the children's support with each column in exactly
    /// one bucket. `O(circuit)` with allocations — a diagnostic for
    /// recovery and quarantine-restore paths, not a hot path.
    pub fn self_check(&self) -> Result<(), String> {
        let plan = &self.plan;
        let circuit = &plan.circuit;
        let gates = circuit.gates();
        if self.support.len() != gates.len() {
            return Err(format!(
                "support length {} disagrees with circuit size {}",
                self.support.len(),
                gates.len()
            ));
        }
        if self.input_vals.len() != circuit.num_slots() {
            return Err(format!(
                "input count {} disagrees with circuit slot count {}",
                self.input_vals.len(),
                circuit.num_slots()
            ));
        }
        for (slot, v) in self.input_vals.iter().enumerate() {
            let bit = self.slot_bits[slot / 64] >> (slot % 64) & 1 == 1;
            if bit == v.is_empty() {
                return Err(format!(
                    "slot {slot}: presence bit {bit} but summand list has {} entries",
                    v.len()
                ));
            }
        }
        for (i, g) in gates.iter().enumerate() {
            let expected = match g {
                GateDef::Input(slot) => !self.input_vals[*slot as usize].is_empty(),
                GateDef::Const(ConstRef::Zero) => false,
                GateDef::Const(ConstRef::One) => true,
                GateDef::Const(ConstRef::Lit(_)) => {
                    return Err(format!(
                        "gate {i}: literal constant in an enumeration circuit"
                    ))
                }
                GateDef::Add(r) => {
                    let ai = plan.add_index[i];
                    if ai == NO_IDX {
                        return Err(format!("gate {i}: add gate missing from the dense index"));
                    }
                    let ai = ai as usize;
                    let kids = circuit.children(*r);
                    let start = plan.add_offsets[ai] as usize;
                    let seg = (plan.add_offsets[ai + 1] - plan.add_offsets[ai]) as usize;
                    if seg != kids.len() {
                        return Err(format!(
                            "gate {i}: segment capacity {seg} vs fan-in {}",
                            kids.len()
                        ));
                    }
                    let len = self.add_sup.len[ai] as usize;
                    if len > seg {
                        return Err(format!(
                            "gate {i}: supported prefix {len} exceeds segment {seg}"
                        ));
                    }
                    let mut in_prefix = vec![false; seg];
                    for (idx, &p) in self.add_sup.nz[start..start + len].iter().enumerate() {
                        let p = p as usize;
                        if p >= seg {
                            return Err(format!("gate {i}: child position {p} out of range"));
                        }
                        if in_prefix[p] {
                            return Err(format!("gate {i}: child position {p} listed twice"));
                        }
                        in_prefix[p] = true;
                        if !self.support[kids[p].0 as usize] {
                            return Err(format!(
                                "gate {i}: unsupported child at position {p} in the live prefix"
                            ));
                        }
                        if self.add_sup.where_pos[start + p] as usize != idx {
                            return Err(format!(
                                "gate {i}: back-pointer of position {p} is {} not {idx}",
                                self.add_sup.where_pos[start + p]
                            ));
                        }
                    }
                    for (p, &listed) in in_prefix.iter().enumerate() {
                        if !listed {
                            if self.add_sup.where_pos[start + p] != NO_IDX {
                                return Err(format!(
                                    "gate {i}: stale back-pointer at unlisted position {p}"
                                ));
                            }
                            if self.support[kids[p].0 as usize] {
                                return Err(format!(
                                    "gate {i}: supported child at position {p} missing from the prefix"
                                ));
                            }
                        }
                    }
                    len > 0
                }
                GateDef::Mul(a, b) => self.support[a.0 as usize] && self.support[b.0 as usize],
                GateDef::Perm { rows, cols } => {
                    let k = *rows as usize;
                    let pi = plan.perm_index[i];
                    if pi == NO_IDX {
                        return Err(format!("gate {i}: perm gate missing from the dense index"));
                    }
                    let meta = plan.perm_meta[pi as usize];
                    let children = circuit.children(*cols);
                    let ncols = children.len() / k;
                    let ps = PermSupport {
                        meta,
                        pool: &self.perms,
                    };
                    for ci in 0..ncols {
                        let mut m = 0u32;
                        for (r, child) in children[ci * k..(ci + 1) * k].iter().enumerate() {
                            if self.support[child.0 as usize] {
                                m |= 1 << r;
                            }
                        }
                        if ps.mask_of(ci as u32) != m {
                            return Err(format!(
                                "gate {i}: column {ci} mask {:#b} but child support is {m:#b}",
                                ps.mask_of(ci as u32)
                            ));
                        }
                    }
                    let mut seen = vec![false; ncols];
                    for m in 0..(1u32 << k) {
                        let mut walked = 0i64;
                        let mut prev: Option<u32> = None;
                        let mut cur = ps.head(m);
                        while let Some(col) = cur {
                            if col as usize >= ncols {
                                return Err(format!(
                                    "gate {i}: bucket {m:#b} links to column {col} out of range"
                                ));
                            }
                            if seen[col as usize] {
                                return Err(format!(
                                    "gate {i}: column {col} linked twice (cycle or cross-bucket)"
                                ));
                            }
                            seen[col as usize] = true;
                            if ps.mask_of(col) != m {
                                return Err(format!(
                                    "gate {i}: column {col} in bucket {m:#b} but its mask is {:#b}",
                                    ps.mask_of(col)
                                ));
                            }
                            if ps.prev(col) != prev {
                                return Err(format!(
                                    "gate {i}: broken prev link at column {col} of bucket {m:#b}"
                                ));
                            }
                            prev = Some(col);
                            walked += 1;
                            cur = ps.next(col);
                        }
                        if ps.tail(m) != prev {
                            return Err(format!("gate {i}: tail of bucket {m:#b} disagrees"));
                        }
                        if walked != ps.counts()[m as usize] {
                            return Err(format!(
                                "gate {i}: bucket {m:#b} holds {walked} columns but counts says {}",
                                ps.counts()[m as usize]
                            ));
                        }
                    }
                    if let Some(col) = seen.iter().position(|&s| !s) {
                        return Err(format!("gate {i}: column {col} linked into no bucket"));
                    }
                    ps.supported()
                }
            };
            if expected != self.support[i] {
                return Err(format!(
                    "gate {i}: support shadow {} but recomputation gives {expected}",
                    self.support[i]
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_circuit::CircuitBuilder;

    fn gen(i: u64) -> Vec<Gen> {
        vec![Gen(i)]
    }

    #[test]
    fn support_flows_through_gates() {
        // out = (x0 + x1) · x2
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let x2 = b.input(2);
        let s = b.add(&[x0, x1]);
        let m = b.mul(s, x2);
        let c = Arc::new(b.finish(m));
        let mut mach = EnumMachine::new(c, vec![vec![gen(1)], vec![], vec![gen(3)]]);
        assert!(mach.output_supported());
        mach.set_input(0, vec![]);
        assert!(!mach.output_supported(), "both addends zero");
        mach.set_input(1, vec![gen(2)]);
        assert!(mach.output_supported());
        mach.set_input(2, vec![]);
        assert!(!mach.output_supported(), "product by zero");
    }

    #[test]
    fn perm_support_is_hall_condition() {
        // 2×2 permanent of inputs; zeroing a full row kills it, zeroing
        // one diagonal still leaves the other.
        let mut b = CircuitBuilder::new();
        let g: Vec<_> = (0..4).map(|i| b.input(i)).collect();
        // columns (g0,g1), (g2,g3)
        let p = b.perm_flat(2, vec![g[0], g[1], g[2], g[3]]);
        let c = Arc::new(b.finish(p));
        let vals = |present: [bool; 4]| {
            (0..4)
                .map(|i| {
                    if present[i] {
                        vec![gen(i as u64)]
                    } else {
                        vec![]
                    }
                })
                .collect::<Vec<_>>()
        };
        let mut mach = EnumMachine::new(c, vals([true; 4]));
        assert!(mach.output_supported());
        // kill row 0 of both columns
        mach.set_input(0, vec![]);
        mach.set_input(2, vec![]);
        assert!(!mach.output_supported());
        // restore column 1 row 0: perm has the assignment (r0→c1, r1→c0)
        mach.set_input(2, vec![gen(9)]);
        assert!(mach.output_supported());
        // but killing row 1 of column 0 forces both rows into column 1
        mach.set_input(1, vec![]);
        assert!(!mach.output_supported());
    }

    #[test]
    fn pooled_bucket_lists_stay_coherent() {
        let mut b = CircuitBuilder::new();
        let inputs: Vec<_> = (0..6).map(|i| b.input(i)).collect();
        let p = b.perm_flat(2, inputs);
        let pg = p;
        let c = Arc::new(b.finish(p));
        let mut mach = EnumMachine::new(c, (0..6).map(|i| gens(&[i + 1])).collect());
        // walk every bucket forward and backward, checking consistency
        let check = |mach: &EnumMachine| {
            let ps = mach.perm_support(pg.0);
            let mut seen = 0;
            for m in 0..4u32 {
                let mut fwd = Vec::new();
                let mut cur = ps.head(m);
                while let Some(col) = cur {
                    assert_eq!(ps.mask_of(col), m);
                    fwd.push(col);
                    cur = ps.next(col);
                }
                let mut bwd = Vec::new();
                let mut cur = ps.tail(m);
                while let Some(col) = cur {
                    bwd.push(col);
                    cur = ps.prev(col);
                }
                bwd.reverse();
                assert_eq!(fwd, bwd, "mask {m}");
                assert_eq!(fwd.len() as i64, ps.counts()[m as usize]);
                seen += fwd.len();
            }
            assert_eq!(seen, 3, "all three columns accounted for");
        };
        check(&mach);
        for (slot, present) in [(0, false), (3, false), (0, true), (1, false), (4, false)] {
            mach.set_input(slot, if present { vec![gen(9)] } else { vec![] });
            check(&mach);
        }
    }

    #[test]
    fn shared_plan_machines_update_independently() {
        let mut b = CircuitBuilder::new();
        let inputs: Vec<_> = (0..6).map(|i| b.input(i)).collect();
        let p = b.perm_flat(2, inputs);
        let c = Arc::new(b.finish(p));
        let plan = Arc::new(EnumPlan::new(c));
        let init: Vec<InputVal> = (0..6).map(|i| gens(&[i + 1])).collect();
        let mut a = EnumMachine::from_plan(plan.clone(), init.clone());
        let mut bm = EnumMachine::from_plan(plan.clone(), init.clone());
        // kill row 0 of every column in state A only
        a.set_input(0, vec![]);
        a.set_input(2, vec![]);
        a.set_input(4, vec![]);
        assert!(!a.output_supported());
        assert!(bm.output_supported(), "sibling state untouched");
        // kill row 1 of every column in state B only
        bm.set_input(1, vec![]);
        bm.set_input(3, vec![]);
        bm.set_input(5, vec![]);
        assert!(!bm.output_supported());
        a.set_input(0, gens(&[7]));
        assert!(a.output_supported());
        assert!(!bm.output_supported(), "sibling state still independent");
    }

    #[test]
    fn plan_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EnumPlan>();
    }

    fn gens(ids: &[u64]) -> InputVal {
        ids.iter().map(|&i| vec![Gen(i)]).collect()
    }

    #[test]
    fn count_summands_matches_nat_eval() {
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let s = b.add(&[x0, x1]);
        let m = b.mul(s, x1);
        let c = Arc::new(b.finish(m));
        let mach = EnumMachine::new(c, vec![vec![gen(1), gen(2)], vec![gen(3), gen(4), gen(5)]]);
        // (2 + 3) * 3 = 15
        assert_eq!(mach.count_summands(), 15);
    }

    #[test]
    fn batched_bool_flips_match_sequential() {
        // 140 slots (three bitset words): out = Σ_i x_{2i}·x_{2i+1}
        let n = 140u32;
        let mut b = CircuitBuilder::new();
        let prods: Vec<_> = (0..n / 2)
            .map(|i| {
                let a = b.input(2 * i);
                let c = b.input(2 * i + 1);
                b.mul(a, c)
            })
            .collect();
        let s = b.add(&prods);
        let c = Arc::new(b.finish(s));
        let init: Vec<InputVal> = (0..n)
            .map(|i| if i % 3 == 0 { gens(&[1]) } else { vec![] })
            .collect();
        let mut batched = EnumMachine::new(c.clone(), init.clone());
        let mut sequential = EnumMachine::new(c.clone(), init.clone());
        let mut vals = init;
        // deterministic pseudo-random flips, duplicates included
        let mut x = 0x9e3779b97f4a7c15u64;
        for round in 0..20 {
            let mut batch: Vec<(u32, bool)> = Vec::new();
            for _ in 0..(round % 7) + 1 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let slot = (x >> 33) as u32 % n;
                let present = x & 1 == 1;
                batch.push((slot, present));
            }
            batched.set_input_bools(&batch);
            for &(slot, present) in &batch {
                sequential.set_input_bool(slot, present);
                vals[slot as usize] = if present { vec![Vec::new()] } else { vec![] };
            }
            let fresh = EnumMachine::new(c.clone(), vals.clone());
            for g in 0..c.gates().len() {
                assert_eq!(
                    batched.support[g], sequential.support[g],
                    "round {round}, gate {g}: batch vs sequential"
                );
                assert_eq!(
                    batched.support[g], fresh.support[g],
                    "round {round}, gate {g}: batch vs rebuild"
                );
            }
            for slot in 0..n {
                assert_eq!(batched.input(slot), sequential.input(slot), "slot {slot}");
                assert_eq!(
                    batched.input_present(slot),
                    !vals[slot as usize].is_empty(),
                    "bitset tracks presence"
                );
            }
        }
    }

    #[test]
    fn bool_input_toggle_matches_set_input() {
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let m = b.mul(x0, x1);
        let c = Arc::new(b.finish(m));
        let mut mach = EnumMachine::new(c, vec![vec![vec![]], vec![gen(7)]]);
        assert!(mach.output_supported());
        mach.set_input_bool(0, false);
        assert!(!mach.output_supported());
        assert!(mach.input(0).is_empty());
        mach.set_input_bool(0, true);
        assert!(mach.output_supported());
        assert_eq!(mach.input(0), &vec![Vec::<Gen>::new()]);
    }
}
