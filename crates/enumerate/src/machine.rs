//! Support tracking for circuits evaluated in the free semiring.
//!
//! # CSR layout
//!
//! The machine mirrors the flat-arena conventions of
//! [`agq_circuit::DynEvaluator`]: derived adjacency lives in
//! [`Csr`] buffers (parent references per gate, input gates per slot)
//! built in two counting passes, and per-gate support state is stored
//! densely — `add_index`/`perm_index` map gate ids to compact tables
//! (`u32::MAX` for gates of other kinds). Addition gates' live
//! supported-children lists are themselves flattened into one shared
//! buffer ([`AddSupports`]): every add gate owns a fixed-capacity
//! segment sized by its fan-in, so membership updates are in-place
//! swap-removes with no per-gate allocation and no per-update clones.

use agq_circuit::{Circuit, ConstRef, Csr, CsrBuilder, GateDef};
use agq_perm::support::sdr_exists;
use agq_semiring::Gen;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// An input value in the free semiring: a list of summand monomials,
/// each a (not necessarily sorted) list of generators. The empty list is
/// `0`; a single empty monomial is `1`.
pub type InputVal = Vec<Vec<Gen>>;

/// Sentinel for "gate has no entry in this dense side table".
const NO_IDX: u32 = u32::MAX;

/// Lemma 39's structure for one permanent gate: columns bucketed by their
/// Boolean support mask, with counts for `O_k(1)` Hall checks.
#[derive(Debug)]
pub(crate) struct PermSupport {
    pub k: usize,
    /// Current support mask of each column.
    pub col_mask: Vec<u32>,
    /// `counts[mask]` = number of columns with that mask.
    pub counts: Vec<i64>,
    /// Columns per mask, in enumeration order.
    pub lists: Vec<Vec<u32>>,
    /// `pos[col]` = index of the column within its mask list.
    pub pos: Vec<u32>,
}

impl PermSupport {
    fn new(k: usize, masks: Vec<u32>) -> Self {
        let mut counts = vec![0i64; 1 << k];
        let mut lists = vec![Vec::new(); 1 << k];
        let mut pos = vec![0u32; masks.len()];
        for (c, &m) in masks.iter().enumerate() {
            counts[m as usize] += 1;
            pos[c] = lists[m as usize].len() as u32;
            lists[m as usize].push(c as u32);
        }
        PermSupport {
            k,
            col_mask: masks,
            counts,
            lists,
            pos,
        }
    }

    /// Flip one entry's support; returns the gate's new support.
    fn set_entry(&mut self, row: usize, col: usize, nonzero: bool) -> bool {
        let old = self.col_mask[col];
        let new = if nonzero {
            old | (1 << row)
        } else {
            old & !(1 << row)
        };
        if new != old {
            // remove from old list (swap-remove, fixing the moved column)
            let p = self.pos[col] as usize;
            let list = &mut self.lists[old as usize];
            let last = *list.last().expect("column in its list");
            list.swap_remove(p);
            if (last as usize) != col {
                self.pos[last as usize] = p as u32;
            }
            self.counts[old as usize] -= 1;
            // append to new list
            self.pos[col] = self.lists[new as usize].len() as u32;
            self.lists[new as usize].push(col as u32);
            self.counts[new as usize] += 1;
            self.col_mask[col] = new;
        }
        self.supported()
    }

    /// Whether the permanent is nonzero in the Boolean shadow
    /// (an SDR for all rows exists).
    pub fn supported(&self) -> bool {
        sdr_exists(self.k, &self.counts)
    }
}

/// Live supported-children lists of every addition gate, flattened: add
/// gate `ai` (dense index) owns the segment
/// `offsets[ai]..offsets[ai+1]` of both `nz` and `where_pos`; its first
/// `len[ai]` `nz` entries are the supported child positions in
/// enumeration order, and `where_pos[child position]` is the index in
/// that prefix (or `u32::MAX`). Two flat buffers for the whole circuit —
/// the CSR analogue of the old per-gate `Vec` pairs.
#[derive(Debug)]
pub(crate) struct AddSupports {
    offsets: Vec<u32>,
    len: Vec<u32>,
    nz: Vec<u32>,
    where_pos: Vec<u32>,
}

impl AddSupports {
    fn with_capacities(fanins: &[u32]) -> Self {
        let mut offsets = Vec::with_capacity(fanins.len() + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for &f in fanins {
            total += f;
            offsets.push(total);
        }
        AddSupports {
            offsets,
            len: vec![0; fanins.len()],
            nz: vec![0; total as usize],
            where_pos: vec![u32::MAX; total as usize],
        }
    }

    /// Supported child positions of add gate `ai`, in enumeration order.
    pub fn nz(&self, ai: usize) -> &[u32] {
        let start = self.offsets[ai] as usize;
        &self.nz[start..start + self.len[ai] as usize]
    }

    fn set(&mut self, ai: usize, child_pos: usize, supported: bool) {
        let start = self.offsets[ai] as usize;
        let n = self.len[ai] as usize;
        let cur = self.where_pos[start + child_pos];
        if supported && cur == u32::MAX {
            self.where_pos[start + child_pos] = n as u32;
            self.nz[start + n] = child_pos as u32;
            self.len[ai] += 1;
        } else if !supported && cur != u32::MAX {
            let p = cur as usize;
            let last = self.nz[start + n - 1];
            self.nz[start + p] = last;
            self.len[ai] -= 1;
            if last as usize != child_pos {
                self.where_pos[start + last as usize] = p as u32;
            }
            self.where_pos[start + child_pos] = u32::MAX;
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum ParentRef {
    Add { gate: u32, child_pos: u32 },
    Mul(u32),
    Perm { gate: u32, row: u8, col: u32 },
}

/// The enumeration state of a circuit over the free semiring: per-slot
/// input summand lists, a Boolean support shadow of every gate, and the
/// Lemma 39 structures at permanent gates. Input updates propagate in
/// time proportional to the (query-bounded) number of affected gates,
/// with no allocation on the update path (the adjacency is immutable
/// CSR, the dirty queue is reused).
pub struct EnumMachine {
    circuit: Arc<Circuit>,
    /// Summand lists per input slot.
    input_vals: Vec<InputVal>,
    /// Boolean support per gate.
    pub(crate) support: Vec<bool>,
    /// Gate id → dense index into `add_sup` (`NO_IDX` for non-add gates).
    add_index: Vec<u32>,
    pub(crate) add_sup: AddSupports,
    /// Gate id → dense index into `perms` (`NO_IDX` for non-perm gates).
    perm_index: Vec<u32>,
    perms: Vec<PermSupport>,
    /// Parents of each gate.
    parents: Csr<ParentRef>,
    /// Input gates per slot (updates must not scan the circuit).
    slot_gates: Csr<u32>,
    /// Reused dirty queue (drained after every update).
    dirty: BinaryHeap<std::cmp::Reverse<u32>>,
    /// Bumped on every update; outstanding cursors become invalid.
    pub(crate) version: u64,
}

impl EnumMachine {
    /// Build from initial input values: one bottom-up pass over the gate
    /// arena (plus one counting pass for the CSR buffers).
    ///
    /// # Panics
    /// Panics if the circuit uses literal-table constants — enumeration
    /// circuits carry coefficient 1 everywhere (formal sums have no
    /// scalar action beyond ℕ, and compiled enumeration expressions use
    /// coefficient 1).
    pub fn new(circuit: Arc<Circuit>, input_vals: Vec<InputVal>) -> Self {
        assert_eq!(input_vals.len(), circuit.num_slots());
        assert_eq!(
            circuit.num_lits(),
            0,
            "enumeration circuits must not use literal constants"
        );
        let gates = circuit.gates();
        let n = gates.len();

        // Counting pass: parent references, input gates per slot, and
        // dense side-table sizes.
        let mut parents = CsrBuilder::new(n);
        let mut slot_gates = CsrBuilder::new(circuit.num_slots());
        let mut add_index = vec![NO_IDX; n];
        let mut perm_index = vec![NO_IDX; n];
        let mut add_fanins: Vec<u32> = Vec::new();
        let mut num_perms = 0usize;
        for (i, g) in gates.iter().enumerate() {
            match g {
                GateDef::Input(slot) => slot_gates.count(*slot as usize),
                GateDef::Const(_) => {}
                GateDef::Add(r) => {
                    add_index[i] = add_fanins.len() as u32;
                    add_fanins.push(r.len() as u32);
                    for c in circuit.children(*r) {
                        parents.count(c.0 as usize);
                    }
                }
                GateDef::Mul(a, b) => {
                    parents.count(a.0 as usize);
                    parents.count(b.0 as usize);
                }
                GateDef::Perm { cols, .. } => {
                    num_perms += 1;
                    for c in circuit.children(*cols) {
                        parents.count(c.0 as usize);
                    }
                }
            }
        }

        // Bottom-up pass: fill the CSR buffers and compute the support
        // shadow (children precede parents, so one pass suffices).
        let mut parents = parents.finish_counts(ParentRef::Mul(0));
        let mut slot_gates = slot_gates.finish_counts(0u32);
        let mut add_sup = AddSupports::with_capacities(&add_fanins);
        let mut perms: Vec<PermSupport> = Vec::with_capacity(num_perms);
        let mut support = vec![false; n];
        for (i, g) in gates.iter().enumerate() {
            support[i] = match g {
                GateDef::Input(slot) => {
                    slot_gates.place(*slot as usize, i as u32);
                    !input_vals[*slot as usize].is_empty()
                }
                GateDef::Const(ConstRef::Zero) => false,
                GateDef::Const(ConstRef::One) => true,
                GateDef::Const(ConstRef::Lit(_)) => unreachable!("no lits"),
                GateDef::Add(children) => {
                    let ai = add_index[i] as usize;
                    for (p, c) in circuit.children(*children).iter().enumerate() {
                        parents.place(
                            c.0 as usize,
                            ParentRef::Add {
                                gate: i as u32,
                                child_pos: p as u32,
                            },
                        );
                        if support[c.0 as usize] {
                            add_sup.set(ai, p, true);
                        }
                    }
                    !add_sup.nz(ai).is_empty()
                }
                GateDef::Mul(a, b) => {
                    parents.place(a.0 as usize, ParentRef::Mul(i as u32));
                    parents.place(b.0 as usize, ParentRef::Mul(i as u32));
                    support[a.0 as usize] && support[b.0 as usize]
                }
                GateDef::Perm { rows, cols } => {
                    let k = *rows as usize;
                    let cols = circuit.children(*cols);
                    let mut masks = Vec::with_capacity(cols.len() / k);
                    for (ci, col) in cols.chunks_exact(k).enumerate() {
                        let mut m = 0u32;
                        for (r, child) in col.iter().enumerate() {
                            parents.place(
                                child.0 as usize,
                                ParentRef::Perm {
                                    gate: i as u32,
                                    row: r as u8,
                                    col: ci as u32,
                                },
                            );
                            if support[child.0 as usize] {
                                m |= 1 << r;
                            }
                        }
                        masks.push(m);
                    }
                    perm_index[i] = perms.len() as u32;
                    let s = PermSupport::new(k, masks);
                    let sup = s.supported();
                    perms.push(s);
                    sup
                }
            };
        }
        EnumMachine {
            circuit,
            input_vals,
            support,
            add_index,
            add_sup,
            perm_index,
            perms,
            parents: parents.finish(),
            slot_gates: slot_gates.finish(),
            dirty: BinaryHeap::new(),
            version: 0,
        }
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// Current value of an input slot.
    pub fn input(&self, slot: u32) -> &InputVal {
        &self.input_vals[slot as usize]
    }

    /// Whether the output is nonzero (at least one summand).
    pub fn output_supported(&self) -> bool {
        self.support[self.circuit.output().0 as usize]
    }

    /// Live supported-children list of an addition gate.
    pub(crate) fn add_nz(&self, gate: u32) -> &[u32] {
        let ai = self.add_index[gate as usize];
        debug_assert_ne!(ai, NO_IDX, "not an addition gate");
        self.add_sup.nz(ai as usize)
    }

    /// Lemma 39 support structure of a permanent gate.
    pub(crate) fn perm_support(&self, gate: u32) -> &PermSupport {
        let pi = self.perm_index[gate as usize];
        debug_assert_ne!(pi, NO_IDX, "not a permanent gate");
        &self.perms[pi as usize]
    }

    /// Overwrite an input slot's value and repair the support shadow.
    /// Invalidates outstanding cursors.
    pub fn set_input(&mut self, slot: u32, value: InputVal) {
        let new_support = !value.is_empty();
        self.input_vals[slot as usize] = value;
        self.refresh_slot(slot, new_support);
    }

    /// Set a 0/1-valued slot: `true` is the single empty monomial `1`,
    /// `false` the empty sum `0`. Unlike [`EnumMachine::set_input`] this
    /// reuses the slot's existing buffers, so toggling relation
    /// indicators (the [Lemma 40] dynamic-atom slots) allocates nothing.
    ///
    /// [Lemma 40]: crate::answers
    pub fn set_input_bool(&mut self, slot: u32, present: bool) {
        let v = &mut self.input_vals[slot as usize];
        v.clear();
        if present {
            // `Vec::new()` does not allocate, and the outer push reuses
            // the slot's retained capacity after the first toggle.
            v.push(Vec::new());
        }
        self.refresh_slot(slot, present);
    }

    /// Propagate a slot's (possibly changed) support through the shadow.
    fn refresh_slot(&mut self, slot: u32, new_support: bool) {
        self.version += 1;
        // All input gates reading this slot flip together (indexed; an
        // update must not scan the circuit).
        let mut dirty = std::mem::take(&mut self.dirty);
        for i in 0..self.slot_gates.row(slot as usize).len() {
            let g = self.slot_gates.row(slot as usize)[i];
            if self.support[g as usize] != new_support {
                self.support[g as usize] = new_support;
                self.notify_parents(g, &mut dirty);
            }
        }
        while let Some(std::cmp::Reverse(g)) = dirty.pop() {
            if dirty.peek() == Some(&std::cmp::Reverse(g)) {
                continue;
            }
            let new = self.recompute_support(g);
            if self.support[g as usize] != new {
                self.support[g as usize] = new;
                self.notify_parents(g, &mut dirty);
            }
        }
        self.dirty = dirty;
    }

    fn notify_parents(&mut self, g: u32, dirty: &mut BinaryHeap<std::cmp::Reverse<u32>>) {
        let sup = self.support[g as usize];
        for i in 0..self.parents.row(g as usize).len() {
            let p = self.parents.row(g as usize)[i];
            match p {
                ParentRef::Add { gate, child_pos } => {
                    let ai = self.add_index[gate as usize] as usize;
                    self.add_sup.set(ai, child_pos as usize, sup);
                    dirty.push(std::cmp::Reverse(gate));
                }
                ParentRef::Mul(gate) => dirty.push(std::cmp::Reverse(gate)),
                ParentRef::Perm { gate, row, col } => {
                    let pi = self.perm_index[gate as usize] as usize;
                    self.perms[pi].set_entry(row as usize, col as usize, sup);
                    dirty.push(std::cmp::Reverse(gate));
                }
            }
        }
    }

    fn recompute_support(&self, g: u32) -> bool {
        match &self.circuit.gates()[g as usize] {
            GateDef::Input(_) | GateDef::Const(_) => self.support[g as usize],
            GateDef::Add(_) => !self.add_nz(g).is_empty(),
            GateDef::Mul(a, b) => self.support[a.0 as usize] && self.support[b.0 as usize],
            GateDef::Perm { .. } => self.perm_support(g).supported(),
        }
    }

    /// Total number of summands of the output, counted by evaluating the
    /// circuit in ℕ with each input replaced by its summand count.
    /// Linear time; used by tests and progress reporting.
    pub fn count_summands(&self) -> u64 {
        use agq_semiring::Nat;
        let slots: Vec<Nat> = self
            .input_vals
            .iter()
            .map(|v| Nat(v.len() as u64))
            .collect();
        self.circuit.eval(&slots, &[]).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_circuit::CircuitBuilder;

    fn gen(i: u64) -> Vec<Gen> {
        vec![Gen(i)]
    }

    #[test]
    fn support_flows_through_gates() {
        // out = (x0 + x1) · x2
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let x2 = b.input(2);
        let s = b.add(&[x0, x1]);
        let m = b.mul(s, x2);
        let c = Arc::new(b.finish(m));
        let mut mach = EnumMachine::new(c, vec![vec![gen(1)], vec![], vec![gen(3)]]);
        assert!(mach.output_supported());
        mach.set_input(0, vec![]);
        assert!(!mach.output_supported(), "both addends zero");
        mach.set_input(1, vec![gen(2)]);
        assert!(mach.output_supported());
        mach.set_input(2, vec![]);
        assert!(!mach.output_supported(), "product by zero");
    }

    #[test]
    fn perm_support_is_hall_condition() {
        // 2×2 permanent of inputs; zeroing a full row kills it, zeroing
        // one diagonal still leaves the other.
        let mut b = CircuitBuilder::new();
        let g: Vec<_> = (0..4).map(|i| b.input(i)).collect();
        // columns (g0,g1), (g2,g3)
        let p = b.perm_flat(2, vec![g[0], g[1], g[2], g[3]]);
        let c = Arc::new(b.finish(p));
        let vals = |present: [bool; 4]| {
            (0..4)
                .map(|i| {
                    if present[i] {
                        vec![gen(i as u64)]
                    } else {
                        vec![]
                    }
                })
                .collect::<Vec<_>>()
        };
        let mut mach = EnumMachine::new(c, vals([true; 4]));
        assert!(mach.output_supported());
        // kill row 0 of both columns
        mach.set_input(0, vec![]);
        mach.set_input(2, vec![]);
        assert!(!mach.output_supported());
        // restore column 1 row 0: perm has the assignment (r0→c1, r1→c0)
        mach.set_input(2, vec![gen(9)]);
        assert!(mach.output_supported());
        // but killing row 1 of column 0 forces both rows into column 1
        mach.set_input(1, vec![]);
        assert!(!mach.output_supported());
    }

    #[test]
    fn count_summands_matches_nat_eval() {
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let s = b.add(&[x0, x1]);
        let m = b.mul(s, x1);
        let c = Arc::new(b.finish(m));
        let mach = EnumMachine::new(c, vec![vec![gen(1), gen(2)], vec![gen(3), gen(4), gen(5)]]);
        // (2 + 3) * 3 = 15
        assert_eq!(mach.count_summands(), 15);
    }

    #[test]
    fn bool_input_toggle_matches_set_input() {
        let mut b = CircuitBuilder::new();
        let x0 = b.input(0);
        let x1 = b.input(1);
        let m = b.mul(x0, x1);
        let c = Arc::new(b.finish(m));
        let mut mach = EnumMachine::new(c, vec![vec![vec![]], vec![gen(7)]]);
        assert!(mach.output_supported());
        mach.set_input_bool(0, false);
        assert!(!mach.output_supported());
        assert!(mach.input(0).is_empty());
        mach.set_input_bool(0, true);
        assert!(mach.output_supported());
        assert_eq!(mach.input(0), &vec![Vec::<Gen>::new()]);
    }
}
