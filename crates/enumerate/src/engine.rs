//! One engine API for a first-order query: point queries, answer
//! enumeration, and Gaifman-preserving updates behind a single facade.
//!
//! [`agq_core::QueryEngine`] answers *point* queries (`is ā an answer?`
//! as the semiring value `[φ](ā)`) and absorbs updates through its
//! dynamic evaluator; [`AnswerIndex`] *enumerates* answers with constant
//! delay and absorbs the same updates through its support shadow. Before
//! this module they were separate objects fed separately.
//! [`EnumQueryEngine`] binds both to one formula and one database and
//! routes one [`TupleUpdate`] object to both — so enumeration, point
//! queries, and updates share one engine API (and the differential test
//! suite can assert they never disagree).

use crate::answers::{AnswerIndex, AnswerIter, UpdateError};
use agq_circuit::{FiniteMaint, PermMaint, RingMaint};
use agq_core::{
    compile, eliminate_quantifiers, CompileError, CompileOptions, DurabilityPolicy, QueryEngine,
    TupleUpdate, WalFailure, WalSink,
};
use agq_logic::{normalize, Expr, Formula};
use agq_perm::SegTreePerm;
use agq_semiring::Semiring;
use agq_structure::{Elem, Structure, WeightedStructure};
use std::sync::Arc;

/// A first-order query bound to a database, answering point queries,
/// constant-delay enumeration, and (in dynamic mode) constant-time
/// Gaifman-preserving updates through one API.
///
/// Every successfully applied update batch bumps a log sequence number
/// (LSN); when a [`WalSink`] is attached the batch is journaled
/// **write-ahead** under that LSN — validated, appended to the sink
/// (with the retry schedule of the configured [`DurabilityPolicy`]), and
/// only then applied in memory. That ordering is what makes a snapshot
/// (taken at [`last_lsn`](Self::last_lsn)) plus a WAL-tail replay
/// reconstruct the live state (`agq-persist`): a batch the WAL rejected
/// under fail-stop was never applied, and a batch the WAL accepted is
/// durable even if the process dies mid-apply. Under
/// [`WalFailure::FailOpen`] the engine instead keeps serving through a
/// WAL outage and raises [`wal_degraded`](Self::wal_degraded).
pub struct EnumQueryEngine<S: Semiring, P: PermMaint<S>> {
    engine: QueryEngine<S, P>,
    index: AnswerIndex,
    wal: Option<Box<dyn WalSink>>,
    last_lsn: u64,
    policy: DurabilityPolicy,
    wal_degraded: bool,
}

/// Unified engine for arbitrary semirings (logarithmic point queries).
pub type GeneralEnumEngine<S> = EnumQueryEngine<S, SegTreePerm<S>>;
/// Unified engine for rings (constant-time point queries).
pub type RingEnumEngine<S> = EnumQueryEngine<S, RingMaint<S>>;
/// Unified engine for finite semirings (constant-time point queries).
pub type FiniteEnumEngine<S> = EnumQueryEngine<S, FiniteMaint<S>>;

impl<S: Semiring, P: PermMaint<S>> EnumQueryEngine<S, P> {
    /// Preprocess `φ` over `a` for point queries and enumeration only
    /// (quantifiers allowed via guarded elimination; updates rejected).
    pub fn build(
        a: &Arc<Structure>,
        phi: &Formula,
        opts: &CompileOptions,
    ) -> Result<Self, CompileError> {
        Self::build_inner(a, phi, opts, false)
    }

    /// Preprocess a quantifier-free `φ` over `a` for point queries,
    /// enumeration, **and** Gaifman-preserving updates (Theorem 24).
    pub fn build_dynamic(
        a: &Arc<Structure>,
        phi: &Formula,
        opts: &CompileOptions,
    ) -> Result<Self, CompileError> {
        Self::build_inner(a, phi, opts, true)
    }

    fn build_inner(
        a: &Arc<Structure>,
        phi: &Formula,
        opts: &CompileOptions,
        dynamic: bool,
    ) -> Result<Self, CompileError> {
        // Point-query side: compile the indicator expression [φ] with
        // φ's variables free — `query(ā)` then evaluates to `[φ(ā)]`.
        let expr: Expr<S> = Expr::Bracket(phi.clone());
        let mut copts = opts.clone();
        copts.dynamic_atoms = dynamic;
        let (expr, a2) = eliminate_quantifiers(&expr, a, &copts)?;
        let nf = normalize(&expr)?;
        let compiled = compile(&a2, &nf, &copts)?;
        let weights: WeightedStructure<S> = WeightedStructure::new(a2);
        let engine = QueryEngine::new(compiled, &weights);
        // Enumeration side: the answer index over the same formula.
        let index = if dynamic {
            AnswerIndex::build_dynamic(a, phi, opts)?
        } else {
            AnswerIndex::build(a, phi, opts)?
        };
        Ok(EnumQueryEngine {
            engine,
            index,
            wal: None,
            last_lsn: 0,
            policy: DurabilityPolicy::default(),
            wal_degraded: false,
        })
    }

    /// Reassemble an engine from separately restored halves — the
    /// restore constructor of `agq-persist`. `last_lsn` seeds the log
    /// sequence counter (the LSN the restored state is current through).
    pub fn from_parts(engine: QueryEngine<S, P>, index: AnswerIndex, last_lsn: u64) -> Self {
        EnumQueryEngine {
            engine,
            index,
            wal: None,
            last_lsn,
            policy: DurabilityPolicy::default(),
            wal_degraded: false,
        }
    }

    /// Attach a write-ahead-log sink: every subsequently applied batch is
    /// appended to it under its LSN. Returns the previously attached sink.
    pub fn attach_wal(&mut self, sink: Box<dyn WalSink>) -> Option<Box<dyn WalSink>> {
        self.wal.replace(sink)
    }

    /// Detach the WAL sink (e.g. before replaying a recovered tail, so
    /// the replay is not re-logged).
    pub fn detach_wal(&mut self) -> Option<Box<dyn WalSink>> {
        self.wal.take()
    }

    /// The LSN of the last successfully applied update batch (0 before
    /// any update). A snapshot taken now is current through this LSN.
    pub fn last_lsn(&self) -> u64 {
        self.last_lsn
    }

    /// Reset the log sequence counter — used after WAL replay so
    /// subsequent batches continue from the highest committed LSN
    /// rather than from the snapshot's.
    pub fn set_last_lsn(&mut self, lsn: u64) {
        self.last_lsn = lsn;
    }

    /// How hard the engine tries to make a batch durable before giving
    /// up, and what "giving up" means (fail-stop rejection vs. degraded
    /// fail-open serving).
    pub fn set_durability(&mut self, policy: DurabilityPolicy) {
        self.policy = policy;
    }

    /// The active [`DurabilityPolicy`].
    pub fn durability(&self) -> DurabilityPolicy {
        self.policy
    }

    /// Whether a WAL append has failed past its retry budget under
    /// [`WalFailure::FailOpen`] — the engine kept serving, but batches
    /// from that point on may be missing from the log (take a fresh
    /// snapshot before trusting it again).
    pub fn wal_degraded(&self) -> bool {
        self.wal_degraded
    }

    /// Acknowledge a WAL outage after repairing the sink (e.g.
    /// re-attaching a fresh one and snapshotting).
    pub fn reset_wal_degraded(&mut self) {
        self.wal_degraded = false;
    }

    /// Journal one batch **write-ahead**: append it to the attached sink
    /// (if any) under the *next* LSN, and commit that LSN only if the
    /// append succeeded — or unconditionally under fail-open, flagging
    /// [`wal_degraded`](Self::wal_degraded). On a fail-stop `Err` the
    /// LSN does not advance and the caller must not apply the batch.
    fn journal(&mut self, updates: &[TupleUpdate]) -> Result<(), UpdateError> {
        let lsn = self.last_lsn + 1;
        if let Some(wal) = &mut self.wal {
            if let Err(e) = self.policy.append(wal.as_mut(), lsn, updates) {
                match self.policy.on_failure {
                    WalFailure::FailStop => return Err(UpdateError::Wal(e.to_string())),
                    WalFailure::FailOpen => self.wal_degraded = true,
                }
            }
        }
        self.last_lsn = lsn;
        Ok(())
    }

    /// Answer-tuple arity.
    pub fn arity(&self) -> usize {
        self.index.arity()
    }

    /// Point query: the indicator value `[φ(ā)]` (one when `ā` is an
    /// answer, zero otherwise). Zero-restore, `O_φ(log |A|)` general /
    /// `O_φ(1)` ring and finite backends.
    pub fn query(&mut self, tuple: &[Elem]) -> S {
        self.engine.query(tuple)
    }

    /// Number of answers, from the incrementally maintained rank counts
    /// (`O_φ(|A|)` on first use, then `O_φ(pending updates)`).
    pub fn count(&self) -> u64 {
        self.index.count()
    }

    /// Direct access: the `k`-th answer of enumeration order in
    /// `O(depth)` gate visits, no enumeration of preceding answers.
    /// `None` iff `k >= count()`. See [`AnswerIndex::answer`].
    pub fn answer(&self, k: u64) -> Option<Vec<Elem>> {
        self.index.answer(k)
    }

    /// Answers of ranks `k … k+len-1` — one rank descent plus a
    /// constant-delay cursor walk. See [`AnswerIndex::answer_range`].
    pub fn answer_range(&self, k: u64, len: usize) -> Vec<Vec<Elem>> {
        self.index.answer_range(k, len)
    }

    /// A uniformly random answer, deterministic per seed. See
    /// [`AnswerIndex::sample`].
    pub fn sample(&self, rng_seed: u64) -> Option<Vec<Elem>> {
        self.index.sample(rng_seed)
    }

    /// Whether at least one answer exists, in `O_φ(1)`.
    pub fn is_nonempty(&self) -> bool {
        self.index.is_nonempty()
    }

    /// Constant-delay, duplicate-free, bidirectional answer iterator.
    pub fn enumerate(&self) -> AnswerIter<'_> {
        self.index.iter()
    }

    /// Apply one update to *both* sides — the enumeration index
    /// incrementally (`O_φ(1)`, no rebuild) and the point-query
    /// evaluator. Dynamic mode only; the update must preserve the
    /// Gaifman graph and be well-formed (known relation, right arity,
    /// in-domain elements). On error nothing is modified on either
    /// side: the update is validated *before* it is journaled or
    /// applied, and the write-ahead journal commits (advancing the LSN)
    /// before either in-memory side mutates — a fail-stop WAL rejection
    /// therefore also leaves both sides untouched.
    pub fn apply_update(&mut self, u: &TupleUpdate) -> Result<(), UpdateError> {
        self.index.validate_update(u)?;
        self.journal(std::slice::from_ref(u))?;
        self.index
            .apply_update(u)
            .expect("update was pre-validated");
        self.engine.apply_update(u);
        Ok(())
    }

    /// Apply a whole batch of updates to *both* sides with one coalesced
    /// sweep each ([`AnswerIndex::apply_batch`] and
    /// [`agq_core::QueryEngine::apply_batch`]): per-tuple coalescing, net
    /// no-op dropping, and a single dirty propagation per side. The batch
    /// is validated up front — on `Err` nothing is modified. Returns the
    /// number of coalesced updates that changed the enumeration index.
    ///
    /// Coalescing runs **once**, here ([`agq_core::coalesce_updates`]);
    /// the two sub-indexes only ever see the deduplicated slice, so on
    /// hot-key churn batches the per-incoming-update cost is one hash,
    /// not one per layer.
    pub fn apply_batch<U: std::borrow::Borrow<TupleUpdate>>(
        &mut self,
        updates: &[U],
    ) -> Result<usize, UpdateError> {
        let mut coalesced = Vec::with_capacity(updates.len());
        agq_core::coalesce_updates(updates, &mut coalesced);
        for u in &coalesced {
            self.index.validate_update(u)?;
        }
        // Write-ahead: the batch is durable (or cleanly rejected, LSN
        // unadvanced) before anything mutates in memory.
        if self.wal.is_some() {
            let owned: Vec<TupleUpdate> = coalesced.iter().map(|u| (*u).clone()).collect();
            self.journal(&owned)?;
        } else {
            self.journal(&[])?; // no sink: just sequence the batch
        }
        let applied = self
            .index
            .apply_batch_coalesced(&coalesced)
            .expect("batch was pre-validated");
        self.engine.apply_batch_coalesced(&coalesced);
        Ok(applied)
    }

    /// [`EnumQueryEngine::apply_update`] followed by a fresh
    /// [`EnumQueryEngine::enumerate`]: the enumerate-after-update flow of
    /// Theorem 24, as one call.
    pub fn enumerate_after_update(
        &mut self,
        u: &TupleUpdate,
    ) -> Result<AnswerIter<'_>, UpdateError> {
        self.apply_update(u)?;
        Ok(self.index.iter())
    }

    /// Deep invariant verification of the enumeration state: structural
    /// consistency of the machine plus agreement between the incremental
    /// summand count and a fresh from-scratch evaluation. See
    /// [`AnswerIndex::self_check`].
    pub fn self_check(&self) -> Result<(), String> {
        self.index.self_check()
    }

    /// The point-query engine (instrumentation, batch queries).
    pub fn query_engine(&self) -> &QueryEngine<S, P> {
        &self.engine
    }

    /// The enumeration index (instrumentation).
    pub fn answer_index(&self) -> &AnswerIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_logic::Var;
    use agq_semiring::Nat;
    use agq_structure::Signature;

    fn small_graph() -> (Arc<Structure>, agq_structure::RelId) {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), 6);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 0), (3, 4)] {
            a.insert(e, &[u, v]);
            a.insert(e, &[v, u]);
        }
        (Arc::new(a), e)
    }

    #[test]
    fn point_queries_agree_with_enumeration() {
        let (a, e) = small_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let mut eng: GeneralEnumEngine<Nat> =
            EnumQueryEngine::build(&a, &phi, &CompileOptions::default()).unwrap();
        let mut answers = Vec::new();
        let mut it = eng.enumerate();
        while let Some(t) = it.next() {
            answers.push(t);
        }
        assert_eq!(answers.len() as u64, eng.count());
        for t in &answers {
            assert_eq!(eng.query(t), Nat(1), "enumerated answer {t:?}");
        }
        assert_eq!(eng.query(&[0, 3]), Nat(0), "non-answer");
    }

    #[test]
    fn update_patches_both_sides() {
        let (a, e) = small_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let mut eng: GeneralEnumEngine<Nat> =
            EnumQueryEngine::build_dynamic(&a, &phi, &CompileOptions::default()).unwrap();
        let before = eng.count();
        let u = TupleUpdate::remove(e, &[0, 1]);
        let mut it = eng.enumerate_after_update(&u).unwrap();
        let mut n = 0;
        while it.next().is_some() {
            n += 1;
        }
        assert_eq!(n, before - 1);
        assert_eq!(eng.query(&[0, 1]), Nat(0), "removed on the query side too");
        eng.apply_update(&TupleUpdate::insert(e, &[0, 1])).unwrap();
        assert_eq!(eng.query(&[0, 1]), Nat(1));
        assert_eq!(eng.count(), before);
    }

    #[test]
    fn direct_access_through_engine() {
        let (a, e) = small_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let eng: GeneralEnumEngine<Nat> =
            EnumQueryEngine::build(&a, &phi, &CompileOptions::default()).unwrap();
        let mut all = Vec::new();
        let mut it = eng.enumerate();
        while let Some(t) = it.next() {
            all.push(t);
        }
        for (k, t) in all.iter().enumerate() {
            assert_eq!(eng.answer(k as u64).as_ref(), Some(t));
        }
        assert_eq!(eng.answer(all.len() as u64), None);
        assert_eq!(eng.answer_range(1, 3), all[1..4.min(all.len())]);
        assert!(all.contains(&eng.sample(3).unwrap()));
    }

    #[test]
    fn malformed_batch_leaves_both_sides_untouched() {
        let (a, e) = small_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let mut eng: GeneralEnumEngine<Nat> =
            EnumQueryEngine::build_dynamic(&a, &phi, &CompileOptions::default()).unwrap();
        let before = eng.count();
        // valid removal first, then an out-of-domain insert: without
        // up-front validation the removal would land (or the bad tuple
        // would panic mid-batch) before the error surfaces.
        let batch = [
            TupleUpdate::remove(e, &[0, 1]),
            TupleUpdate::insert(e, &[0, 99]),
        ];
        assert_eq!(eng.apply_batch(&batch), Err(UpdateError::MalformedTuple));
        assert_eq!(eng.count(), before, "enumeration side unchanged");
        assert_eq!(eng.query(&[0, 1]), Nat(1), "point side unchanged");
        // arity-mismatched tuple: same contract, no panic
        let batch = [TupleUpdate::insert(e, &[0, 1, 2, 3, 4, 5])];
        assert_eq!(eng.apply_batch(&batch), Err(UpdateError::MalformedTuple));
        assert_eq!(eng.count(), before);
    }

    #[test]
    fn static_engine_rejects_updates() {
        let (a, e) = small_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let mut eng: GeneralEnumEngine<Nat> =
            EnumQueryEngine::build(&a, &phi, &CompileOptions::default()).unwrap();
        assert_eq!(
            eng.apply_update(&TupleUpdate::remove(e, &[0, 1])),
            Err(UpdateError::StaticIndex)
        );
    }
}
