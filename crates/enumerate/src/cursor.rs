//! Bidirectional constant-delay cursors over gate values in the free
//! semiring (Lemma 23 for permanent gates).

use crate::machine::{CountState, EnumMachine, PermSupport};
use agq_circuit::{ConstRef, GateDef, GateId};
use agq_perm::support::sdr_exists_rows;
use agq_semiring::{Gen, Nat};

/// Add gates at or above this fan-in get a cached prefix-sum table for
/// rank descent (below it a linear scan is cheaper than the cache).
const ADD_PREFIX_MIN: usize = 16;

/// A position within the formal sum computed by a gate. The cursor tree
/// mirrors the circuit unfolding: its size is bounded by the circuit
/// depth and the permanent row counts — query constants — so every
/// advance/retreat costs `O_f(1)`.
#[derive(Clone, Debug)]
pub enum Cursor {
    /// A summand of an input gate's value.
    Leaf {
        /// The input slot.
        slot: u32,
        /// Index into the slot's summand list.
        idx: usize,
    },
    /// The single summand `1` of a `Const(One)` gate.
    One,
    /// A summand of an addition gate: inside the `nz_idx`-th supported
    /// child.
    Add {
        /// The gate.
        gate: u32,
        /// Index into the gate's live supported-children list.
        nz_idx: usize,
        /// Cursor within that child.
        inner: Box<Cursor>,
    },
    /// A summand of a product: a pair of summands.
    Mul {
        /// Left child cursor.
        left: Box<Cursor>,
        /// Right child cursor.
        right: Box<Cursor>,
    },
    /// A summand of a permanent: an injective column choice per row plus
    /// a summand of each chosen entry (the Lemma 23 recursion).
    Perm {
        /// The gate.
        gate: u32,
        /// One choice per row, in row order.
        rows: Vec<PermRow>,
    },
}

/// One row's state inside a permanent cursor.
#[derive(Clone, Debug)]
pub struct PermRow {
    /// Support mask of the chosen column (its bucket in the pooled
    /// Lemma 39 structure).
    pub mask: u32,
    /// The chosen column index.
    pub col: u32,
    /// Cursor within the entry `M[row, col]`.
    pub entry: Cursor,
}

/// Bucket-count scratch for the Hall-condition viability checks: stack
/// storage for the common case (`2^k ≤ 64`), heap fallback above. Keeps
/// the per-candidate check allocation-free — the counts clone here was
/// the one allocation on the steady-state enumeration path.
struct CountScratch {
    stack: [i64; 64],
    heap: Vec<i64>,
}

impl CountScratch {
    fn new() -> Self {
        CountScratch {
            stack: [0; 64],
            heap: Vec::new(),
        }
    }

    /// A mutable copy of `counts`, reusing owned storage.
    fn load(&mut self, counts: &[i64]) -> &mut [i64] {
        if counts.len() <= 64 {
            let s = &mut self.stack[..counts.len()];
            s.copy_from_slice(counts);
            s
        } else {
            self.heap.clear();
            self.heap.extend_from_slice(counts);
            &mut self.heap
        }
    }
}

/// Direction of cursor construction.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    Fwd,
    Bwd,
}

impl EnumMachine {
    /// Cursor at the first summand of `gate`'s value, or `None` if zero.
    pub fn first(&self, gate: GateId) -> Option<Cursor> {
        self.boundary(gate, Dir::Fwd)
    }

    /// Cursor at the last summand of `gate`'s value, or `None` if zero.
    pub fn last(&self, gate: GateId) -> Option<Cursor> {
        self.boundary(gate, Dir::Bwd)
    }

    fn boundary(&self, gate: GateId, dir: Dir) -> Option<Cursor> {
        let gi = gate.0 as usize;
        if !self.support[gi] {
            return None;
        }
        Some(match &self.circuit().gates()[gi] {
            GateDef::Input(slot) => {
                let n = self.input(*slot).len();
                Cursor::Leaf {
                    slot: *slot,
                    idx: if dir == Dir::Fwd { 0 } else { n - 1 },
                }
            }
            GateDef::Const(ConstRef::One) => Cursor::One,
            GateDef::Const(_) => unreachable!("unsupported const"),
            GateDef::Add(children) => {
                let nz = self.add_nz(gate.0);
                let nz_idx = if dir == Dir::Fwd { 0 } else { nz.len() - 1 };
                let child = self.circuit().children(*children)[nz[nz_idx] as usize];
                Cursor::Add {
                    gate: gate.0,
                    nz_idx,
                    inner: Box::new(self.boundary(child, dir).expect("supported child")),
                }
            }
            GateDef::Mul(a, b) => Cursor::Mul {
                left: Box::new(self.boundary(*a, dir).expect("supported")),
                right: Box::new(self.boundary(*b, dir).expect("supported")),
            },
            GateDef::Perm { rows, .. } => {
                let k = *rows as usize;
                let mut excluded = Vec::with_capacity(k);
                let rows = self
                    .perm_build(gate.0, 0, &mut excluded, dir)
                    .expect("supported permanent");
                Cursor::Perm { gate: gate.0, rows }
            }
        })
    }

    /// Build rows `r..k` of a permanent cursor at the boundary in `dir`,
    /// given the exclusions of rows `< r`. Succeeds whenever Hall's
    /// condition holds for the remaining rows (the construction
    /// invariant).
    fn perm_build(
        &self,
        gate: u32,
        r: usize,
        excluded: &mut Vec<u32>,
        dir: Dir,
    ) -> Option<Vec<PermRow>> {
        let ps = self.perm_support(gate);
        let k = ps.k();
        if r == k {
            return Some(Vec::new());
        }
        let (mask, col) = self.candidate(&ps, r, excluded, None, dir)?;
        let entry = self.entry_gate(gate, r, col);
        let entry_cur = self.boundary(entry, dir).expect("entry supported");
        excluded.push(col);
        let rest = self.perm_build(gate, r + 1, excluded, dir);
        excluded.pop();
        let mut rows = vec![PermRow {
            mask,
            col,
            entry: entry_cur,
        }];
        rows.extend(rest?);
        Some(rows)
    }

    fn entry_gate(&self, gate: u32, row: usize, col: u32) -> GateId {
        match &self.circuit().gates()[gate as usize] {
            GateDef::Perm { rows, cols } => {
                self.circuit().children(*cols)[col as usize * (*rows as usize) + row]
            }
            _ => unreachable!("perm gate"),
        }
    }

    /// The first (or last) viable column for `row` given exclusions,
    /// strictly after (before) `after = (mask, col)` in bucket order
    /// (masks ascending, then bucket-list order).
    ///
    /// Viability (Lemma 39): the column's support mask contains `row`,
    /// and Hall's condition still holds for the later rows once this
    /// column and the exclusions are removed. Viability depends only on
    /// the mask, so whole mask buckets are accepted or skipped at once —
    /// `O_k(1)` total. Bucket membership is walked through the pooled
    /// linked lists; the count scratch is stack-allocated.
    fn candidate(
        &self,
        ps: &PermSupport<'_>,
        row: usize,
        excluded: &[u32],
        after: Option<(u32, u32)>,
        dir: Dir,
    ) -> Option<(u32, u32)> {
        let k = ps.k();
        let full = (1u32 << k) - 1;
        // remaining rows strictly after `row`
        let remaining = full & !((1u32 << (row + 1)) - 1);
        let counts = ps.counts();
        let mut scratch = CountScratch::new();
        let mut m = if dir == Dir::Fwd { 0u32 } else { full };
        loop {
            let skip = m & (1 << row) == 0
                || match after {
                    Some((am, _)) => (dir == Dir::Fwd && m < am) || (dir == Dir::Bwd && m > am),
                    None => false,
                };
            if !skip {
                // Starting column of this bucket's scan: after `after`
                // when resuming inside its bucket, else the boundary.
                let start = match (after, dir) {
                    (Some((am, ac)), Dir::Fwd) if am == m => ps.next(ac),
                    (Some((am, ac)), Dir::Bwd) if am == m => ps.prev(ac),
                    (_, Dir::Fwd) => ps.head(m),
                    (_, Dir::Bwd) => ps.tail(m),
                };
                if start.is_some() {
                    // Check viability of this mask once (counts minus
                    // exclusions minus one column of this mask).
                    let counts_mut = scratch.load(counts);
                    for &x in excluded {
                        counts_mut[ps.mask_of(x) as usize] -= 1;
                    }
                    counts_mut[m as usize] -= 1;
                    if sdr_exists_rows(k, counts_mut, remaining) {
                        let mut cur = start;
                        while let Some(col) = cur {
                            if !excluded.contains(&col) {
                                return Some((m, col));
                            }
                            cur = match dir {
                                Dir::Fwd => ps.next(col),
                                Dir::Bwd => ps.prev(col),
                            };
                        }
                    }
                }
            }
            match dir {
                Dir::Fwd => {
                    if m == full {
                        break;
                    }
                    m += 1;
                }
                Dir::Bwd => {
                    if m == 0 {
                        break;
                    }
                    m -= 1;
                }
            }
        }
        None
    }

    /// Step the cursor to the next summand; false when exhausted.
    pub fn advance(&self, cur: &mut Cursor) -> bool {
        self.step(cur, Dir::Fwd)
    }

    /// Step the cursor to the previous summand; false at the beginning.
    pub fn retreat(&self, cur: &mut Cursor) -> bool {
        self.step(cur, Dir::Bwd)
    }

    fn step(&self, cur: &mut Cursor, dir: Dir) -> bool {
        match cur {
            Cursor::Leaf { slot, idx } => {
                let n = self.input(*slot).len();
                match dir {
                    Dir::Fwd if *idx + 1 < n => {
                        *idx += 1;
                        true
                    }
                    Dir::Bwd if *idx > 0 => {
                        *idx -= 1;
                        true
                    }
                    _ => false,
                }
            }
            Cursor::One => false,
            Cursor::Add {
                gate,
                nz_idx,
                inner,
            } => {
                if self.step(inner, dir) {
                    return true;
                }
                let gi = *gate as usize;
                let nz = self.add_nz(*gate);
                let next = match dir {
                    Dir::Fwd => {
                        if *nz_idx + 1 >= nz.len() {
                            return false;
                        }
                        *nz_idx + 1
                    }
                    Dir::Bwd => {
                        if *nz_idx == 0 {
                            return false;
                        }
                        *nz_idx - 1
                    }
                };
                let children = match &self.circuit().gates()[gi] {
                    GateDef::Add(ch) => self.circuit().children(*ch),
                    _ => unreachable!(),
                };
                let child = children[nz[next] as usize];
                *nz_idx = next;
                **inner = self.boundary(child, dir).expect("supported child");
                true
            }
            Cursor::Mul { left, right } => {
                if self.step(right, dir) {
                    return true;
                }
                if self.step(left, dir) {
                    // reset the right component to its boundary; its gate
                    // is recoverable from the cursor by rebuilding from
                    // the left sibling's gate — instead we re-derive from
                    // the existing cursor (reset in place).
                    self.reset(right, dir);
                    return true;
                }
                false
            }
            Cursor::Perm { gate, rows } => {
                let mut excluded = Vec::with_capacity(rows.len());
                self.perm_step(*gate, rows, 0, &mut excluded, dir)
            }
        }
    }

    fn perm_step(
        &self,
        gate: u32,
        rows: &mut Vec<PermRow>,
        r: usize,
        excluded: &mut Vec<u32>,
        dir: Dir,
    ) -> bool {
        if r == rows.len() {
            return false;
        }
        // least significant first: deeper rows
        excluded.push(rows[r].col);
        if self.perm_step(gate, rows, r + 1, excluded, dir) {
            excluded.pop();
            return true;
        }
        excluded.pop();
        // then this row's entry summand
        if self.step(&mut rows[r].entry, dir) {
            excluded.push(rows[r].col);
            self.perm_reset_suffix(gate, rows, r + 1, excluded, dir);
            excluded.pop();
            return true;
        }
        // then this row's column choice
        let ps = self.perm_support(gate);
        if let Some((m, col)) =
            self.candidate(&ps, r, excluded, Some((rows[r].mask, rows[r].col)), dir)
        {
            let entry = self.entry_gate(gate, r, col);
            rows[r] = PermRow {
                mask: m,
                col,
                entry: self.boundary(entry, dir).expect("entry supported"),
            };
            excluded.push(col);
            self.perm_reset_suffix(gate, rows, r + 1, excluded, dir);
            excluded.pop();
            return true;
        }
        false
    }

    /// Reset rows `r1..` of a live permanent cursor to their boundary in
    /// `dir`, **in place** — the incremental form of
    /// [`Self::perm_build`]'s suffix rebuild. Column choices are
    /// re-derived (deeper rows may sit mid-enumeration on non-boundary
    /// columns), but rows whose boundary column matches their current one
    /// keep their `PermRow` and reset the entry cursor in place, so the
    /// common suffix-rebuild of a step allocates nothing. Succeeds by the
    /// construction invariant (Hall's condition holds for the remaining
    /// rows under the prefix exclusions).
    fn perm_reset_suffix(
        &self,
        gate: u32,
        rows: &mut [PermRow],
        r1: usize,
        excluded: &mut Vec<u32>,
        dir: Dir,
    ) {
        let k = rows.len();
        let ps = self.perm_support(gate);
        for (i, row) in rows.iter_mut().enumerate().skip(r1) {
            let (mask, col) = self
                .candidate(&ps, i, excluded, None, dir)
                .expect("invariant: suffix stays viable");
            if row.col == col {
                row.mask = mask;
                self.reset(&mut row.entry, dir);
            } else {
                let entry = self.entry_gate(gate, i, col);
                *row = PermRow {
                    mask,
                    col,
                    entry: self.boundary(entry, dir).expect("entry supported"),
                };
            }
            excluded.push(col);
        }
        excluded.truncate(excluded.len() - (k - r1));
    }

    /// Reset a cursor (of known shape) to its boundary in `dir`, reusing
    /// the gate information stored in the cursor itself.
    fn reset(&self, cur: &mut Cursor, dir: Dir) {
        match cur {
            Cursor::Leaf { slot, idx } => {
                *idx = if dir == Dir::Fwd {
                    0
                } else {
                    self.input(*slot).len() - 1
                };
            }
            Cursor::One => {}
            Cursor::Add {
                gate,
                nz_idx,
                inner,
            } => {
                let gi = *gate as usize;
                let nz = self.add_nz(*gate);
                *nz_idx = if dir == Dir::Fwd { 0 } else { nz.len() - 1 };
                let children = match &self.circuit().gates()[gi] {
                    GateDef::Add(ch) => self.circuit().children(*ch),
                    _ => unreachable!(),
                };
                let child = children[nz[*nz_idx] as usize];
                **inner = self.boundary(child, dir).expect("supported");
            }
            Cursor::Mul { left, right } => {
                self.reset(left, dir);
                self.reset(right, dir);
            }
            Cursor::Perm { gate, rows } => {
                let mut excluded = Vec::new();
                *rows = self
                    .perm_build(*gate, 0, &mut excluded, dir)
                    .expect("supported perm");
            }
        }
    }

    /// Append the generators of the cursor's current summand to `out`.
    pub fn collect(&self, cur: &Cursor, out: &mut Vec<Gen>) {
        match cur {
            Cursor::Leaf { slot, idx } => {
                out.extend_from_slice(&self.input(*slot)[*idx]);
            }
            Cursor::One => {}
            Cursor::Add { inner, .. } => self.collect(inner, out),
            Cursor::Mul { left, right } => {
                self.collect(left, out);
                self.collect(right, out);
            }
            Cursor::Perm { rows, .. } => {
                for row in rows {
                    self.collect(&row.entry, out);
                }
            }
        }
    }

    /// Cursor at the `k`-th summand (0-based, cursor order) of `gate`'s
    /// value, found by **rank descent** over the maintained subtree
    /// counts — no enumeration over preceding summands. `None` when
    /// `k ≥ count(gate)`.
    ///
    /// The descent mirrors the cursor's step order exactly, most
    /// significant first:
    ///
    /// * **Add** — children concatenate in live `nz` order; narrow
    ///   gates walk the prefix counts, wide gates binary-search the
    ///   cached prefix-sum table ([`CountState::add_prefix_for`]) so the
    ///   descent never scans a data-sized fan-in.
    /// * **Mul** — the right factor is least significant (`step` advances
    ///   it first), so `k = l·|right| + r` splits by div/mod.
    /// * **Perm** — per row, column blocks follow the bucket order of
    ///   [`EnumMachine::candidate`] (masks ascending, list order within a
    ///   bucket); a `(row, col)` block holds
    ///   `count(entry) · rest(row+1, excluded ∪ {col})` summands with the
    ///   entry index more significant than the deeper rows (Lemma 23's
    ///   recursion, counted). The rest counts are row-subset permanents
    ///   with the chosen columns zeroed, answered by the count
    ///   evaluator's [`agq_perm::SegTreePerm::peek_rows`].
    ///
    /// `visits` counts recursive gate descents — bounded by the circuit
    /// depth times the permanent row counts, independent of `k`.
    pub(crate) fn seek_gate(
        &self,
        st: &mut CountState,
        gate: GateId,
        k: u64,
        visits: &mut u64,
    ) -> Option<Cursor> {
        *visits += 1;
        let gi = gate.0 as usize;
        if !self.support[gi] {
            return None;
        }
        match &self.circuit().gates()[gi] {
            GateDef::Input(slot) => {
                let n = self.input(*slot).len() as u64;
                (k < n).then_some(Cursor::Leaf {
                    slot: *slot,
                    idx: k as usize,
                })
            }
            GateDef::Const(ConstRef::One) => (k == 0).then_some(Cursor::One),
            GateDef::Const(_) => unreachable!("unsupported const"),
            GateDef::Add(children) => {
                let nz = self.add_nz(gate.0);
                let kids = self.circuit().children(*children);
                let (nz_idx, rem) = if nz.len() >= ADD_PREFIX_MIN {
                    // data-sized fan-in: binary search the cached
                    // prefix-sum table instead of scanning
                    let prefix = st.add_prefix_for(gate.0, nz, kids);
                    let i = prefix.partition_point(|&c| c <= k);
                    if i == prefix.len() {
                        return None;
                    }
                    let before = if i == 0 { 0 } else { prefix[i - 1] };
                    (i, k - before)
                } else {
                    let mut k = k;
                    let mut found = None;
                    for (i, &pos) in nz.iter().enumerate() {
                        let c = st.eval().value(kids[pos as usize]).0;
                        if k < c {
                            found = Some((i, k));
                            break;
                        }
                        k -= c;
                    }
                    found?
                };
                let child = kids[nz[nz_idx] as usize];
                Some(Cursor::Add {
                    gate: gate.0,
                    nz_idx,
                    inner: Box::new(self.seek_gate(st, child, rem, visits)?),
                })
            }
            GateDef::Mul(a, b) => {
                let rc = st.eval().value(*b).0;
                if rc == 0 {
                    return None;
                }
                Some(Cursor::Mul {
                    left: Box::new(self.seek_gate(st, *a, k / rc, visits)?),
                    right: Box::new(self.seek_gate(st, *b, k % rc, visits)?),
                })
            }
            GateDef::Perm { .. } => {
                let mut excluded = Vec::new();
                let rows = self.perm_seek(st, gate.0, 0, &mut excluded, k, visits)?;
                Some(Cursor::Perm { gate: gate.0, rows })
            }
        }
    }

    /// Build rows `r..k` of a permanent cursor positioned at local rank
    /// `k` among the completions of the deeper rows, given the exclusions
    /// of rows `< r`. `None` when `k` exceeds the number of completions.
    fn perm_seek(
        &self,
        st: &mut CountState,
        gate: u32,
        r: usize,
        excluded: &mut Vec<u32>,
        k: u64,
        visits: &mut u64,
    ) -> Option<Vec<PermRow>> {
        let ps = self.perm_support(gate);
        let kk = ps.k();
        if r == kk {
            return (k == 0).then(Vec::new);
        }
        // Rows strictly after `r` (less significant); their completion
        // count under a fixed column prefix is the row-subset permanent
        // with the prefix columns zeroed.
        let deeper = ((1usize << kk) - 1) & !((1usize << (r + 1)) - 1);
        let full = (1u32 << kk) - 1;
        let mut k = k;
        // Rest counts by inclusion–exclusion instead of one segment-tree
        // query per candidate column: one `peek_table` walk yields
        // `Q[R] = perm_R(cols ∖ excluded)` for every deeper-row subset
        // `R`, and forcing the deeper rows to also avoid a candidate
        // column `c` is then O(2^d) ring arithmetic per column —
        //
        //   rest(c) = Σ_{S ⊆ D} (−1)^{|S|} · |S|! · Π_{ρ∈S} M[ρ,c] · Q[D∖S]
        //
        // (unrolling "at most one deeper row uses c": each ordered
        // sequence of distinct rows forced onto `c` is subtracted and
        // added back alternately, and a subset S arises from |S|!
        // orderings). All products wrap mod 2^64 with the count
        // semantics (crate docs): exact whenever the true total fits.
        let d_rows: Vec<usize> = ((r + 1)..kk).collect();
        let d = d_rows.len();
        let qtab: Vec<u64> = if deeper == 0 || d > 4 {
            Vec::new()
        } else {
            let patches: Vec<(usize, usize, Nat)> = excluded
                .iter()
                .flat_map(|&x| ((r + 1)..kk).map(move |row| (row, x as usize, Nat(0))))
                .collect();
            st.eval()
                .perm_maint(GateId(gate))
                .expect("count evaluator shares the circuit")
                .peek_table(&patches)
                .iter()
                .map(|v| v.0)
                .collect()
        };
        // Per-subset coefficient factorials for |S| ≤ 4 (kk ≤ 5).
        const FACT: [u64; 5] = [1, 1, 2, 6, 24];
        let mut patches: Vec<(usize, usize, Nat)> = Vec::new();
        let mut m = 0u32;
        loop {
            // Bucket order of `candidate`: masks ascending, list order
            // within a bucket. Non-viable blocks contribute 0 and fall
            // through arithmetically — no Hall check needed.
            if m & (1 << r) != 0 {
                let mut cur = ps.head(m);
                while let Some(col) = cur {
                    if !excluded.contains(&col) {
                        let entry = self.entry_gate(gate, r, col);
                        let cnt = st.eval().value(entry).0;
                        let rest = if deeper == 0 {
                            u64::from(cnt > 0)
                        } else if cnt == 0 {
                            0
                        } else if d <= 4 {
                            let mut mv = [0u64; 4];
                            for (i, &row) in d_rows.iter().enumerate() {
                                mv[i] = st.eval().value(self.entry_gate(gate, row, col)).0;
                            }
                            // prod[s] = Π_{i∈s} mv[i], rowmask[s] = the
                            // actual row mask of subset s, by lowest bit
                            let mut prod = [0u64; 16];
                            let mut rowmask = [0usize; 16];
                            prod[0] = 1;
                            let mut rest = 0u64;
                            for s in 0..1usize << d {
                                if s > 0 {
                                    let i = s.trailing_zeros() as usize;
                                    prod[s] = prod[s & (s - 1)].wrapping_mul(mv[i]);
                                    rowmask[s] = rowmask[s & (s - 1)] | (1 << d_rows[i]);
                                }
                                let bits = s.count_ones() as usize;
                                let term = prod[s]
                                    .wrapping_mul(FACT[bits])
                                    .wrapping_mul(qtab[deeper & !rowmask[s]]);
                                rest = if bits.is_multiple_of(2) {
                                    rest.wrapping_add(term)
                                } else {
                                    rest.wrapping_sub(term)
                                };
                            }
                            rest
                        } else {
                            // Fallback for perm gates wider than the
                            // subset tables (kk > 5 — not produced by
                            // the current compiler): one query-by-peek
                            // per column.
                            patches.clear();
                            for &x in excluded.iter().chain(std::iter::once(&col)) {
                                for row in (r + 1)..kk {
                                    patches.push((row, x as usize, Nat(0)));
                                }
                            }
                            st.eval()
                                .perm_maint(GateId(gate))
                                .expect("count evaluator shares the circuit")
                                .peek_rows(&patches, deeper)
                                .0
                        };
                        // Overflow wraps with the count semantics (crate
                        // docs); exact whenever the total fits in u64.
                        let block = cnt.wrapping_mul(rest);
                        if k < block {
                            let entry_cur = self.seek_gate(st, entry, k / rest, visits)?;
                            excluded.push(col);
                            let tail = self.perm_seek(st, gate, r + 1, excluded, k % rest, visits);
                            excluded.pop();
                            let mut rows = vec![PermRow {
                                mask: m,
                                col,
                                entry: entry_cur,
                            }];
                            rows.extend(tail?);
                            return Some(rows);
                        }
                        k -= block;
                    }
                    cur = ps.next(col);
                }
            }
            if m == full {
                break;
            }
            m += 1;
        }
        None
    }

    /// A bidirectional iterator over the output gate's summands.
    pub fn summands(&self) -> SummandIter<'_> {
        SummandIter {
            machine: self,
            version: self.version,
            state: IterState::Before,
        }
    }
}

enum IterState {
    Before,
    At(Cursor),
    After,
}

/// Bidirectional iterator over the summands of the output gate — the
/// paper's constant-access-time iterator (`next`, `previous`, `current`).
///
/// Outstanding iterators are invalidated by updates; using one afterwards
/// panics (checked against the machine's version counter).
pub struct SummandIter<'m> {
    machine: &'m EnumMachine,
    version: u64,
    state: IterState,
}

impl SummandIter<'_> {
    fn check(&self) {
        assert_eq!(
            self.version, self.machine.version,
            "iterator invalidated by an update"
        );
    }

    /// Advance and return the new current summand (None past the end).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Vec<Gen>> {
        self.check();
        let out = self.machine.circuit().output();
        let state = std::mem::replace(&mut self.state, IterState::After);
        self.state = match state {
            IterState::Before => match self.machine.first(out) {
                Some(c) => IterState::At(c),
                None => IterState::After,
            },
            IterState::At(mut c) => {
                if self.machine.advance(&mut c) {
                    IterState::At(c)
                } else {
                    IterState::After
                }
            }
            IterState::After => IterState::After,
        };
        self.current()
    }

    /// Step back and return the new current summand (None before the
    /// start).
    pub fn prev(&mut self) -> Option<Vec<Gen>> {
        self.check();
        let out = self.machine.circuit().output();
        let state = std::mem::replace(&mut self.state, IterState::Before);
        self.state = match state {
            IterState::After => match self.machine.last(out) {
                Some(c) => IterState::At(c),
                None => IterState::Before,
            },
            IterState::At(mut c) => {
                if self.machine.retreat(&mut c) {
                    IterState::At(c)
                } else {
                    IterState::Before
                }
            }
            IterState::Before => IterState::Before,
        };
        self.current()
    }

    /// Position the iterator directly on the `k`-th summand (0-based,
    /// cursor order) by rank descent — `O(depth × perm rows)` gate
    /// visits, no enumeration — and return it. Out-of-range `k` returns
    /// `None` with the iterator positioned past the end. The iterator
    /// remains bidirectional from the sought position.
    pub fn seek(&mut self, k: u64) -> Option<Vec<Gen>> {
        self.seek_counting(k).0
    }

    /// [`SummandIter::seek`] returning the number of recursive gate
    /// descents performed (instrumentation for the rank-access bound).
    pub fn seek_counting(&mut self, k: u64) -> (Option<Vec<Gen>>, u64) {
        self.check();
        let out = self.machine.circuit().output();
        let mut visits = 0u64;
        let cursor = {
            let mut guard = self.machine.counts();
            self.machine.seek_gate(&mut guard, out, k, &mut visits)
        };
        self.state = match cursor {
            Some(c) => IterState::At(c),
            None => IterState::After,
        };
        (self.current(), visits)
    }

    /// The current summand, if positioned on one.
    pub fn current(&self) -> Option<Vec<Gen>> {
        self.check();
        match &self.state {
            IterState::At(c) => {
                let mut out = Vec::new();
                self.machine.collect(c, &mut out);
                Some(out)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::InputVal;
    use agq_circuit::CircuitBuilder;
    use agq_semiring::{Monomial, Poly, Semiring};
    use std::sync::Arc;

    /// Oracle: evaluate the circuit in the free semiring eagerly and
    /// compare the multiset of monomials with what the cursor emits.
    fn assert_enumerates_exactly(machine: &EnumMachine) {
        let polys: Vec<Poly> = (0..machine.circuit().num_slots())
            .map(|s| {
                let mut p = Poly::zero();
                for mono in machine.input(s as u32) {
                    p = p.add(&Poly::monomial(Monomial::from_gens(mono.clone()), 1));
                }
                p
            })
            .collect();
        let expect = machine.circuit().eval(&polys, &[]);
        // collect from the iterator
        let mut got: Vec<Monomial> = Vec::new();
        let mut it = machine.summands();
        while let Some(m) = it.next() {
            got.push(Monomial::from_gens(m));
        }
        // multiset compare
        let mut expect_list: Vec<Monomial> = Vec::new();
        for (m, c) in expect.terms() {
            for _ in 0..c {
                expect_list.push(m.clone());
            }
        }
        got.sort();
        expect_list.sort();
        assert_eq!(got, expect_list, "cursor must enumerate the exact sum");
        // bidirectionality: walking backward yields the reverse
        let mut back: Vec<Monomial> = Vec::new();
        let mut it = machine.summands();
        while it.next().is_some() {}
        while let Some(m) = it.prev() {
            back.push(Monomial::from_gens(m));
        }
        back.reverse();
        let mut fwd: Vec<Monomial> = Vec::new();
        let mut it = machine.summands();
        while let Some(m) = it.next() {
            fwd.push(Monomial::from_gens(m));
        }
        assert_eq!(fwd, back, "backward walk must mirror forward walk");
        assert_seek_matches_walk(machine);
    }

    /// Oracle for rank access: `seek(k)` must land exactly where `k`
    /// forward steps land, stay bidirectional from there, and the
    /// maintained count must match the eager one.
    fn assert_seek_matches_walk(machine: &EnumMachine) {
        let mut fwd: Vec<Vec<Gen>> = Vec::new();
        let mut it = machine.summands();
        while let Some(m) = it.next() {
            fwd.push(m);
        }
        assert_eq!(machine.summand_count(), fwd.len() as u64);
        assert_eq!(machine.count_summands(), fwd.len() as u64);
        for k in 0..fwd.len() {
            let mut it = machine.summands();
            let (got, _visits) = it.seek_counting(k as u64);
            assert_eq!(got.as_ref(), Some(&fwd[k]), "seek({k})");
            match fwd.get(k + 1) {
                Some(next) => assert_eq!(it.next().as_ref(), Some(next), "next after seek({k})"),
                None => assert_eq!(it.next(), None, "exhausted after seek({k})"),
            }
            if k > 0 {
                let mut it = machine.summands();
                it.seek(k as u64);
                assert_eq!(
                    it.prev().as_ref(),
                    Some(&fwd[k - 1]),
                    "prev after seek({k})"
                );
            }
        }
        let mut it = machine.summands();
        assert_eq!(it.seek(fwd.len() as u64), None, "out-of-range seek");
        assert_eq!(it.next(), None, "positioned past the end");
    }

    fn gens(ids: &[u64]) -> InputVal {
        ids.iter().map(|&i| vec![Gen(i)]).collect()
    }

    #[test]
    fn add_and_mul_enumeration() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let y = b.input(1);
        let z = b.input(2);
        let s = b.add(&[x, y]);
        let m = b.mul(s, z);
        let c = Arc::new(b.finish(m));
        let machine = EnumMachine::new(c, vec![gens(&[1, 2]), gens(&[3]), gens(&[10, 20])]);
        assert_enumerates_exactly(&machine);
    }

    #[test]
    fn two_row_permanent_enumeration() {
        let mut b = CircuitBuilder::new();
        let inputs: Vec<_> = (0..6).map(|i| b.input(i)).collect();
        let p = b.perm_flat(2, inputs.clone());
        let c = Arc::new(b.finish(p));
        let machine = EnumMachine::new(c, (0..6).map(|i| gens(&[i as u64 + 1])).collect());
        assert_enumerates_exactly(&machine);
    }

    #[test]
    fn permanent_with_zero_entries() {
        let mut b = CircuitBuilder::new();
        let inputs: Vec<_> = (0..6).map(|i| b.input(i)).collect();
        let p = b.perm_flat(2, inputs.clone());
        let c = Arc::new(b.finish(p));
        // column 1 fully zero; column 0 row 1 zero
        let vals = vec![gens(&[1]), vec![], vec![], vec![], gens(&[5]), gens(&[6])];
        let machine = EnumMachine::new(c, vals);
        assert_enumerates_exactly(&machine);
    }

    #[test]
    fn three_row_permanent_with_multi_summand_entries() {
        let mut b = CircuitBuilder::new();
        let inputs: Vec<_> = (0..12).map(|i| b.input(i)).collect();
        let p = b.perm_flat(3, inputs.clone());
        let c = Arc::new(b.finish(p));
        let mut vals: Vec<InputVal> = Vec::new();
        for i in 0..12u64 {
            if i % 5 == 0 {
                vals.push(vec![]);
            } else if i % 3 == 0 {
                vals.push(gens(&[i, 100 + i]));
            } else {
                vals.push(gens(&[i]));
            }
        }
        let machine = EnumMachine::new(c, vals);
        assert_enumerates_exactly(&machine);
    }

    /// 4- and 5-row permanents drive the deepest inclusion–exclusion
    /// rest counts of rank descent (subset coefficients 3! and 4!),
    /// which smaller matrices never reach. Entry counts mix 0, 1, and
    /// many so the subset terms carry genuinely different weights.
    #[test]
    fn wide_permanent_rank_descent() {
        for rows in [4usize, 5] {
            let cols = rows + 1;
            let mut b = CircuitBuilder::new();
            let inputs: Vec<_> = (0..rows * cols).map(|i| b.input(i as u32)).collect();
            let p = b.perm_flat(rows, inputs.clone());
            let c = Arc::new(b.finish(p));
            let mut vals: Vec<InputVal> = Vec::new();
            for i in 0..(rows * cols) as u64 {
                if i % 7 == 0 {
                    vals.push(vec![]);
                } else if i % 3 == 0 {
                    vals.push(gens(&[i, 100 + i, 200 + i]));
                } else if i % 3 == 1 {
                    vals.push(gens(&[i, 100 + i]));
                } else {
                    vals.push(gens(&[i]));
                }
            }
            let machine = EnumMachine::new(c, vals);
            assert_enumerates_exactly(&machine);
        }
    }

    #[test]
    fn nested_perm_inside_perm_via_mul() {
        // perm2 of columns whose entries are products and sums
        let mut b = CircuitBuilder::new();
        let x: Vec<_> = (0..4).map(|i| b.input(i)).collect();
        let s = b.add(&[x[0], x[1]]);
        let m = b.mul(x[2], x[3]);
        let inner = b.perm_flat(1, vec![s, m]); // 1-row perm = sum
        let p = b.perm_flat(2, vec![x[0], inner, x[3], s]);
        let c = Arc::new(b.finish(p));
        let machine = EnumMachine::new(
            c,
            vec![gens(&[1, 2]), gens(&[3]), gens(&[4]), gens(&[5, 6])],
        );
        assert_enumerates_exactly(&machine);
    }

    #[test]
    fn enumeration_after_updates() {
        let mut b = CircuitBuilder::new();
        let inputs: Vec<_> = (0..6).map(|i| b.input(i)).collect();
        let p = b.perm_flat(2, inputs.clone());
        let c = Arc::new(b.finish(p));
        let mut machine = EnumMachine::new(c, (0..6).map(|i| gens(&[i as u64 + 1])).collect());
        assert_enumerates_exactly(&machine);
        machine.set_input(2, vec![]);
        machine.set_input(5, vec![]);
        assert_enumerates_exactly(&machine);
        machine.set_input(2, gens(&[42, 43]));
        assert_enumerates_exactly(&machine);
    }

    #[test]
    #[should_panic(expected = "invalidated")]
    fn stale_iterator_panics() {
        let mut b = CircuitBuilder::new();
        let x = b.input(0);
        let c = Arc::new(b.finish(x));
        let mut machine = EnumMachine::new(c, vec![gens(&[1])]);
        let mut it = machine.summands();
        let _ = it.next();
        // simulate: version bump via update requires &mut — force a
        // second machine reference through unsafe-free means: drop the
        // iterator's borrow by transmuting lifetimes is impossible, so
        // test the version check directly.
        let it_version_probe = {
            let v = machine.version;
            drop(it);
            machine.set_input(0, vec![]);
            v
        };
        let it2 = SummandIter {
            machine: &machine,
            version: it_version_probe,
            state: IterState::Before,
        };
        let _ = it2.current();
    }
}
