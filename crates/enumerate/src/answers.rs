//! Result (D): constant-delay enumeration of first-order query answers,
//! dynamic under Gaifman-preserving updates (Theorem 24).
//!
//! Following Section 6 of the paper: for `φ(x₁…x_k)`, build the closed
//! weighted expression `f = Σ_x̄ [φ] · w₁(x₁)⋯w_k(x_k)` where `w_i(a)`
//! is the fresh generator `e^i_a` of the free semiring. Then `f_A`'s
//! formal sum has exactly one summand `e¹_{a₁}⋯e^k_{a_k}` per answer
//! `(a₁…a_k)`, and the circuit enumerator of [`crate::machine`] yields
//! them with constant delay and no duplicates. In dynamic mode the
//! relations are compiled as 0/1 inputs (Lemma 40's `v±_R` weights), so
//! tuple insertions/removals that keep the Gaifman graph intact are O(1)
//! maintenance.

use crate::cursor::SummandIter;
use crate::machine::{EnumMachine, InputVal};
use agq_core::{
    compile, eliminate_quantifiers, CompileError, CompileOptions, SlotKey, TupleUpdate,
};
use agq_logic::{normalize, Expr, Formula};
use agq_semiring::{Gen, Nat};
use agq_structure::{Elem, RelId, Signature, Structure, Tuple, WeightId};
use std::sync::Arc;

/// The positive/negative indicator slots compiled for a tuple (either
/// may be absent).
type SlotPair = (Option<u32>, Option<u32>);

/// Errors raised by answer-index updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The tuple's elements are not a clique of the (compile-time)
    /// Gaifman graph — the update is not Gaifman-preserving.
    NotGaifmanPreserving,
    /// The index was built statically (`dynamic = false`).
    StaticIndex,
    /// The tuple is malformed for the indexed database: unknown
    /// relation, wrong arity, or an element outside the domain.
    MalformedTuple,
    /// The batch could not be journaled to the attached write-ahead log
    /// within the engine's durability policy. Under fail-stop the batch
    /// was **rejected** — nothing was applied and the LSN did not
    /// advance; only a fail-open engine applies past this error (and
    /// reports itself `wal_degraded` instead of raising it).
    Wal(String),
    /// The update routes to a quarantined shard: it was rejected in full
    /// (batches are all-or-nothing across shards). Restore the shard
    /// first, then retry.
    ShardUnavailable {
        /// The quarantined shard the update routes to.
        shard: usize,
    },
    /// A shard worker panicked while applying this (already journaled)
    /// batch. The named shards are now quarantined; every other shard
    /// applied its part and keeps serving. Replaying the WAL through a
    /// shard restore completes the partial application.
    ShardPanicked {
        /// The shards quarantined by the panic, ascending.
        shards: Vec<usize>,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::NotGaifmanPreserving => {
                write!(f, "update does not preserve the Gaifman graph")
            }
            UpdateError::StaticIndex => write!(f, "index was built without dynamic support"),
            UpdateError::MalformedTuple => {
                write!(f, "tuple has wrong arity or an out-of-domain element")
            }
            UpdateError::Wal(e) => {
                write!(f, "batch could not be journaled to the WAL: {e}")
            }
            UpdateError::ShardUnavailable { shard } => {
                write!(f, "update routes to quarantined shard {shard}")
            }
            UpdateError::ShardPanicked { shards } => {
                write!(
                    f,
                    "shard worker panicked applying the batch; quarantined {shards:?}"
                )
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// A preprocessed first-order query ready for constant-delay answer
/// enumeration (and constant-time maintenance in dynamic mode).
///
/// The index follows the plan/state split of [`EnumMachine`]: the
/// compiled circuit, its [`agq_core::SlotRegistry`], and the generator
/// weight symbols are immutable and shared behind `Arc`s, while the
/// machine state (input summand lists, support shadow) is per-index.
/// [`AnswerIndex::shard_filtered`] instantiates a sibling state over the
/// same plan whose generator weights are restricted to one set of domain
/// elements — the per-shard answer indexes of the sharded engine.
pub struct AnswerIndex {
    machine: EnumMachine,
    slots: Arc<agq_core::SlotRegistry>,
    arity: usize,
    dynamic: bool,
    /// Generator weight symbols, one per free-variable position.
    gen_weights: Arc<Vec<WeightId>>,
    /// The *original* signature (no generator weights) — relation
    /// arities for up-front update validation.
    sig: Arc<Signature>,
    /// Domain size of the indexed structure, for the same validation.
    domain_size: usize,
}

impl AnswerIndex {
    /// Preprocess `φ` over `a` in time `O_φ(|A|)` for enumeration only
    /// (quantifiers allowed via guarded elimination).
    pub fn build(
        a: &Structure,
        phi: &Formula,
        opts: &CompileOptions,
    ) -> Result<Self, CompileError> {
        Self::build_inner(a, phi, opts, false)
    }

    /// Preprocess `φ` for enumeration **and** Gaifman-preserving updates
    /// (Theorem 24's dynamic form). Requires a quantifier-free `φ` — the
    /// guarded elimination materializes static predicates which updates
    /// would invalidate.
    pub fn build_dynamic(
        a: &Structure,
        phi: &Formula,
        opts: &CompileOptions,
    ) -> Result<Self, CompileError> {
        if !phi.is_quantifier_free() {
            return Err(CompileError::UnsupportedQuantifier {
                formula: format!("{phi:?} (dynamic indexes require quantifier-free φ)"),
            });
        }
        Self::build_inner(a, phi, opts, true)
    }

    fn build_inner(
        a: &Structure,
        phi: &Formula,
        opts: &CompileOptions,
        dynamic: bool,
    ) -> Result<Self, CompileError> {
        let free = phi.free_vars();
        let arity = free.len();

        // Extend the signature with one generator weight per position.
        let mut sig = (**a.signature()).clone();
        let gen_weights: Vec<WeightId> = (0..arity)
            .map(|i| sig.add_weight(&format!("__gen{i}"), 1))
            .collect();
        let a2 = copy_structure(a, Arc::new(sig));

        // f = Σ_x̄ [φ] · Π w_i(x_i)
        let mut factors: Vec<Expr<Nat>> = vec![Expr::Bracket(phi.clone())];
        for (i, v) in free.iter().enumerate() {
            factors.push(Expr::Weight(gen_weights[i], vec![*v]));
        }
        let expr = Expr::Mul(factors).sum_over(free.iter().copied());

        let mut copts = opts.clone();
        copts.dynamic_atoms = dynamic;
        let (expr, a3) = eliminate_quantifiers(&expr, &a2, &copts)?;
        let nf = normalize(&expr)?;
        let compiled = compile(&a3, &nf, &copts)?;

        // Input values in the free semiring.
        let values: Vec<InputVal> = compiled
            .slots
            .iter()
            .map(|(_, key)| match key {
                SlotKey::Weight(w, t) => {
                    // generator weights: e^i_a; any other weight would be
                    // a bug in expression construction
                    let pos = gen_weights
                        .iter()
                        .position(|g| *g == w)
                        .expect("only generator weights appear");
                    vec![vec![Gen::pack(pos as u32, t.as_slice()[0])]]
                }
                SlotKey::AtomPos(r, t) => bool_val(a3.holds(r, t.as_slice())),
                SlotKey::AtomNeg(r, t) => bool_val(!a3.holds(r, t.as_slice())),
                SlotKey::FreeVar(..) => unreachable!("expression is closed"),
            })
            .collect();

        let machine = EnumMachine::new(compiled.circuit.clone(), values);
        Ok(AnswerIndex {
            machine,
            slots: Arc::new(compiled.slots),
            arity,
            dynamic,
            gen_weights: Arc::new(gen_weights),
            sig: a.signature().clone(),
            domain_size: a.domain_size(),
        })
    }

    /// Instantiate a sibling index over the **same shared plan**, keeping
    /// only the answers whose elements all satisfy `keep`: generator
    /// weight slots `e^i_a` with `!keep(a)` are zeroed, which kills every
    /// summand (answer) mentioning such an element, while atom-indicator
    /// slots copy this index's current state. This is the shard
    /// constructor of the sharded engine — each Gaifman shard keeps the
    /// answers of its own components and absorbs only its own updates.
    ///
    /// Cost: one bottom-up support pass (no compilation, no adjacency
    /// rebuild).
    pub fn shard_filtered(&self, mut keep: impl FnMut(Elem) -> bool) -> AnswerIndex {
        let values: Vec<InputVal> = self
            .slots
            .iter()
            .map(|(slot, key)| match key {
                SlotKey::Weight(w, t) if self.gen_weights.contains(&w) => {
                    if keep(t.as_slice()[0]) {
                        self.machine.input(slot).clone()
                    } else {
                        Vec::new()
                    }
                }
                _ => self.machine.input(slot).clone(),
            })
            .collect();
        AnswerIndex {
            machine: EnumMachine::from_plan(self.machine.plan().clone(), values),
            slots: self.slots.clone(),
            arity: self.arity,
            dynamic: self.dynamic,
            gen_weights: self.gen_weights.clone(),
            sig: self.sig.clone(),
            domain_size: self.domain_size,
        }
    }

    /// Reassemble an index from its saved parts — the restore half of
    /// snapshot/restore (`agq-persist`). The `machine` must have been
    /// rebuilt over this query's [`crate::machine::EnumPlan`] (e.g. via
    /// [`EnumMachine::from_plan`] on saved input values); the remaining
    /// arguments are exactly what the corresponding accessors
    /// ([`slot_registry`](Self::slot_registry), [`arity`](Self::arity),
    /// [`is_dynamic`](Self::is_dynamic),
    /// [`generator_weights`](Self::generator_weights),
    /// [`signature`](Self::signature),
    /// [`domain_size`](Self::domain_size)) exposed at save time.
    pub fn from_saved_parts(
        machine: EnumMachine,
        slots: Arc<agq_core::SlotRegistry>,
        arity: usize,
        dynamic: bool,
        gen_weights: Arc<Vec<WeightId>>,
        sig: Arc<Signature>,
        domain_size: usize,
    ) -> AnswerIndex {
        AnswerIndex {
            machine,
            slots,
            arity,
            dynamic,
            gen_weights,
            sig,
            domain_size,
        }
    }

    /// The shared slot registry of the compiled enumeration circuit.
    pub fn slot_registry(&self) -> &Arc<agq_core::SlotRegistry> {
        &self.slots
    }

    /// The original signature of the indexed structure (no generator
    /// weights).
    pub fn signature(&self) -> &Arc<Signature> {
        &self.sig
    }

    /// Domain size of the indexed structure.
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Whether the index was built with dynamic-update support.
    pub fn is_dynamic(&self) -> bool {
        self.dynamic
    }

    /// The generator weight symbols behind an `Arc`, for sibling-state
    /// constructors.
    pub fn generator_weights_arc(&self) -> &Arc<Vec<WeightId>> {
        &self.gen_weights
    }

    /// Answer-tuple arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of answers, from the incrementally maintained per-gate
    /// summand counts: `O_φ(|A|)` the first time (one ℕ evaluation of
    /// the circuit), then `O_φ(pending updates)` — the same counts that
    /// back [`AnswerIndex::answer`]. Counts wrap at `2^64` (see the
    /// overflow policy in the crate docs).
    pub fn count(&self) -> u64 {
        self.machine.summand_count()
    }

    /// Direct access: the `k`-th answer (0-based) of the enumeration
    /// order of [`AnswerIndex::iter`], **without** enumerating the
    /// preceding answers — `None` iff `k >= count()`.
    ///
    /// Cost is `O(depth × perm rows)` gate visits: a single root-to-leaf
    /// rank descent over the maintained subtree counts (`Add`: prefix
    /// scan of live children; `Mul`: div/mod split; `Perm`: per-row
    /// column-choice blocks sized by submatrix permanents), independent
    /// of `k` and of the answer count.
    pub fn answer(&self, k: u64) -> Option<Vec<Elem>> {
        self.iter().seek(k)
    }

    /// [`AnswerIndex::answer`] plus the number of gate visits the rank
    /// descent performed (instrumentation for the complexity contract).
    pub fn answer_counting(&self, k: u64) -> (Option<Vec<Elem>>, u64) {
        self.iter().seek_counting(k)
    }

    /// The answers of ranks `k, k+1, …, k+len-1` (clipped at the end of
    /// the answer set): one rank descent to seek, then a constant-delay
    /// cursor walk — pagination without enumerating ranks `< k`.
    pub fn answer_range(&self, k: u64, len: usize) -> Vec<Vec<Elem>> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let mut it = self.iter();
        if let Some(first) = it.seek(k) {
            out.push(first);
            while out.len() < len {
                match it.next() {
                    Some(t) => out.push(t),
                    None => break,
                }
            }
        }
        out
    }

    /// A uniformly random answer derived from `rng_seed` (deterministic
    /// per seed), or `None` if the answer set is empty. One rank descent
    /// — no enumeration, no rejection loop.
    pub fn sample(&self, rng_seed: u64) -> Option<Vec<Elem>> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        // splitmix64 the seed, then an unbiased-enough multiply-shift
        // reduction onto [0, n).
        let k = ((splitmix64(rng_seed) as u128 * n as u128) >> 64) as u64;
        self.answer(k)
    }

    /// Whether at least one answer exists — `O_φ(1)` from the support
    /// shadow.
    pub fn is_nonempty(&self) -> bool {
        self.machine.output_supported()
    }

    /// The underlying enumeration machine (for instrumentation).
    pub fn machine(&self) -> &EnumMachine {
        &self.machine
    }

    /// Invariant verification for recovery and quarantine-restore paths:
    /// [`EnumMachine::self_check`] (support shadow, add-support
    /// prefixes, perm-pool bucket links — all against the plan) plus
    /// slot/count consistency — the incrementally maintained summand
    /// count must agree with a fresh ℕ evaluation of the circuit over
    /// the current inputs. Linear time; not for the serving path.
    pub fn self_check(&self) -> Result<(), String> {
        self.machine.self_check()?;
        let incremental = self.machine.summand_count();
        let fresh = self.machine.count_summands();
        if incremental != fresh {
            return Err(format!(
                "count drift: incremental evaluator says {incremental}, fresh ℕ evaluation {fresh}"
            ));
        }
        Ok(())
    }

    /// Constant-delay, duplicate-free, bidirectional iterator over the
    /// answers.
    pub fn iter(&self) -> AnswerIter<'_> {
        AnswerIter {
            inner: self.machine.summands(),
            arity: self.arity,
        }
    }

    /// Dynamic mode: set membership of `tuple` in relation `r`.
    ///
    /// Constant time, allocation-free (the indicator slots toggle in
    /// place). Fails if the index is static or the tuple is not a clique
    /// of the compile-time Gaifman graph (insertions only; removing a
    /// never-representable tuple is a no-op). Net no-ops — membership
    /// already at the target — short-circuit without invalidating
    /// outstanding iterators. This is the batch path
    /// ([`AnswerIndex::apply_batch`]) at size one.
    pub fn set_tuple(
        &mut self,
        r: RelId,
        tuple: &[Elem],
        present: bool,
    ) -> Result<(), UpdateError> {
        let mut flips: [(u32, bool); 2] = [(0, false); 2];
        let n = match self.stage_tuple(r, tuple, present)? {
            Some(slots) => stage_flips(&self.machine, slots, present, &mut flips),
            None => 0,
        };
        if n > 0 {
            self.machine.set_input_bools(&flips[..n]);
        }
        Ok(())
    }

    /// Resolve the indicator slots of `(r, tuple)`, validating the update
    /// without mutating anything: `Ok(None)` is the removing-a-never-
    /// representable-tuple no-op.
    fn stage_tuple(
        &self,
        r: RelId,
        tuple: &[Elem],
        present: bool,
    ) -> Result<Option<SlotPair>, UpdateError> {
        if !self.dynamic {
            return Err(UpdateError::StaticIndex);
        }
        if (r.0 as usize) >= self.sig.num_relations()
            || tuple.len() != self.sig.relation_arity(r)
            || tuple.iter().any(|&e| (e as usize) >= self.domain_size)
        {
            return Err(UpdateError::MalformedTuple);
        }
        let t = Tuple::new(tuple);
        let pos = self.slots.lookup(&SlotKey::AtomPos(r, t));
        let neg = self.slots.lookup(&SlotKey::AtomNeg(r, t));
        if pos.is_none() && neg.is_none() {
            // The compiler never materialized this atom: either the tuple
            // is not a clique (a true Gaifman violation when inserting) or
            // the atom provably cannot influence any answer (safe no-op
            // when removing). Reject insertions conservatively.
            if present {
                return Err(UpdateError::NotGaifmanPreserving);
            }
            return Ok(None);
        }
        Ok(Some((pos, neg)))
    }

    /// Apply one database update *incrementally*: the support shadow is
    /// patched along the (query-bounded) affected cone — `O_φ(1)` — and
    /// the index immediately enumerates the post-update answers, no
    /// rebuild. Shares the update language of
    /// [`agq_core::QueryEngine::apply_update`].
    pub fn apply_update(&mut self, u: &TupleUpdate) -> Result<(), UpdateError> {
        self.set_tuple(u.rel, &u.tuple, u.present)
    }

    /// Validate one update without applying it — the same checks as
    /// [`AnswerIndex::apply_update`] (dynamic mode, Gaifman
    /// preservation). The verdict depends only on the shared compiled
    /// plan, so any index over the same query gives the same answer; the
    /// sharded engine uses this to pre-validate a whole batch before
    /// taking any write lock.
    pub(crate) fn validate_update(&self, u: &TupleUpdate) -> Result<(), UpdateError> {
        self.stage_tuple(u.rel, &u.tuple, u.present).map(|_| ())
    }

    /// Apply a whole batch of updates with **one** support sweep and one
    /// iterator invalidation: updates are coalesced per `(rel, tuple)`
    /// (the last one wins), net no-op flips are dropped against the
    /// machine's presence bitset, and the surviving indicator flips go
    /// through [`EnumMachine::set_input_bools`] in a single word-parallel
    /// pass.
    ///
    /// The whole batch is validated **before** anything is applied: on
    /// `Err` the index is unchanged (a batch is all-or-nothing, unlike a
    /// manual loop over [`AnswerIndex::apply_update`], which stops at the
    /// first offending update). Accepts `&[TupleUpdate]` or
    /// `&[&TupleUpdate]`; returns the number of coalesced updates that
    /// changed at least one indicator slot.
    pub fn apply_batch<U: std::borrow::Borrow<TupleUpdate>>(
        &mut self,
        updates: &[U],
    ) -> Result<usize, UpdateError> {
        let mut coalesced = Vec::with_capacity(updates.len());
        agq_core::coalesce_updates(updates, &mut coalesced);
        self.apply_batch_coalesced(&coalesced)
    }

    /// [`AnswerIndex::apply_batch`] for a batch that is **already
    /// coalesced** (at most one update per `(rel, tuple)`, e.g. by
    /// [`agq_core::coalesce_updates`]) — skips the dedup pass so a stack
    /// that coalesced at its top layer does not pay for it again here.
    /// Tuples duplicated within `updates` are staged against the same
    /// pre-batch state, so which duplicate wins is unspecified: callers
    /// must guarantee distinctness.
    pub fn apply_batch_coalesced(
        &mut self,
        updates: &[&TupleUpdate],
    ) -> Result<usize, UpdateError> {
        // Validate-and-resolve pass; nothing is mutated until it is
        // complete.
        let mut staged: Vec<(SlotPair, bool)> = Vec::new();
        for u in updates {
            if let Some(slots) = self.stage_tuple(u.rel, &u.tuple, u.present)? {
                staged.push((slots, u.present));
            }
        }
        let mut flips: Vec<(u32, bool)> = Vec::with_capacity(2 * staged.len());
        let mut applied = 0usize;
        for (slots, present) in staged {
            let mut pair: [(u32, bool); 2] = [(0, false); 2];
            let n = stage_flips(&self.machine, slots, present, &mut pair);
            if n > 0 {
                applied += 1;
                flips.extend_from_slice(&pair[..n]);
            }
        }
        if !flips.is_empty() {
            self.machine.set_input_bools(&flips);
        }
        Ok(applied)
    }

    /// The generator weight symbols (diagnostics).
    pub fn generator_weights(&self) -> &[WeightId] {
        &self.gen_weights
    }
}

/// Expand one staged tuple flip into indicator-slot flips, dropping
/// slots already at their target presence (net no-ops). Returns how many
/// entries of `out` were filled.
fn stage_flips(
    machine: &EnumMachine,
    (pos, neg): SlotPair,
    present: bool,
    out: &mut [(u32, bool); 2],
) -> usize {
    let mut n = 0;
    if let Some(s) = pos {
        if machine.input_present(s) != present {
            out[n] = (s, present);
            n += 1;
        }
    }
    if let Some(s) = neg {
        // the negative indicator's target is the complement
        if machine.input_present(s) == present {
            out[n] = (s, !present);
            n += 1;
        }
    }
    n
}

/// splitmix64: the standard 64-bit finalizer-style mixer — turns a
/// caller-provided seed into a well-distributed word for sampling.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn bool_val(b: bool) -> InputVal {
    if b {
        vec![vec![]]
    } else {
        vec![]
    }
}

fn copy_structure(a: &Structure, sig: Arc<Signature>) -> Structure {
    let mut b = Structure::new(sig, a.domain_size());
    for r in a.signature().relation_ids() {
        for t in a.relation(r).iter() {
            b.insert(r, t.as_slice());
        }
    }
    b
}

/// Bidirectional constant-delay iterator over answers.
pub struct AnswerIter<'a> {
    inner: SummandIter<'a>,
    arity: usize,
}

impl AnswerIter<'_> {
    /// Next answer tuple.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Vec<Elem>> {
        self.inner.next().map(|m| self.decode(m))
    }

    /// Previous answer tuple.
    pub fn prev(&mut self) -> Option<Vec<Elem>> {
        self.inner.prev().map(|m| self.decode(m))
    }

    /// Current answer tuple.
    pub fn current(&self) -> Option<Vec<Elem>> {
        self.inner.current().map(|m| self.decode(m))
    }

    /// Jump to the answer of rank `k` (0-based, enumeration order) with
    /// one O(depth) rank descent and return it; `None` (and a position
    /// past the end) iff `k` is out of range. [`AnswerIter::next`] /
    /// [`AnswerIter::prev`] continue from the sought position.
    pub fn seek(&mut self, k: u64) -> Option<Vec<Elem>> {
        self.inner.seek(k).map(|m| self.decode(m))
    }

    /// [`AnswerIter::seek`] plus the gate-visit count of the descent.
    pub fn seek_counting(&mut self, k: u64) -> (Option<Vec<Elem>>, u64) {
        let (m, visits) = self.inner.seek_counting(k);
        (m.map(|m| self.decode(m)), visits)
    }

    fn decode(&self, monomial: Vec<Gen>) -> Vec<Elem> {
        debug_assert_eq!(monomial.len(), self.arity);
        let mut out = vec![0 as Elem; self.arity];
        for g in monomial {
            let (slot, elem) = g.unpack();
            out[slot as usize] = elem;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_logic::Var;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: usize, m: usize, seed: u64) -> Structure {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        sig.add_relation("S", 1);
        let mut a = Structure::new(Arc::new(sig), n);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..m {
            let x = rng.gen_range(0..n as u32);
            let y = rng.gen_range(0..n as u32);
            if x != y {
                a.insert(e, &[x, y]);
            }
        }
        a
    }

    fn sorted(mut v: Vec<Vec<Elem>>) -> Vec<Vec<Elem>> {
        v.sort();
        v
    }

    fn collect_all(ix: &AnswerIndex) -> Vec<Vec<Elem>> {
        let mut out = Vec::new();
        let mut it = ix.iter();
        while let Some(t) = it.next() {
            out.push(t);
        }
        out
    }

    fn check_against_baseline(a: &Structure, phi: &Formula) {
        let ix = AnswerIndex::build(a, phi, &CompileOptions::default()).unwrap();
        let got = collect_all(&ix);
        let expect = agq_baseline::all_answers(phi, a);
        assert_eq!(got.len() as u64, ix.count(), "count() consistent");
        assert_eq!(
            sorted(got.clone()),
            sorted(expect),
            "answer sets must agree"
        );
        // no duplicates
        let mut dedup = sorted(got.clone());
        dedup.dedup();
        assert_eq!(dedup.len(), got.len(), "no duplicate answers");
    }

    #[test]
    fn edges_enumeration() {
        for seed in 0..4 {
            let a = random_graph(18, 30, seed);
            let e = a.signature().relation("E").unwrap();
            check_against_baseline(&a, &Formula::Rel(e, vec![Var(0), Var(1)]));
        }
    }

    #[test]
    fn paths_of_length_two() {
        for seed in 0..3 {
            let a = random_graph(14, 28, 10 + seed);
            let e = a.signature().relation("E").unwrap();
            let phi = Formula::Rel(e, vec![Var(0), Var(1)])
                .and(Formula::Rel(e, vec![Var(1), Var(2)]))
                .and(Formula::neq(Var(0), Var(2)));
            check_against_baseline(&a, &phi);
        }
    }

    #[test]
    fn triangles_enumeration() {
        let a = random_graph(12, 40, 21);
        let e = a.signature().relation("E").unwrap();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)])
            .and(Formula::Rel(e, vec![Var(1), Var(2)]))
            .and(Formula::Rel(e, vec![Var(2), Var(0)]));
        check_against_baseline(&a, &phi);
    }

    #[test]
    fn non_edges_enumeration() {
        let a = random_graph(10, 16, 33);
        let e = a.signature().relation("E").unwrap();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)])
            .not()
            .and(Formula::neq(Var(0), Var(1)));
        check_against_baseline(&a, &phi);
    }

    #[test]
    fn quantified_formula_static() {
        // nodes with an out-neighbor that has an out-neighbor
        let a = random_graph(13, 22, 44);
        let e = a.signature().relation("E").unwrap();
        let inner = Formula::Exists(Var(2), Box::new(Formula::Rel(e, vec![Var(1), Var(2)])));
        let phi = Formula::Exists(
            Var(1),
            Box::new(Formula::Rel(e, vec![Var(0), Var(1)]).and(inner)),
        );
        check_against_baseline(&a, &phi);
    }

    #[test]
    fn bidirectional_walk() {
        let a = random_graph(12, 25, 55);
        let e = a.signature().relation("E").unwrap();
        let ix = AnswerIndex::build(
            &a,
            &Formula::Rel(e, vec![Var(0), Var(1)]),
            &CompileOptions::default(),
        )
        .unwrap();
        let fwd = collect_all(&ix);
        let mut it = ix.iter();
        while it.next().is_some() {}
        let mut back = Vec::new();
        while let Some(t) = it.prev() {
            back.push(t);
        }
        back.reverse();
        assert_eq!(fwd, back);
    }

    #[test]
    fn dynamic_updates_track_baseline() {
        let mut rng = SmallRng::seed_from_u64(66);
        let mut shadow = random_graph(14, 30, 66);
        let e = shadow.signature().relation("E").unwrap();
        let s = shadow.signature().relation("S").unwrap();
        // φ(x,y) = E(x,y) ∧ S(x): exercises binary + unary updates
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]).and(Formula::Rel(s, vec![Var(0)]));
        let mut ix = AnswerIndex::build_dynamic(&shadow, &phi, &CompileOptions::default()).unwrap();
        // candidate binary tuples: existing E tuples (and their reverses
        // — same Gaifman clique)
        let e_tuples: Vec<[u32; 2]> = shadow
            .relation(e)
            .iter()
            .map(|t| [t.as_slice()[0], t.as_slice()[1]])
            .collect();
        for step in 0..40 {
            if rng.gen_bool(0.5) {
                // toggle S(a)
                let v = rng.gen_range(0..14u32);
                let present = rng.gen_bool(0.5);
                if present {
                    shadow.insert(s, &[v]);
                } else {
                    shadow.remove(s, &[v]);
                }
                ix.set_tuple(s, &[v], present).unwrap();
            } else {
                // toggle an E tuple (forward or reversed — same clique)
                let t = e_tuples[rng.gen_range(0..e_tuples.len())];
                let t = if rng.gen_bool(0.5) { t } else { [t[1], t[0]] };
                let present = rng.gen_bool(0.5);
                if present {
                    shadow.insert(e, &t);
                } else {
                    shadow.remove(e, &t);
                }
                ix.set_tuple(e, &t, present).unwrap();
            }
            let got = sorted(collect_all(&ix));
            let expect = sorted(agq_baseline::all_answers(&phi, &shadow));
            assert_eq!(got, expect, "step {step}");
            // the incrementally maintained rank counts stay live
            assert_eq!(ix.count() as usize, got.len(), "step {step} count");
        }
    }

    #[test]
    fn non_gaifman_insert_rejected() {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), 5);
        a.insert(e, &[0, 1]);
        a.insert(e, &[2, 3]);
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let mut ix = AnswerIndex::build_dynamic(&a, &phi, &CompileOptions::default()).unwrap();
        // (0,3) is not an edge of the Gaifman graph
        assert_eq!(
            ix.set_tuple(e, &[0, 3], true),
            Err(UpdateError::NotGaifmanPreserving)
        );
        // removal of a never-representable tuple is a no-op
        assert_eq!(ix.set_tuple(e, &[0, 3], false), Ok(()));
    }

    #[test]
    fn direct_access_matches_iteration() {
        let a = random_graph(14, 28, 77);
        let e = a.signature().relation("E").unwrap();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)])
            .and(Formula::Rel(e, vec![Var(1), Var(2)]))
            .and(Formula::neq(Var(0), Var(2)));
        let ix = AnswerIndex::build(&a, &phi, &CompileOptions::default()).unwrap();
        let all = collect_all(&ix);
        assert!(!all.is_empty());
        for (k, t) in all.iter().enumerate() {
            assert_eq!(ix.answer(k as u64).as_ref(), Some(t), "rank {k}");
        }
        assert_eq!(ix.answer(all.len() as u64), None);
        assert_eq!(ix.answer(u64::MAX), None);
        // ranges: aligned with the enumeration, clipped at the end
        assert_eq!(ix.answer_range(0, all.len()), all);
        let mid = all.len() / 2;
        assert_eq!(
            ix.answer_range(mid as u64, 3),
            all[mid..(mid + 3).min(all.len())]
        );
        assert_eq!(
            ix.answer_range(all.len() as u64 - 1, 10),
            all[all.len() - 1..]
        );
        assert_eq!(
            ix.answer_range(all.len() as u64, 10),
            Vec::<Vec<Elem>>::new()
        );
        assert_eq!(ix.answer_range(2, 0), Vec::<Vec<Elem>>::new());
        // sampling: deterministic per seed, always a real answer
        for seed in 0..32u64 {
            let s = ix.sample(seed).expect("nonempty");
            assert!(all.contains(&s), "seed {seed}");
            assert_eq!(ix.sample(seed), Some(s));
        }
    }

    #[test]
    fn malformed_update_rejected_without_mutation() {
        let a = random_graph(10, 20, 91);
        let e = a.signature().relation("E").unwrap();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let mut ix = AnswerIndex::build_dynamic(&a, &phi, &CompileOptions::default()).unwrap();
        let before = collect_all(&ix);
        // wrong arity (would panic in Tuple::new / slot lookup otherwise)
        assert_eq!(
            ix.set_tuple(e, &[0, 1, 2, 3, 4, 5], true),
            Err(UpdateError::MalformedTuple)
        );
        assert_eq!(
            ix.set_tuple(e, &[0], false),
            Err(UpdateError::MalformedTuple)
        );
        // out-of-domain element
        assert_eq!(
            ix.set_tuple(e, &[0, 10], true),
            Err(UpdateError::MalformedTuple)
        );
        // unknown relation id
        assert_eq!(
            ix.set_tuple(RelId(7), &[0, 1], true),
            Err(UpdateError::MalformedTuple)
        );
        assert_eq!(collect_all(&ix), before, "state untouched on error");
    }

    #[test]
    fn empty_answer_set() {
        let a = random_graph(8, 0, 1);
        let e = a.signature().relation("E").unwrap();
        let ix = AnswerIndex::build(
            &a,
            &Formula::Rel(e, vec![Var(0), Var(1)]),
            &CompileOptions::default(),
        )
        .unwrap();
        assert!(!ix.is_nonempty());
        assert_eq!(ix.count(), 0);
        assert!(collect_all(&ix).is_empty());
    }
}
