//! The Gaifman-component sharded engine: one immutable compiled plan,
//! per-shard mutable state, concurrent batched queries and routed
//! updates.
//!
//! # Why components shard
//!
//! The paper's dynamic story (Theorem 24) only admits updates whose
//! tuples are cliques of the *compile-time* Gaifman graph, so the graph
//! never gains edges and its connected components never merge: two
//! elements in different components cannot interact through any update.
//! When additionally every answer of `φ` is forced into one component
//! ([`agq_logic::Formula::answers_component_local`] — free variables
//! chained through positive atoms/equalities in every model), the
//! database decomposes into independent shards:
//!
//! * an update touches exactly one shard (its tuple is a clique, hence
//!   single-component);
//! * a point query at a single-shard tuple reads only the cone above its
//!   indicator slots, which never leaves the shard's components; a
//!   cross-shard tuple is structurally zero;
//! * the global answer set is the disjoint union of per-shard answer
//!   sets.
//!
//! # One plan, N states
//!
//! [`ShardedEngine`] compiles `φ` **once** and derives one immutable,
//! `Send + Sync` plan: the [`agq_core::CompiledQuery`] +
//! [`agq_circuit::EvalPlan`] pair on the point-query side and the
//! [`crate::machine::EnumPlan`] + slot registry on the enumeration side.
//! Every shard then owns only cheap mutable state — a
//! [`QueryEngine`] evaluator state and an [`AnswerIndex`] machine state
//! whose generator weights are restricted to the shard's elements
//! ([`AnswerIndex::shard_filtered`]) — behind its own `RwLock`. Updates
//! take a write lock on the owning shard only; point queries and batch
//! queries take read locks (the zero-restore query path never mutates),
//! so queries against one shard proceed concurrently with updates to
//! every other shard.
//!
//! Formulas that fail the component-locality check degrade gracefully to
//! a single shard — always correct, never parallel.
//!
//! # Ordering and global ranks
//!
//! The engine's one answer order is **global rank order**: shard id
//! first, then the shard's native constant-delay cursor order. The
//! shards partition the answer set, so per-shard ranks compose into
//! global ranks through a prefix table of per-shard counts — that is
//! how [`ShardedEngine::answer`] serves the k-th answer in `O(depth)`
//! per shard probed, and how [`ShardedEngine::for_each_answer`] /
//! [`ShardedEngine::enumerate_merged`] stream every answer by chaining
//! the per-shard cursors (a k-way merge by global rank degenerates to
//! concatenation, because the shards own contiguous rank intervals).
//! The native cursor order is *not* lexicographic on the answer tuples
//! (it follows the circuit structure), so no lexicographic stream is
//! possible without materializing and sorting — callers that need one
//! sort the collected answers themselves.
//!
//! Cross-shard reads — counts, rank access, full streams — take **all**
//! shard read locks in shard order before touching any state, and
//! [`ShardedEngine::apply_batch`] holds every affected shard's write
//! lock for the whole application (acquired in the same shard order, so
//! the two disciplines cannot deadlock). A snapshot therefore sees a
//! concurrent batch fully applied or not at all — never torn across
//! shards. The differential suite pins sharded ≡ unsharded answer sets,
//! point queries, and post-update behavior on all three backends.

use crate::answers::{AnswerIndex, UpdateError};
use crate::machine::MachineStateDump;
use agq_circuit::{FiniteMaint, PeekScratch, PermMaint, RingMaint};
use agq_core::{
    compile, eliminate_quantifiers, CompileError, CompileOptions, QueryEngine, TupleUpdate, WalSink,
};
use agq_logic::{normalize, Expr, Formula};
use agq_perm::SegTreePerm;
use agq_semiring::Semiring;
use agq_structure::gaifman::GaifmanComponents;
use agq_structure::{Elem, RelId, Structure, WeightedStructure};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// `std::thread::available_parallelism()` re-reads cgroup limits from the
/// filesystem on every call (~10µs on Linux) — far too slow for per-batch
/// dispatch decisions. Resolve it once per process.
pub(crate) fn available_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// One shard's mutable state: a point-query evaluator state and an
/// enumeration index state, both over the engine-wide shared plans.
struct Shard<S: Semiring, P: PermMaint<S>> {
    engine: QueryEngine<S, P>,
    index: AnswerIndex,
}

/// A first-order query served from Gaifman-component shards: one shared
/// immutable compiled plan, per-shard mutable state, one update/query
/// language. See the [module docs](self) for the decomposition argument.
pub struct ShardedEngine<S: Semiring, P: PermMaint<S>> {
    components: GaifmanComponents,
    shards: Vec<RwLock<Shard<S, P>>>,
    component_local: bool,
    arity: usize,
    /// Durability state: the optional WAL sink and the LSN of the last
    /// applied batch, assigned under one mutex *while the applying
    /// batch's shard write locks are still held* so LSN order agrees
    /// with apply order for conflicting batches.
    wal: Mutex<WalState>,
}

/// The durability side-state of a [`ShardedEngine`] (see its `wal` field).
struct WalState {
    sink: Option<Box<dyn WalSink>>,
    last_lsn: u64,
}

/// One shard's serializable mutable state, as captured by
/// [`ShardedEngine::snapshot_states`] under a consistent all-shards
/// snapshot: the point-query evaluator's slot/gate value vectors and the
/// full enumeration machine dump (input summand lists plus the
/// order-bearing support/pool internals). Everything else a shard holds
/// is shared immutable plan.
pub struct ShardStateDump<S> {
    /// Point side: input-slot values, indexed by slot id.
    pub slot_values: Vec<S>,
    /// Point side: committed per-gate values, indexed by gate id.
    pub gate_values: Vec<S>,
    /// Enumeration side: the machine's mutable state.
    pub machine: MachineStateDump,
}

/// Sharded engine for arbitrary semirings (logarithmic point queries).
pub type GeneralShardedEngine<S> = ShardedEngine<S, SegTreePerm<S>>;
/// Sharded engine for rings (constant-time point queries).
pub type RingShardedEngine<S> = ShardedEngine<S, RingMaint<S>>;
/// Sharded engine for finite semirings (constant-time point queries).
pub type FiniteShardedEngine<S> = ShardedEngine<S, FiniteMaint<S>>;

/// Where a tuple routes.
enum Route {
    /// All elements in one shard.
    Shard(usize),
    /// Elements span shards: structurally zero for component-local
    /// formulas.
    Cross,
    /// Some element is outside the domain the decomposition was built
    /// over: never a valid tuple, reported as a malformed update instead
    /// of an out-of-bounds panic in the routing table.
    Unknown,
}

impl<S: Semiring, P: PermMaint<S>> ShardedEngine<S, P> {
    /// Preprocess a quantifier-free `φ` over `a` for sharded point
    /// queries, enumeration, and Gaifman-preserving updates, packing the
    /// Gaifman components into at most `max_shards` shards
    /// (`0` = one shard per component).
    ///
    /// Compiles once; instantiates one mutable state per shard. Formulas
    /// whose answers are not syntactically component-local fall back to
    /// one shard (correct, unsharded).
    pub fn build(
        a: &Arc<Structure>,
        phi: &Formula,
        opts: &CompileOptions,
        max_shards: usize,
    ) -> Result<Self, CompileError> {
        // The admission test (arity ≥ 1 included — a closed formula's
        // empty-tuple answer belongs to no component) lives in one
        // place: `Formula::answers_component_local`.
        let component_local = phi.answers_component_local();
        let components = GaifmanComponents::new(a, if component_local { max_shards } else { 1 });
        let num_shards = components.num_shards();

        // Point-query side: compile the indicator expression [φ] once,
        // derive the shared evaluation plan (with memoized FreeVar
        // cones), then instantiate one evaluator state per shard.
        let expr: Expr<S> = Expr::Bracket(phi.clone());
        let mut copts = opts.clone();
        copts.dynamic_atoms = true;
        let (expr, a2) = eliminate_quantifiers(&expr, a, &copts)?;
        let nf = normalize(&expr)?;
        let compiled = Arc::new(compile(&a2, &nf, &copts)?);
        let arity = compiled.free_vars.len();
        let plan = Arc::new(QueryEngine::<S, P>::build_plan(&compiled));
        let weights: WeightedStructure<S> = WeightedStructure::new(a2);

        // Enumeration side: build the answer index once (shared EnumPlan
        // + slot registry), then fork one shard-restricted state each.
        let base = AnswerIndex::build_dynamic(a, phi, opts)?;

        let mut base = Some(base);
        let shards = (0..num_shards)
            .map(|s| {
                let engine = QueryEngine::from_parts(compiled.clone(), plan.clone(), &weights);
                let index = if num_shards == 1 {
                    base.take().expect("single shard consumes the base index")
                } else {
                    base.as_ref()
                        .expect("base index alive")
                        .shard_filtered(|e| components.shard_of(e) == s as u32)
                };
                RwLock::new(Shard { engine, index })
            })
            .collect();
        Ok(ShardedEngine {
            components,
            shards,
            component_local,
            arity,
            wal: Mutex::new(WalState {
                sink: None,
                last_lsn: 0,
            }),
        })
    }

    /// Reassemble an engine from separately restored shard states — the
    /// restore constructor of `agq-persist`. Every `(engine, index)` pair
    /// must have been instantiated over one shared plan (the saved one);
    /// `last_lsn` seeds the log sequence counter. Errs when the shard
    /// count disagrees with the decomposition.
    pub fn from_saved_parts(
        components: GaifmanComponents,
        component_local: bool,
        arity: usize,
        shard_states: Vec<(QueryEngine<S, P>, AnswerIndex)>,
        last_lsn: u64,
    ) -> Result<Self, &'static str> {
        if shard_states.len() != components.num_shards() {
            return Err("shard count disagrees with the component decomposition");
        }
        Ok(ShardedEngine {
            components,
            shards: shard_states
                .into_iter()
                .map(|(engine, index)| RwLock::new(Shard { engine, index }))
                .collect(),
            component_local,
            arity,
            wal: Mutex::new(WalState {
                sink: None,
                last_lsn,
            }),
        })
    }

    /// Capture every shard's mutable state plus the LSN it is current
    /// through, under one consistent all-shards snapshot (all read locks
    /// in shard order — a concurrent batch is either fully included, or
    /// excluded and sequenced after the returned LSN, never torn).
    pub fn snapshot_states(&self) -> (u64, Vec<ShardStateDump<S>>) {
        let guards = self.read_all();
        let lsn = self.wal.lock().expect("wal lock").last_lsn;
        let dumps = guards
            .iter()
            .map(|shard| {
                let eval = shard.engine.evaluator();
                ShardStateDump {
                    slot_values: eval.slot_values().to_vec(),
                    gate_values: eval.gate_values().to_vec(),
                    machine: shard.index.machine().dump_state(),
                }
            })
            .collect();
        (lsn, dumps)
    }

    /// Run `f` against one shard's state under its read lock — the
    /// shared-plan accessor snapshotting uses (every shard points at the
    /// same compiled query and plans).
    pub fn with_shard<R>(
        &self,
        s: usize,
        f: impl FnOnce(&QueryEngine<S, P>, &AnswerIndex) -> R,
    ) -> R {
        let shard = self.shards[s].read().expect("shard lock");
        f(&shard.engine, &shard.index)
    }

    /// Answer-tuple arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of shards serving this engine.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether `φ` was admitted to sharding: at least one free variable
    /// and the component-locality check passed. When false, the engine
    /// runs with one shard.
    pub fn component_local(&self) -> bool {
        self.component_local
    }

    /// The component decomposition backing the routing.
    pub fn components(&self) -> &GaifmanComponents {
        &self.components
    }

    fn route(&self, tuple: &[Elem]) -> Route {
        if self.shards.len() == 1 || tuple.is_empty() {
            return Route::Shard(0);
        }
        let mut it = tuple.iter();
        let first = match self
            .components
            .try_shard_of(*it.next().expect("tuple is nonempty"))
        {
            Some(s) => s,
            None => return Route::Unknown,
        };
        for &e in it {
            match self.components.try_shard_of(e) {
                Some(s) if s == first => {}
                Some(_) => return Route::Cross,
                None => return Route::Unknown,
            }
        }
        Route::Shard(first as usize)
    }

    /// Point query: the indicator value `[φ(ā)]`, served by the owning
    /// shard under a read lock. A tuple spanning shards is structurally
    /// zero (its elements can never be chained by positive atoms).
    pub fn query(&self, tuple: &[Elem]) -> S {
        match self.route(tuple) {
            Route::Cross | Route::Unknown => S::zero(),
            Route::Shard(s) => {
                let shard = self.shards[s].read().expect("shard lock");
                let mut scratch = PeekScratch::new();
                let mut patches = Vec::new();
                shard.engine.query_with(tuple, &mut scratch, &mut patches)
            }
        }
    }

    /// Values at many tuples: the batch is grouped by owning shard and
    /// the non-empty shard groups are spread over at most one worker per
    /// core, each taking its shards' read locks in turn — so a batch
    /// proceeds concurrently with updates to shards it does not touch,
    /// without spawning a thread per shard (`max_shards = 0` can make
    /// the shard count data-sized). Results come back in input order.
    pub fn query_batch(&self, tuples: &[&[Elem]]) -> Vec<S>
    where
        P: Send + Sync,
    {
        // Group tuple indices by shard; resolve cross-shard tuples inline.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut out: Vec<Option<S>> = vec![None; tuples.len()];
        for (i, t) in tuples.iter().enumerate() {
            match self.route(t) {
                Route::Cross | Route::Unknown => out[i] = Some(S::zero()),
                Route::Shard(s) => groups[s].push(i),
            }
        }
        let work: Vec<(usize, Vec<usize>)> = groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .collect();
        let workers = available_cores().min(work.len()).max(1);
        if workers == 1 {
            // one core (or one shard group): answer on the calling thread
            // instead of paying a thread spawn
            let mut scratch = PeekScratch::new();
            let mut patches = Vec::new();
            for (s, g) in &work {
                let shard = self.shards[*s].read().expect("shard lock");
                for &i in g {
                    out[i] = Some(
                        shard
                            .engine
                            .query_with(tuples[i], &mut scratch, &mut patches),
                    );
                }
            }
            return out.into_iter().map(|v| v.expect("all filled")).collect();
        }
        let chunk = work.len().div_ceil(workers);
        let results: Vec<(Vec<usize>, Vec<S>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = work
                .chunks(chunk)
                .map(|assigned| {
                    scope.spawn(move || {
                        let mut scratch = PeekScratch::new();
                        let mut patches = Vec::new();
                        assigned
                            .iter()
                            .map(|(s, g)| {
                                let shard = self.shards[*s].read().expect("shard lock");
                                let vals: Vec<S> = g
                                    .iter()
                                    .map(|&i| {
                                        shard.engine.query_with(
                                            tuples[i],
                                            &mut scratch,
                                            &mut patches,
                                        )
                                    })
                                    .collect();
                                (g.clone(), vals)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard batch worker"))
                .collect()
        });
        for (idxs, vals) in results {
            for (i, v) in idxs.into_iter().zip(vals) {
                out[i] = Some(v);
            }
        }
        out.into_iter().map(|v| v.expect("all filled")).collect()
    }

    /// Apply one Gaifman-preserving update to the owning shard (write
    /// lock on that shard only): both the shard's enumeration index
    /// (incremental, `O_φ(1)`) and its point-query evaluator absorb it.
    pub fn apply_update(&self, u: &TupleUpdate) -> Result<(), UpdateError> {
        let s = match self.route(&u.tuple) {
            Route::Shard(s) => s,
            Route::Cross => {
                // A shard-spanning tuple is never a clique of the
                // compile-time Gaifman graph: inserting it is not
                // Gaifman-preserving, removing it is a no-op.
                return if u.present {
                    Err(UpdateError::NotGaifmanPreserving)
                } else {
                    Ok(())
                };
            }
            Route::Unknown => return Err(UpdateError::MalformedTuple),
        };
        let mut shard = self.shards[s].write().expect("shard lock");
        shard.index.apply_update(u)?;
        shard.engine.apply_update(u);
        // Log while the shard write lock is still held, so LSN order
        // agrees with apply order for updates contending on a shard.
        self.log_applied(std::slice::from_ref(u))
    }

    /// Assign the next LSN to an applied batch and append it to the WAL
    /// sink, if one is attached. Called with the applying batch's shard
    /// write locks still held.
    fn log_applied(&self, updates: &[TupleUpdate]) -> Result<(), UpdateError> {
        let mut wal = self.wal.lock().expect("wal lock");
        wal.last_lsn += 1;
        let lsn = wal.last_lsn;
        if let Some(sink) = &mut wal.sink {
            sink.append_batch(lsn, updates)
                .and_then(|()| sink.flush())
                .map_err(|e| UpdateError::Wal(e.to_string()))?;
        }
        Ok(())
    }

    /// Attach a write-ahead-log sink: every subsequently applied batch
    /// is appended under its LSN. Returns the previous sink.
    pub fn attach_wal(&self, sink: Box<dyn WalSink>) -> Option<Box<dyn WalSink>> {
        self.wal.lock().expect("wal lock").sink.replace(sink)
    }

    /// Detach the WAL sink (e.g. before replaying a recovered tail).
    pub fn detach_wal(&self) -> Option<Box<dyn WalSink>> {
        self.wal.lock().expect("wal lock").sink.take()
    }

    /// The LSN of the last applied update batch (0 before any update).
    pub fn last_lsn(&self) -> u64 {
        self.wal.lock().expect("wal lock").last_lsn
    }

    /// Reset the log sequence counter — used after WAL replay so
    /// subsequent batches continue from the highest committed LSN
    /// rather than from the snapshot's.
    pub fn set_last_lsn(&self, lsn: u64) {
        self.wal.lock().expect("wal lock").last_lsn = lsn;
    }

    /// Apply a whole batch of Gaifman-preserving updates: the batch is
    /// coalesced per `(rel, tuple)` (the last update wins, cross-shard
    /// removals are dropped as no-ops), grouped by owning shard, and the
    /// non-empty shard groups are applied **in parallel** — each shard's
    /// write lock is taken exactly once and absorbs its whole group with
    /// one coalesced sweep per side ([`AnswerIndex::apply_batch`] /
    /// [`agq_core::QueryEngine::apply_batch`]).
    ///
    /// The batch is all-or-nothing: every update is validated against the
    /// shared compiled plan (one read-lock probe) *before* any write lock
    /// is taken, so on `Err` no shard has been modified — unlike a manual
    /// loop over [`ShardedEngine::apply_update`], which stops at the
    /// first offending update. Returns the number of coalesced updates
    /// that changed an enumeration index.
    pub fn apply_batch(&self, updates: &[TupleUpdate]) -> Result<usize, UpdateError>
    where
        P: Send + Sync,
    {
        // Coalesce per (rel, tuple) and route: walk backwards so the last
        // update wins.
        let mut seen: agq_core::FxHashSet<(RelId, &[Elem])> =
            agq_core::FxHashSet::with_capacity_and_hasher(updates.len(), Default::default());
        let mut groups: Vec<Vec<&TupleUpdate>> = vec![Vec::new(); self.shards.len()];
        for u in updates.iter().rev() {
            if !seen.insert((u.rel, &u.tuple[..])) {
                continue;
            }
            match self.route(&u.tuple) {
                Route::Shard(s) => groups[s].push(u),
                Route::Cross => {
                    // see apply_update: inserting a shard-spanning tuple
                    // is never Gaifman-preserving, removing one is a no-op
                    if u.present {
                        return Err(UpdateError::NotGaifmanPreserving);
                    }
                }
                Route::Unknown => return Err(UpdateError::MalformedTuple),
            }
        }
        // Pre-validate the whole batch before mutating anything. The
        // verdict depends only on the shared plan, so one shard's index
        // can vouch for every group.
        {
            let probe = self.shards[0].read().expect("shard lock");
            for u in groups.iter().flatten() {
                probe.index.validate_update(u)?;
            }
        }
        let work: Vec<(usize, &[&TupleUpdate])> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(s, g)| (s, g.as_slice()))
            .collect();
        if work.is_empty() {
            return Ok(0);
        }
        // All-or-nothing *visibility*: take every affected shard's write
        // lock up front, in shard order — the same order cross-shard
        // readers acquire their read locks, so the disciplines compose
        // without deadlock — and hold them all for the whole
        // application. A snapshot reader (`count`, `answer`,
        // `for_each_answer`, …) then sees the batch fully applied or not
        // at all, never half of it. `work` is built in ascending shard
        // order.
        let mut guards: Vec<_> = work
            .iter()
            .map(|(s, _)| self.shards[*s].write().expect("shard lock"))
            .collect();
        // Each group is already distinct per tuple (the coalescing pass
        // above), so the shards take the coalesced entry points.
        fn apply_group<S: Semiring, P: PermMaint<S>>(
            shard: &mut Shard<S, P>,
            g: &[&TupleUpdate],
        ) -> usize {
            let n = shard
                .index
                .apply_batch_coalesced(g)
                .expect("batch was pre-validated");
            shard.engine.apply_batch_coalesced(g);
            n
        }
        let workers = available_cores().min(work.len()).max(1);
        // Spawning threads costs tens of microseconds — far more than a
        // typical shard group. Apply on the calling thread unless there is
        // real parallelism to exploit.
        let applied = if workers == 1 {
            guards
                .iter_mut()
                .zip(&work)
                .map(|(shard, (_, g))| apply_group(&mut **shard, g))
                .sum()
        } else {
            let mut pairs: Vec<(&mut Shard<S, P>, &[&TupleUpdate])> = guards
                .iter_mut()
                .zip(&work)
                .map(|(shard, (_, g))| (&mut **shard, *g))
                .collect();
            let chunk = pairs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = pairs
                    .chunks_mut(chunk)
                    .map(|assigned| {
                        scope.spawn(move || {
                            assigned
                                .iter_mut()
                                .map(|(shard, g)| apply_group(shard, g))
                                .sum::<usize>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard batch worker"))
                    .sum()
            })
        };
        // Log while the shard write locks (`guards`) are still held; the
        // coalesced batch is only materialized when a sink is attached,
        // so the no-WAL ingestion hot path pays one mutex lock and an
        // increment.
        {
            let mut wal = self.wal.lock().expect("wal lock");
            wal.last_lsn += 1;
            let lsn = wal.last_lsn;
            if let Some(sink) = &mut wal.sink {
                let owned: Vec<TupleUpdate> = work
                    .iter()
                    .flat_map(|(_, g)| g.iter().map(|&u| u.clone()))
                    .collect();
                sink.append_batch(lsn, &owned)
                    .and_then(|()| sink.flush())
                    .map_err(|e| UpdateError::Wal(e.to_string()))?;
            }
        }
        drop(guards);
        Ok(applied)
    }

    /// A consistent snapshot: every shard's read lock, acquired in shard
    /// order (the same order [`ShardedEngine::apply_batch`] takes its
    /// write locks, so readers and batch writers cannot deadlock).
    /// Holding all of them, a concurrent batch is observed fully applied
    /// or not at all — never torn across shards.
    fn read_all(&self) -> Vec<std::sync::RwLockReadGuard<'_, Shard<S, P>>> {
        self.shards
            .iter()
            .map(|s| s.read().expect("shard lock"))
            .collect()
    }

    /// Number of answers, summed over the shards under one consistent
    /// all-shards snapshot — a concurrent batch never shows up as a torn
    /// total.
    pub fn count(&self) -> u64 {
        self.read_all().iter().map(|s| s.index.count()).sum()
    }

    /// Whether at least one answer exists (`O_φ(1)` per shard), under
    /// the same consistent snapshot as [`ShardedEngine::count`].
    pub fn is_nonempty(&self) -> bool {
        self.read_all().iter().any(|s| s.index.is_nonempty())
    }

    /// Direct access: the answer of **global rank** `k` (shard id, then
    /// the shard's native cursor order — the order of
    /// [`ShardedEngine::for_each_answer`]) without enumerating preceding
    /// answers. The per-shard counts form the rank prefix table; the
    /// owning shard answers its local rank in `O(depth)` gate visits.
    /// `None` iff `k >= count()`. The whole lookup runs under one
    /// consistent all-shards snapshot.
    pub fn answer(&self, k: u64) -> Option<Vec<Elem>> {
        let guards = self.read_all();
        let mut k = k;
        for shard in &guards {
            let c = shard.index.count();
            if k < c {
                return shard.index.answer(k);
            }
            k -= c;
        }
        None
    }

    /// Answers of global ranks `k … k+len-1` (clipped at the end): one
    /// rank descent into the owning shard, then a constant-delay cursor
    /// walk that chains across shard boundaries — pagination without
    /// enumerating ranks `< k`, under one consistent snapshot.
    pub fn answer_range(&self, k: u64, len: usize) -> Vec<Vec<Elem>> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let guards = self.read_all();
        // prefix table: skip whole shards below rank k
        let mut k = k;
        let mut s = 0;
        while s < guards.len() {
            let c = guards[s].index.count();
            if k < c {
                break;
            }
            k -= c;
            s += 1;
        }
        while s < guards.len() && out.len() < len {
            let mut it = guards[s].index.iter();
            if let Some(first) = it.seek(k) {
                out.push(first);
                while out.len() < len {
                    match it.next() {
                        Some(t) => out.push(t),
                        None => break,
                    }
                }
            }
            k = 0; // subsequent shards continue from their rank 0
            s += 1;
        }
        out
    }

    /// A uniformly random answer derived from `rng_seed` (deterministic
    /// per seed), or `None` if the answer set is empty — one rank
    /// descent, no enumeration, under one consistent snapshot.
    pub fn sample(&self, rng_seed: u64) -> Option<Vec<Elem>> {
        let guards = self.read_all();
        let total: u64 = guards.iter().map(|s| s.index.count()).sum();
        if total == 0 {
            return None;
        }
        let mut k = ((crate::answers::splitmix64(rng_seed) as u128 * total as u128) >> 64) as u64;
        for shard in &guards {
            let c = shard.index.count();
            if k < c {
                return shard.index.answer(k);
            }
            k -= c;
        }
        None
    }

    /// Stream every answer to `f` in global rank order (shard id, then
    /// the shard's native cursor order): constant delay per answer, O(1)
    /// memory beyond the caller's own consumption. All shard read locks
    /// are held for the duration — the stream is one consistent
    /// snapshot, and the order is exactly the one
    /// [`ShardedEngine::answer`] indexes.
    pub fn for_each_answer(&self, mut f: impl FnMut(&[Elem])) {
        let guards = self.read_all();
        for shard in &guards {
            let mut it = shard.index.iter();
            while let Some(t) = it.next() {
                f(&t);
            }
        }
    }

    /// All answers in global rank order (see
    /// [`ShardedEngine::for_each_answer`]).
    pub fn collect_answers(&self) -> Vec<Vec<Elem>> {
        let mut out = Vec::new();
        self.for_each_answer(|t| out.push(t.to_vec()));
        out
    }

    /// All answers merged into one globally ordered stream: a thin
    /// collect wrapper over the streaming merge of
    /// [`ShardedEngine::for_each_answer`] (the shards partition the
    /// answer set and own contiguous global-rank intervals, so the
    /// k-way merge by rank is a chain of the per-shard constant-delay
    /// cursors — nothing is materialized per shard, and nothing is
    /// sorted). The global order is rank order, **not** lexicographic:
    /// the native cursor order follows the circuit structure, so a
    /// lexicographic stream would require materializing and sorting
    /// every answer — the OOM risk this method used to carry.
    pub fn enumerate_merged(&self) -> Vec<Vec<Elem>> {
        self.collect_answers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_logic::Var;
    use agq_semiring::Nat;
    use agq_structure::Signature;

    /// Two triangles in different components plus an isolated edge.
    fn three_component_graph() -> (Arc<Structure>, agq_structure::RelId) {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), 9);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (6, 7)] {
            a.insert(e, &[u, v]);
            a.insert(e, &[v, u]);
        }
        (Arc::new(a), e)
    }

    #[test]
    fn shards_partition_answers() {
        let (a, e) = three_component_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), 0).unwrap();
        assert!(eng.component_local());
        assert_eq!(eng.num_shards(), 4, "3 edge components + 1 isolated");
        assert_eq!(eng.count(), 14);
        let collected = eng.collect_answers();
        assert_eq!(
            eng.enumerate_merged(),
            collected,
            "merged stream is the global rank order"
        );
        let mut dedup = collected.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), collected.len(), "partition is duplicate-free");
        for t in &collected {
            assert_eq!(eng.query(t), Nat(1));
        }
        assert_eq!(eng.query(&[0, 3]), Nat(0), "cross-shard tuple is zero");
    }

    #[test]
    fn closed_formula_runs_on_one_shard() {
        // An arity-0 formula's single empty-tuple answer belongs to no
        // component; sharding would duplicate it per shard. The arity
        // rule is folded into `answers_component_local`, so every build
        // path — any max_shards — must degrade to one shard.
        let (a, _e) = three_component_graph();
        for max_shards in [0usize, 1, 2, 8] {
            let eng: GeneralShardedEngine<Nat> =
                ShardedEngine::build(&a, &Formula::True, &CompileOptions::default(), max_shards)
                    .unwrap();
            assert_eq!(eng.arity(), 0);
            assert!(!eng.component_local());
            assert_eq!(eng.num_shards(), 1, "max_shards = {max_shards}");
            assert_eq!(eng.count(), 1, "exactly one empty-tuple answer");
            assert_eq!(eng.collect_answers(), vec![Vec::<u32>::new()]);
            assert_eq!(eng.answer(0), Some(Vec::new()), "rank 0 = empty tuple");
            assert_eq!(eng.answer(1), None);
            assert_eq!(eng.query(&[]), Nat(1));
        }
        // a closed formula with no answers: same admission outcome
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &Formula::False, &CompileOptions::default(), 0).unwrap();
        assert_eq!(eng.num_shards(), 1);
        assert_eq!(eng.count(), 0);
        assert!(!eng.is_nonempty());
        assert_eq!(eng.answer(0), None);
    }

    #[test]
    fn non_local_formula_falls_back_to_one_shard() {
        let (a, e) = three_component_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)])
            .not()
            .and(Formula::neq(Var(0), Var(1)));
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), 0).unwrap();
        assert!(!eng.component_local());
        assert_eq!(eng.num_shards(), 1);
        // cross-component non-edges are genuine answers, served correctly
        assert_eq!(eng.query(&[0, 3]), Nat(1));
        assert_eq!(eng.query(&[0, 1]), Nat(0));
    }

    #[test]
    fn updates_route_to_owning_shard() {
        let (a, e) = three_component_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), 2).unwrap();
        assert_eq!(eng.num_shards(), 2);
        let before = eng.count();
        eng.apply_update(&TupleUpdate::remove(e, &[0, 1])).unwrap();
        assert_eq!(eng.count(), before - 1);
        assert_eq!(eng.query(&[0, 1]), Nat(0));
        assert_eq!(eng.query(&[1, 0]), Nat(1), "reverse edge untouched");
        eng.apply_update(&TupleUpdate::insert(e, &[0, 1])).unwrap();
        assert_eq!(eng.count(), before);
        // cross-shard insert rejected, cross-shard remove is a no-op
        assert_eq!(
            eng.apply_update(&TupleUpdate::insert(e, &[0, 3])),
            Err(UpdateError::NotGaifmanPreserving)
        );
        assert_eq!(eng.apply_update(&TupleUpdate::remove(e, &[0, 3])), Ok(()));
    }

    #[test]
    fn sharded_direct_access_matches_stream() {
        let (a, e) = three_component_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), 0).unwrap();
        assert!(eng.num_shards() > 1);
        let check = |eng: &GeneralShardedEngine<Nat>| {
            let all = eng.collect_answers();
            for (k, t) in all.iter().enumerate() {
                assert_eq!(eng.answer(k as u64).as_ref(), Some(t), "rank {k}");
            }
            assert_eq!(eng.answer(all.len() as u64), None);
            assert_eq!(eng.answer(u64::MAX), None);
            // ranges, including ones that cross shard boundaries
            assert_eq!(eng.answer_range(0, all.len() + 5), all);
            for k in 0..all.len() {
                assert_eq!(
                    eng.answer_range(k as u64, 4),
                    all[k..(k + 4).min(all.len())],
                    "range at {k}"
                );
            }
            for seed in 0..16u64 {
                let s = eng.sample(seed).expect("nonempty");
                assert!(all.contains(&s), "seed {seed}");
            }
        };
        check(&eng);
        // ranks stay live after an update batch spanning shards
        eng.apply_batch(&[
            TupleUpdate::remove(e, &[0, 1]),
            TupleUpdate::remove(e, &[3, 4]),
            TupleUpdate::insert(e, &[0, 1]),
            TupleUpdate::remove(e, &[6, 7]),
        ])
        .unwrap();
        check(&eng);
    }

    #[test]
    fn count_is_atomic_under_concurrent_batches() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // Two components with one edge each; exactly one answer lives in
        // one of them at any time, and each batch moves it to the other
        // component. A torn cross-shard read sees 0 or 2.
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), 4);
        a.insert(e, &[0, 1]);
        a.insert(e, &[2, 3]);
        let a = Arc::new(a);
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), 0).unwrap();
        assert_eq!(eng.num_shards(), 2);
        eng.apply_update(&TupleUpdate::remove(e, &[2, 3])).unwrap();
        assert_eq!(eng.count(), 1);
        let to_second = [
            TupleUpdate::remove(e, &[0, 1]),
            TupleUpdate::insert(e, &[2, 3]),
        ];
        let to_first = [
            TupleUpdate::remove(e, &[2, 3]),
            TupleUpdate::insert(e, &[0, 1]),
        ];
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..300 {
                    eng.apply_batch(&to_second).unwrap();
                    eng.apply_batch(&to_first).unwrap();
                }
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                assert_eq!(eng.count(), 1, "torn cross-shard count");
                assert!(eng.is_nonempty(), "torn cross-shard nonempty");
                let t = eng.answer(0).expect("rank 0 exists in every snapshot");
                assert!(t == vec![0, 1] || t == vec![2, 3], "torn rank access");
                assert_eq!(eng.answer(1), None, "rank 1 never exists");
            }
        });
        assert_eq!(eng.count(), 1);
    }

    #[test]
    fn batch_queries_group_by_shard() {
        let (a, e) = three_component_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), 3).unwrap();
        let points: Vec<[u32; 2]> = (0..9).flat_map(|u| (0..9).map(move |v| [u, v])).collect();
        let tuples: Vec<&[u32]> = points.iter().map(|p| p.as_slice()).collect();
        let batch = eng.query_batch(&tuples);
        for (t, got) in tuples.iter().zip(&batch) {
            assert_eq!(*got, eng.query(t), "batch vs point at {t:?}");
        }
    }
}
