//! The Gaifman-component sharded engine: one immutable compiled plan,
//! per-shard mutable state, concurrent batched queries and routed
//! updates.
//!
//! # Why components shard
//!
//! The paper's dynamic story (Theorem 24) only admits updates whose
//! tuples are cliques of the *compile-time* Gaifman graph, so the graph
//! never gains edges and its connected components never merge: two
//! elements in different components cannot interact through any update.
//! When additionally every answer of `φ` is forced into one component
//! ([`agq_logic::Formula::answers_component_local`] — free variables
//! chained through positive atoms/equalities in every model), the
//! database decomposes into independent shards:
//!
//! * an update touches exactly one shard (its tuple is a clique, hence
//!   single-component);
//! * a point query at a single-shard tuple reads only the cone above its
//!   indicator slots, which never leaves the shard's components; a
//!   cross-shard tuple is structurally zero;
//! * the global answer set is the disjoint union of per-shard answer
//!   sets.
//!
//! # One plan, N states
//!
//! [`ShardedEngine`] compiles `φ` **once** and derives one immutable,
//! `Send + Sync` plan: the [`agq_core::CompiledQuery`] +
//! [`agq_circuit::EvalPlan`] pair on the point-query side and the
//! [`crate::machine::EnumPlan`] + slot registry on the enumeration side.
//! Every shard then owns only cheap mutable state — a
//! [`QueryEngine`] evaluator state and an [`AnswerIndex`] machine state
//! whose generator weights are restricted to the shard's elements
//! ([`AnswerIndex::shard_filtered`]) — behind its own `RwLock`. Updates
//! take a write lock on the owning shard only; point queries and batch
//! queries take read locks (the zero-restore query path never mutates),
//! so queries against one shard proceed concurrently with updates to
//! every other shard.
//!
//! Formulas that fail the component-locality check degrade gracefully to
//! a single shard — always correct, never parallel.
//!
//! # Ordering and global ranks
//!
//! The engine's one answer order is **global rank order**: shard id
//! first, then the shard's native constant-delay cursor order. The
//! shards partition the answer set, so per-shard ranks compose into
//! global ranks through a prefix table of per-shard counts — that is
//! how [`ShardedEngine::answer`] serves the k-th answer in `O(depth)`
//! per shard probed, and how [`ShardedEngine::for_each_answer`] /
//! [`ShardedEngine::enumerate_merged`] stream every answer by chaining
//! the per-shard cursors (a k-way merge by global rank degenerates to
//! concatenation, because the shards own contiguous rank intervals).
//! The native cursor order is *not* lexicographic on the answer tuples
//! (it follows the circuit structure), so no lexicographic stream is
//! possible without materializing and sorting — callers that need one
//! sort the collected answers themselves.
//!
//! Cross-shard reads — counts, rank access, full streams — take **all**
//! shard read locks in shard order before touching any state, and
//! [`ShardedEngine::apply_batch`] holds every affected shard's write
//! lock for the whole application (acquired in the same shard order, so
//! the two disciplines cannot deadlock). A snapshot therefore sees a
//! concurrent batch fully applied or not at all — never torn across
//! shards. The differential suite pins sharded ≡ unsharded answer sets,
//! point queries, and post-update behavior on all three backends.
//!
//! # Fault boundary
//!
//! The component decomposition that makes shards *independent* also
//! makes them a **fault** boundary: one shard failing must not take the
//! others down. Three mechanisms enforce that (see ROADMAP.md's "Fault
//! model" for the operator view):
//!
//! * **Panic isolation + quarantine.** Shard apply work runs under
//!   [`catch_unwind`]; a panic (its own bug, or an injected
//!   `shard.apply` / `batch.worker` fail-point) marks the shard
//!   [quarantined](ShardedEngine::is_quarantined) instead of unwinding
//!   through the facade or poisoning the lock for every later caller.
//!   A quarantined shard rejects updates with
//!   [`UpdateError::ShardUnavailable`] and is skipped by reads; the
//!   `try_*` serving APIs report the skip as
//!   [`Served::Degraded`]`{ missing_shards }` (or a typed
//!   [`ServeError`] under [`ServeMode::Strict`]), while the plain
//!   value-returning APIs degrade silently over the healthy shards.
//!   [`ShardedEngine::install_shard`] swaps a re-hydrated state back in
//!   (snapshot + WAL replay — `agq_persist::restore_quarantined_shard`)
//!   and lifts the quarantine.
//! * **Write-ahead journaling with a [`DurabilityPolicy`].** Batches
//!   are journaled *before* any in-memory apply, still under the shard
//!   write locks so LSN order agrees with apply order. A sink error is
//!   retried with backoff; on exhaustion, fail-stop rejects the batch
//!   with nothing applied and the LSN unadvanced, while fail-open
//!   applies anyway and marks the engine
//!   [`wal_degraded`](ShardedEngine::wal_degraded). A worker panic
//!   *after* journaling quarantines the shard but loses nothing: the
//!   batch is durable, and the restore replay completes it.
//! * **Poison-aware locking.** Every lock acquisition maps
//!   [`PoisonError`] into the quarantine path (or recovers the inner
//!   guard, for the WAL mutex) instead of propagating a panic — one
//!   thread's failure never cascades through `expect("shard lock")`.

use crate::answers::{AnswerIndex, UpdateError};
use crate::machine::MachineStateDump;
use agq_circuit::{FiniteMaint, PeekScratch, PermMaint, RingMaint};
use agq_core::{
    compile, eliminate_quantifiers, CompileError, CompileOptions, DurabilityPolicy, QueryEngine,
    TupleUpdate, WalFailure, WalSink,
};
use agq_logic::{normalize, Expr, Formula};
use agq_perm::SegTreePerm;
use agq_semiring::Semiring;
use agq_structure::gaifman::GaifmanComponents;
use agq_structure::{Elem, RelId, Structure, WeightedStructure};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{
    Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// `std::thread::available_parallelism()` re-reads cgroup limits from the
/// filesystem on every call (~10µs on Linux) — far too slow for per-batch
/// dispatch decisions. Resolve it once per process.
pub(crate) fn available_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// One shard's mutable state: a point-query evaluator state and an
/// enumeration index state, both over the engine-wide shared plans.
struct Shard<S: Semiring, P: PermMaint<S>> {
    engine: QueryEngine<S, P>,
    index: AnswerIndex,
}

/// A shard's lock plus its quarantine flag. The flag lives *outside* the
/// lock so readers can skip a quarantined shard without blocking on a
/// lock a wedged worker might hold, and so the facade never needs to
/// touch possibly-corrupt state to learn that it is corrupt.
struct ShardCell<S: Semiring, P: PermMaint<S>> {
    lock: RwLock<Shard<S, P>>,
    quarantined: AtomicBool,
}

impl<S: Semiring, P: PermMaint<S>> ShardCell<S, P> {
    fn new(shard: Shard<S, P>) -> Self {
        ShardCell {
            lock: RwLock::new(shard),
            quarantined: AtomicBool::new(false),
        }
    }
}

/// How the `try_*` serving APIs treat quarantined shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// Any quarantined shard that could contribute to the result turns
    /// the call into [`ServeError::ShardUnavailable`].
    Strict,
    /// Serve from the healthy shards and report the missing ones in
    /// [`Served::Degraded`]. The default.
    #[default]
    Degrade,
}

/// A serving result that is explicit about completeness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Served<T> {
    /// Every shard contributed: the value is exact.
    Complete(T),
    /// Quarantined shards were skipped: the value covers only the
    /// healthy shards.
    Degraded {
        /// The (partial) result over the healthy shards.
        value: T,
        /// The quarantined shards that did not contribute, ascending.
        missing_shards: Vec<usize>,
    },
}

impl<T> Served<T> {
    /// The value, complete or not.
    pub fn value(self) -> T {
        match self {
            Served::Complete(v) | Served::Degraded { value: v, .. } => v,
        }
    }

    /// Borrow the value, complete or not.
    pub fn get(&self) -> &T {
        match self {
            Served::Complete(v) | Served::Degraded { value: v, .. } => v,
        }
    }

    /// Whether every shard contributed.
    pub fn is_complete(&self) -> bool {
        matches!(self, Served::Complete(_))
    }

    /// The shards that did not contribute (empty when complete).
    pub fn missing_shards(&self) -> &[usize] {
        match self {
            Served::Complete(_) => &[],
            Served::Degraded { missing_shards, .. } => missing_shards,
        }
    }
}

/// Typed serving failure under [`ServeMode::Strict`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Quarantined shards would be needed for a complete answer.
    ShardUnavailable {
        /// The quarantined shards, ascending.
        shards: Vec<usize>,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShardUnavailable { shards } => {
                write!(
                    f,
                    "quarantined shards {shards:?} are required for this result"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A point-in-time operator view of the engine's fault state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthReport {
    /// Total shard count.
    pub shards: usize,
    /// Quarantined shard ids, ascending.
    pub quarantined: Vec<usize>,
    /// Whether a WAL sink is attached.
    pub wal_attached: bool,
    /// Whether a fail-open policy has applied batches past a failed
    /// journal append — the in-memory state runs ahead of the durable
    /// log until the next snapshot.
    pub wal_degraded: bool,
    /// The LSN of the last accepted batch.
    pub last_lsn: u64,
}

/// A first-order query served from Gaifman-component shards: one shared
/// immutable compiled plan, per-shard mutable state, one update/query
/// language. See the [module docs](self) for the decomposition argument
/// and the fault boundary.
pub struct ShardedEngine<S: Semiring, P: PermMaint<S>> {
    components: GaifmanComponents,
    shards: Vec<ShardCell<S, P>>,
    component_local: bool,
    arity: usize,
    /// Durability state: the optional WAL sink, the durability policy,
    /// and the LSN of the last accepted batch, assigned under one mutex
    /// *while the accepting batch's shard write locks are still held* so
    /// LSN order agrees with apply order for conflicting batches.
    wal: Mutex<WalState>,
    /// `true` = [`ServeMode::Strict`] for the `try_*` APIs.
    serve_strict: AtomicBool,
    /// The LSN this engine was seeded with (0 at build, the replayed LSN
    /// after recovery): [`ShardedEngine::self_check`]'s monotonicity
    /// floor — the live counter may never run behind it.
    lsn_floor: AtomicU64,
}

/// The durability side-state of a [`ShardedEngine`] (see its `wal` field).
struct WalState {
    sink: Option<Box<dyn WalSink>>,
    last_lsn: u64,
    policy: DurabilityPolicy,
    /// Set when a fail-open policy accepted a batch it could not journal.
    degraded: bool,
}

impl WalState {
    fn fresh(last_lsn: u64) -> Self {
        WalState {
            sink: None,
            last_lsn,
            policy: DurabilityPolicy::default(),
            degraded: false,
        }
    }
}

/// One shard's serializable mutable state, as captured by
/// [`ShardedEngine::snapshot_states`] under a consistent all-shards
/// snapshot: the point-query evaluator's slot/gate value vectors and the
/// full enumeration machine dump (input summand lists plus the
/// order-bearing support/pool internals). Everything else a shard holds
/// is shared immutable plan.
pub struct ShardStateDump<S> {
    /// Point side: input-slot values, indexed by slot id.
    pub slot_values: Vec<S>,
    /// Point side: committed per-gate values, indexed by gate id.
    pub gate_values: Vec<S>,
    /// Enumeration side: the machine's mutable state.
    pub machine: MachineStateDump,
}

/// Sharded engine for arbitrary semirings (logarithmic point queries).
pub type GeneralShardedEngine<S> = ShardedEngine<S, SegTreePerm<S>>;
/// Sharded engine for rings (constant-time point queries).
pub type RingShardedEngine<S> = ShardedEngine<S, RingMaint<S>>;
/// Sharded engine for finite semirings (constant-time point queries).
pub type FiniteShardedEngine<S> = ShardedEngine<S, FiniteMaint<S>>;

/// Where a tuple routes.
enum Route {
    /// All elements in one shard.
    Shard(usize),
    /// Elements span shards: structurally zero for component-local
    /// formulas.
    Cross,
    /// Some element is outside the domain the decomposition was built
    /// over: never a valid tuple, reported as a malformed update instead
    /// of an out-of-bounds panic in the routing table.
    Unknown,
}

impl<S: Semiring, P: PermMaint<S>> ShardedEngine<S, P> {
    /// Preprocess a quantifier-free `φ` over `a` for sharded point
    /// queries, enumeration, and Gaifman-preserving updates, packing the
    /// Gaifman components into at most `max_shards` shards
    /// (`0` = one shard per component).
    ///
    /// Compiles once; instantiates one mutable state per shard. Formulas
    /// whose answers are not syntactically component-local fall back to
    /// one shard (correct, unsharded).
    pub fn build(
        a: &Arc<Structure>,
        phi: &Formula,
        opts: &CompileOptions,
        max_shards: usize,
    ) -> Result<Self, CompileError> {
        // The admission test (arity ≥ 1 included — a closed formula's
        // empty-tuple answer belongs to no component) lives in one
        // place: `Formula::answers_component_local`.
        let component_local = phi.answers_component_local();
        let components = GaifmanComponents::new(a, if component_local { max_shards } else { 1 });
        let num_shards = components.num_shards();

        // Point-query side: compile the indicator expression [φ] once,
        // derive the shared evaluation plan (with memoized FreeVar
        // cones), then instantiate one evaluator state per shard.
        let expr: Expr<S> = Expr::Bracket(phi.clone());
        let mut copts = opts.clone();
        copts.dynamic_atoms = true;
        let (expr, a2) = eliminate_quantifiers(&expr, a, &copts)?;
        let nf = normalize(&expr)?;
        let compiled = Arc::new(compile(&a2, &nf, &copts)?);
        let arity = compiled.free_vars.len();
        let plan = Arc::new(QueryEngine::<S, P>::build_plan(&compiled));
        let weights: WeightedStructure<S> = WeightedStructure::new(a2);

        // Enumeration side: build the answer index once (shared EnumPlan
        // + slot registry), then fork one shard-restricted state each.
        let base = AnswerIndex::build_dynamic(a, phi, opts)?;

        let mut base = Some(base);
        let shards = (0..num_shards)
            .map(|s| {
                let engine = QueryEngine::from_parts(compiled.clone(), plan.clone(), &weights);
                let index = if num_shards == 1 {
                    base.take().expect("single shard consumes the base index")
                } else {
                    base.as_ref()
                        .expect("base index alive")
                        .shard_filtered(|e| components.shard_of(e) == s as u32)
                };
                ShardCell::new(Shard { engine, index })
            })
            .collect();
        Ok(ShardedEngine {
            components,
            shards,
            component_local,
            arity,
            wal: Mutex::new(WalState::fresh(0)),
            serve_strict: AtomicBool::new(false),
            lsn_floor: AtomicU64::new(0),
        })
    }

    /// Reassemble an engine from separately restored shard states — the
    /// restore constructor of `agq-persist`. Every `(engine, index)` pair
    /// must have been instantiated over one shared plan (the saved one);
    /// `last_lsn` seeds the log sequence counter. Errs when the shard
    /// count disagrees with the decomposition.
    pub fn from_saved_parts(
        components: GaifmanComponents,
        component_local: bool,
        arity: usize,
        shard_states: Vec<(QueryEngine<S, P>, AnswerIndex)>,
        last_lsn: u64,
    ) -> Result<Self, &'static str> {
        if shard_states.len() != components.num_shards() {
            return Err("shard count disagrees with the component decomposition");
        }
        Ok(ShardedEngine {
            components,
            shards: shard_states
                .into_iter()
                .map(|(engine, index)| ShardCell::new(Shard { engine, index }))
                .collect(),
            component_local,
            arity,
            wal: Mutex::new(WalState::fresh(last_lsn)),
            serve_strict: AtomicBool::new(false),
            lsn_floor: AtomicU64::new(last_lsn),
        })
    }

    /// The WAL mutex, poison-recovered: the journal path never panics
    /// while holding it (injected panics fire before the lock is taken,
    /// and sink errors are returned, not thrown), so a poisoned state
    /// still holds a coherent `WalState` — recover it rather than
    /// cascade a different thread's failure.
    fn lock_wal(&self) -> MutexGuard<'_, WalState> {
        self.wal.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A shard's read guard, or `Err(s)` if it is quarantined. A
    /// poisoned lock — a panic escaped while the state was mid-mutation
    /// — quarantines the shard instead of propagating the panic.
    fn read_shard(&self, s: usize) -> Result<RwLockReadGuard<'_, Shard<S, P>>, usize> {
        let cell = &self.shards[s];
        if cell.quarantined.load(Ordering::Acquire) {
            return Err(s);
        }
        match cell.lock.read() {
            Ok(g) => Ok(g),
            Err(_) => {
                cell.quarantined.store(true, Ordering::Release);
                Err(s)
            }
        }
    }

    /// A shard's write guard, with the same quarantine mapping as
    /// [`ShardedEngine::read_shard`].
    fn write_shard(&self, s: usize) -> Result<RwLockWriteGuard<'_, Shard<S, P>>, usize> {
        let cell = &self.shards[s];
        if cell.quarantined.load(Ordering::Acquire) {
            return Err(s);
        }
        match cell.lock.write() {
            Ok(g) => Ok(g),
            Err(_) => {
                cell.quarantined.store(true, Ordering::Release);
                Err(s)
            }
        }
    }

    /// Capture every shard's mutable state plus the LSN it is current
    /// through, under one consistent all-shards snapshot (all read locks
    /// in shard order — a concurrent batch is either fully included, or
    /// excluded and sequenced after the returned LSN, never torn).
    ///
    /// Errs if any shard is quarantined: a snapshot must cover the whole
    /// engine, and a quarantined shard's state is not trustworthy.
    /// Restore the shard first.
    pub fn snapshot_states(&self) -> Result<(u64, Vec<ShardStateDump<S>>), ServeError> {
        let (guards, missing) = self.read_healthy();
        if !missing.is_empty() {
            return Err(ServeError::ShardUnavailable { shards: missing });
        }
        let lsn = self.lock_wal().last_lsn;
        let dumps = guards
            .iter()
            .map(|(_, shard)| {
                let eval = shard.engine.evaluator();
                ShardStateDump {
                    slot_values: eval.slot_values().to_vec(),
                    gate_values: eval.gate_values().to_vec(),
                    machine: shard.index.machine().dump_state(),
                }
            })
            .collect();
        Ok((lsn, dumps))
    }

    /// Run `f` against one shard's state under its read lock — the
    /// shared-plan accessor snapshotting uses (every shard points at the
    /// same compiled query and plans).
    ///
    /// # Panics
    /// Panics if shard `s` is quarantined; use
    /// [`ShardedEngine::with_healthy_shard`] when any shard will do.
    pub fn with_shard<R>(
        &self,
        s: usize,
        f: impl FnOnce(&QueryEngine<S, P>, &AnswerIndex) -> R,
    ) -> R {
        match self.read_shard(s) {
            Ok(shard) => f(&shard.engine, &shard.index),
            Err(s) => panic!("shard {s} is quarantined"),
        }
    }

    /// Run `f` against the first healthy shard's state under its read
    /// lock — shared-plan access that tolerates quarantined shards (the
    /// restore path sources plan `Arc`s this way). `None` iff every
    /// shard is quarantined.
    pub fn with_healthy_shard<R>(
        &self,
        f: impl FnOnce(&QueryEngine<S, P>, &AnswerIndex) -> R,
    ) -> Option<R> {
        for s in 0..self.shards.len() {
            if let Ok(shard) = self.read_shard(s) {
                return Some(f(&shard.engine, &shard.index));
            }
        }
        None
    }

    /// Answer-tuple arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of shards serving this engine.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Whether `φ` was admitted to sharding: at least one free variable
    /// and the component-locality check passed. When false, the engine
    /// runs with one shard.
    pub fn component_local(&self) -> bool {
        self.component_local
    }

    /// The component decomposition backing the routing.
    pub fn components(&self) -> &GaifmanComponents {
        &self.components
    }

    fn route(&self, tuple: &[Elem]) -> Route {
        if self.shards.len() == 1 || tuple.is_empty() {
            return Route::Shard(0);
        }
        let mut it = tuple.iter();
        let first = match self
            .components
            .try_shard_of(*it.next().expect("tuple is nonempty"))
        {
            Some(s) => s,
            None => return Route::Unknown,
        };
        for &e in it {
            match self.components.try_shard_of(e) {
                Some(s) if s == first => {}
                Some(_) => return Route::Cross,
                None => return Route::Unknown,
            }
        }
        Route::Shard(first as usize)
    }

    /// Point query: the indicator value `[φ(ā)]`, served by the owning
    /// shard under a read lock. A tuple spanning shards is structurally
    /// zero (its elements can never be chained by positive atoms). A
    /// tuple owned by a quarantined shard is served as zero — use
    /// [`ShardedEngine::try_query`] to distinguish "absent" from
    /// "unavailable".
    pub fn query(&self, tuple: &[Elem]) -> S {
        self.query_inner(tuple).0
    }

    /// [`ShardedEngine::query`] with explicit completeness: `Degraded`
    /// (value zero, naming the owning shard) when the owner is
    /// quarantined, or a typed error under [`ServeMode::Strict`]. Other
    /// shards' quarantine never affects a point query — the cone above a
    /// single-shard tuple's slots stays inside its component.
    pub fn try_query(&self, tuple: &[Elem]) -> Result<Served<S>, ServeError> {
        let (value, missing) = self.query_inner(tuple);
        self.serve(value, missing)
    }

    fn query_inner(&self, tuple: &[Elem]) -> (S, Vec<usize>) {
        match self.route(tuple) {
            Route::Cross | Route::Unknown => (S::zero(), Vec::new()),
            Route::Shard(s) => match self.read_shard(s) {
                Ok(shard) => {
                    let mut scratch = PeekScratch::new();
                    let mut patches = Vec::new();
                    (
                        shard.engine.query_with(tuple, &mut scratch, &mut patches),
                        Vec::new(),
                    )
                }
                Err(s) => (S::zero(), vec![s]),
            },
        }
    }

    /// Wrap a computed value according to the serve mode: complete,
    /// degraded naming the skipped shards, or a strict-mode error.
    fn serve<T>(&self, value: T, missing: Vec<usize>) -> Result<Served<T>, ServeError> {
        if missing.is_empty() {
            Ok(Served::Complete(value))
        } else if self.serve_strict.load(Ordering::Acquire) {
            Err(ServeError::ShardUnavailable { shards: missing })
        } else {
            Ok(Served::Degraded {
                value,
                missing_shards: missing,
            })
        }
    }

    /// How the `try_*` APIs react to quarantined shards (the plain
    /// value-returning APIs always degrade silently).
    pub fn set_serve_mode(&self, mode: ServeMode) {
        self.serve_strict
            .store(mode == ServeMode::Strict, Ordering::Release);
    }

    /// The current serve mode.
    pub fn serve_mode(&self) -> ServeMode {
        if self.serve_strict.load(Ordering::Acquire) {
            ServeMode::Strict
        } else {
            ServeMode::Degrade
        }
    }

    /// Values at many tuples: the batch is grouped by owning shard and
    /// the non-empty shard groups are spread over at most one worker per
    /// core, each taking its shards' read locks in turn — so a batch
    /// proceeds concurrently with updates to shards it does not touch,
    /// without spawning a thread per shard (`max_shards = 0` can make
    /// the shard count data-sized). Results come back in input order.
    pub fn query_batch(&self, tuples: &[&[Elem]]) -> Vec<S>
    where
        P: Send + Sync,
    {
        self.query_batch_inner(tuples).0
    }

    /// [`ShardedEngine::query_batch`] with explicit completeness: tuples
    /// owned by quarantined shards come back zero and the shards are
    /// named in `Degraded` (or turn the whole call into a strict-mode
    /// error).
    pub fn try_query_batch(&self, tuples: &[&[Elem]]) -> Result<Served<Vec<S>>, ServeError>
    where
        P: Send + Sync,
    {
        let (values, missing) = self.query_batch_inner(tuples);
        self.serve(values, missing)
    }

    fn query_batch_inner(&self, tuples: &[&[Elem]]) -> (Vec<S>, Vec<usize>)
    where
        P: Send + Sync,
    {
        // Group tuple indices by shard; resolve cross-shard tuples inline.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut out: Vec<Option<S>> = vec![None; tuples.len()];
        for (i, t) in tuples.iter().enumerate() {
            match self.route(t) {
                Route::Cross | Route::Unknown => out[i] = Some(S::zero()),
                Route::Shard(s) => groups[s].push(i),
            }
        }
        // Take the healthy read guards on the calling thread (shard
        // order), resolving quarantined shards' tuples to zero; workers
        // then only ever see `&Shard` references that are known good.
        type ShardWork<'a, S, P> = Vec<(RwLockReadGuard<'a, Shard<S, P>>, Vec<usize>)>;
        let mut missing = Vec::new();
        let mut work: ShardWork<'_, S, P> = Vec::new();
        for (s, g) in groups.into_iter().enumerate() {
            if g.is_empty() {
                continue;
            }
            match self.read_shard(s) {
                Ok(guard) => work.push((guard, g)),
                Err(s) => {
                    missing.push(s);
                    for &i in &g {
                        out[i] = Some(S::zero());
                    }
                }
            }
        }
        let workers = available_cores().min(work.len()).max(1);
        if workers <= 1 {
            // one core (or one shard group): answer on the calling thread
            // instead of paying a thread spawn
            let mut scratch = PeekScratch::new();
            let mut patches = Vec::new();
            for (shard, g) in &work {
                for &i in g {
                    out[i] = Some(
                        shard
                            .engine
                            .query_with(tuples[i], &mut scratch, &mut patches),
                    );
                }
            }
            let vals = out.into_iter().map(|v| v.expect("all filled")).collect();
            return (vals, missing);
        }
        let pairs: Vec<(&Shard<S, P>, &[usize])> =
            work.iter().map(|(gd, g)| (&**gd, g.as_slice())).collect();
        let chunk = pairs.len().div_ceil(workers);
        let results: Vec<(Vec<usize>, Vec<S>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .chunks(chunk)
                .map(|assigned| {
                    scope.spawn(move || {
                        let mut scratch = PeekScratch::new();
                        let mut patches = Vec::new();
                        assigned
                            .iter()
                            .map(|(shard, g)| {
                                let vals: Vec<S> = g
                                    .iter()
                                    .map(|&i| {
                                        shard.engine.query_with(
                                            tuples[i],
                                            &mut scratch,
                                            &mut patches,
                                        )
                                    })
                                    .collect();
                                (g.to_vec(), vals)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("read-only query worker"))
                .collect()
        });
        for (idxs, vals) in results {
            for (i, v) in idxs.into_iter().zip(vals) {
                out[i] = Some(v);
            }
        }
        let vals = out.into_iter().map(|v| v.expect("all filled")).collect();
        (vals, missing)
    }

    /// Apply one Gaifman-preserving update to the owning shard (write
    /// lock on that shard only): both the shard's enumeration index
    /// (incremental, `O_φ(1)`) and its point-query evaluator absorb it.
    ///
    /// The update is journaled **write-ahead** under the shard lock
    /// (validate → journal → apply): a fail-stop WAL failure rejects it
    /// with nothing applied and the LSN unadvanced, and a panic during
    /// the apply quarantines the shard — already durable, so a restore
    /// replay completes it.
    pub fn apply_update(&self, u: &TupleUpdate) -> Result<(), UpdateError> {
        let s = match self.route(&u.tuple) {
            Route::Shard(s) => s,
            Route::Cross => {
                // A shard-spanning tuple is never a clique of the
                // compile-time Gaifman graph: inserting it is not
                // Gaifman-preserving, removing it is a no-op.
                return if u.present {
                    Err(UpdateError::NotGaifmanPreserving)
                } else {
                    Ok(())
                };
            }
            Route::Unknown => return Err(UpdateError::MalformedTuple),
        };
        let mut shard = self
            .write_shard(s)
            .map_err(|shard| UpdateError::ShardUnavailable { shard })?;
        shard.index.validate_update(u)?;
        self.journal(std::slice::from_ref(u))?;
        let shard = &mut *shard;
        let applied = catch_unwind(AssertUnwindSafe(|| {
            agq_core::fault::point("shard.apply");
            shard
                .index
                .apply_update(u)
                .expect("update was pre-validated");
            shard.engine.apply_update(u);
        }));
        if applied.is_err() {
            self.shards[s].quarantined.store(true, Ordering::Release);
            return Err(UpdateError::ShardPanicked { shards: vec![s] });
        }
        Ok(())
    }

    /// Journal a batch write-ahead: assign the next LSN and append +
    /// flush under the durability policy, with the accepting batch's
    /// shard write locks still held (so LSN order agrees with apply
    /// order). On success — or on append exhaustion under a fail-open
    /// policy, which marks the WAL degraded — the LSN is committed and
    /// the caller proceeds to apply. Under fail-stop, exhaustion commits
    /// nothing and the caller must not apply.
    fn journal(&self, updates: &[TupleUpdate]) -> Result<u64, UpdateError> {
        let mut wal = self.lock_wal();
        let lsn = wal.last_lsn + 1;
        let WalState {
            sink,
            policy,
            degraded,
            ..
        } = &mut *wal;
        if let Some(sink) = sink {
            if let Err(e) = policy.append(sink.as_mut(), lsn, updates) {
                match policy.on_failure {
                    WalFailure::FailStop => return Err(UpdateError::Wal(e.to_string())),
                    WalFailure::FailOpen => *degraded = true,
                }
            }
        }
        wal.last_lsn = lsn;
        Ok(lsn)
    }

    /// Attach a write-ahead-log sink: every subsequently accepted batch
    /// is appended under its LSN, before it is applied. Returns the
    /// previous sink.
    pub fn attach_wal(&self, sink: Box<dyn WalSink>) -> Option<Box<dyn WalSink>> {
        self.lock_wal().sink.replace(sink)
    }

    /// Detach the WAL sink (e.g. before replaying a recovered tail).
    pub fn detach_wal(&self) -> Option<Box<dyn WalSink>> {
        self.lock_wal().sink.take()
    }

    /// The LSN of the last accepted update batch (0 before any update).
    pub fn last_lsn(&self) -> u64 {
        self.lock_wal().last_lsn
    }

    /// Reset the log sequence counter — used after WAL replay so
    /// subsequent batches continue from the highest committed LSN
    /// rather than from the snapshot's. Also moves the
    /// [`ShardedEngine::self_check`] monotonicity floor.
    pub fn set_last_lsn(&self, lsn: u64) {
        self.lock_wal().last_lsn = lsn;
        self.lsn_floor.store(lsn, Ordering::Release);
    }

    /// The retry/failure policy for WAL appends.
    pub fn set_durability(&self, policy: DurabilityPolicy) {
        self.lock_wal().policy = policy;
    }

    /// The current WAL durability policy.
    pub fn durability(&self) -> DurabilityPolicy {
        self.lock_wal().policy
    }

    /// Whether a fail-open policy has accepted batches past a failed
    /// journal append. While set, the in-memory state runs ahead of the
    /// durable log; a fresh snapshot re-establishes durability (see
    /// [`ShardedEngine::reset_wal_degraded`]).
    pub fn wal_degraded(&self) -> bool {
        self.lock_wal().degraded
    }

    /// Clear the degraded-WAL marker — call after capturing a snapshot
    /// that covers the unjournaled batches.
    pub fn reset_wal_degraded(&self) {
        self.lock_wal().degraded = false;
    }

    /// Apply a whole batch of Gaifman-preserving updates: the batch is
    /// coalesced per `(rel, tuple)` (the last update wins, cross-shard
    /// removals are dropped as no-ops), grouped by owning shard, and the
    /// non-empty shard groups are applied **in parallel** — each shard's
    /// write lock is taken exactly once and absorbs its whole group with
    /// one coalesced sweep per side ([`AnswerIndex::apply_batch`] /
    /// [`agq_core::QueryEngine::apply_batch`]).
    ///
    /// The batch is all-or-nothing on the happy path: every update is
    /// validated against the shared compiled plan, then journaled
    /// write-ahead, *before* any in-memory mutation — on a validation,
    /// routing, quarantine, or fail-stop WAL error no shard has been
    /// modified and the LSN has not advanced. The one partial outcome is
    /// a worker panic mid-apply ([`UpdateError::ShardPanicked`]): the
    /// panicking shards are quarantined, every other shard has applied
    /// its group, and because the batch was journaled first, a restore
    /// replay completes the quarantined shards to the same state.
    /// Returns the number of coalesced updates that changed an
    /// enumeration index.
    pub fn apply_batch(&self, updates: &[TupleUpdate]) -> Result<usize, UpdateError>
    where
        P: Send + Sync,
    {
        // Coalesce per (rel, tuple) and route: walk backwards so the last
        // update wins.
        let mut seen: agq_core::FxHashSet<(RelId, &[Elem])> =
            agq_core::FxHashSet::with_capacity_and_hasher(updates.len(), Default::default());
        let mut groups: Vec<Vec<&TupleUpdate>> = vec![Vec::new(); self.shards.len()];
        for u in updates.iter().rev() {
            if !seen.insert((u.rel, &u.tuple[..])) {
                continue;
            }
            match self.route(&u.tuple) {
                Route::Shard(s) => groups[s].push(u),
                Route::Cross => {
                    // see apply_update: inserting a shard-spanning tuple
                    // is never Gaifman-preserving, removing one is a no-op
                    if u.present {
                        return Err(UpdateError::NotGaifmanPreserving);
                    }
                }
                Route::Unknown => return Err(UpdateError::MalformedTuple),
            }
        }
        let work: Vec<(usize, &[&TupleUpdate])> = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(s, g)| (s, g.as_slice()))
            .collect();
        if work.is_empty() {
            return Ok(0);
        }
        // All-or-nothing *visibility*: take every affected shard's write
        // lock up front, in shard order — the same order cross-shard
        // readers acquire their read locks, so the disciplines compose
        // without deadlock — and hold them all for the whole
        // application. A snapshot reader (`count`, `answer`,
        // `for_each_answer`, …) then sees the batch fully applied or not
        // at all, never half of it. `work` is built in ascending shard
        // order. A quarantined shard rejects the whole batch here,
        // before anything is journaled or applied.
        let mut guards: Vec<_> = Vec::with_capacity(work.len());
        for (s, _) in &work {
            guards.push(
                self.write_shard(*s)
                    .map_err(|shard| UpdateError::ShardUnavailable { shard })?,
            );
        }
        // Pre-validate the whole batch before journaling or mutating
        // anything. The verdict depends only on the shared plan, so the
        // first affected shard's index can vouch for every group.
        for u in work.iter().flat_map(|(_, g)| g.iter()) {
            guards[0].index.validate_update(u)?;
        }
        // Journal write-ahead while the write locks are held; the
        // coalesced batch is only materialized when a sink is attached,
        // so the no-WAL ingestion hot path pays one mutex lock and an
        // increment. On a fail-stop WAL error the locks drop with
        // nothing applied and the LSN unadvanced.
        {
            let mut wal = self.lock_wal();
            let lsn = wal.last_lsn + 1;
            let WalState {
                sink,
                policy,
                degraded,
                ..
            } = &mut *wal;
            if let Some(sink) = sink {
                let owned: Vec<TupleUpdate> = work
                    .iter()
                    .flat_map(|(_, g)| g.iter().map(|&u| u.clone()))
                    .collect();
                if let Err(e) = policy.append(sink.as_mut(), lsn, &owned) {
                    match policy.on_failure {
                        WalFailure::FailStop => return Err(UpdateError::Wal(e.to_string())),
                        WalFailure::FailOpen => *degraded = true,
                    }
                }
            }
            wal.last_lsn = lsn;
        }
        // Each group is already distinct per tuple (the coalescing pass
        // above), so the shards take the coalesced entry points. Every
        // group runs under `catch_unwind`: a panic (a bug, or the
        // `shard.apply` / `batch.worker` fail-points) quarantines the
        // affected shards instead of crossing the facade.
        fn apply_group<S: Semiring, P: PermMaint<S>>(
            shard: &mut Shard<S, P>,
            g: &[&TupleUpdate],
        ) -> usize {
            agq_core::fault::point("shard.apply");
            let n = shard
                .index
                .apply_batch_coalesced(g)
                .expect("batch was pre-validated");
            shard.engine.apply_batch_coalesced(g);
            n
        }
        let workers = available_cores().min(work.len()).max(1);
        // Spawning threads costs tens of microseconds — far more than a
        // typical shard group. Apply on the calling thread unless there is
        // real parallelism to exploit.
        let mut applied = 0usize;
        let mut panicked: Vec<usize> = Vec::new();
        if workers == 1 {
            for (shard, (s, g)) in guards.iter_mut().zip(&work) {
                match catch_unwind(AssertUnwindSafe(|| apply_group(&mut **shard, g))) {
                    Ok(n) => applied += n,
                    Err(_) => panicked.push(*s),
                }
            }
        } else {
            let mut pairs: Vec<(usize, &mut Shard<S, P>, &[&TupleUpdate])> = guards
                .iter_mut()
                .zip(&work)
                .map(|(shard, (s, g))| (*s, &mut **shard, *g))
                .collect();
            let chunk = pairs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<(Vec<usize>, _)> = pairs
                    .chunks_mut(chunk)
                    .map(|assigned| {
                        let ids: Vec<usize> = assigned.iter().map(|(s, _, _)| *s).collect();
                        let h = scope.spawn(move || {
                            agq_core::fault::point("batch.worker");
                            let mut applied = 0usize;
                            let mut panicked = Vec::new();
                            for (s, shard, g) in assigned.iter_mut() {
                                match catch_unwind(AssertUnwindSafe(|| apply_group(shard, g))) {
                                    Ok(n) => applied += n,
                                    Err(_) => panicked.push(*s),
                                }
                            }
                            (applied, panicked)
                        });
                        (ids, h)
                    })
                    .collect();
                for (ids, h) in handles {
                    match h.join() {
                        Ok((n, p)) => {
                            applied += n;
                            panicked.extend(p);
                        }
                        // The worker died outside the per-group
                        // catch_unwind (the `batch.worker` fail-point,
                        // or glue-code bugs): which of its groups were
                        // applied is unknown, so quarantine them all —
                        // the journaled batch makes the restore exact.
                        Err(_) => panicked.extend(ids),
                    }
                }
            });
        }
        if !panicked.is_empty() {
            panicked.sort_unstable();
            for &s in &panicked {
                self.shards[s].quarantined.store(true, Ordering::Release);
            }
            return Err(UpdateError::ShardPanicked { shards: panicked });
        }
        drop(guards);
        Ok(applied)
    }

    /// A consistent snapshot of the healthy shards: their read locks,
    /// acquired in shard order (the same order
    /// [`ShardedEngine::apply_batch`] takes its write locks, so readers
    /// and batch writers cannot deadlock), plus the quarantined shard
    /// ids that were skipped. Holding all of the guards, a concurrent
    /// batch is observed fully applied or not at all — never torn across
    /// shards.
    #[allow(clippy::type_complexity)]
    fn read_healthy(&self) -> (Vec<(usize, RwLockReadGuard<'_, Shard<S, P>>)>, Vec<usize>) {
        let mut guards = Vec::with_capacity(self.shards.len());
        let mut missing = Vec::new();
        for s in 0..self.shards.len() {
            match self.read_shard(s) {
                Ok(g) => guards.push((s, g)),
                Err(s) => missing.push(s),
            }
        }
        (guards, missing)
    }

    /// Number of answers, summed over the **healthy** shards under one
    /// consistent snapshot — a concurrent batch never shows up as a torn
    /// total. Quarantined shards contribute nothing; use
    /// [`ShardedEngine::try_count`] to be told when that happens.
    pub fn count(&self) -> u64 {
        self.read_healthy()
            .0
            .iter()
            .map(|(_, s)| s.index.count())
            .sum()
    }

    /// [`ShardedEngine::count`] with explicit completeness.
    pub fn try_count(&self) -> Result<Served<u64>, ServeError> {
        let (guards, missing) = self.read_healthy();
        let total = guards.iter().map(|(_, s)| s.index.count()).sum();
        self.serve(total, missing)
    }

    /// Whether at least one answer exists on a **healthy** shard
    /// (`O_φ(1)` per shard), under the same consistent snapshot as
    /// [`ShardedEngine::count`].
    pub fn is_nonempty(&self) -> bool {
        self.read_healthy()
            .0
            .iter()
            .any(|(_, s)| s.index.is_nonempty())
    }

    /// [`ShardedEngine::is_nonempty`] with explicit completeness (a
    /// degraded `false` only means the healthy shards are empty).
    pub fn try_is_nonempty(&self) -> Result<Served<bool>, ServeError> {
        let (guards, missing) = self.read_healthy();
        let any = guards.iter().any(|(_, s)| s.index.is_nonempty());
        self.serve(any, missing)
    }

    /// Direct access: the answer of **global rank** `k` (shard id, then
    /// the shard's native cursor order — the order of
    /// [`ShardedEngine::for_each_answer`]) without enumerating preceding
    /// answers. The per-shard counts form the rank prefix table; the
    /// owning shard answers its local rank in `O(depth)` gate visits.
    /// `None` iff `k >= count()`. The whole lookup runs under one
    /// consistent snapshot of the healthy shards; quarantined shards are
    /// transparently absent from the rank space (use
    /// [`ShardedEngine::try_answer`] to detect that).
    pub fn answer(&self, k: u64) -> Option<Vec<Elem>> {
        let guards = self.read_healthy().0;
        let mut k = k;
        for (_, shard) in &guards {
            let c = shard.index.count();
            if k < c {
                return shard.index.answer(k);
            }
            k -= c;
        }
        None
    }

    /// [`ShardedEngine::answer`] with explicit completeness: a degraded
    /// result means the rank space omits the listed quarantined shards.
    #[allow(clippy::type_complexity)]
    pub fn try_answer(&self, k: u64) -> Result<Served<Option<Vec<Elem>>>, ServeError> {
        let (guards, missing) = self.read_healthy();
        let mut k = k;
        let mut found = None;
        for (_, shard) in &guards {
            let c = shard.index.count();
            if k < c {
                found = shard.index.answer(k);
                break;
            }
            k -= c;
        }
        self.serve(found, missing)
    }

    /// Answers of global ranks `k … k+len-1` (clipped at the end): one
    /// rank descent into the owning shard, then a constant-delay cursor
    /// walk that chains across shard boundaries — pagination without
    /// enumerating ranks `< k`, under one consistent snapshot.
    pub fn answer_range(&self, k: u64, len: usize) -> Vec<Vec<Elem>> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let guards = self.read_healthy().0;
        // prefix table: skip whole shards below rank k
        let mut k = k;
        let mut s = 0;
        while s < guards.len() {
            let c = guards[s].1.index.count();
            if k < c {
                break;
            }
            k -= c;
            s += 1;
        }
        while s < guards.len() && out.len() < len {
            let mut it = guards[s].1.index.iter();
            if let Some(first) = it.seek(k) {
                out.push(first);
                while out.len() < len {
                    match it.next() {
                        Some(t) => out.push(t),
                        None => break,
                    }
                }
            }
            k = 0; // subsequent shards continue from their rank 0
            s += 1;
        }
        out
    }

    /// [`ShardedEngine::answer_range`] with explicit completeness.
    #[allow(clippy::type_complexity)]
    pub fn try_answer_range(
        &self,
        k: u64,
        len: usize,
    ) -> Result<Served<Vec<Vec<Elem>>>, ServeError> {
        let missing = self.quarantined_shards();
        if !missing.is_empty() && self.serve_strict.load(Ordering::Acquire) {
            return Err(ServeError::ShardUnavailable { shards: missing });
        }
        let page = self.answer_range(k, len);
        self.serve(page, missing)
    }

    /// A uniformly random answer derived from `rng_seed` (deterministic
    /// per seed), or `None` if the answer set is empty — one rank
    /// descent, no enumeration, under one consistent snapshot.
    pub fn sample(&self, rng_seed: u64) -> Option<Vec<Elem>> {
        let guards = self.read_healthy().0;
        let total: u64 = guards.iter().map(|(_, s)| s.index.count()).sum();
        if total == 0 {
            return None;
        }
        let mut k = ((crate::answers::splitmix64(rng_seed) as u128 * total as u128) >> 64) as u64;
        for (_, shard) in &guards {
            let c = shard.index.count();
            if k < c {
                return shard.index.answer(k);
            }
            k -= c;
        }
        None
    }

    /// Stream every answer to `f` in global rank order (shard id, then
    /// the shard's native cursor order): constant delay per answer, O(1)
    /// memory beyond the caller's own consumption. All shard read locks
    /// are held for the duration — the stream is one consistent
    /// snapshot, and the order is exactly the one
    /// [`ShardedEngine::answer`] indexes.
    pub fn for_each_answer(&self, mut f: impl FnMut(&[Elem])) {
        let guards = self.read_healthy().0;
        for (_, shard) in &guards {
            let mut it = shard.index.iter();
            while let Some(t) = it.next() {
                f(&t);
            }
        }
    }

    /// All answers in global rank order (see
    /// [`ShardedEngine::for_each_answer`]).
    pub fn collect_answers(&self) -> Vec<Vec<Elem>> {
        let mut out = Vec::new();
        self.for_each_answer(|t| out.push(t.to_vec()));
        out
    }

    /// [`ShardedEngine::collect_answers`] with explicit completeness: a
    /// degraded stream covers only the healthy shards' rank intervals.
    #[allow(clippy::type_complexity)]
    pub fn try_collect_answers(&self) -> Result<Served<Vec<Vec<Elem>>>, ServeError> {
        let (guards, missing) = self.read_healthy();
        let mut out = Vec::new();
        for (_, shard) in &guards {
            let mut it = shard.index.iter();
            while let Some(t) = it.next() {
                out.push(t.to_vec());
            }
        }
        self.serve(out, missing)
    }

    /// All answers merged into one globally ordered stream: a thin
    /// collect wrapper over the streaming merge of
    /// [`ShardedEngine::for_each_answer`] (the shards partition the
    /// answer set and own contiguous global-rank intervals, so the
    /// k-way merge by rank is a chain of the per-shard constant-delay
    /// cursors — nothing is materialized per shard, and nothing is
    /// sorted). The global order is rank order, **not** lexicographic:
    /// the native cursor order follows the circuit structure, so a
    /// lexicographic stream would require materializing and sorting
    /// every answer — the OOM risk this method used to carry.
    pub fn enumerate_merged(&self) -> Vec<Vec<Elem>> {
        self.collect_answers()
    }

    // ----- fault management ---------------------------------------------

    /// The shard that owns `tuple` under the Gaifman-component routing,
    /// or `None` when the tuple's elements are not all known to one
    /// component (operators use this to direct
    /// [`ShardedEngine::restore`][`crate::shard`]-style repairs).
    pub fn owning_shard(&self, tuple: &[Elem]) -> Option<usize> {
        match self.route(tuple) {
            Route::Shard(s) => Some(s),
            _ => None,
        }
    }

    /// Manually quarantine shard `s` (e.g. after an external integrity
    /// alarm). Idempotent; out-of-range ids are ignored.
    pub fn quarantine_shard(&self, s: usize) {
        if let Some(cell) = self.shards.get(s) {
            cell.quarantined.store(true, Ordering::Release);
        }
    }

    /// Whether shard `s` is currently quarantined.
    pub fn is_quarantined(&self, s: usize) -> bool {
        self.shards
            .get(s)
            .is_some_and(|cell| cell.quarantined.load(Ordering::Acquire))
    }

    /// Ids of every currently quarantined shard, ascending.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&s| self.shards[s].quarantined.load(Ordering::Acquire))
            .collect()
    }

    /// Replace shard `s` with a freshly rebuilt engine + index and lift
    /// its quarantine. This is the re-admission half of recovery: the
    /// caller (normally `agq_persist::restore_quarantined_shard`)
    /// rebuilds the state from a snapshot plus WAL replay and hands it
    /// over here. Clears lock poison left by the panic that triggered
    /// the quarantine.
    pub fn install_shard(
        &self,
        s: usize,
        engine: QueryEngine<S, P>,
        index: AnswerIndex,
    ) -> Result<(), &'static str> {
        let cell = self.shards.get(s).ok_or("shard id out of range")?;
        // A poisoned lock is expected here (the quarantine was likely
        // caused by a worker panicking mid-write); the old state is
        // discarded wholesale, so recovering the guard is sound.
        let mut guard = cell.lock.write().unwrap_or_else(PoisonError::into_inner);
        *guard = Shard { engine, index };
        drop(guard);
        cell.quarantined.store(false, Ordering::Release);
        Ok(())
    }

    /// A point-in-time health summary for operators and tests.
    pub fn health(&self) -> HealthReport {
        let wal = self.lock_wal();
        HealthReport {
            shards: self.shards.len(),
            quarantined: self.quarantined_shards(),
            wal_attached: wal.sink.is_some(),
            wal_degraded: wal.degraded,
            last_lsn: wal.last_lsn,
        }
    }

    /// Deep invariant verification over every **healthy** shard: each
    /// shard's enumeration structures are checked for internal
    /// consistency ([`AnswerIndex::self_check`]), output arities must
    /// agree across shards, and the WAL position must not have moved
    /// backwards past the floor pinned at construction/restore time.
    /// Returns the quarantined shard ids that were skipped, or the first
    /// violation found.
    pub fn self_check(&self) -> Result<Vec<usize>, String> {
        let (guards, missing) = self.read_healthy();
        let mut arity = None;
        for (s, shard) in &guards {
            shard
                .index
                .self_check()
                .map_err(|e| format!("shard {s}: {e}"))?;
            let a = shard.index.arity();
            match arity {
                None => arity = Some(a),
                Some(prev) if prev != a => {
                    return Err(format!("shard {s}: output arity {a} disagrees with {prev}"));
                }
                Some(_) => {}
            }
        }
        drop(guards);
        let lsn = self.last_lsn();
        let floor = self.lsn_floor.load(Ordering::Acquire);
        if lsn < floor {
            return Err(format!(
                "WAL position moved backwards: last_lsn {lsn} < floor {floor}"
            ));
        }
        Ok(missing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_logic::Var;
    use agq_semiring::Nat;
    use agq_structure::Signature;

    /// Two triangles in different components plus an isolated edge.
    fn three_component_graph() -> (Arc<Structure>, agq_structure::RelId) {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), 9);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (6, 7)] {
            a.insert(e, &[u, v]);
            a.insert(e, &[v, u]);
        }
        (Arc::new(a), e)
    }

    #[test]
    fn shards_partition_answers() {
        let (a, e) = three_component_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), 0).unwrap();
        assert!(eng.component_local());
        assert_eq!(eng.num_shards(), 4, "3 edge components + 1 isolated");
        assert_eq!(eng.count(), 14);
        let collected = eng.collect_answers();
        assert_eq!(
            eng.enumerate_merged(),
            collected,
            "merged stream is the global rank order"
        );
        let mut dedup = collected.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), collected.len(), "partition is duplicate-free");
        for t in &collected {
            assert_eq!(eng.query(t), Nat(1));
        }
        assert_eq!(eng.query(&[0, 3]), Nat(0), "cross-shard tuple is zero");
    }

    #[test]
    fn closed_formula_runs_on_one_shard() {
        // An arity-0 formula's single empty-tuple answer belongs to no
        // component; sharding would duplicate it per shard. The arity
        // rule is folded into `answers_component_local`, so every build
        // path — any max_shards — must degrade to one shard.
        let (a, _e) = three_component_graph();
        for max_shards in [0usize, 1, 2, 8] {
            let eng: GeneralShardedEngine<Nat> =
                ShardedEngine::build(&a, &Formula::True, &CompileOptions::default(), max_shards)
                    .unwrap();
            assert_eq!(eng.arity(), 0);
            assert!(!eng.component_local());
            assert_eq!(eng.num_shards(), 1, "max_shards = {max_shards}");
            assert_eq!(eng.count(), 1, "exactly one empty-tuple answer");
            assert_eq!(eng.collect_answers(), vec![Vec::<u32>::new()]);
            assert_eq!(eng.answer(0), Some(Vec::new()), "rank 0 = empty tuple");
            assert_eq!(eng.answer(1), None);
            assert_eq!(eng.query(&[]), Nat(1));
        }
        // a closed formula with no answers: same admission outcome
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &Formula::False, &CompileOptions::default(), 0).unwrap();
        assert_eq!(eng.num_shards(), 1);
        assert_eq!(eng.count(), 0);
        assert!(!eng.is_nonempty());
        assert_eq!(eng.answer(0), None);
    }

    #[test]
    fn non_local_formula_falls_back_to_one_shard() {
        let (a, e) = three_component_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)])
            .not()
            .and(Formula::neq(Var(0), Var(1)));
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), 0).unwrap();
        assert!(!eng.component_local());
        assert_eq!(eng.num_shards(), 1);
        // cross-component non-edges are genuine answers, served correctly
        assert_eq!(eng.query(&[0, 3]), Nat(1));
        assert_eq!(eng.query(&[0, 1]), Nat(0));
    }

    #[test]
    fn updates_route_to_owning_shard() {
        let (a, e) = three_component_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), 2).unwrap();
        assert_eq!(eng.num_shards(), 2);
        let before = eng.count();
        eng.apply_update(&TupleUpdate::remove(e, &[0, 1])).unwrap();
        assert_eq!(eng.count(), before - 1);
        assert_eq!(eng.query(&[0, 1]), Nat(0));
        assert_eq!(eng.query(&[1, 0]), Nat(1), "reverse edge untouched");
        eng.apply_update(&TupleUpdate::insert(e, &[0, 1])).unwrap();
        assert_eq!(eng.count(), before);
        // cross-shard insert rejected, cross-shard remove is a no-op
        assert_eq!(
            eng.apply_update(&TupleUpdate::insert(e, &[0, 3])),
            Err(UpdateError::NotGaifmanPreserving)
        );
        assert_eq!(eng.apply_update(&TupleUpdate::remove(e, &[0, 3])), Ok(()));
    }

    #[test]
    fn sharded_direct_access_matches_stream() {
        let (a, e) = three_component_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), 0).unwrap();
        assert!(eng.num_shards() > 1);
        let check = |eng: &GeneralShardedEngine<Nat>| {
            let all = eng.collect_answers();
            for (k, t) in all.iter().enumerate() {
                assert_eq!(eng.answer(k as u64).as_ref(), Some(t), "rank {k}");
            }
            assert_eq!(eng.answer(all.len() as u64), None);
            assert_eq!(eng.answer(u64::MAX), None);
            // ranges, including ones that cross shard boundaries
            assert_eq!(eng.answer_range(0, all.len() + 5), all);
            for k in 0..all.len() {
                assert_eq!(
                    eng.answer_range(k as u64, 4),
                    all[k..(k + 4).min(all.len())],
                    "range at {k}"
                );
            }
            for seed in 0..16u64 {
                let s = eng.sample(seed).expect("nonempty");
                assert!(all.contains(&s), "seed {seed}");
            }
        };
        check(&eng);
        // ranks stay live after an update batch spanning shards
        eng.apply_batch(&[
            TupleUpdate::remove(e, &[0, 1]),
            TupleUpdate::remove(e, &[3, 4]),
            TupleUpdate::insert(e, &[0, 1]),
            TupleUpdate::remove(e, &[6, 7]),
        ])
        .unwrap();
        check(&eng);
    }

    #[test]
    fn count_is_atomic_under_concurrent_batches() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // Two components with one edge each; exactly one answer lives in
        // one of them at any time, and each batch moves it to the other
        // component. A torn cross-shard read sees 0 or 2.
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), 4);
        a.insert(e, &[0, 1]);
        a.insert(e, &[2, 3]);
        let a = Arc::new(a);
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), 0).unwrap();
        assert_eq!(eng.num_shards(), 2);
        eng.apply_update(&TupleUpdate::remove(e, &[2, 3])).unwrap();
        assert_eq!(eng.count(), 1);
        let to_second = [
            TupleUpdate::remove(e, &[0, 1]),
            TupleUpdate::insert(e, &[2, 3]),
        ];
        let to_first = [
            TupleUpdate::remove(e, &[2, 3]),
            TupleUpdate::insert(e, &[0, 1]),
        ];
        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..300 {
                    eng.apply_batch(&to_second).unwrap();
                    eng.apply_batch(&to_first).unwrap();
                }
                done.store(true, Ordering::Release);
            });
            while !done.load(Ordering::Acquire) {
                assert_eq!(eng.count(), 1, "torn cross-shard count");
                assert!(eng.is_nonempty(), "torn cross-shard nonempty");
                let t = eng.answer(0).expect("rank 0 exists in every snapshot");
                assert!(t == vec![0, 1] || t == vec![2, 3], "torn rank access");
                assert_eq!(eng.answer(1), None, "rank 1 never exists");
            }
        });
        assert_eq!(eng.count(), 1);
    }

    #[test]
    fn batch_queries_group_by_shard() {
        let (a, e) = three_component_graph();
        let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
        let eng: GeneralShardedEngine<Nat> =
            ShardedEngine::build(&a, &phi, &CompileOptions::default(), 3).unwrap();
        let points: Vec<[u32; 2]> = (0..9).flat_map(|u| (0..9).map(move |v| [u, v])).collect();
        let tuples: Vec<&[u32]> = points.iter().map(|p| p.as_slice()).collect();
        let batch = eng.query_batch(&tuples);
        for (t, got) in tuples.iter().zip(&batch) {
            assert_eq!(*got, eng.query(t), "batch vs point at {t:?}");
        }
    }
}
