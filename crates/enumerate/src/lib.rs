//! Constant-delay enumeration over circuits in the free semiring:
//! system **S8**, results (C), (D) and the enumeration half of (E).
//!
//! The same circuit the Theorem 6 compiler produces can be evaluated in
//! the free (provenance) semiring, where values are formal sums of
//! monomials. Materializing those sums would be as large as the output;
//! instead — exactly as in Section 5 of the paper — every gate value is
//! represented by a **bidirectional enumerator** of its summands:
//!
//! * addition gates concatenate the enumerators of their *supported*
//!   children (a live list maintained under updates);
//! * multiplication gates enumerate the pair product lexicographically;
//! * permanent gates use the Lemma 23 recursion
//!   `perm(M) = Σ_c M[r,c] · perm(M^rc)`, where the columns `c` worth
//!   visiting (`N[r,c] = 1` and `perm(N^rc) = 1`) come from the Lemma 39
//!   structure: per-support-mask column lists plus Hall-condition checks
//!   on the mask counts (`agq_perm::support`), all `O_k(1)` per step.
//!
//! # CSR layout
//!
//! [`machine::EnumMachine`] holds the support state (Boolean shadow of
//! the circuit) and maintains it in constant time per input flip — the
//! Gaifman-preserving dynamics of Theorem 24. Its storage mirrors the
//! flat-arena IR of `agq-circuit` rather than per-gate heap lists:
//!
//! * parent references and per-slot input-gate lists are
//!   [`agq_circuit::Csr`] buffers (one offset table + one payload each),
//!   shared-convention with `DynEvaluator` and built by the same
//!   two-pass counting builder;
//! * addition gates' live supported-children lists are one flat pair of
//!   buffers (`machine::AddSupports`): each gate owns a fixed-capacity
//!   segment sized by its fan-in, membership flips are in-place
//!   swap-removes;
//! * per-gate side state is dense-indexed (`add_index`/`perm_index`
//!   with a `u32::MAX` sentinel), so the hot update path touches flat
//!   arrays only and allocates nothing (the dirty queue is reused).
//!
//! # `AnswerIndex` invariants
//!
//! [`answers::AnswerIndex`] packages result (D): linear-time
//! preprocessing, constant-delay, duplicate-free enumeration of the
//! answers to a first-order query, dynamic under Gaifman-preserving
//! updates. It maintains:
//!
//! 1. **Support soundness** — a gate's Boolean support bit is `true` iff
//!    its free-semiring value has at least one summand; cursors only
//!    descend into supported children, which is what bounds the delay.
//! 2. **One summand per answer** — the compiled expression
//!    `Σ_x̄ [φ] · Π_i e^i_{x_i}` yields exactly one monomial
//!    `e¹_{a₁}⋯e^k_{a_k}` per answer `(a₁…a_k)`; enumeration is
//!    therefore duplicate-free without bookkeeping.
//! 3. **Update coherence** — [`answers::AnswerIndex::apply_update`]
//!    patches the 0/1 atom-indicator slots (Lemma 40's `v±_R` weights)
//!    in place and repairs the support shadow along the affected cone
//!    only; after any update sequence the index is in exactly the state
//!    a fresh build over the updated database would produce (asserted by
//!    the update-interleaving test suite).
//! 4. **Cursor invalidation** — every update bumps the machine version;
//!    outstanding iterators panic instead of yielding stale answers.
//!
//! [`cursor`] implements the bidirectional cursor; [`provenance`]
//! packages result (C); [`engine`] fronts point queries, enumeration,
//! and updates with one [`engine::EnumQueryEngine`] API.

pub mod answers;
pub mod cursor;
pub mod engine;
pub mod machine;
pub mod provenance;

pub use answers::{AnswerIndex, AnswerIter, UpdateError};
pub use cursor::{Cursor, SummandIter};
pub use engine::{EnumQueryEngine, FiniteEnumEngine, GeneralEnumEngine, RingEnumEngine};
pub use machine::EnumMachine;
pub use provenance::{ProvIter, ProvenanceIndex};
