//! Constant-delay enumeration over circuits in the free semiring:
//! system **S8**, results (C), (D) and the enumeration half of (E).
//!
//! The same circuit the Theorem 6 compiler produces can be evaluated in
//! the free (provenance) semiring, where values are formal sums of
//! monomials. Materializing those sums would be as large as the output;
//! instead — exactly as in Section 5 of the paper — every gate value is
//! represented by a **bidirectional enumerator** of its summands:
//!
//! * addition gates concatenate the enumerators of their *supported*
//!   children (a live list maintained under updates);
//! * multiplication gates enumerate the pair product lexicographically;
//! * permanent gates use the Lemma 23 recursion
//!   `perm(M) = Σ_c M[r,c] · perm(M^rc)`, where the columns `c` worth
//!   visiting (`N[r,c] = 1` and `perm(N^rc) = 1`) come from the Lemma 39
//!   structure: per-support-mask column lists plus Hall-condition checks
//!   on the mask counts (`agq_perm::support`), all `O_k(1)` per step.
//!
//! # Plan/state split and CSR layout
//!
//! [`machine::EnumMachine`] holds the support state (Boolean shadow of
//! the circuit) and maintains it in constant time per input flip — the
//! Gaifman-preserving dynamics of Theorem 24. It is split into an
//! immutable, `Send + Sync` **plan** ([`machine::EnumPlan`]) and a cheap
//! mutable **state**, mirroring `agq_circuit::EvalPlan`/`DynEvaluator`:
//!
//! * the plan owns everything derived from the circuit topology alone —
//!   parent references and per-slot input-gate lists as
//!   [`agq_circuit::Csr`] buffers (built by the shared two-pass counting
//!   builder), the dense `add_index`/`perm_index` side numbering, the
//!   per-add-gate segment offsets, and the permanent pool layout. One
//!   `Arc<EnumPlan>` backs any number of machine states
//!   ([`machine::EnumMachine::from_plan`]);
//! * the state owns only mutable buffers: input summand lists, the
//!   support shadow, the live supported-children segments
//!   (`machine::AddSupports` — each add gate owns a fixed-capacity
//!   segment sized by its fan-in, membership flips are in-place
//!   swap-removes), and the pooled Lemma 39 permanent structure
//!   (`machine::PermPool` — per-column masks plus doubly-linked
//!   mask-bucket lists threaded through flat arrays, with per-bucket
//!   head/tail/count arrays; a support flip is an O(1) splice). No
//!   per-gate, per-mask `Vec`s anywhere; the hot update path touches
//!   flat arrays only and allocates nothing (the dirty queue is reused).
//!
//! The cursor layer ([`cursor`]) walks the bucket lists through the
//! pooled links and keeps its Hall-condition scratch on the stack, so
//! steady-state enumeration (advance/retreat) performs no heap
//! allocation beyond the answer tuples it returns.
//!
//! # Shard routing
//!
//! [`shard::ShardedEngine`] serves one query from Gaifman-component
//! shards: `φ` is compiled **once** into shared immutable plans (the
//! point-query `CompiledQuery` with its `EvalPlan`, and the enumeration
//! `EnumPlan` with its slot registry), and every shard owns only mutable
//! state — a `QueryEngine` evaluator state and an [`AnswerIndex`] whose
//! generator weights are restricted to the shard's elements
//! ([`answers::AnswerIndex::shard_filtered`]) — behind its own `RwLock`.
//! `agq_structure::gaifman::GaifmanComponents` (union-find over the
//! compile-time Gaifman graph) routes every [`agq_core::TupleUpdate`] to
//! the single shard owning its (clique) tuple; batched point queries
//! fan out one worker per shard under read locks; per-shard enumeration
//! streams chain into one **global rank order** (shard id, then the
//! shard's native cursor order) under a consistent all-shards snapshot —
//! cross-shard readers take every shard read lock in shard order, and
//! `apply_batch` holds all affected write locks simultaneously in that
//! same order, so a snapshot never observes half a batch. Admission is
//! the conservative [`agq_logic::Formula::answers_component_local`]
//! check — the arity-≥-1 rule lives there, not in the engine — and
//! formulas whose answers could span components (including all closed
//! formulas) run on one shard (correct, unsharded).
//!
//! # `AnswerIndex` invariants
//!
//! [`answers::AnswerIndex`] packages result (D): linear-time
//! preprocessing, constant-delay, duplicate-free enumeration of the
//! answers to a first-order query, dynamic under Gaifman-preserving
//! updates. It maintains:
//!
//! 1. **Support soundness** — a gate's Boolean support bit is `true` iff
//!    its free-semiring value has at least one summand; cursors only
//!    descend into supported children, which is what bounds the delay.
//! 2. **One summand per answer** — the compiled expression
//!    `Σ_x̄ [φ] · Π_i e^i_{x_i}` yields exactly one monomial
//!    `e¹_{a₁}⋯e^k_{a_k}` per answer `(a₁…a_k)`; enumeration is
//!    therefore duplicate-free without bookkeeping.
//! 3. **Update coherence** — [`answers::AnswerIndex::apply_update`]
//!    patches the 0/1 atom-indicator slots (Lemma 40's `v±_R` weights)
//!    in place and repairs the support shadow along the affected cone
//!    only; after any update sequence the index is in exactly the state
//!    a fresh build over the updated database would produce (asserted by
//!    the update-interleaving test suite).
//! 4. **Cursor invalidation** — every update bumps the machine version;
//!    outstanding iterators panic instead of yielding stale answers.
//!
//! # Batched updates and coalescing
//!
//! The whole update stack has a batch form, one coalesced sweep per
//! layer instead of per-update cascades:
//!
//! * [`machine::EnumMachine::set_input_bools`] stages 0/1 indicator
//!   flips into `u64` words of a presence bitset (later flips of a slot
//!   win), computes the changed set word-at-a-time as
//!   `(current ^ desired) & touched`, seeds only actually-changed slots,
//!   and repairs the support shadow with **one** dirty-propagation sweep
//!   and one version bump. "Dirty" across a batch means a gate is queued
//!   when any child's support flips and settles exactly once — the queue
//!   pops in ascending gate id, a topological order (children precede
//!   parents in the arena), so interleaving the cones of all batched
//!   flips cannot reorder a parent before a child. Gates shared by
//!   several cones settle once per batch, which is the throughput win.
//! * [`answers::AnswerIndex::apply_batch`] coalesces [`agq_core::TupleUpdate`]s
//!   per `(rel, tuple)` (the last wins), drops net no-op flips against
//!   the presence bitset, validates the whole batch *before* mutating
//!   anything (all-or-nothing, unlike a manual `apply_update` loop), and
//!   funnels the surviving flips through one `set_input_bools` call.
//! * [`shard::ShardedEngine::apply_batch`] groups the coalesced batch by
//!   owning shard, pre-validates against the shared plan under one read
//!   lock, then takes each shard's write lock exactly once and applies
//!   the shard groups in parallel.
//!
//! The single-update paths (`set_input_bool`, `set_tuple`,
//! `apply_update`) are the batch paths at size one — there is no second
//! cascade implementation to diverge from. One relaxation rides along:
//! net no-op updates short-circuit *without* bumping the version, so
//! they no longer invalidate outstanding iterators.
//!
//! # Direct access: `answer(k)` and the count-maintenance invariant
//!
//! [`answers::AnswerIndex::answer`] returns the `k`-th answer in cursor
//! order without enumerating the first `k`. It descends the circuit
//! once, spending O(1) work per gate on the root-to-leaf path (plus one
//! Lemma 23 row recursion per permanent gate): at an addition gate the
//! owning child is found by rank inside the live supported-children
//! list, at a multiplication gate by div/mod on the right factor's
//! count, and at a permanent gate by walking the row's viable columns,
//! each contributing a block of `cnt(entry) × perm(rest)` ranks. The
//! counts that drive the descent are the **ℕ-semiring evaluation** of
//! the same circuit (slot value = summand-list length), held in a lazy
//! side evaluator:
//!
//! * **Count-maintenance invariant** — every slot mutation
//!   (`set_input`, and each slot touched by a `set_input_bools` batch
//!   sweep) appends a `(slot, new_count)` patch to a pending list; the
//!   next count read flushes all pending patches through one batched
//!   delta sweep (`set_inputs_delta` — addition gates settle from
//!   accumulated child deltas instead of re-summing data-sized
//!   fan-ins) and bumps a `count_version`. Between flushes the
//!   evaluator may be stale, but no rank query can observe it: every
//!   descent first acquires the flushed state. The cost model is
//!   write-cheap, read-pays: appends are O(1) per update, while the
//!   flush sweeps the accumulated updates' whole gate cone — counts
//!   change all the way to the root, so that sweep is irreducible
//!   under any repair schedule; laziness batches it across updates and
//!   moves it off the write path.
//! * **Derived caches version out, not patch out** — wide addition
//!   gates keep a per-gate prefix-sum table over their live supported
//!   children so the rank descent binary-searches instead of scanning
//!   a data-sized fan-in. Each table is stamped with the
//!   `count_version` that built it and is rebuilt lazily on first use
//!   after any flush; there is no incremental patching of derived
//!   tables to get wrong.
//!
//! **Overflow policy**: counts live in `Nat` (wrapping `u64`). Answer
//! counts wrap at 2⁶⁴; ranks — and therefore `answer(k)`,
//! `answer_range`, and `sample` — are exact whenever the true answer
//! count fits in a `u64`, which is also the addressable range of
//! `k: u64`. Beyond 2⁶⁴ answers the count is the true count mod 2⁶⁴
//! and direct access is unspecified (enumeration itself is unaffected:
//! cursors never consult counts).
//!
//! On the sharded engine, shards own contiguous global-rank intervals,
//! so [`shard::ShardedEngine::answer`] subtracts per-shard counts under
//! the all-shards snapshot until it finds the owning shard, then
//! delegates — O(#shards + depth) per access.
//!
//! [`cursor`] implements the bidirectional cursor; [`provenance`]
//! packages result (C); [`engine`] fronts point queries, enumeration,
//! and updates with one [`engine::EnumQueryEngine`] API.

pub mod answers;
pub mod cursor;
pub mod engine;
pub mod machine;
pub mod provenance;
pub mod shard;

pub use answers::{AnswerIndex, AnswerIter, UpdateError};
pub use cursor::{Cursor, SummandIter};
pub use engine::{EnumQueryEngine, FiniteEnumEngine, GeneralEnumEngine, RingEnumEngine};
pub use machine::{EnumMachine, EnumPlan, InputVal, MachineStateDump};
pub use provenance::{ProvIter, ProvenanceIndex};
pub use shard::{
    FiniteShardedEngine, GeneralShardedEngine, HealthReport, RingShardedEngine, ServeError,
    ServeMode, Served, ShardStateDump, ShardedEngine,
};
