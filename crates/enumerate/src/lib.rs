//! Constant-delay enumeration over circuits in the free semiring:
//! system **S8**, results (C), (D) and the enumeration half of (E).
//!
//! The same circuit the Theorem 6 compiler produces can be evaluated in
//! the free (provenance) semiring, where values are formal sums of
//! monomials. Materializing those sums would be as large as the output;
//! instead — exactly as in Section 5 of the paper — every gate value is
//! represented by a **bidirectional enumerator** of its summands:
//!
//! * addition gates concatenate the enumerators of their *supported*
//!   children (a live list maintained under updates);
//! * multiplication gates enumerate the pair product lexicographically;
//! * permanent gates use the Lemma 23 recursion
//!   `perm(M) = Σ_c M[r,c] · perm(M^rc)`, where the columns `c` worth
//!   visiting (`N[r,c] = 1` and `perm(N^rc) = 1`) come from the Lemma 39
//!   structure: per-support-mask column lists plus Hall-condition checks
//!   on the mask counts (`agq_perm::support`), all `O_k(1)` per step.
//!
//! [`machine::EnumMachine`] holds the support state (Boolean shadow of
//! the circuit) and maintains it in constant time per input flip —
//! the Gaifman-preserving dynamics of Theorem 24. [`cursor`] implements
//! the bidirectional cursor; [`answers`] packages result (D): linear-time
//! preprocessing, constant-delay, duplicate-free enumeration of the
//! answers to a first-order query, dynamic under updates that preserve
//! the Gaifman graph. [`provenance`] packages result (C).

pub mod answers;
pub mod cursor;
pub mod machine;
pub mod provenance;

pub use answers::{AnswerIndex, AnswerIter, UpdateError};
pub use cursor::{Cursor, SummandIter};
pub use machine::EnumMachine;
pub use provenance::{ProvIter, ProvenanceIndex};
