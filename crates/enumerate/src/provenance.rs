//! Result (C): provenance evaluation in the free semiring with
//! constant-access enumerators (Theorem 22).
//!
//! Weights take values in the free semiring `F_A` (supplied as summand
//! lists — the paper's bi-directional input iterators realized over
//! in-memory lists). The compiled circuit is *not* evaluated eagerly:
//! querying a tuple returns a constant-delay bidirectional enumerator
//! for the formal sum `f_A(w)(ā)`, built from the machinery of
//! [`crate::machine`] and [`crate::cursor`]. Free variables use the same
//! `v_i`-indicator trick as Theorem 8, with indicators valued `1` (the
//! empty monomial).

use crate::cursor::{Cursor, SummandIter};
use crate::machine::{EnumMachine, InputVal};
use agq_core::{compile, eliminate_quantifiers, CompileError, CompileOptions, SlotKey};
use agq_logic::{normalize, Expr};
use agq_semiring::{Gen, Nat};
use agq_structure::{Elem, Structure, WeightId};

/// A compiled weighted expression whose weights live in the free
/// semiring, ready to hand out provenance enumerators.
pub struct ProvenanceIndex {
    machine: EnumMachine,
    slots: agq_core::SlotRegistry,
    free_len: usize,
}

impl ProvenanceIndex {
    /// Compile `expr` over `a` and bind free-semiring weight values via
    /// `assign(weight, tuple)`. The expression's semiring parameter only
    /// carries coefficients and must use coefficient 1 (ℕ-coefficients
    /// other than one have no canonical free-semiring image here).
    pub fn build(
        a: &Structure,
        expr: &Expr<Nat>,
        opts: &CompileOptions,
        mut assign: impl FnMut(WeightId, &[Elem]) -> InputVal,
    ) -> Result<Self, CompileError> {
        let (expr, a2) = eliminate_quantifiers(expr, a, opts)?;
        let nf = normalize(&expr)?;
        let compiled = compile(&a2, &nf, opts)?;
        let values: Vec<InputVal> = compiled
            .slots
            .iter()
            .map(|(_, key)| match key {
                SlotKey::Weight(w, t) => assign(w, t.as_slice()),
                SlotKey::FreeVar(..) => Vec::new(), // off until queried
                SlotKey::AtomPos(r, t) => {
                    if a2.holds(r, t.as_slice()) {
                        vec![vec![]]
                    } else {
                        vec![]
                    }
                }
                SlotKey::AtomNeg(r, t) => {
                    if a2.holds(r, t.as_slice()) {
                        vec![]
                    } else {
                        vec![vec![]]
                    }
                }
            })
            .collect();
        let free_len = compiled.free_vars.len();
        let machine = EnumMachine::new(compiled.circuit.clone(), values);
        Ok(ProvenanceIndex {
            machine,
            slots: compiled.slots,
            free_len,
        })
    }

    /// The machine (instrumentation).
    pub fn machine(&self) -> &EnumMachine {
        &self.machine
    }

    /// Update one weight's free-semiring value in place (the dynamic part
    /// of Theorem 22); constant support-maintenance time.
    pub fn set_weight(&mut self, w: WeightId, t: &[Elem], value: InputVal) -> bool {
        match self
            .slots
            .lookup(&SlotKey::Weight(w, agq_structure::Tuple::new(t)))
        {
            Some(slot) => {
                self.machine.set_input(slot, value);
                true
            }
            None => false,
        }
    }

    /// Enumerator for the value at a free-variable tuple. The indicator
    /// slots stay set while the guard lives and are cleared on drop.
    pub fn enumerate_at(&mut self, tuple: &[Elem]) -> ProvIter<'_> {
        assert_eq!(tuple.len(), self.free_len, "tuple arity mismatch");
        let mut patched = Vec::with_capacity(tuple.len());
        let mut dead = false;
        for (i, &a) in tuple.iter().enumerate() {
            match self.slots.lookup(&SlotKey::FreeVar(i as u8, a)) {
                Some(slot) => patched.push(slot),
                None => {
                    dead = true; // structurally zero value
                    break;
                }
            }
        }
        if !dead {
            for &slot in &patched {
                self.machine.set_input_bool(slot, true);
            }
        }
        ProvIter {
            state: if dead {
                ProvState::Dead
            } else {
                ProvState::Before
            },
            index: self,
            patched,
        }
    }

    /// Enumerator for a closed expression's value.
    pub fn enumerate(&self) -> SummandIter<'_> {
        assert_eq!(self.free_len, 0, "expression has free variables");
        self.machine.summands()
    }
}

enum ProvState {
    Dead,
    Before,
    At(Cursor),
    After,
}

/// Guarded bidirectional enumerator for one queried tuple: holds the
/// indicator patches alive and clears them when dropped.
pub struct ProvIter<'a> {
    index: &'a mut ProvenanceIndex,
    patched: Vec<u32>,
    state: ProvState,
}

impl ProvIter<'_> {
    /// Advance; `None` past the end.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Vec<Gen>> {
        let out = self.index.machine.circuit().output();
        let state = std::mem::replace(&mut self.state, ProvState::After);
        self.state = match state {
            ProvState::Dead => ProvState::Dead,
            ProvState::Before => match self.index.machine.first(out) {
                Some(c) => ProvState::At(c),
                None => ProvState::After,
            },
            ProvState::At(mut c) => {
                if self.index.machine.advance(&mut c) {
                    ProvState::At(c)
                } else {
                    ProvState::After
                }
            }
            ProvState::After => ProvState::After,
        };
        self.current()
    }

    /// Step back; `None` before the beginning.
    pub fn prev(&mut self) -> Option<Vec<Gen>> {
        let out = self.index.machine.circuit().output();
        let state = std::mem::replace(&mut self.state, ProvState::Before);
        self.state = match state {
            ProvState::Dead => ProvState::Dead,
            ProvState::After => match self.index.machine.last(out) {
                Some(c) => ProvState::At(c),
                None => ProvState::Before,
            },
            ProvState::At(mut c) => {
                if self.index.machine.retreat(&mut c) {
                    ProvState::At(c)
                } else {
                    ProvState::Before
                }
            }
            ProvState::Before => ProvState::Before,
        };
        self.current()
    }

    /// The current summand's generators (unsorted monomial).
    pub fn current(&self) -> Option<Vec<Gen>> {
        match &self.state {
            ProvState::At(c) => {
                let mut out = Vec::new();
                self.index.machine.collect(c, &mut out);
                Some(out)
            }
            _ => None,
        }
    }
}

impl Drop for ProvIter<'_> {
    fn drop(&mut self) {
        self.state = ProvState::Dead;
        for &slot in &self.patched {
            // in-place toggle: querying allocates nothing per tuple
            self.index.machine.set_input_bool(slot, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agq_logic::{Formula, Var};
    use agq_semiring::{Monomial, Poly};
    use agq_structure::Signature;
    use std::sync::Arc;

    /// The paper's Example 21: the graph a,b,c,d with edges ab, bc, ca,
    /// bd, da; f(x) = Σ_{y,z} w(x,y)·w(y,z)·w(z,x) evaluated at a yields
    /// e_ab·e_bc·e_ca + e_ab·e_bd·e_da.
    #[test]
    fn example_21_triangle_provenance() {
        let (a_id, b_id, c_id, d_id) = (0u32, 1u32, 2u32, 3u32);
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let w = sig.add_weight("w", 2);
        let mut a = Structure::new(Arc::new(sig), 4);
        let edges = [
            (a_id, b_id),
            (b_id, c_id),
            (c_id, a_id),
            (b_id, d_id),
            (d_id, a_id),
        ];
        for (u, v) in edges {
            a.insert(e, &[u, v]);
        }
        // f(x) = Σ_{y,z} w(x,y)·w(y,z)·w(z,x)
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let expr: Expr<Nat> = Expr::Mul(vec![
            Expr::Weight(w, vec![x, y]),
            Expr::Weight(w, vec![y, z]),
            Expr::Weight(w, vec![z, x]),
        ])
        .sum_over([y, z]);
        // identifier per edge: Gen(u*10+v)
        let mut ix = ProvenanceIndex::build(&a, &expr, &CompileOptions::default(), |_, t| {
            vec![vec![Gen((t[0] * 10 + t[1]) as u64)]]
        })
        .unwrap();
        let mut it = ix.enumerate_at(&[a_id]);
        let mut got = Vec::new();
        while let Some(m) = it.next() {
            got.push(Monomial::from_gens(m));
        }
        drop(it);
        let mono = |ids: [u64; 3]| Monomial::from_gens(ids.into_iter().map(Gen).collect());
        let mut expect = vec![
            mono([1, 12, 20]), // e_ab e_bc e_ca
            mono([1, 13, 30]), // e_ab e_bd e_da
        ];
        got.sort();
        expect.sort();
        assert_eq!(got, expect);
        // querying a node with no triangle yields nothing
        let mut it = ix.enumerate_at(&[c_id]);
        // c has edges c→a only; triangle c,a,b? needs w(c,y)w(y,z)w(z,c):
        // c→a→b but b→c missing… b→c exists! c→a,a→b,b→c: yes, one triangle.
        let mut cnt = 0;
        while it.next().is_some() {
            cnt += 1;
        }
        drop(it);
        assert_eq!(cnt, 1);
    }

    /// Differential: enumerator output equals the eager free-semiring
    /// evaluation done by the baseline + Poly arithmetic.
    #[test]
    fn matches_eager_poly_evaluation() {
        use agq_structure::WeightedStructure;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..3u64 {
            let mut sig = Signature::new();
            let e = sig.add_relation("E", 2);
            let w = sig.add_weight("w", 2);
            let mut a = Structure::new(Arc::new(sig), 10);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..18 {
                let x = rng.gen_range(0..10u32);
                let y = rng.gen_range(0..10u32);
                if x != y {
                    a.insert(e, &[x, y]);
                }
            }
            // f = Σ_{x,y} [E(x,y)] w(x,y): provenance of the edge set
            let expr: Expr<Nat> = Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)]))
                .times(Expr::Weight(w, vec![Var(0), Var(1)]))
                .sum_over([Var(0), Var(1)]);
            let ix = ProvenanceIndex::build(&a, &expr, &CompileOptions::default(), |_, t| {
                vec![vec![Gen((t[0] * 100 + t[1]) as u64)]]
            })
            .unwrap();
            let mut got: Vec<Monomial> = Vec::new();
            let mut it = ix.enumerate();
            while let Some(m) = it.next() {
                got.push(Monomial::from_gens(m));
            }
            got.sort();
            // eager oracle via Poly-weighted baseline evaluation
            let arc = Arc::new(a);
            let mut pw: WeightedStructure<Poly> = WeightedStructure::new(arc.clone());
            let tuples: Vec<_> = arc.relation(e).iter().cloned().collect();
            for t in &tuples {
                let s = t.as_slice();
                pw.set(w, s, Poly::var(Gen((s[0] * 100 + s[1]) as u64)));
            }
            let poly_expr: Expr<Poly> = Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)]))
                .times(Expr::Weight(w, vec![Var(0), Var(1)]))
                .sum_over([Var(0), Var(1)]);
            let eager = agq_baseline::eval_closed(&poly_expr, &pw);
            let mut expect: Vec<Monomial> = Vec::new();
            for (m, c) in eager.terms() {
                for _ in 0..c {
                    expect.push(m.clone());
                }
            }
            expect.sort();
            assert_eq!(got, expect, "seed {seed}");
        }
    }

    /// Multi-summand weights: the enumerator interleaves products.
    #[test]
    fn multi_summand_weights() {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let w = sig.add_weight("w", 2);
        let mut a = Structure::new(Arc::new(sig), 4);
        a.insert(e, &[0, 1]);
        a.insert(e, &[1, 2]);
        let expr: Expr<Nat> = Expr::Bracket(Formula::Rel(e, vec![Var(0), Var(1)]))
            .times(Expr::Weight(w, vec![Var(0), Var(1)]))
            .sum_over([Var(0), Var(1)]);
        let mut ix = ProvenanceIndex::build(&a, &expr, &CompileOptions::default(), |_, t| {
            // two summands per edge weight
            vec![
                vec![Gen((t[0] * 10 + t[1]) as u64)],
                vec![Gen(900 + (t[0] * 10 + t[1]) as u64)],
            ]
        })
        .unwrap();
        let mut count = 0;
        let mut it = ix.enumerate();
        while it.next().is_some() {
            count += 1;
        }
        drop(it);
        assert_eq!(count, 4, "2 edges × 2 summands");
        // dynamic weight update: drop one edge's weight to zero
        assert!(ix.set_weight(w, &[0, 1], vec![]));
        let mut it = ix.enumerate();
        let mut count = 0;
        while it.next().is_some() {
            count += 1;
        }
        assert_eq!(count, 2);
    }
}
