//! Update-interleaving suites: random sequences of input flips /
//! database updates interleaved with enumeration, asserting that the
//! *incremental* paths (support-shadow repair, `apply_update`) are
//! indistinguishable from a full rebuild after every step — on the
//! machine level and through the unified engine for the General, Ring,
//! and Finite point-query backends.

use agq_circuit::{CircuitBuilder, FiniteMaint, PermMaint, RingMaint};
use agq_core::{CompileOptions, TupleUpdate};
use agq_enumerate::{AnswerIndex, EnumMachine, EnumQueryEngine};
use agq_logic::{Formula, Var};
use agq_perm::SegTreePerm;
use agq_semiring::{Bool, Gen, Int, Nat, Semiring};
use agq_structure::{Elem, RelId, Signature, Structure};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::sync::Arc;

type InputVal = Vec<Vec<Gen>>;

fn collect_machine(m: &EnumMachine) -> Vec<Vec<Gen>> {
    let mut out = Vec::new();
    let mut it = m.summands();
    while let Some(mut mono) = it.next() {
        mono.sort();
        out.push(mono);
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Machine level: interleave `set_input` with enumeration; the
    /// incrementally-maintained support shadow must enumerate exactly
    /// what a machine built fresh from the current values does.
    #[test]
    fn set_input_interleaving_matches_rebuild(
        init in pvec(pvec(pvec(0u32..5, 0..2), 0..3), 6),
        steps in pvec((0u32..6, pvec(pvec(0u32..5, 0..2), 0..3)), 1..12),
    ) {
        // fixed circuit shape exercising add/mul/perm: (x0+x1)·perm2 + x5
        let mut b = CircuitBuilder::new();
        let xs: Vec<_> = (0..6).map(|i| b.input(i)).collect();
        let s = b.add(&[xs[0], xs[1]]);
        let p = b.perm_flat(2, vec![xs[1], xs[2], xs[3], xs[4]]);
        let m = b.mul(s, p);
        let out = b.add(&[m, xs[5]]);
        let circuit = Arc::new(b.finish(out));

        let to_val = |raw: &Vec<Vec<u32>>| -> InputVal {
            raw.iter()
                .map(|mono| mono.iter().map(|&g| Gen(g as u64)).collect())
                .collect()
        };
        let mut vals: Vec<InputVal> = init.iter().map(to_val).collect();
        let mut machine = EnumMachine::new(circuit.clone(), vals.clone());
        for (slot, raw) in &steps {
            let slot = slot % 6;
            let v = to_val(raw);
            vals[slot as usize] = v.clone();
            machine.set_input(slot, v);
            let fresh = EnumMachine::new(circuit.clone(), vals.clone());
            prop_assert_eq!(
                collect_machine(&machine),
                collect_machine(&fresh),
                "incremental support shadow diverged from rebuild"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Unified-engine interleaving across the three backends.
// ---------------------------------------------------------------------

struct World {
    shadow: Structure,
    e: RelId,
    s: RelId,
    phi: Formula,
    /// Gaifman-preserving binary candidates (edges and their reverses).
    e_tuples: Vec<[u32; 2]>,
    n: u32,
}

fn world(n: usize, edges: &[(u32, u32)]) -> Option<World> {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let s = sig.add_relation("S", 1);
    let mut a = Structure::new(Arc::new(sig), n);
    for &(u, v) in edges {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            a.insert(e, &[u, v]);
        }
    }
    // every element is S-eligible; seed a few members
    for v in 0..n as u32 / 2 {
        a.insert(s, &[v]);
    }
    let e_tuples: Vec<[u32; 2]> = a
        .relation(e)
        .iter()
        .map(|t| [t.as_slice()[0], t.as_slice()[1]])
        .collect();
    if e_tuples.is_empty() {
        return None;
    }
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(e, vec![x, y]).and(Formula::Rel(s, vec![x]));
    Some(World {
        shadow: a,
        e,
        s,
        phi,
        e_tuples,
        n: n as u32,
    })
}

/// One step of the random update script, resolved against the world.
fn resolve_step(w: &World, kind: u32, pick: u32, present: bool) -> TupleUpdate {
    if kind.is_multiple_of(2) {
        let v = pick % w.n;
        TupleUpdate {
            rel: w.s,
            tuple: vec![v],
            present,
        }
    } else {
        let t = w.e_tuples[pick as usize % w.e_tuples.len()];
        let t = if kind % 4 == 1 { t } else { [t[1], t[0]] };
        TupleUpdate {
            rel: w.e,
            tuple: t.to_vec(),
            present,
        }
    }
}

fn collect_sorted_iter(mut it: agq_enumerate::AnswerIter<'_>) -> Vec<Vec<Elem>> {
    let mut out = Vec::new();
    while let Some(t) = it.next() {
        out.push(t);
    }
    out.sort();
    out
}

/// Drive one backend through the script, asserting after every step that
/// incremental `apply_update` ≡ a full rebuild over the shadow database,
/// and that point queries agree with membership.
fn run_backend<S: Semiring, P: PermMaint<S>>(mut w: World, steps: &[(u32, u32, bool)]) {
    let opts = CompileOptions::default();
    let arc = Arc::new(w.shadow.clone());
    let mut eng: EnumQueryEngine<S, P> =
        EnumQueryEngine::build_dynamic(&arc, &w.phi, &opts).expect("build_dynamic");
    for (i, &(kind, pick, present)) in steps.iter().enumerate() {
        let u = resolve_step(&w, kind, pick, present);
        if present {
            w.shadow.insert(u.rel, &u.tuple);
        } else {
            w.shadow.remove(u.rel, &u.tuple);
        }
        let got = collect_sorted_iter(eng.enumerate_after_update(&u).expect("gaifman-preserving"));
        // full rebuild over the updated shadow database
        let rebuilt = AnswerIndex::build_dynamic(&w.shadow, &w.phi, &opts).expect("rebuild");
        let mut expect = Vec::new();
        let mut it = rebuilt.iter();
        while let Some(t) = it.next() {
            expect.push(t);
        }
        expect.sort();
        assert_eq!(&got, &expect, "step {i}: incremental ≠ rebuild");
        // point queries confirm enumeration on this backend
        for t in got.iter().take(8) {
            assert_eq!(eng.query(t), S::one(), "step {i}: answer {t:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn apply_update_matches_rebuild_all_backends(
        n in 6usize..12,
        edges in pvec((0u32..16, 0u32..16), 6..24),
        steps in pvec((0u32..4, 0u32..64, any::<bool>()), 1..10),
    ) {
        let Some(w) = world(n, &edges) else { return };
        run_backend::<Nat, SegTreePerm<Nat>>(world(n, &edges).expect("same world"), &steps);
        run_backend::<Int, RingMaint<Int>>(world(n, &edges).expect("same world"), &steps);
        run_backend::<Bool, FiniteMaint<Bool>>(w, &steps);
    }
}

// ---------------------------------------------------------------------
// Batch-ingestion differential: apply_batch ≡ one-by-one ≡ rebuild.
// ---------------------------------------------------------------------

/// Drive one backend through the script in chunks of `batch_size`,
/// asserting after every chunk that `apply_batch` on one engine agrees
/// with a one-by-one `apply_update` loop on a second engine and with a
/// full rebuild over the shadow database.
fn run_backend_batched<S: Semiring, P: PermMaint<S>>(
    mut w: World,
    steps: &[(u32, u32, bool)],
    batch_size: usize,
) {
    let opts = CompileOptions::default();
    let arc = Arc::new(w.shadow.clone());
    let mut batched: EnumQueryEngine<S, P> =
        EnumQueryEngine::build_dynamic(&arc, &w.phi, &opts).expect("build_dynamic");
    let mut sequential: EnumQueryEngine<S, P> =
        EnumQueryEngine::build_dynamic(&arc, &w.phi, &opts).expect("build_dynamic");
    for (bi, chunk) in steps.chunks(batch_size.max(1)).enumerate() {
        let batch: Vec<TupleUpdate> = chunk
            .iter()
            .map(|&(kind, pick, present)| resolve_step(&w, kind, pick, present))
            .collect();
        for u in &batch {
            if u.present {
                w.shadow.insert(u.rel, &u.tuple);
            } else {
                w.shadow.remove(u.rel, &u.tuple);
            }
        }
        batched.apply_batch(&batch).expect("gaifman-preserving");
        for u in &batch {
            sequential.apply_update(u).expect("gaifman-preserving");
        }
        let got = collect_sorted_iter(batched.enumerate());
        let one_by_one = collect_sorted_iter(sequential.enumerate());
        assert_eq!(
            &got, &one_by_one,
            "batch {bi}: apply_batch ≠ apply_update loop"
        );
        let rebuilt = AnswerIndex::build_dynamic(&w.shadow, &w.phi, &opts).expect("rebuild");
        let mut expect = Vec::new();
        let mut it = rebuilt.iter();
        while let Some(t) = it.next() {
            expect.push(t);
        }
        expect.sort();
        assert_eq!(&got, &expect, "batch {bi}: apply_batch ≠ rebuild");
        for t in got.iter().take(4) {
            assert_eq!(
                batched.query(t),
                S::one(),
                "batch {bi}: point query at {t:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batches of every size (including duplicates of one tuple within a
    /// batch — coalesced last-wins) agree with sequential application and
    /// a fresh rebuild, on all three backends.
    #[test]
    fn apply_batch_matches_sequential_all_backends(
        n in 6usize..12,
        edges in pvec((0u32..16, 0u32..16), 6..24),
        steps in pvec((0u32..4, 0u32..64, any::<bool>()), 4..24),
        batch_size in 1usize..9,
    ) {
        let Some(w) = world(n, &edges) else { return };
        run_backend_batched::<Nat, SegTreePerm<Nat>>(
            world(n, &edges).expect("same world"), &steps, batch_size);
        run_backend_batched::<Int, RingMaint<Int>>(
            world(n, &edges).expect("same world"), &steps, batch_size);
        run_backend_batched::<Bool, FiniteMaint<Bool>>(w, &steps, batch_size);
    }
}

/// Mutually-cancelling flips inside one batch: the last update per tuple
/// wins, and a batch that nets out to the current state applies nothing
/// (and does not invalidate outstanding iterators).
#[test]
fn cancelling_flips_coalesce() {
    let w = world(8, &[(0, 1), (1, 2), (2, 3), (3, 4)]).expect("world");
    let arc = Arc::new(w.shadow.clone());
    let opts = CompileOptions::default();
    let mut eng: EnumQueryEngine<Nat, SegTreePerm<Nat>> =
        EnumQueryEngine::build_dynamic(&arc, &w.phi, &opts).expect("build_dynamic");
    let t = w.e_tuples[0];
    let before = collect_sorted_iter(eng.enumerate());
    // present tuple: remove-then-insert nets to no change at all
    let batch = vec![TupleUpdate::remove(w.e, &t), TupleUpdate::insert(w.e, &t)];
    let applied = eng.apply_batch(&batch).expect("gaifman-preserving");
    assert_eq!(applied, 0, "net no-op batch applies nothing");
    assert_eq!(collect_sorted_iter(eng.enumerate()), before);
    // insert-then-remove: the remove wins
    let batch = vec![TupleUpdate::insert(w.e, &t), TupleUpdate::remove(w.e, &t)];
    eng.apply_batch(&batch).expect("gaifman-preserving");
    let mut shadow = w.shadow.clone();
    shadow.remove(w.e, &t);
    let rebuilt = AnswerIndex::build_dynamic(&shadow, &w.phi, &opts).expect("rebuild");
    let mut expect = Vec::new();
    let mut it = rebuilt.iter();
    while let Some(x) = it.next() {
        expect.push(x);
    }
    expect.sort();
    assert_eq!(collect_sorted_iter(eng.enumerate()), expect);
}
