//! Property-test differential suite for the CSR enumeration machine.
//!
//! Three implementations must agree on every random instance:
//!
//! 1. the CSR [`EnumMachine`]/cursor enumeration (the system under
//!    test),
//! 2. a seed-style naive enumerator written here from the free-semiring
//!    definitions (eager bottom-up materialization, naive permanent
//!    expansion — no support shadow, no cursors),
//! 3. for query answers: `agq_baseline::all_answers` brute force and
//!    [`agq_enumerate::EnumQueryEngine`] point queries.
//!
//! Comparisons are on sorted answer/monomial lists, so they check the
//! *set* (and multiplicity) semantics rather than iteration order.

use agq_circuit::{Circuit, CircuitBuilder, ConstRef, GateDef, GateId};
use agq_core::CompileOptions;
use agq_enumerate::{AnswerIndex, EnumMachine, GeneralEnumEngine};
use agq_logic::{Formula, Var};
use agq_semiring::{Gen, Nat};
use agq_structure::{Elem, Signature, Structure};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::sync::Arc;

type InputVal = Vec<Vec<Gen>>;

// ---------------------------------------------------------------------
// Seed-style naive enumeration: eager bottom-up materialization.
// ---------------------------------------------------------------------

/// All summands of every gate, materialized eagerly (each monomial
/// sorted). Permanents expand by the textbook recursion over injective
/// column choices.
fn naive_gate_summands(c: &Circuit, vals: &[InputVal]) -> Vec<Vec<Vec<Gen>>> {
    let mut out: Vec<Vec<Vec<Gen>>> = Vec::with_capacity(c.len());
    for g in c.gates() {
        let summands: Vec<Vec<Gen>> = match g {
            GateDef::Input(slot) => vals[*slot as usize]
                .iter()
                .map(|m| {
                    let mut m = m.clone();
                    m.sort();
                    m
                })
                .collect(),
            GateDef::Const(ConstRef::Zero) => Vec::new(),
            GateDef::Const(ConstRef::One) => vec![Vec::new()],
            GateDef::Const(ConstRef::Lit(_)) => panic!("no lits in enumeration circuits"),
            GateDef::Add(r) => c
                .children(*r)
                .iter()
                .flat_map(|ch| out[ch.0 as usize].iter().cloned())
                .collect(),
            GateDef::Mul(a, b) => {
                let mut prod = Vec::new();
                for x in &out[a.0 as usize] {
                    for y in &out[b.0 as usize] {
                        let mut m = x.clone();
                        m.extend(y.iter().copied());
                        m.sort();
                        prod.push(m);
                    }
                }
                prod
            }
            GateDef::Perm { rows, cols } => {
                let k = *rows as usize;
                let cols: Vec<&[GateId]> = c.children(*cols).chunks_exact(k).collect();
                let mut acc = Vec::new();
                let mut used = vec![false; cols.len()];
                perm_expand(&out, &cols, k, 0, &mut used, &mut Vec::new(), &mut acc);
                acc
            }
        };
        out.push(summands);
    }
    out
}

/// `perm(M) = Σ over injective row→column assignments Π_r M[r, σ(r)]`.
fn perm_expand(
    gate_sums: &[Vec<Vec<Gen>>],
    cols: &[&[GateId]],
    k: usize,
    row: usize,
    used: &mut [bool],
    prefix: &mut Vec<Gen>,
    acc: &mut Vec<Vec<Gen>>,
) {
    if row == k {
        let mut m = prefix.clone();
        m.sort();
        acc.push(m);
        return;
    }
    for (ci, col) in cols.iter().enumerate() {
        if used[ci] {
            continue;
        }
        used[ci] = true;
        for summand in &gate_sums[col[row].0 as usize] {
            let len = prefix.len();
            prefix.extend(summand.iter().copied());
            perm_expand(gate_sums, cols, k, row + 1, used, prefix, acc);
            prefix.truncate(len);
        }
        used[ci] = false;
    }
}

/// Monomial count without materializing (skip guard for blown-up cases).
fn naive_count(c: &Circuit, vals: &[InputVal]) -> u64 {
    let slots: Vec<Nat> = vals.iter().map(|v| Nat(v.len() as u64)).collect();
    c.eval(&slots, &[]).0
}

// ---------------------------------------------------------------------
// Random circuits from flat op recipes.
// ---------------------------------------------------------------------

/// Build a circuit from a recipe: `vals.len()` inputs followed by one
/// gate per op. Ops index the already-built gate list modulo its length,
/// so every recipe is valid; the builder's peephole folding may alias
/// some ops to existing gates, which is part of what we want to test.
fn build_from_recipe(vals: &[InputVal], ops: &[(u32, u32, u32, u32)]) -> (Circuit, GateId) {
    let mut b = CircuitBuilder::new();
    let mut gates: Vec<GateId> = (0..vals.len()).map(|i| b.input(i as u32)).collect();
    for &(kind, p1, p2, shape) in ops {
        let pick = |p: u32, gates: &[GateId]| gates[p as usize % gates.len()];
        let g = match kind % 3 {
            0 => {
                let kids: Vec<GateId> = (0..2 + (shape % 2) as usize)
                    .map(|j| pick(p1.wrapping_add(j as u32 * p2), &gates))
                    .collect();
                b.add(&kids)
            }
            1 => {
                let (x, y) = (pick(p1, &gates), pick(p2, &gates));
                b.mul(x, y)
            }
            _ => {
                let rows = (shape % 3 + 1) as usize;
                let ncols = (p2 % 3 + 1) as usize;
                let flat: Vec<GateId> = (0..rows * ncols)
                    .map(|j| pick(p1.wrapping_add(j as u32), &gates))
                    .collect();
                b.perm_flat(rows, flat)
            }
        };
        gates.push(g);
    }
    let out = *gates.last().expect("at least one gate");
    (b.finish(out), out)
}

fn sorted_monomials(mut ms: Vec<Vec<Gen>>) -> Vec<Vec<Gen>> {
    for m in &mut ms {
        m.sort();
    }
    ms.sort();
    ms
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csr_enumeration_matches_naive(
        vals in pvec(pvec(pvec(0u32..6, 0..3), 0..4), 1..5),
        ops in pvec((0u32..3, 0u32..10_000, 0u32..10_000, 0u32..6), 1..10),
    ) {
        let vals: Vec<InputVal> = vals
            .iter()
            .map(|slot| {
                slot.iter()
                    .map(|m| m.iter().map(|&g| Gen(g as u64)).collect())
                    .collect()
            })
            .collect();
        let (circuit, _) = build_from_recipe(&vals, &ops);
        let circuit = Arc::new(circuit);
        if naive_count(&circuit, &vals) > 3000 {
            return; // keep the eager oracle tractable
        }
        let expect = sorted_monomials(
            naive_gate_summands(&circuit, &vals)
                .swap_remove(circuit.output().0 as usize),
        );
        let machine = EnumMachine::new(circuit, vals);
        let mut got = Vec::new();
        let mut it = machine.summands();
        while let Some(m) = it.next() {
            got.push(m);
        }
        let got = sorted_monomials(got);
        prop_assert_eq!(&got, &expect, "CSR enumeration must equal naive expansion");
        // and the backward walk is the mirror image
        let mut back = Vec::new();
        let mut it = machine.summands();
        while it.next().is_some() {}
        while let Some(m) = it.prev() {
            back.push(m);
        }
        prop_assert_eq!(sorted_monomials(back), expect, "backward walk same multiset");
    }
}

// ---------------------------------------------------------------------
// Query answers: CSR index ≡ brute force ≡ point queries.
// ---------------------------------------------------------------------

fn graph_structure(n: usize, edges: &[(u32, u32)]) -> (Arc<Structure>, agq_structure::RelId) {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let mut a = Structure::new(Arc::new(sig), n);
    for &(u, v) in edges {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            a.insert(e, &[u, v]);
        }
    }
    (Arc::new(a), e)
}

fn phi_variant(which: u32, e: agq_structure::RelId) -> Formula {
    let (x, y, z) = (Var(0), Var(1), Var(2));
    match which % 4 {
        0 => Formula::Rel(e, vec![x, y]),
        1 => Formula::Rel(e, vec![x, y])
            .and(Formula::Rel(e, vec![y, z]))
            .and(Formula::neq(x, z)),
        2 => Formula::Rel(e, vec![x, y])
            .and(Formula::Rel(e, vec![y, z]))
            .and(Formula::Rel(e, vec![z, x])),
        _ => Formula::Rel(e, vec![x, y]).not().and(Formula::neq(x, y)),
    }
}

fn collect_sorted(ix: &AnswerIndex) -> Vec<Vec<Elem>> {
    let mut out = Vec::new();
    let mut it = ix.iter();
    while let Some(t) = it.next() {
        out.push(t);
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn answers_match_baseline_and_point_queries(
        n in 5usize..13,
        edges in pvec((0u32..16, 0u32..16), 4..30),
        which in 0u32..4,
        probes in pvec((0u32..16, 0u32..16, 0u32..16), 8),
    ) {
        let (a, e) = graph_structure(n, &edges);
        let phi = phi_variant(which, e);
        let opts = CompileOptions::default();

        // CSR enumeration ≡ brute-force baseline, sorted and duplicate-free
        let ix = AnswerIndex::build(&a, &phi, &opts).unwrap();
        let got = collect_sorted(&ix);
        let mut expect = agq_baseline::all_answers(&phi, &a);
        expect.sort();
        prop_assert_eq!(&got, &expect, "answer sets must agree (sorted)");
        let mut dedup = got.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), got.len(), "no duplicates");
        prop_assert_eq!(got.len() as u64, ix.count());

        // ≡ QueryEngine point queries through the unified engine
        let mut eng: GeneralEnumEngine<Nat> = GeneralEnumEngine::build(&a, &phi, &opts).unwrap();
        let mut eng_answers = Vec::new();
        let mut it = eng.enumerate();
        while let Some(t) = it.next() {
            eng_answers.push(t);
        }
        eng_answers.sort();
        prop_assert_eq!(&eng_answers, &expect, "unified engine enumerates the same set");
        for t in &eng_answers {
            prop_assert_eq!(eng.query(t), Nat(1), "point query confirms each answer");
        }
        let arity = eng.arity();
        for &(p0, p1, p2) in &probes {
            let probe: Vec<Elem> = [p0, p1, p2][..arity]
                .iter()
                .map(|&v| v % n as u32)
                .collect();
            let expected = Nat(u64::from(expect.binary_search(&probe).is_ok()));
            prop_assert_eq!(eng.query(&probe), expected, "probe {:?}", probe);
        }
    }
}
