//! Fault-boundary tests that need no fail-point feature: manual shard
//! quarantine and degraded serving, typed rejection of updates to
//! unavailable shards, WAL durability policies driven by an in-memory
//! flaky sink, and the LSN/write-ahead regression tests (a rejected
//! batch must leave the LSN *and* the in-memory state untouched).

use agq_core::{CompileOptions, DurabilityPolicy, TupleUpdate, WalFailure, WalSink};
use agq_enumerate::{
    EnumQueryEngine, GeneralEnumEngine, GeneralShardedEngine, ServeError, ServeMode, ShardedEngine,
    UpdateError,
};
use agq_logic::{Formula, Var};
use agq_semiring::Nat;
use agq_structure::{Signature, Structure};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Two triangles in different components plus an isolated edge — three
/// Gaifman components, so the sharded engine has multiple shards to
/// quarantine independently.
fn three_component_graph() -> (Arc<Structure>, agq_structure::RelId) {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let mut a = Structure::new(Arc::new(sig), 9);
    for (u, v) in [(0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (6, 7)] {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    (Arc::new(a), e)
}

fn sharded() -> (GeneralShardedEngine<Nat>, agq_structure::RelId) {
    let (a, e) = three_component_graph();
    let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
    let eng = ShardedEngine::build(&a, &phi, &CompileOptions::default(), 0).unwrap();
    (eng, e)
}

/// A `WalSink` whose appends fail while `fail` is set; successful
/// appends are counted.
struct FlakySink {
    fail: Arc<AtomicBool>,
    appends: Arc<AtomicUsize>,
}

impl WalSink for FlakySink {
    fn append_batch(&mut self, _lsn: u64, _updates: &[TupleUpdate]) -> std::io::Result<()> {
        if self.fail.load(Ordering::SeqCst) {
            Err(std::io::Error::other("injected append failure"))
        } else {
            self.appends.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }
}

fn flaky() -> (Box<FlakySink>, Arc<AtomicBool>, Arc<AtomicUsize>) {
    let fail = Arc::new(AtomicBool::new(false));
    let appends = Arc::new(AtomicUsize::new(0));
    let sink = Box::new(FlakySink {
        fail: Arc::clone(&fail),
        appends: Arc::clone(&appends),
    });
    (sink, fail, appends)
}

#[test]
fn quarantine_degrades_serving_and_rejects_updates() {
    let (eng, e) = sharded();
    let full = eng.count();
    let s = eng
        .owning_shard(&[0, 1])
        .expect("edge tuple routes to one shard");

    eng.quarantine_shard(s);
    assert!(eng.is_quarantined(s));
    assert_eq!(eng.quarantined_shards(), vec![s]);

    // Value APIs degrade silently over the healthy shards.
    assert!(eng.count() < full, "quarantined shard's answers are absent");
    assert_eq!(eng.query(&[0, 1]), Nat(0), "quarantined owner serves zero");
    assert_eq!(eng.query(&[6, 7]), Nat(1), "healthy shard still serves");

    // try_* APIs surface the degradation explicitly.
    let served = eng.try_count().unwrap();
    assert!(!served.is_complete());
    assert_eq!(served.missing_shards(), &[s]);
    assert_eq!(*served.get(), eng.count());
    // Point-query completeness is per-tuple: a tuple owned by a healthy
    // shard has a complete answer even while other shards are out.
    let served = eng.try_query(&[6, 7]).unwrap();
    assert!(served.is_complete());
    assert_eq!(*served.get(), Nat(1));
    let served = eng.try_query(&[0, 1]).unwrap();
    assert!(!served.is_complete(), "owner quarantined");
    assert_eq!(served.missing_shards(), &[s]);

    // Updates to the quarantined shard are rejected with a typed error;
    // healthy shards keep accepting.
    assert_eq!(
        eng.apply_update(&TupleUpdate::remove(e, &[0, 1])),
        Err(UpdateError::ShardUnavailable { shard: s })
    );
    eng.apply_update(&TupleUpdate::remove(e, &[6, 7])).unwrap();
    eng.apply_update(&TupleUpdate::insert(e, &[6, 7])).unwrap();

    // A whole-engine snapshot would silently lose the shard: refused.
    assert!(matches!(
        eng.snapshot_states(),
        Err(ServeError::ShardUnavailable { .. })
    ));

    // self_check skips (and reports) the quarantined shard.
    assert_eq!(eng.self_check().unwrap(), vec![s]);
    let health = eng.health();
    assert_eq!(health.quarantined, vec![s]);
    assert!(!health.wal_degraded);
}

#[test]
fn strict_mode_turns_degradation_into_errors() {
    let (eng, _e) = sharded();
    let s = eng.owning_shard(&[3, 4]).unwrap();
    eng.quarantine_shard(s);

    assert_eq!(eng.serve_mode(), ServeMode::Degrade);
    eng.set_serve_mode(ServeMode::Strict);
    assert_eq!(eng.serve_mode(), ServeMode::Strict);

    let err = eng.try_count().unwrap_err();
    let ServeError::ShardUnavailable { shards } = err;
    assert_eq!(shards, vec![s]);
    // Point queries error only when the *owning* shard is out: tuples
    // of healthy shards still have complete answers.
    assert!(eng.try_query(&[3, 4]).is_err());
    assert!(eng.try_query(&[6, 7]).is_ok());
    assert!(eng.try_query_batch(&[&[3, 4][..]]).is_err());
    assert!(eng.try_query_batch(&[&[6, 7][..]]).is_ok());
    assert!(eng.try_collect_answers().is_err());

    // Back to degrade: same calls succeed with explicit completeness.
    eng.set_serve_mode(ServeMode::Degrade);
    assert!(!eng.try_count().unwrap().is_complete());
}

#[test]
fn sharded_fail_stop_rejects_batch_without_advancing_lsn() {
    let (eng, e) = sharded();
    let (sink, fail, appends) = flaky();
    eng.attach_wal(sink);
    eng.set_durability(DurabilityPolicy {
        attempts: 2,
        backoff: Duration::ZERO,
        on_failure: WalFailure::FailStop,
    });

    let batch = [TupleUpdate::remove(e, &[6, 7])];
    eng.apply_batch(&batch).unwrap();
    assert_eq!(eng.last_lsn(), 1);
    let count = eng.count();

    // Regression for the LSN desync bug: a fail-stop rejection must not
    // bump the LSN or touch in-memory state (previously the LSN was
    // advanced *before* the sink append, so a failed append left the
    // counter ahead of the durable log).
    fail.store(true, Ordering::SeqCst);
    let err = eng
        .apply_batch(&[TupleUpdate::insert(e, &[6, 7])])
        .unwrap_err();
    assert!(matches!(err, UpdateError::Wal(_)));
    assert_eq!(eng.last_lsn(), 1, "LSN unadvanced on fail-stop");
    assert_eq!(eng.count(), count, "nothing applied on fail-stop");
    assert_eq!(eng.query(&[6, 7]), Nat(0), "rejected insert did not land");

    // Sink recovers: the next batch gets the *next* LSN, gaplessly.
    fail.store(false, Ordering::SeqCst);
    eng.apply_batch(&[TupleUpdate::insert(e, &[6, 7])]).unwrap();
    assert_eq!(eng.last_lsn(), 2);
    assert_eq!(appends.load(Ordering::SeqCst), 2);
    assert_eq!(eng.query(&[6, 7]), Nat(1));
    assert!(!eng.wal_degraded());
}

#[test]
fn sharded_fail_open_keeps_serving_and_reports_degraded_wal() {
    let (eng, e) = sharded();
    let (sink, fail, appends) = flaky();
    eng.attach_wal(sink);
    eng.set_durability(DurabilityPolicy::fail_open());

    fail.store(true, Ordering::SeqCst);
    let before = eng.count();
    eng.apply_batch(&[TupleUpdate::remove(e, &[6, 7])]).unwrap();
    assert_eq!(eng.count(), before - 1, "fail-open keeps applying");
    assert_eq!(
        eng.last_lsn(),
        1,
        "LSN advances so snapshots stay sequenced"
    );
    assert!(eng.wal_degraded());
    assert!(eng.health().wal_degraded);
    assert_eq!(appends.load(Ordering::SeqCst), 0);

    fail.store(false, Ordering::SeqCst);
    eng.reset_wal_degraded();
    eng.apply_batch(&[TupleUpdate::insert(e, &[6, 7])]).unwrap();
    assert!(!eng.wal_degraded());
    assert_eq!(appends.load(Ordering::SeqCst), 1);
}

#[test]
fn single_engine_fail_stop_is_write_ahead() {
    let (a, e) = three_component_graph();
    let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
    let mut eng: GeneralEnumEngine<Nat> =
        EnumQueryEngine::build_dynamic(&a, &phi, &CompileOptions::default()).unwrap();
    let (sink, fail, appends) = flaky();
    eng.attach_wal(sink);
    eng.set_durability(DurabilityPolicy {
        attempts: 1,
        backoff: Duration::ZERO,
        on_failure: WalFailure::FailStop,
    });

    let count = eng.count();
    fail.store(true, Ordering::SeqCst);
    let err = eng
        .apply_update(&TupleUpdate::remove(e, &[6, 7]))
        .unwrap_err();
    assert!(matches!(err, UpdateError::Wal(_)));
    assert_eq!(eng.last_lsn(), 0, "LSN unadvanced on fail-stop");
    assert_eq!(eng.count(), count, "enumeration side untouched");
    assert_eq!(eng.query(&[6, 7]), Nat(1), "point side untouched");

    fail.store(false, Ordering::SeqCst);
    eng.apply_update(&TupleUpdate::remove(e, &[6, 7])).unwrap();
    assert_eq!(eng.last_lsn(), 1);
    assert_eq!(appends.load(Ordering::SeqCst), 1);
    eng.self_check().unwrap();
}

#[test]
fn single_engine_fail_open_flags_degraded() {
    let (a, e) = three_component_graph();
    let phi = Formula::Rel(e, vec![Var(0), Var(1)]);
    let mut eng: GeneralEnumEngine<Nat> =
        EnumQueryEngine::build_dynamic(&a, &phi, &CompileOptions::default()).unwrap();
    let (sink, fail, _appends) = flaky();
    eng.attach_wal(sink);
    eng.set_durability(DurabilityPolicy::fail_open());

    fail.store(true, Ordering::SeqCst);
    let before = eng.count();
    eng.apply_update(&TupleUpdate::remove(e, &[6, 7])).unwrap();
    assert_eq!(eng.count(), before - 1);
    assert_eq!(eng.last_lsn(), 1);
    assert!(eng.wal_degraded());
    eng.reset_wal_degraded();
    assert!(!eng.wal_degraded());
}

#[test]
fn retry_policy_rides_through_transient_failures() {
    // A sink that fails exactly once: with attempts >= 2 the batch must
    // commit on the retry, invisibly to the caller.
    struct FailOnce {
        failed: bool,
        appends: Arc<AtomicUsize>,
    }
    impl WalSink for FailOnce {
        fn append_batch(&mut self, _lsn: u64, _u: &[TupleUpdate]) -> std::io::Result<()> {
            if !self.failed {
                self.failed = true;
                return Err(std::io::Error::other("transient"));
            }
            self.appends.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    let (eng, e) = sharded();
    let appends = Arc::new(AtomicUsize::new(0));
    eng.attach_wal(Box::new(FailOnce {
        failed: false,
        appends: Arc::clone(&appends),
    }));
    eng.set_durability(DurabilityPolicy {
        attempts: 3,
        backoff: Duration::ZERO,
        on_failure: WalFailure::FailStop,
    });
    eng.apply_batch(&[TupleUpdate::remove(e, &[6, 7])]).unwrap();
    assert_eq!(eng.last_lsn(), 1);
    assert_eq!(appends.load(Ordering::SeqCst), 1);
    assert!(!eng.wal_degraded());
}
