//! Delay-bound regression test over the E9 benchmark workload.
//!
//! `AnswerIndex::build` on the n = 4000 two-path workload regressed to
//! ~14 s before the compiler's instantiation re-scan was fixed (PR 2);
//! this test pins generous budgets on build time and per-answer delay so
//! the super-linear behavior cannot silently return. The budgets are
//! ~4× the currently measured release-mode numbers — loose enough for
//! slow CI hardware, tight enough that an O(n^1.5) re-scan (a ~10×
//! regression at this size) trips them.
//!
//! Budgets are only meaningful with optimizations on, so the assertions
//! are compiled under `not(debug_assertions)`: run via
//! `cargo test -p agq-enumerate --release` (CI does).

#![cfg(not(debug_assertions))]

use agq_core::CompileOptions;
use agq_enumerate::AnswerIndex;
use agq_graph::generators;
use agq_logic::{Formula, Var};
use agq_structure::{Signature, Structure};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The E9 workload: symmetrized G(n, 2n), two-path query with x ≠ z.
fn e9_workload(n: usize) -> (Structure, Formula) {
    let g = generators::gnm(n, 2 * n, 7);
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let mut a = Structure::new(Arc::new(sig), n);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(e, vec![x, y])
        .and(Formula::Rel(e, vec![y, z]))
        .and(Formula::neq(x, z));
    (a, phi)
}

#[test]
fn e9_build_and_delay_budgets() {
    const BUILD_BUDGET: Duration = Duration::from_secs(6);
    /// p99.9 bound: actual per-answer work is 1–10 µs; a delay that
    /// scales with the database would push the *distribution* over this.
    const P999_BUDGET: Duration = Duration::from_millis(1);
    /// Absolute bound: single-sample timings on shared CI hardware see
    /// multi-millisecond scheduler hiccups, so the hard cap is loose.
    const MAX_BUDGET: Duration = Duration::from_millis(50);

    let n = 4000;
    let (a, phi) = e9_workload(n);
    let t0 = Instant::now();
    let ix = AnswerIndex::build(&a, &phi, &CompileOptions::default()).unwrap();
    let build = t0.elapsed();
    assert!(
        build < BUILD_BUDGET,
        "AnswerIndex::build(n={n}) took {build:?}, budget {BUILD_BUDGET:?} — \
         the super-linear construction re-scan is back"
    );

    let mut it = ix.iter();
    let mut count = 0u64;
    let mut delays: Vec<Duration> = Vec::with_capacity(70_000);
    loop {
        let t = Instant::now();
        let step = it.next();
        let d = t.elapsed();
        if step.is_none() {
            break; // the exhausted call is not an answer delay
        }
        delays.push(d);
        count += 1;
    }
    assert_eq!(count, ix.count(), "enumeration must be complete");
    assert!(count > 10_000, "workload sanity: enough answers to measure");
    delays.sort();
    let p999 = delays[delays.len() - 1 - delays.len() / 1000];
    let max = *delays.last().unwrap();
    assert!(
        p999 < P999_BUDGET,
        "p99.9 per-answer delay {p999:?} over budget {P999_BUDGET:?} \
         across {count} answers"
    );
    assert!(
        max < MAX_BUDGET,
        "max per-answer delay {max:?} over budget {MAX_BUDGET:?} \
         across {count} answers"
    );
}
