//! Differential suite for O(depth) direct access: `answer(k)` must be
//! indistinguishable from enumerating to rank `k`, on every backend,
//! flat and sharded, before and after random update interleavings — and
//! it must get there *without* enumerating, which the instrumented
//! gate-visit counter pins down (visits independent of `k`).

use agq_circuit::{FiniteMaint, PermMaint, RingMaint};
use agq_core::{CompileOptions, TupleUpdate};
use agq_enumerate::{AnswerIndex, EnumQueryEngine, ShardedEngine};
use agq_logic::{Formula, Var};
use agq_perm::SegTreePerm;
use agq_semiring::{Bool, Int, Nat, Semiring};
use agq_structure::{Elem, RelId, Signature, Structure};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A clustered world: `num_comps` disjoint random components over a
/// binary `E` (symmetrized) and a unary `S`.
fn clustered_world(
    num_comps: usize,
    comp_size: usize,
    seed: u64,
) -> (Arc<Structure>, RelId, RelId, Vec<[u32; 2]>) {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let s = sig.add_relation("S", 1);
    let n = num_comps * comp_size;
    let mut a = Structure::new(Arc::new(sig), n);
    let mut rng = SmallRng::seed_from_u64(seed);
    for c in 0..num_comps {
        let base = (c * comp_size) as u32;
        for i in 1..comp_size as u32 {
            let u = base + i;
            let v = base + rng.gen_range(0..i);
            a.insert(e, &[u, v]);
            a.insert(e, &[v, u]);
        }
    }
    for v in 0..n as u32 {
        if rng.gen_bool(0.6) {
            a.insert(s, &[v]);
        }
    }
    let e_tuples: Vec<[u32; 2]> = a
        .relation(e)
        .iter()
        .map(|t| [t.as_slice()[0], t.as_slice()[1]])
        .collect();
    (Arc::new(a), e, s, e_tuples)
}

/// `iter().nth(k)`: enumerate to rank `k` the slow way.
fn nth_by_walk<S: Semiring, P: PermMaint<S>>(
    eng: &EnumQueryEngine<S, P>,
    k: u64,
) -> Option<Vec<Elem>> {
    let mut it = eng.enumerate();
    let mut cur = it.next();
    for _ in 0..k {
        cur = it.next();
        cur.as_ref()?;
    }
    cur
}

/// The full direct-access contract at the current state of `flat` and
/// `sharded` (both over the same formula/database).
fn check_ranks<S: Semiring + PartialEq, P: PermMaint<S> + Send + Sync>(
    flat: &EnumQueryEngine<S, P>,
    sharded: &ShardedEngine<S, P>,
    probe_ks: &[u64],
    ctx: &str,
) {
    // flat: answer(k) ≡ enumeration rank k, for every rank
    let mut all = Vec::new();
    let mut it = flat.enumerate();
    while let Some(t) = it.next() {
        all.push(t);
    }
    assert_eq!(flat.count(), all.len() as u64, "{ctx}: flat count");
    for (k, t) in all.iter().enumerate() {
        assert_eq!(
            flat.answer(k as u64).as_ref(),
            Some(t),
            "{ctx}: flat rank {k}"
        );
    }
    // the literal iter().nth(k) form at the probed ranks
    for &k in probe_ks {
        assert_eq!(flat.answer(k), nth_by_walk(flat, k), "{ctx}: nth at {k}");
    }
    // out-of-range ranks are None, not garbage
    assert_eq!(flat.answer(all.len() as u64), None, "{ctx}: one past end");
    assert_eq!(flat.answer(u64::MAX), None, "{ctx}: far out of range");
    // answer_range ≡ cursor walk from the sought position
    for &k in probe_ks {
        let k = (k as usize).min(all.len()) as u64;
        let len = 5usize;
        let end = ((k as usize) + len).min(all.len());
        assert_eq!(
            flat.answer_range(k, len),
            all[(k as usize).min(all.len())..end],
            "{ctx}: range at {k}"
        );
    }
    // sharded: global rank order = the engine's one answer stream
    let stream = sharded.collect_answers();
    assert_eq!(sharded.count(), stream.len() as u64, "{ctx}: sharded count");
    assert_eq!(stream.len(), all.len(), "{ctx}: same answer cardinality");
    for (k, t) in stream.iter().enumerate() {
        assert_eq!(
            sharded.answer(k as u64).as_ref(),
            Some(t),
            "{ctx}: sharded rank {k}"
        );
    }
    assert_eq!(
        sharded.answer(stream.len() as u64),
        None,
        "{ctx}: sharded end"
    );
    // sharded ranges cross shard boundaries transparently
    for &k in probe_ks {
        let k = (k as usize).min(stream.len()) as u64;
        let end = ((k as usize) + 7).min(stream.len());
        assert_eq!(
            sharded.answer_range(k, 7),
            stream[(k as usize).min(stream.len())..end],
            "{ctx}: sharded range at {k}"
        );
    }
    // sampling stays inside the answer set on both
    for seed in 0..8u64 {
        if let Some(t) = flat.sample(seed) {
            assert!(all.contains(&t), "{ctx}: flat sample member");
        } else {
            assert!(all.is_empty(), "{ctx}: sample None iff empty");
        }
        if let Some(t) = sharded.sample(seed) {
            assert!(stream.contains(&t), "{ctx}: sharded sample member");
        } else {
            assert!(stream.is_empty(), "{ctx}: sharded sample None iff empty");
        }
    }
}

/// One backend's end-to-end property: ranks correct initially, after
/// every single update, and after every batch of a random script.
fn direct_access_backend<S, P>(seed: u64)
where
    S: Semiring + PartialEq,
    P: PermMaint<S> + Send + Sync,
{
    let (a, e, s, e_tuples) = clustered_world(3, 5, seed);
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(e, vec![x, y]).and(Formula::Rel(s, vec![x]));
    let opts = CompileOptions::default();
    let mut flat: EnumQueryEngine<S, P> = EnumQueryEngine::build_dynamic(&a, &phi, &opts).unwrap();
    let sharded: ShardedEngine<S, P> = ShardedEngine::build(&a, &phi, &opts, 0).unwrap();
    assert!(sharded.num_shards() > 1, "world must actually shard");

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let total = flat.count();
    let probe_ks: Vec<u64> = (0..6).map(|_| rng.gen_range(0..total.max(1))).collect();
    check_ranks(&flat, &sharded, &probe_ks, "initial");

    for round in 0..6 {
        // a random Gaifman-preserving batch: toggle E tuples and S atoms
        let mut batch = Vec::new();
        for _ in 0..rng.gen_range(1..6) {
            if rng.gen_bool(0.5) {
                let t = e_tuples[rng.gen_range(0..e_tuples.len())];
                let t = if rng.gen_bool(0.5) { t } else { [t[1], t[0]] };
                batch.push(TupleUpdate {
                    rel: e,
                    tuple: t.to_vec(),
                    present: rng.gen_bool(0.5),
                });
            } else {
                batch.push(TupleUpdate {
                    rel: s,
                    tuple: vec![rng.gen_range(0..15u32)],
                    present: rng.gen_bool(0.5),
                });
            }
        }
        if round % 2 == 0 {
            flat.apply_batch(&batch).unwrap();
            sharded.apply_batch(&batch).unwrap();
        } else {
            // the same updates one by one (coalesce first so duplicated
            // tuples resolve the same way on both paths)
            let mut coalesced = Vec::new();
            agq_core::coalesce_updates(&batch, &mut coalesced);
            for u in coalesced {
                flat.apply_update(u).unwrap();
                sharded.apply_update(u).unwrap();
            }
        }
        let total = flat.count();
        let probe_ks: Vec<u64> = (0..4).map(|_| rng.gen_range(0..total.max(1))).collect();
        check_ranks(&flat, &sharded, &probe_ks, &format!("round {round}"));
    }
}

#[test]
fn direct_access_general() {
    for seed in 0..3 {
        direct_access_backend::<Nat, SegTreePerm<Nat>>(40 + seed);
    }
}

#[test]
fn direct_access_ring() {
    direct_access_backend::<Int, RingMaint<Int>>(50);
}

#[test]
fn direct_access_finite() {
    direct_access_backend::<Bool, FiniteMaint<Bool>>(60);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random graphs, random formulas, random ranks: `answer(k)` equals
    /// the k-th enumerated answer (or `None` past the end), and
    /// `answer_range` equals the corresponding cursor walk.
    #[test]
    fn answer_k_equals_enumeration_rank(
        n in 6usize..14,
        edges in pvec((0u32..16, 0u32..16), 4..28),
        which in 0u32..3,
        ks in pvec(0u64..4000, 6),
        range_len in 0usize..6,
    ) {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2);
        let mut a = Structure::new(Arc::new(sig), n);
        for &(u, v) in &edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if u != v {
                a.insert(e, &[u, v]);
            }
        }
        let (x, y, z) = (Var(0), Var(1), Var(2));
        let phi = match which {
            0 => Formula::Rel(e, vec![x, y]),
            1 => Formula::Rel(e, vec![x, y])
                .and(Formula::Rel(e, vec![y, z]))
                .and(Formula::neq(x, z)),
            _ => Formula::Rel(e, vec![x, y])
                .and(Formula::Rel(e, vec![y, z]))
                .and(Formula::Rel(e, vec![z, x])),
        };
        let ix = AnswerIndex::build(&a, &phi, &CompileOptions::default()).unwrap();
        let mut all = Vec::new();
        let mut it = ix.iter();
        while let Some(t) = it.next() {
            all.push(t);
        }
        prop_assert_eq!(ix.count(), all.len() as u64);
        for &k in &ks {
            let expect = all.get(k as usize).cloned();
            prop_assert_eq!(ix.answer(k), expect, "rank {}", k);
            let end = ((k as usize) + range_len).min(all.len());
            let walk: Vec<Vec<Elem>> = if (k as usize) < all.len() {
                all[k as usize..end].to_vec()
            } else {
                Vec::new()
            };
            prop_assert_eq!(ix.answer_range(k, range_len), walk, "range at {}", k);
        }
    }
}

/// The tentpole's complexity contract: gate visits per `answer(k)` call
/// are bounded by circuit structure (depth × perm rows), **independent
/// of `k`** — direct access does not enumerate. On a graph with
/// thousands of answers, visits for the last rank must not exceed the
/// small structural bound that the first rank needs.
#[test]
fn gate_visits_independent_of_k() {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let n = 600usize;
    let mut a = Structure::new(Arc::new(sig), n);
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..8 * n {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            a.insert(e, &[u, v]);
        }
    }
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(e, vec![x, y])
        .and(Formula::Rel(e, vec![y, z]))
        .and(Formula::neq(x, z));
    let ix = AnswerIndex::build(&a, &phi, &CompileOptions::default()).unwrap();
    let total = ix.count();
    assert!(total > 10_000, "workload must dwarf any structural bound");
    let mut max_visits = 0u64;
    let mut min_visits = u64::MAX;
    for i in 0..=32u64 {
        let k = (total - 1) * i / 32; // ranks spread over the whole space
        let (t, visits) = ix.answer_counting(k);
        assert!(t.is_some(), "rank {k} in range");
        max_visits = max_visits.max(visits);
        min_visits = min_visits.min(visits);
    }
    // Independent of k: the spread between the cheapest and the most
    // expensive rank is structural noise (different path shapes), not
    // growth in k. And the bound is microscopic next to the rank space —
    // an enumeration loop would need ~`total` visits to reach the end.
    assert!(
        max_visits <= 4 * min_visits + 16,
        "visit counts must not grow with k: min {min_visits}, max {max_visits}"
    );
    assert!(
        max_visits * 100 < total,
        "no enumeration loop: {max_visits} visits vs {total} answers"
    );
}
