//! Batch-ingestion regression test over the E14-style service workload.
//!
//! Pins the two properties PR 6 bought:
//!
//! 1. `apply_batch` at batch size 64 beats the same updates applied
//!    one-by-one on a **hot-key churn** script (95% of updates repeatedly
//!    flip a handful of edges, as a service ingesting bursty upserts
//!    would see). The win is tuple-level coalescing plus the
//!    coalesce-once stack: duplicated flips cancel before any gate is
//!    touched, and the survivors pay one hash, one validation, and one
//!    dirty sweep per side for the whole batch. On *uniform random*
//!    updates the per-update cones are disjoint — batch and sequential
//!    do identical gate work there, so a uniform script would measure
//!    nothing but overhead. The budget (≥1.5×) is well under the ~3-4×
//!    measured in release mode, leaving room for CI noise.
//! 2. Enumeration delay does not regress after batched ingestion: the
//!    p99.9 / max per-answer budgets of `delay_regression.rs` must still
//!    hold on an index that absorbed its updates through `apply_batch`.
//!
//! Wall-clock budgets are only meaningful with optimizations on, so the
//! assertions are compiled under `not(debug_assertions)`: run via
//! `cargo test -p agq-enumerate --release` (CI does).

#![cfg(not(debug_assertions))]

use agq_core::{CompileOptions, TupleUpdate};
use agq_enumerate::EnumQueryEngine;
use agq_logic::{Formula, Var};
use agq_perm::SegTreePerm;
use agq_semiring::Nat;
use agq_structure::{RelId, Signature, Structure};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The E14 world: 64 sparse components of 250 vertices (random tree plus
/// chords, symmetrized) with a unary mark on even vertices, queried by
/// `E(x, y) ∧ S(x)`.
fn e14_world() -> (Structure, Formula, RelId) {
    let (comps, m) = (64usize, 250usize);
    let n = comps * m;
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let s = sig.add_relation("S", 1);
    let mut a = Structure::new(Arc::new(sig), n);
    let mut rng = SmallRng::seed_from_u64(14);
    for c in 0..comps {
        let base = (c * m) as u32;
        for i in 1..m as u32 {
            let u = base + i;
            let v = base + rng.gen_range(0..i);
            a.insert(e, &[u, v]);
            a.insert(e, &[v, u]);
        }
    }
    for v in 0..n as u32 {
        if v % 2 == 0 {
            a.insert(s, &[v]);
        }
    }
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(e, vec![x, y]).and(Formula::Rel(s, vec![x]));
    (a, phi, e)
}

/// Hot-key churn script: `reps` membership flips, 95% of them over a hot
/// set of 4 edges, presence tracked so every update is a real flip at
/// generation time.
fn churn_script(a: &Structure, e: RelId, reps: usize, seed: u64) -> Vec<TupleUpdate> {
    let edges: Vec<Vec<u32>> = a
        .relation(e)
        .iter()
        .map(|t| t.as_slice().to_vec())
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut present = vec![true; edges.len()];
    let hot: Vec<usize> = (0..4).map(|_| rng.gen_range(0..edges.len())).collect();
    (0..reps)
        .map(|_| {
            let ei = if rng.gen_bool(0.95) {
                hot[rng.gen_range(0..hot.len())]
            } else {
                rng.gen_range(0..edges.len())
            };
            present[ei] = !present[ei];
            TupleUpdate {
                rel: e,
                tuple: edges[ei].clone(),
                present: present[ei],
            }
        })
        .collect()
}

#[test]
fn batch64_beats_sequential_and_delay_holds() {
    const BATCH: usize = 64;
    const P999_BUDGET: Duration = Duration::from_millis(1);
    const MAX_BUDGET: Duration = Duration::from_millis(50);

    let (a, phi, e) = e14_world();
    let script = churn_script(&a, e, 40_000, 99);

    let arc = Arc::new(a);
    let opts = CompileOptions::default();
    let mut batched: EnumQueryEngine<Nat, SegTreePerm<Nat>> =
        EnumQueryEngine::build_dynamic(&arc, &phi, &opts).unwrap();
    let mut sequential: EnumQueryEngine<Nat, SegTreePerm<Nat>> =
        EnumQueryEngine::build_dynamic(&arc, &phi, &opts).unwrap();

    // warm both engines (page in plans, fault in the hot cones) with a
    // full pass; the script toggles presence, so a second pass replays
    // cleanly from wherever the first one ended
    for u in &script {
        batched.apply_update(u).unwrap();
        sequential.apply_update(u).unwrap();
    }

    let t0 = Instant::now();
    for chunk in script.chunks(BATCH) {
        batched.apply_batch(chunk).unwrap();
    }
    let batch_time = t0.elapsed();

    let t0 = Instant::now();
    for u in &script {
        sequential.apply_update(u).unwrap();
    }
    let seq_time = t0.elapsed();

    // both engines replayed the same script: they must agree exactly
    assert_eq!(batched.count(), sequential.count());

    assert!(
        batch_time.as_nanos() * 3 < seq_time.as_nanos() * 2,
        "apply_batch({BATCH}) must beat sequential by ≥1.5× on hot-key churn: \
         batched {batch_time:?} vs sequential {seq_time:?} over {} updates",
        script.len()
    );

    // enumeration delay on the batch-updated index must still meet the
    // delay budgets
    let mut it = batched.enumerate();
    let mut count = 0u64;
    let mut delays: Vec<Duration> = Vec::with_capacity(70_000);
    loop {
        let t = Instant::now();
        let step = it.next();
        let d = t.elapsed();
        if step.is_none() {
            break;
        }
        delays.push(d);
        count += 1;
    }
    assert!(count > 5_000, "workload sanity: enough answers to measure");
    delays.sort();
    let p999 = delays[delays.len() - 1 - delays.len() / 1000];
    let max = *delays.last().unwrap();
    assert!(
        p999 < P999_BUDGET,
        "p99.9 per-answer delay {p999:?} over budget {P999_BUDGET:?} \
         across {count} answers after batched ingestion"
    );
    assert!(
        max < MAX_BUDGET,
        "max per-answer delay {max:?} over budget {MAX_BUDGET:?} \
         across {count} answers after batched ingestion"
    );
}
