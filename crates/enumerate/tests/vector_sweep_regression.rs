//! Vectorized-sweep regression test over the E9 count-side circuit.
//!
//! Pins the two properties the dense-run work bought:
//!
//! 1. **Dense-run coverage**: after the compiler's `cluster_adds`
//!    relabel, at least 80% of the add-gate child mass of the E9
//!    count circuit (`Σ_{x,y,z} [E(x,y) ∧ E(y,z) ∧ x≠z]`, dynamic
//!    atoms — the circuit the PR 7 rank tables evaluate) lies in
//!    contiguous id runs of length ≥ 4, i.e. is eligible for the bulk
//!    `sum_slice` tier instead of the scalar gather.
//! 2. **Sweep throughput**: a full add-gate sweep through the dense-run
//!    tier beats the canonical 4-lane scalar gather by ≥1.3× on the
//!    same circuit and the same `Nat` value vector (the BENCH_6
//!    measurement is ~2-4×; the floor leaves room for CI noise), and
//!    both sweeps produce identical sums.
//!
//! Wall-clock budgets are only meaningful with optimizations on, so the
//! assertions are compiled under `not(debug_assertions)`: run via
//! `cargo test -p agq-enumerate --release` (CI does).

#![cfg(not(debug_assertions))]

use agq_circuit::{eval_gates, Circuit, EvalPlan, GateDef, GateId};
use agq_core::{compile, eliminate_quantifiers, CompileOptions, CompiledQuery, SlotKey};
use agq_logic::{normalize, Expr, Formula, Var};
use agq_semiring::{Nat, Semiring};
use agq_structure::{Signature, Structure};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// E9 world at size `n`: sparse random `G(n, 2n)`, symmetrized.
fn e9_structure(n: usize) -> (Arc<Structure>, agq_structure::RelId) {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let mut a = Structure::new(Arc::new(sig), n);
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..2 * n {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            a.insert(e, &[u, v]);
            a.insert(e, &[v, u]);
        }
    }
    (Arc::new(a), e)
}

/// Compile the E9 count query (two-path with distinct endpoints) in
/// dynamic-atom mode and build the slot vector, exactly as the count
/// side of the answer index does.
fn e9_count_circuit() -> (CompiledQuery<Nat>, Vec<Nat>) {
    let n = 20_000;
    let (a, e) = e9_structure(n);
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(e, vec![x, y])
        .and(Formula::Rel(e, vec![y, z]))
        .and(Formula::neq(x, z));
    let expr = Expr::<Nat>::Bracket(phi).sum_over([x, y, z]);
    let opts = CompileOptions {
        dynamic_atoms: true,
        ..CompileOptions::default()
    };
    let (expr, a2) = eliminate_quantifiers(&expr, &a, &opts).unwrap();
    let nf = normalize(&expr).unwrap();
    let compiled = compile(&a2, &nf, &opts).unwrap();
    let slots: Vec<Nat> = compiled
        .slots
        .iter()
        .map(|(_, key)| match key {
            SlotKey::AtomPos(r, t) => Nat(u64::from(a2.holds(r, t.as_slice()))),
            SlotKey::AtomNeg(r, t) => Nat(u64::from(!a2.holds(r, t.as_slice()))),
            _ => unreachable!("count expression has no weights or free vars"),
        })
        .collect();
    (compiled, slots)
}

#[test]
fn dense_run_coverage_and_sweep_throughput() {
    let (compiled, slots) = e9_count_circuit();
    let plan = EvalPlan::new(compiled.circuit.clone());

    // -- 1. dense-run coverage of the add-gate child mass ------------
    let stats = plan.dense_run_stats();
    let coverage = stats.coverage();
    println!(
        "E9 dense-run stats: {} add gates ({} full-run), {}/{} children dense, coverage {:.3}",
        stats.add_gates, stats.full_run_gates, stats.dense_children, stats.total_children, coverage
    );
    assert!(
        coverage >= 0.8,
        "dense-run coverage regressed: {coverage:.3} < 0.8 — did the \
         compiler stop clustering add children?"
    );

    // -- 2. bulk sweep vs scalar gather on the same values -----------
    //
    // The timed A/B covers the *dense-run path*: every add gate whose
    // runs reach the bulk tier (run length ≥ MIN_RUN = 4) — 97%+ of the
    // child mass here. Sub-threshold gates execute the identical scalar
    // fold on both sides, so including them only dilutes the kernel
    // comparison with a no-op; the correctness check below still spans
    // every add gate.
    let values = eval_gates(&compiled.circuit, &slots, &compiled.lits);
    let circuit: &Circuit = &compiled.circuit;
    let adds: Vec<(u32, &[GateId])> = circuit
        .gates()
        .iter()
        .enumerate()
        .filter_map(|(g, def)| match def {
            GateDef::Add(r) => Some((g as u32, circuit.children(*r))),
            _ => None,
        })
        .collect();
    let dense_adds: Vec<(u32, &[GateId])> = adds
        .iter()
        .filter(|(g, _)| plan.add_runs(*g).iter().any(|&(_, len)| len as usize >= 4))
        .copied()
        .collect();

    // The canonical scalar gather: 4-lane fold over per-child loads
    // (`sum_children`'s exact shape, restated here because the kernel
    // itself is crate-private).
    let gather_over = |adds: &[(u32, &[GateId])]| {
        let mut check = Nat(0);
        for (_, kids) in adds {
            const LANES: usize = 4;
            let s = if kids.len() < 2 * LANES {
                let mut acc = Nat(0);
                for c in *kids {
                    acc.add_assign(&values[c.0 as usize]);
                }
                acc
            } else {
                let mut lanes = [Nat(0); LANES];
                let chunks = kids.chunks_exact(LANES);
                let rest = chunks.remainder();
                for chunk in chunks {
                    for (lane, c) in lanes.iter_mut().zip(chunk) {
                        lane.add_assign(&values[c.0 as usize]);
                    }
                }
                let [a, b, c, d] = lanes;
                let mut acc = a.add(&b).add(&c.add(&d));
                for g in rest {
                    acc.add_assign(&values[g.0 as usize]);
                }
                acc
            };
            check.add_assign(&s);
        }
        check
    };

    // The dense-run tier: slice kernels over the plan's precomputed
    // maximal runs, scalar fold for sub-threshold runs (MIN_RUN = 4).
    // The run lists are flattened out of the plan's CSR once — the same
    // shape the plan hands `sum_add` — so the timed loop pays only the
    // slice sums, as the evaluator sweeps do.
    let runs_over = |adds: &[(u32, &[GateId])]| -> Vec<(u32, u32)> {
        adds.iter()
            .flat_map(|(g, _)| plan.add_runs(*g).iter().copied())
            .collect()
    };
    let dense_over = |runs: &[(u32, u32)]| {
        let mut check = Nat(0);
        for &(lo, len) in runs {
            let seg = &values[lo as usize..(lo + len) as usize];
            if len >= 4 {
                check.add_assign(&Nat::sum_slice(seg));
            } else {
                for v in seg {
                    check.add_assign(v);
                }
            }
        }
        check
    };

    // Correctness: both sweeps agree over *every* add gate (the dense
    // path degrades to the same scalar fold on sub-threshold runs).
    let all_runs = runs_over(&adds);
    assert_eq!(
        gather_over(&adds),
        dense_over(&all_runs),
        "bulk and scalar sweeps must agree on every add gate"
    );

    // Throughput floor on the dense-run mass, min-of-k to shed noise.
    let dense_runs = runs_over(&dense_adds);
    let reps = 100u32;
    let timed = |f: &dyn Fn() -> Nat| -> Duration {
        let mut best = Duration::MAX;
        for _ in 0..7 {
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(f());
            }
            best = best.min(t.elapsed() / reps);
        }
        best
    };
    let t_gather = timed(&|| gather_over(&dense_adds));
    let t_dense = timed(&|| dense_over(&dense_runs));
    let speedup = t_gather.as_secs_f64() / t_dense.as_secs_f64();
    let mass: usize = dense_adds.iter().map(|(_, k)| k.len()).sum();
    println!(
        "E9 dense-path sweep ({} gates, {mass} children): gather {t_gather:?}, \
         dense {t_dense:?}, speedup {speedup:.2}x",
        dense_adds.len()
    );
    assert!(
        speedup >= 1.3,
        "dense-run sweep speedup regressed: {speedup:.2}x < 1.3x"
    );
}
