//! Differential and concurrency suites for the Gaifman-component
//! sharded engine and the plan/state split beneath it.
//!
//! * sharded ≡ unsharded: point queries, answer sets, the merged
//!   ordered stream, and post-update behavior, on all three point-query
//!   backends (General / Ring / Finite);
//! * property test: one shared plan with N states under disjoint update
//!   streams is indistinguishable from N independently built engines;
//! * concurrent smoke test: threads updating distinct shards while other
//!   threads run `query_batch` (run in release mode by CI).

use agq_circuit::{FiniteMaint, PermMaint, RingMaint};
use agq_core::{CompileOptions, TupleUpdate};
use agq_enumerate::{AnswerIndex, EnumQueryEngine, ShardedEngine, UpdateError};
use agq_logic::{Formula, Var};
use agq_perm::SegTreePerm;
use agq_semiring::{Bool, Int, Nat, Semiring};
use agq_structure::gaifman::GaifmanComponents;
use agq_structure::{Elem, RelId, Signature, Structure};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A multi-component world: `num_comps` disjoint random clusters over
/// one edge relation `E` (symmetrized) and one unary relation `S`.
struct World {
    a: Arc<Structure>,
    e: RelId,
    s: RelId,
    /// Gaifman-preserving binary update candidates.
    e_tuples: Vec<[u32; 2]>,
    n: u32,
}

fn clustered_world(num_comps: usize, comp_size: usize, seed: u64) -> World {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let s = sig.add_relation("S", 1);
    let n = num_comps * comp_size;
    let mut a = Structure::new(Arc::new(sig), n);
    let mut rng = SmallRng::seed_from_u64(seed);
    for c in 0..num_comps {
        let base = (c * comp_size) as u32;
        // a random connected-ish cluster: a path plus chords
        for i in 1..comp_size as u32 {
            let u = base + i;
            let v = base + rng.gen_range(0..i);
            a.insert(e, &[u, v]);
            a.insert(e, &[v, u]);
        }
        for _ in 0..comp_size / 2 {
            let u = base + rng.gen_range(0..comp_size as u32);
            let v = base + rng.gen_range(0..comp_size as u32);
            if u != v {
                a.insert(e, &[u, v]);
                a.insert(e, &[v, u]);
            }
        }
    }
    for v in 0..n as u32 {
        if rng.gen_bool(0.5) {
            a.insert(s, &[v]);
        }
    }
    let e_tuples: Vec<[u32; 2]> = a
        .relation(e)
        .iter()
        .map(|t| [t.as_slice()[0], t.as_slice()[1]])
        .collect();
    World {
        a: Arc::new(a),
        e,
        s,
        e_tuples,
        n: n as u32,
    }
}

fn sorted(mut v: Vec<Vec<Elem>>) -> Vec<Vec<Elem>> {
    v.sort();
    v
}

fn collect_engine<S: Semiring, P: PermMaint<S>>(eng: &EnumQueryEngine<S, P>) -> Vec<Vec<Elem>> {
    let mut out = Vec::new();
    let mut it = eng.enumerate();
    while let Some(t) = it.next() {
        out.push(t);
    }
    out
}

/// Differential: the sharded engine must agree with the unsharded
/// `EnumQueryEngine` on point queries, the answer set, the merged
/// ordered stream, and after every update of a random Gaifman-preserving
/// update sequence.
fn sharded_matches_unsharded<S, P, F>(seed: u64, mk_one: F)
where
    S: Semiring + PartialEq,
    P: PermMaint<S> + Send + Sync,
    F: Fn() -> S,
{
    let w = clustered_world(4, 6, seed);
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(w.e, vec![x, y]).and(Formula::Rel(w.s, vec![x]));
    assert!(phi.answers_component_local());
    let opts = CompileOptions::default();
    let sharded: ShardedEngine<S, P> = ShardedEngine::build(&w.a, &phi, &opts, 0).unwrap();
    let mut flat: EnumQueryEngine<S, P> =
        EnumQueryEngine::build_dynamic(&w.a, &phi, &opts).unwrap();
    assert!(sharded.num_shards() > 1, "world must actually shard");

    let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
    let one = mk_one();
    let mut check = |sharded: &ShardedEngine<S, P>, flat: &mut EnumQueryEngine<S, P>| {
        let flat_answers = sorted(collect_engine(flat));
        assert_eq!(
            sorted(sharded.collect_answers()),
            flat_answers,
            "answer sets"
        );
        let merged = sharded.enumerate_merged();
        assert_eq!(
            merged,
            sharded.collect_answers(),
            "merged stream is the global rank order"
        );
        assert_eq!(sorted(merged), flat_answers, "merged answer set");
        assert_eq!(sharded.count(), flat_answers.len() as u64);
        // global rank access agrees with the merged stream
        let stream = sharded.collect_answers();
        for k in [0, stream.len() / 2, stream.len().saturating_sub(1)] {
            if k < stream.len() {
                assert_eq!(
                    sharded.answer(k as u64).as_ref(),
                    Some(&stream[k]),
                    "global rank {k}"
                );
            }
        }
        assert_eq!(sharded.answer(stream.len() as u64), None);
        // point queries: answers are one, random non-answers agree too
        for t in flat_answers.iter().take(8) {
            assert_eq!(sharded.query(t), one, "answer point query");
        }
        let probes: Vec<[u32; 2]> = (0..16)
            .map(|_| [rng.gen_range(0..w.n), rng.gen_range(0..w.n)])
            .collect();
        let probe_refs: Vec<&[u32]> = probes.iter().map(|p| p.as_slice()).collect();
        let batch = sharded.query_batch(&probe_refs);
        for (p, got) in probes.iter().zip(batch) {
            assert_eq!(got, flat.query(p), "probe {p:?}");
            assert_eq!(sharded.query(p), flat.query(p), "point probe {p:?}");
        }
    };
    check(&sharded, &mut flat);
    // interleave updates and re-checks
    let mut rng2 = SmallRng::seed_from_u64(seed ^ 0x1234);
    for step in 0..25 {
        let u = if rng2.gen_bool(0.4) {
            TupleUpdate {
                rel: w.s,
                tuple: vec![rng2.gen_range(0..w.n)],
                present: rng2.gen_bool(0.5),
            }
        } else {
            let t = w.e_tuples[rng2.gen_range(0..w.e_tuples.len())];
            let t = if rng2.gen_bool(0.5) { t } else { [t[1], t[0]] };
            TupleUpdate {
                rel: w.e,
                tuple: t.to_vec(),
                present: rng2.gen_bool(0.5),
            }
        };
        sharded.apply_update(&u).unwrap();
        flat.apply_update(&u).unwrap();
        if step % 5 == 4 {
            check(&sharded, &mut flat);
        }
    }
    check(&sharded, &mut flat);
}

#[test]
fn sharded_differential_general() {
    sharded_matches_unsharded::<Nat, SegTreePerm<Nat>, _>(7, || Nat(1));
}

#[test]
fn sharded_differential_ring() {
    sharded_matches_unsharded::<Int, RingMaint<Int>, _>(8, || Int(1));
}

#[test]
fn sharded_differential_finite() {
    sharded_matches_unsharded::<Bool, FiniteMaint<Bool>, _>(9, || Bool(true));
}

/// The fallback path must stay correct: a non-component-local formula
/// (negated atom) runs on one shard and still matches the flat engine.
#[test]
fn sharded_fallback_differential() {
    let w = clustered_world(3, 4, 11);
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(w.e, vec![x, y]).not().and(Formula::neq(x, y));
    assert!(!phi.answers_component_local());
    let opts = CompileOptions::default();
    let sharded: ShardedEngine<Nat, SegTreePerm<Nat>> =
        ShardedEngine::build(&w.a, &phi, &opts, 0).unwrap();
    assert_eq!(sharded.num_shards(), 1);
    let mut flat: EnumQueryEngine<Nat, SegTreePerm<Nat>> =
        EnumQueryEngine::build_dynamic(&w.a, &phi, &opts).unwrap();
    assert_eq!(
        sorted(sharded.collect_answers()),
        sorted(collect_engine(&flat))
    );
    let u = TupleUpdate::remove(w.e, &[0, 1]);
    sharded.apply_update(&u).unwrap();
    flat.apply_update(&u).unwrap();
    assert_eq!(
        sorted(sharded.collect_answers()),
        sorted(collect_engine(&flat))
    );
    assert_eq!(sharded.query(&[0, 1]), flat.query(&[0, 1]));
}

// ---------------------------------------------------------------------
// Property test: one shared plan, N states, disjoint update streams.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A plan shared by N `AnswerIndex` states, each absorbing its own
    /// update stream, must enumerate exactly what N independently built
    /// indexes over the same update streams do.
    #[test]
    fn shared_plan_states_match_independent_engines(
        seed in 0u64..1000,
        steps in pvec((0usize..3, 0u32..24, any::<bool>(), any::<bool>()), 1..30),
    ) {
        let w = clustered_world(3, 8, seed);
        let (x, y) = (Var(0), Var(1));
        let phi = Formula::Rel(w.e, vec![x, y]).and(Formula::Rel(w.s, vec![x]));
        let opts = CompileOptions::default();
        // N states over ONE shared plan (shard_filtered keeps every
        // element: same answers, same plan, distinct mutable state).
        let base = AnswerIndex::build_dynamic(&w.a, &phi, &opts).unwrap();
        let mut shared: Vec<AnswerIndex> = (0..3).map(|_| base.shard_filtered(|_| true)).collect();
        // N independently built engines, one per stream.
        let mut independent: Vec<AnswerIndex> =
            (0..3).map(|_| AnswerIndex::build_dynamic(&w.a, &phi, &opts).unwrap()).collect();
        for (stream, pick, use_s, present) in steps {
            let u = if use_s {
                TupleUpdate { rel: w.s, tuple: vec![pick % w.n], present }
            } else {
                let t = w.e_tuples[pick as usize % w.e_tuples.len()];
                TupleUpdate { rel: w.e, tuple: t.to_vec(), present }
            };
            shared[stream].apply_update(&u).unwrap();
            independent[stream].apply_update(&u).unwrap();
            // the updated pair must agree; the other streams are untouched
            for i in 0..3 {
                prop_assert_eq!(
                    shared[i].count(),
                    independent[i].count(),
                    "stream {} diverged", i
                );
            }
        }
        for i in 0..3 {
            let collect = |ix: &AnswerIndex| {
                let mut out = Vec::new();
                let mut it = ix.iter();
                while let Some(t) = it.next() { out.push(t); }
                out.sort();
                out
            };
            prop_assert_eq!(collect(&shared[i]), collect(&independent[i]));
        }
    }
}

// ---------------------------------------------------------------------
// Batched ingestion across shards.
// ---------------------------------------------------------------------

/// `ShardedEngine::apply_batch` with batches straddling shards must agree
/// with one-by-one sharded application and with a flat engine absorbing
/// the same updates, on all three backends. Batches mix relations,
/// duplicate tuples (last wins) and guaranteed mutually-cancelling flips.
fn sharded_batch_matches_sequential<S, P>(seed: u64)
where
    S: Semiring + PartialEq,
    P: PermMaint<S> + Send + Sync,
{
    let w = clustered_world(4, 6, seed);
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(w.e, vec![x, y]).and(Formula::Rel(w.s, vec![x]));
    let opts = CompileOptions::default();
    let batched: ShardedEngine<S, P> = ShardedEngine::build(&w.a, &phi, &opts, 0).unwrap();
    let sequential: ShardedEngine<S, P> = ShardedEngine::build(&w.a, &phi, &opts, 0).unwrap();
    let mut flat: EnumQueryEngine<S, P> =
        EnumQueryEngine::build_dynamic(&w.a, &phi, &opts).unwrap();
    assert!(batched.num_shards() > 1, "world must actually shard");

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    for round in 0..6 {
        // a batch touching several components at once
        let mut batch = Vec::new();
        for _ in 0..12 {
            if rng.gen_bool(0.4) {
                batch.push(TupleUpdate {
                    rel: w.s,
                    tuple: vec![rng.gen_range(0..w.n)],
                    present: rng.gen_bool(0.5),
                });
            } else {
                let t = w.e_tuples[rng.gen_range(0..w.e_tuples.len())];
                batch.push(TupleUpdate {
                    rel: w.e,
                    tuple: t.to_vec(),
                    present: rng.gen_bool(0.5),
                });
            }
        }
        // guaranteed cancelling pair on one tuple: the remove wins
        let t = w.e_tuples[rng.gen_range(0..w.e_tuples.len())];
        batch.push(TupleUpdate::insert(w.e, &t));
        batch.push(TupleUpdate::remove(w.e, &t));

        batched.apply_batch(&batch).unwrap();
        for u in &batch {
            sequential.apply_update(u).unwrap();
            flat.apply_update(u).unwrap();
        }
        let expect = sorted(collect_engine(&flat));
        assert_eq!(
            sorted(batched.collect_answers()),
            expect,
            "round {round}: batched sharded ≠ flat"
        );
        assert_eq!(
            sorted(sequential.collect_answers()),
            expect,
            "round {round}: sequential sharded ≠ flat"
        );
        assert_eq!(batched.count(), expect.len() as u64);
    }
}

#[test]
fn sharded_batch_differential_general() {
    sharded_batch_matches_sequential::<Nat, SegTreePerm<Nat>>(21);
}

#[test]
fn sharded_batch_differential_ring() {
    sharded_batch_matches_sequential::<Int, RingMaint<Int>>(22);
}

#[test]
fn sharded_batch_differential_finite() {
    sharded_batch_matches_sequential::<Bool, FiniteMaint<Bool>>(23);
}

/// A batch containing a cross-shard insert is rejected whole: the error
/// surfaces before any update in the batch is applied, even ones routed
/// to other shards. Cross-shard removes are dropped as no-ops and the
/// rest of the batch still applies.
#[test]
fn sharded_batch_is_all_or_nothing() {
    let w = clustered_world(3, 4, 31);
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(w.e, vec![x, y]).and(Formula::Rel(w.s, vec![x]));
    let opts = CompileOptions::default();
    let eng: ShardedEngine<Nat, SegTreePerm<Nat>> =
        ShardedEngine::build(&w.a, &phi, &opts, 0).unwrap();
    assert!(eng.num_shards() > 1);
    let before = sorted(eng.collect_answers());
    let t = w.e_tuples[0];
    let cross = [0u32, w.n - 1]; // first and last cluster: spans shards
    let batch = vec![
        TupleUpdate::remove(w.e, &t), // would change state if applied
        TupleUpdate::insert(w.e, &cross),
    ];
    assert_eq!(
        eng.apply_batch(&batch),
        Err(UpdateError::NotGaifmanPreserving)
    );
    assert_eq!(
        sorted(eng.collect_answers()),
        before,
        "rejected batch must leave no partial application"
    );
    // cross-shard removes are no-ops; the in-shard remove still applies
    let batch = vec![
        TupleUpdate::remove(w.e, &cross),
        TupleUpdate::remove(w.e, &t),
    ];
    let applied = eng.apply_batch(&batch).unwrap();
    assert_eq!(applied, 1, "only the in-shard remove touches slots");
    let mut flat: EnumQueryEngine<Nat, SegTreePerm<Nat>> =
        EnumQueryEngine::build_dynamic(&w.a, &phi, &opts).unwrap();
    flat.apply_update(&TupleUpdate::remove(w.e, &t)).unwrap();
    assert_eq!(sorted(eng.collect_answers()), sorted(collect_engine(&flat)));
}

// ---------------------------------------------------------------------
// Concurrent smoke test (CI runs this in release mode).
// ---------------------------------------------------------------------

/// Threads hammer distinct shards with updates while other threads run
/// `query_batch` and enumeration concurrently; afterwards the engine
/// must agree with a flat engine that absorbed the same updates.
#[test]
fn concurrent_shard_updates_and_batch_queries() {
    let w = clustered_world(4, 8, 42);
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(w.e, vec![x, y]).and(Formula::Rel(w.s, vec![x]));
    let opts = CompileOptions::default();
    let eng: ShardedEngine<Nat, SegTreePerm<Nat>> =
        ShardedEngine::build(&w.a, &phi, &opts, 4).unwrap();
    assert_eq!(eng.num_shards(), 4);
    let components = GaifmanComponents::new(&w.a, 4);

    // Partition the update candidates by owning shard so writer threads
    // never contend on one shard.
    let mut per_shard: Vec<Vec<TupleUpdate>> = vec![Vec::new(); 4];
    for t in &w.e_tuples {
        let s = components.shard_of(t[0]) as usize;
        per_shard[s].push(TupleUpdate::remove(w.e, t));
        per_shard[s].push(TupleUpdate::insert(w.e, t));
    }
    for v in 0..w.n {
        let s = components.shard_of(v) as usize;
        per_shard[s].push(TupleUpdate::insert(w.s, &[v]));
    }

    let probes: Vec<[u32; 2]> = {
        let mut rng = SmallRng::seed_from_u64(5);
        (0..64)
            .map(|_| [rng.gen_range(0..w.n), rng.gen_range(0..w.n)])
            .collect()
    };
    let eng = &eng;
    std::thread::scope(|scope| {
        // four writers, one per shard
        for stream in &per_shard {
            scope.spawn(move || {
                for _ in 0..20 {
                    for u in stream {
                        eng.apply_update(u).unwrap();
                    }
                }
            });
        }
        // two readers running batches + enumeration the whole time
        for _ in 0..2 {
            scope.spawn(|| {
                let tuples: Vec<&[u32]> = probes.iter().map(|p| p.as_slice()).collect();
                for _ in 0..20 {
                    let vals = eng.query_batch(&tuples);
                    assert_eq!(vals.len(), tuples.len());
                    let n = eng.count();
                    let mut seen = 0u64;
                    eng.for_each_answer(|_| seen += 1);
                    // counts race benignly between the two snapshots;
                    // both must stay within the world's answer bound
                    assert!(n <= (w.n as u64) * (w.n as u64));
                    assert!(seen <= (w.n as u64) * (w.n as u64));
                }
            });
        }
    });

    // Deterministic end state: every writer's last pass ran to
    // completion, so replay the same final updates into a flat engine.
    let mut flat: EnumQueryEngine<Nat, SegTreePerm<Nat>> =
        EnumQueryEngine::build_dynamic(&w.a, &phi, &opts).unwrap();
    for stream in &per_shard {
        for u in stream {
            flat.apply_update(u).unwrap();
        }
    }
    assert_eq!(
        sorted(eng.collect_answers()),
        sorted(collect_engine(&flat)),
        "post-race state must equal sequential replay"
    );
    for p in &probes {
        assert_eq!(eng.query(p), flat.query(p));
    }
}
