//! Direct-access performance regression test (PR 7) over the E9
//! workload at n = 16 000.
//!
//! Pins two properties of `answer(k)`:
//!
//! 1. **Seek latency is O(depth), not O(k).** A warm `answer(k)` is a
//!    pure gate-by-gate descent — measured p50 ≈ 5–7 µs, p99 ≈ 12–30 µs
//!    on shared hardware (the tail is first-touch prefix-table builds
//!    and scheduler noise, not rank-dependent work; the instrumented
//!    test in `direct_access.rs` proves gate visits are flat in `k`).
//!    The budgets below are ~4× those numbers: loose enough for noisy
//!    CI, tight enough that any enumeration loop over preceding answers
//!    (milliseconds at this size, see the `nth_walk` ratio asserted
//!    here) trips them immediately.
//!
//! 2. **Rank maintenance is (almost) free for writers.** Under the lazy
//!    design, `apply_batch` only appends count patches — the repair
//!    sweep is deferred to the next read. The gated number is therefore
//!    ingestion with count state live for the whole run *plus the one
//!    flush that brings ranks current*, vs. a count-free index:
//!    measured ≈ +3 % appends + one ~230 ms flush for 20 k updates
//!    (≈ +50 % total at this scale), gated at +100 %. A reader after
//!    *every* batch instead re-pays each batch's full update cone
//!    (~2.4 ms/batch, +140–170 % — reported by bench5, not gated):
//!    counts change through the whole cone so no repair schedule, eager
//!    or lazy, can avoid that sweep; the lazy design merely moves it
//!    off the write path.
//!
//! Budgets are only meaningful with optimizations on, so the assertions
//! are compiled under `not(debug_assertions)`: run via
//! `cargo test -p agq-enumerate --release` (CI does).

#![cfg(not(debug_assertions))]

use agq_core::{CompileOptions, TupleUpdate};
use agq_enumerate::AnswerIndex;
use agq_graph::generators;
use agq_logic::{Formula, Var};
use agq_structure::{Signature, Structure};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The E9 workload: symmetrized G(n, 2n), two-path query with x ≠ z.
fn e9_workload(n: usize) -> (Structure, Formula, agq_structure::RelId) {
    let g = generators::gnm(n, 2 * n, 7);
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let mut a = Structure::new(Arc::new(sig), n);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(e, vec![x, y])
        .and(Formula::Rel(e, vec![y, z]))
        .and(Formula::neq(x, z));
    (a, phi, e)
}

#[test]
fn answer_k_seek_budgets() {
    /// Median seek budget: ~4× the measured ≈ 5–7 µs descent.
    const P50_BUDGET: Duration = Duration::from_micros(30);
    /// Tail budget: first-touch prefix builds + CI scheduler noise.
    const P99_BUDGET: Duration = Duration::from_micros(150);
    /// A walk to rank n/2 must be ≥ 100× slower than a seek — the
    /// structural claim that `answer(k)` does no enumeration loop.
    const WALK_SEEK_RATIO: f64 = 100.0;

    let n = 16_000;
    let (a, phi, _) = e9_workload(n);
    let ix = AnswerIndex::build_dynamic(&a, &phi, &CompileOptions::default()).unwrap();
    let total = ix.count();
    assert!(total > 100_000, "workload sanity: enough answers to seek");

    ix.answer(0).unwrap(); // one-time count materialization
    let probes: Vec<u64> = (0..1000).map(|i| (total - 1) * i / 999).collect();
    let mut seek: Vec<Duration> = probes
        .iter()
        .map(|&k| {
            let t = Instant::now();
            std::hint::black_box(ix.answer(k).unwrap());
            t.elapsed()
        })
        .collect();
    seek.sort();
    let p50 = seek[seek.len() / 2];
    let p99 = seek[seek.len() - 1 - seek.len() / 100];
    assert!(
        p50 < P50_BUDGET,
        "answer(k) p50 {p50:?} over budget {P50_BUDGET:?} across {} probes",
        seek.len()
    );
    assert!(
        p99 < P99_BUDGET,
        "answer(k) p99 {p99:?} over budget {P99_BUDGET:?} across {} probes",
        seek.len()
    );

    // The walk `answer(k)` replaces: advance a cursor to rank total/2.
    let t = Instant::now();
    let mut it = ix.iter();
    let mut mid = None;
    for _ in 0..=total / 2 {
        mid = it.next();
    }
    let walk = t.elapsed();
    assert_eq!(mid, ix.answer(total / 2), "seek must agree with the walk");
    assert!(
        walk > p50.mul_f64(WALK_SEEK_RATIO),
        "iter().nth({}) took {walk:?} vs seek p50 {p50:?} — a {WALK_SEEK_RATIO}× \
         separation is the floor; anything less means answer(k) is walking",
        total / 2
    );
}

#[test]
fn rank_repair_ingestion_overhead() {
    /// Deferred rank repair (pending appends + one flush) may at most
    /// double ingestion at this scale; measured ≈ +50 %.
    const OVERHEAD_BUDGET: f64 = 1.0;

    let n = 16_000;
    let (a, phi, e) = e9_workload(n);
    let opts = CompileOptions::default();
    let edges: Vec<Vec<u32>> = a
        .relation(e)
        .iter()
        .map(|t| t.as_slice().to_vec())
        .collect();

    // Deterministic flip script: toggle pseudo-random edges in and out.
    let reps = 20_000usize;
    let mut present = vec![true; edges.len()];
    let mut s = 0x9e3779b97f4a7c15u64;
    let script: Vec<TupleUpdate> = (0..reps)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let ei = (s % edges.len() as u64) as usize;
            present[ei] = !present[ei];
            TupleUpdate {
                rel: e,
                tuple: edges[ei].clone(),
                present: present[ei],
            }
        })
        .collect();

    // Baseline: counts never materialized — no rank bookkeeping at all.
    let mut base = AnswerIndex::build_dynamic(&a, &phi, &opts).unwrap();
    let t0 = Instant::now();
    for chunk in script.chunks(64) {
        base.apply_batch(chunk).unwrap();
    }
    let t_base = t0.elapsed();

    // Ranks live: count state materialized up front, pending patches
    // accumulate through the whole run, one flush at the end brings
    // ranks current. This is the repair cost ingestion actually pays.
    let mut live = AnswerIndex::build_dynamic(&a, &phi, &opts).unwrap();
    live.answer(0).unwrap();
    let t0 = Instant::now();
    for chunk in script.chunks(64) {
        live.apply_batch(chunk).unwrap();
    }
    std::hint::black_box(live.count());
    let t_live = t0.elapsed();

    assert_eq!(base.count(), live.count(), "both replicas saw one script");
    let overhead = t_live.as_secs_f64() / t_base.as_secs_f64() - 1.0;
    assert!(
        overhead < OVERHEAD_BUDGET,
        "rank repair added {:.0}% to {reps}-update batch-64 ingestion \
         (base {t_base:?}, ranks live {t_live:?}); budget {:.0}%",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    // Ranks must actually be live after the flush: a mid-range seek
    // agrees with a fresh walk.
    let k = live.count() / 2;
    let mut it = live.iter();
    let mut mid = None;
    for _ in 0..=k {
        mid = it.next();
    }
    assert_eq!(mid, live.answer(k), "post-ingestion ranks are current");
}
