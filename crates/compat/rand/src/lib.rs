//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this tiny crate
//! provides the exact API subset the workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over half-open
//! integer ranges, and [`Rng::gen_bool`]. The generator is xoshiro256++
//! (public domain construction by Blackman & Vigna), seeded through
//! SplitMix64 — deterministic across platforms, which is all the test
//! suite and benches rely on.

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values that can be sampled uniformly from a half-open `Range`.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` using `rng`.
    fn sample_range<R: RngCore>(rng: &mut R, range: &Range<Self>) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, &range)
    }

    /// A Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, as in rand's standard float sampling.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<R: RngCore> Rng for R {}

fn uniform_below(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Debiased multiply-shift (Lemire); the retry loop terminates almost
    // surely and keeps the distribution exactly uniform.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                (range.start as $u).wrapping_add(uniform_below(rng, span) as $u) as $t
            }
        }
    )*};
}

impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&s));
        }
    }

    #[test]
    fn gen_bool_hits_both_sides() {
        let mut rng = SmallRng::seed_from_u64(1);
        let trues = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((300..700).contains(&trues), "suspicious bias: {trues}");
    }
}
