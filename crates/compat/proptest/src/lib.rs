//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate implements
//! the API subset the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`Just`], [`any`], [`collection::vec`], [`ProptestConfig`], and the
//! `proptest!` / `prop_assert*` macros. Cases are generated from a
//! deterministic per-case PRNG; failures panic with the case number
//! instead of shrinking. Semantically this is plain randomized testing
//! with proptest's source-level interface.

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Run-time configuration: how many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The per-case random source handed to strategies.
pub type TestRng = SmallRng;

/// Derive the deterministic RNG for one case of one property.
pub fn case_rng(case: u32) -> TestRng {
    SmallRng::seed_from_u64(0xA076_1D64_78BD_642F ^ (u64::from(case) << 17))
}

/// A value generator (the proptest trait, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng),)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..<$t>::MAX)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, i8, i16, i32);

/// The canonical strategy of `T` (see [`any`]).
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert inside a property (panics on failure in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (panics on failure in this
/// stand-in).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declare property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::case_rng(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let run = ::std::panic::AssertUnwindSafe(|| $body);
                if let Err(e) = ::std::panic::catch_unwind(run) {
                    eprintln!(
                        "proptest: property {} failed at case {case}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}
