//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate implements
//! the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — as a small wall-clock harness. Each
//! benchmark is calibrated to a per-sample time budget, run for a fixed
//! number of samples, and reported as `min / median / mean` nanoseconds
//! per iteration on stdout. No statistics machinery, no HTML reports;
//! just honest timings with the same source-level interface.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    /// Total measured time of the last run.
    elapsed: Duration,
    /// Iterations of the last run.
    iters: u64,
    /// Per-sample time budget.
    budget: Duration,
}

impl Bencher {
    fn run<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        // Calibrate: find an iteration count filling the sample budget.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(payload());
            }
            let spent = t0.elapsed();
            if spent >= self.budget || iters >= 1 << 20 {
                self.elapsed = spent;
                self.iters = iters;
                return;
            }
            let grow = if spent.is_zero() {
                16
            } else {
                (self.budget.as_nanos() / spent.as_nanos().max(1)).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(grow);
        }
    }

    /// Time `payload`, criterion-style.
    pub fn iter<O, F: FnMut() -> O>(&mut self, payload: F) {
        self.run(payload);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    fn run_bench(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 1,
            budget: Duration::from_millis(10),
        };
        // One warm-up sample, discarded.
        f(&mut b);
        for _ in 0..self.samples {
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let min = per_iter.first().copied().unwrap_or(0.0);
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{}/{id}: min {min:.1} ns, median {median:.1} ns, mean {mean:.1} ns \
             ({} samples)",
            self.name, self.samples
        );
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        self.run_bench(id, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().id;
        self.run_bench(id, &mut |b| f(b, input));
        self
    }

    /// End the group (report output is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group {name}");
        BenchmarkGroup {
            name,
            samples: 10,
            _criterion: self,
        }
    }
}

/// Declare a group of benchmark functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main` (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
