//! The free commutative semiring (provenance semiring) of Section 5.
//!
//! Elements are formal ℕ-linear combinations of monomials, where a monomial
//! is a multiset of generators — i.e. polynomials over the generators with
//! coefficients in ℕ. This eager representation is exact but not unit-cost;
//! the paper's scalable representation by constant-delay *enumerators*
//! lives in `agq-enumerate`. The eager form here is the reference oracle
//! the enumerators are differentially tested against.

use crate::traits::Semiring;
use std::collections::BTreeMap;
use std::fmt;

/// A generator of the free semiring: an opaque 64-bit identifier.
///
/// Applications pack meaning into it, e.g. `(slot, element)` for the answer
/// enumeration of Theorem 24 (see [`Gen::pack`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Gen(pub u64);

impl Gen {
    /// Pack a `(slot, element)` pair, the shape used by results (C)–(E)
    /// of the paper, where `slot` is a variable index and `element` a
    /// domain element.
    pub fn pack(slot: u32, element: u32) -> Self {
        Gen(((slot as u64) << 32) | element as u64)
    }

    /// Inverse of [`Gen::pack`].
    pub fn unpack(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }
}

impl fmt::Display for Gen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (s, e) = self.unpack();
        write!(f, "e{s}_{e}")
    }
}

/// A monomial: a multiset of generators, stored sorted.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Monomial(Box<[Gen]>);

impl Monomial {
    /// The empty monomial (the `1` of the semiring).
    pub fn unit() -> Self {
        Monomial(Box::new([]))
    }

    /// A single generator.
    pub fn var(g: Gen) -> Self {
        Monomial(Box::new([g]))
    }

    /// Build from an arbitrary generator list (sorted internally).
    pub fn from_gens(mut gens: Vec<Gen>) -> Self {
        gens.sort_unstable();
        Monomial(gens.into_boxed_slice())
    }

    /// The generators, sorted, with multiplicity.
    pub fn gens(&self) -> &[Gen] {
        &self.0
    }

    /// Total degree (number of generators with multiplicity).
    pub fn degree(&self) -> usize {
        self.0.len()
    }

    /// Merge-multiply two monomials.
    pub fn mul(&self, rhs: &Self) -> Self {
        let mut out = Vec::with_capacity(self.0.len() + rhs.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < rhs.0.len() {
            if self.0[i] <= rhs.0[j] {
                out.push(self.0[i]);
                i += 1;
            } else {
                out.push(rhs.0[j]);
                j += 1;
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&rhs.0[j..]);
        Monomial(out.into_boxed_slice())
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "1");
        }
        for (i, g) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{g}")?;
        }
        Ok(())
    }
}

/// An element of the free commutative semiring: a finite formal sum of
/// monomials with multiplicities in ℕ.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Poly(BTreeMap<Monomial, u64>);

impl Poly {
    /// The polynomial consisting of a single generator.
    pub fn var(g: Gen) -> Self {
        let mut m = BTreeMap::new();
        m.insert(Monomial::var(g), 1);
        Poly(m)
    }

    /// A single monomial with coefficient `c`.
    pub fn monomial(m: Monomial, c: u64) -> Self {
        let mut map = BTreeMap::new();
        if c > 0 {
            map.insert(m, c);
        }
        Poly(map)
    }

    /// Iterate over `(monomial, multiplicity)` pairs in canonical order.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, u64)> {
        self.0.iter().map(|(m, &c)| (m, c))
    }

    /// Number of distinct monomials.
    pub fn num_terms(&self) -> usize {
        self.0.len()
    }

    /// Total number of summands counted with multiplicity.
    pub fn total_multiplicity(&self) -> u64 {
        self.0.values().sum()
    }

    /// The multiplicity of a given monomial.
    pub fn coeff(&self, m: &Monomial) -> u64 {
        self.0.get(m).copied().unwrap_or(0)
    }
}

impl Semiring for Poly {
    fn zero() -> Self {
        Poly(BTreeMap::new())
    }

    fn one() -> Self {
        Poly::monomial(Monomial::unit(), 1)
    }

    fn add(&self, rhs: &Self) -> Self {
        let mut out = self.0.clone();
        for (m, c) in &rhs.0 {
            *out.entry(m.clone()).or_insert(0) += c;
        }
        Poly(out)
    }

    fn mul(&self, rhs: &Self) -> Self {
        let mut out: BTreeMap<Monomial, u64> = BTreeMap::new();
        for (m1, c1) in &self.0 {
            for (m2, c2) in &rhs.0 {
                *out.entry(m1.mul(m2)).or_insert(0) += c1 * c2;
            }
        }
        Poly(out)
    }

    fn is_zero(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if *c != 1 {
                write!(f, "{c}·")?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u64) -> Poly {
        Poly::var(Gen(i))
    }

    #[test]
    fn example_21_shape() {
        // e_ab·e_bc·e_ca + e_ab·e_bd·e_da — two triangle provenances.
        let t1 = g(1).mul(&g(2)).mul(&g(3));
        let t2 = g(1).mul(&g(4)).mul(&g(5));
        let p = t1.add(&t2);
        assert_eq!(p.num_terms(), 2);
        assert_eq!(p.total_multiplicity(), 2);
        for (m, c) in p.terms() {
            assert_eq!(m.degree(), 3);
            assert_eq!(c, 1);
        }
    }

    #[test]
    fn monomials_are_commutative() {
        assert_eq!(g(1).mul(&g(2)), g(2).mul(&g(1)));
        assert_eq!(g(1).mul(&g(2)).mul(&g(1)), g(1).mul(&g(1)).mul(&g(2)));
    }

    #[test]
    fn multiplicities_accumulate() {
        let p = g(1).add(&g(1));
        assert_eq!(p.num_terms(), 1);
        assert_eq!(p.total_multiplicity(), 2);
        let q = p.mul(&p); // (2x)^2 = 4x^2
        assert_eq!(q.num_terms(), 1);
        assert_eq!(q.total_multiplicity(), 4);
    }

    #[test]
    fn zero_and_one_behave() {
        let x = g(3);
        assert_eq!(Poly::zero().mul(&x), Poly::zero());
        assert_eq!(Poly::one().mul(&x), x);
        assert_eq!(Poly::zero().add(&x), x);
    }

    #[test]
    fn gen_pack_roundtrip() {
        let g = Gen::pack(3, 0xDEAD_BEEF);
        assert_eq!(g.unpack(), (3, 0xDEAD_BEEF));
    }
}
