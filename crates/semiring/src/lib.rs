//! Commutative semirings for aggregate query evaluation.
//!
//! This crate implements system **S1** of the reproduction of
//! *Aggregate Queries on Sparse Databases* (Toruńczyk, PODS 2020): the
//! algebraic substrate every other crate is generic over.
//!
//! A [`Semiring`] is a commutative semiring `(S, +, ·, 0, 1)`: both
//! operations are commutative and associative, `·` distributes over `+`,
//! and `0` annihilates (`0 · s = 0`). The paper evaluates the *same*
//! compiled circuit in different semirings to obtain counting, optimization,
//! probability, provenance, and enumeration results; the instances here are
//! exactly the ones the paper names in Sections 1–5:
//!
//! * [`Bool`] — the Boolean semiring `B = ({0,1}, ∨, ∧)`;
//! * [`Nat`] — `(ℕ, +, ·)`, bag semantics / counting;
//! * [`Int`] — the ring `(ℤ, +, ·)`;
//! * [`Rat`] — the field of rationals `(ℚ, +, ·)` (exact, `i64`-normalized);
//! * [`MinPlus`] — the tropical semiring `(ℕ ∪ {+∞}, min, +)`;
//! * [`MaxPlus`] — `(ℤ ∪ {−∞}, max, +)` (the `Qmax` of the introduction);
//! * [`MinMax`] — `(ℕ ∪ {+∞}, min, max)`, bottleneck optimization;
//! * [`Mod`] — the finite rings `ℤ/m`;
//! * [`Poly`] — the free commutative (provenance) semiring of Section 5;
//! * [`Pair`] — the product of two semirings (useful for testing and for
//!   combined aggregates).
//!
//! The sub-traits refine capability exactly along the paper's case split for
//! permanent maintenance (Section 4): [`Ring`] (Lemma 15, subtraction
//! available ⇒ O(1) updates) and [`FiniteSemiring`] (Lemma 18, counting
//! gates ⇒ O(1) updates).

pub mod fx;
pub mod laws;
mod numeric;
mod pair;
mod provenance;
mod traits;
mod tropical;

pub use numeric::{Bool, Int, Mod, Nat, Rat, F64};
pub use pair::Pair;
pub use provenance::{Gen, Monomial, Poly};
pub use traits::{lane_sum_iter, lane_sum_slice, nat_mul, FiniteSemiring, Ring, Semiring};
pub use tropical::{MaxF, MaxPlus, MinMax, MinPlus};
