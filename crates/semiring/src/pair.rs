//! The product of two semirings.

use crate::traits::{FiniteSemiring, Ring, Semiring};
use std::fmt;

/// The product semiring `A × B` with componentwise operations.
///
/// Useful for evaluating two aggregates in one pass (e.g. count *and*
/// minimum cost of triangles), and as a stress test that the circuit
/// machinery never assumes anything beyond the semiring laws.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Pair<A, B>(pub A, pub B);

impl<A: Semiring, B: Semiring> Semiring for Pair<A, B> {
    fn zero() -> Self {
        Pair(A::zero(), B::zero())
    }
    fn one() -> Self {
        Pair(A::one(), B::one())
    }
    fn add(&self, rhs: &Self) -> Self {
        Pair(self.0.add(&rhs.0), self.1.add(&rhs.1))
    }
    fn mul(&self, rhs: &Self) -> Self {
        Pair(self.0.mul(&rhs.0), self.1.mul(&rhs.1))
    }
    fn is_zero(&self) -> bool {
        self.0.is_zero() && self.1.is_zero()
    }
    fn is_one(&self) -> bool {
        self.0.is_one() && self.1.is_one()
    }
}

impl<A: Ring, B: Ring> Ring for Pair<A, B> {
    fn neg(&self) -> Self {
        Pair(self.0.neg(), self.1.neg())
    }
}

impl<A: FiniteSemiring, B: FiniteSemiring> FiniteSemiring for Pair<A, B> {
    fn enumerate() -> Vec<Self> {
        let bs = B::enumerate();
        A::enumerate()
            .into_iter()
            .flat_map(|a| bs.iter().map(move |b| Pair(a.clone(), b.clone())))
            .collect()
    }
    fn index_of(&self) -> usize {
        self.0.index_of() * B::cardinality() + self.1.index_of()
    }
    fn cardinality() -> usize {
        A::cardinality() * B::cardinality()
    }
}

impl<A: fmt::Display, B: fmt::Display> fmt::Display for Pair<A, B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.0, self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::{Bool, Nat};
    use crate::tropical::MinPlus;

    #[test]
    fn componentwise_ops() {
        let x = Pair(Nat(2), MinPlus(3));
        let y = Pair(Nat(5), MinPlus(1));
        assert_eq!(x.add(&y), Pair(Nat(7), MinPlus(1)));
        assert_eq!(x.mul(&y), Pair(Nat(10), MinPlus(4)));
    }

    #[test]
    fn finite_pair_indexing() {
        for (i, x) in <Pair<Bool, Bool>>::enumerate().into_iter().enumerate() {
            assert_eq!(x.index_of(), i);
        }
        assert_eq!(<Pair<Bool, Bool>>::cardinality(), 4);
    }
}
