//! Core algebraic traits.

use std::fmt::Debug;
use std::hash::Hash;

/// A commutative semiring `(S, +, ·, 0, 1)`.
///
/// All semirings in the paper (and hence in this crate) are commutative in
/// both operations. Implementations must satisfy, for all `a, b, c`:
///
/// * `(a + b) + c = a + (b + c)`, `a + b = b + a`, `a + 0 = a`;
/// * `(a · b) · c = a · (b · c)`, `a · b = b · a`, `a · 1 = a`;
/// * `a · (b + c) = a · b + a · c`;
/// * `a · 0 = 0`.
///
/// These laws are checked for every instance by the property tests in
/// [`crate::laws`].
pub trait Semiring: Clone + PartialEq + Debug + Send + Sync + 'static {
    /// Whether addition is insensitive to summand *order and grouping* at
    /// the representation level: any fold of any permutation of a summand
    /// sequence yields the same bits.
    ///
    /// True for the machine-word carriers (`Bool`, `Nat`, `Int`, `Mod`,
    /// and the integer tropical semirings), whose additions are exact
    /// word operations. False by default, and in particular for the
    /// floating-point carriers (`F64`, `MaxF`'s sibling `F64`-valued
    /// products), where only the canonical fold order of
    /// [`lane_sum_slice`] is reproducible. Evaluators consult this flag
    /// before decomposing a sum into per-run bulk kernels: when it is
    /// `false`, only a *single* run covering the whole child segment may
    /// use [`Semiring::sum_slice`] (same operand sequence, same fold),
    /// everything else falls back to the canonical scalar gather.
    const ORDER_INSENSITIVE_ADD: bool = false;

    /// The additive identity `0`.
    fn zero() -> Self;
    /// The multiplicative identity `1`.
    fn one() -> Self;
    /// Semiring addition.
    fn add(&self, rhs: &Self) -> Self;
    /// Semiring multiplication.
    fn mul(&self, rhs: &Self) -> Self;

    /// Sum of a contiguous slice — the bulk kernel behind dense-run
    /// add-gate evaluation.
    ///
    /// The default reproduces the canonical 4-lane fold of
    /// [`lane_sum_slice`] **exactly** (same operand order, same lane
    /// grouping), so a dense-run evaluator that hands a gate's full child
    /// segment to `sum_slice` gets bit-identical values to the scalar
    /// gather on every carrier, floats included. Carriers with
    /// [`Semiring::ORDER_INSENSITIVE_ADD`]` = true` may override with a
    /// tight loop the compiler auto-vectorizes (wrapping `u64` adds,
    /// word-`min`/`max`, boolean any); by the flag's contract the result
    /// bits cannot differ from the canonical fold.
    fn sum_slice(xs: &[Self]) -> Self {
        lane_sum_slice(xs)
    }

    /// Elementwise in-place addition of two equal-length slices:
    /// `dst[i] += src[i]` for every `i` — the vectorizable companion
    /// kernel for accumulating one value row into another.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    fn add_assign_slices(dst: &mut [Self], src: &[Self]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            d.add_assign(s);
        }
    }

    /// Whether this element is the additive identity.
    ///
    /// Instances with a non-canonical representation of `0` must override.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Whether this element is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// In-place addition (override when avoiding a clone matters).
    fn add_assign(&mut self, rhs: &Self) {
        *self = self.add(rhs);
    }

    /// In-place multiplication.
    fn mul_assign(&mut self, rhs: &Self) {
        *self = self.mul(rhs);
    }

    /// Sum of a sequence of elements (empty sum is `0`).
    ///
    /// Routed through the same canonical lane fold as
    /// [`Semiring::sum_slice`]'s default ([`lane_sum_iter`]), so one-shot
    /// iterator sums and dense-run slice sums cannot drift in fold order
    /// — for any sequence, `sum(xs.iter())` and the default
    /// `sum_slice(xs)` are bit-identical.
    fn sum<'a, I>(iter: I) -> Self
    where
        Self: 'a,
        I: IntoIterator<Item = &'a Self>,
    {
        lane_sum_iter(iter.into_iter())
    }

    /// Product of a sequence of elements (empty product is `1`).
    fn product<'a, I>(iter: I) -> Self
    where
        Self: 'a,
        I: IntoIterator<Item = &'a Self>,
    {
        let mut acc = Self::one();
        for x in iter {
            acc.mul_assign(x);
        }
        acc
    }

    /// `self` raised to the `n`-th multiplicative power (`n = 0` gives `1`),
    /// by binary exponentiation.
    fn pow(&self, mut n: u64) -> Self {
        let mut base = self.clone();
        let mut acc = Self::one();
        while n > 0 {
            if n & 1 == 1 {
                acc.mul_assign(&base);
            }
            n >>= 1;
            if n > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }
}

/// The **canonical fold order** of every sum in the engine: four
/// independent accumulator lanes over chunks of 4 (element `4k + j` lands
/// in lane `j`), lanes folded as `(l0 + l1) + (l2 + l3)`, then the
/// `len % 4` tail appended scalar, left to right. Sequences shorter than
/// 8 fold sequentially. This is the exact order the circuit evaluators'
/// scalar gather uses (`agq_circuit`'s `sum_children`), the default
/// [`Semiring::sum_slice`], and the streaming twin [`lane_sum_iter`] —
/// one definition, so add-gate values are bit-identical across one-shot,
/// dynamic, peek, and bulk paths even for non-associative carriers.
pub fn lane_sum_slice<S: Semiring>(xs: &[S]) -> S {
    const LANES: usize = 4;
    if xs.len() < 2 * LANES {
        let mut acc = S::zero();
        for x in xs {
            acc.add_assign(x);
        }
        return acc;
    }
    let mut lanes = [S::zero(), S::zero(), S::zero(), S::zero()];
    let chunks = xs.chunks_exact(LANES);
    let rest = chunks.remainder();
    for chunk in chunks {
        for (lane, x) in lanes.iter_mut().zip(chunk) {
            lane.add_assign(x);
        }
    }
    let [a, b, c, d] = lanes;
    let mut acc = a.add(&b).add(&c.add(&d));
    for x in rest {
        acc.add_assign(x);
    }
    acc
}

/// Streaming twin of [`lane_sum_slice`]: folds an iterator in the exact
/// same canonical order without collecting it (the first 8 items are
/// buffered to decide between the short sequential fold and lane mode).
pub fn lane_sum_iter<'a, S: Semiring + 'a>(mut it: impl Iterator<Item = &'a S>) -> S {
    const LANES: usize = 4;
    let mut head: [Option<&S>; 2 * LANES] = [None; 2 * LANES];
    let mut n = 0;
    for x in it.by_ref() {
        head[n] = Some(x);
        n += 1;
        if n == 2 * LANES {
            break;
        }
    }
    if n < 2 * LANES {
        let mut acc = S::zero();
        for x in head.iter().flatten() {
            acc.add_assign(x);
        }
        return acc;
    }
    let mut lanes = [S::zero(), S::zero(), S::zero(), S::zero()];
    for (j, lane) in lanes.iter_mut().enumerate() {
        lane.add_assign(head[j].expect("filled"));
        lane.add_assign(head[LANES + j].expect("filled"));
    }
    let mut rest: [Option<&S>; LANES] = [None; LANES];
    loop {
        let mut m = 0;
        for x in it.by_ref() {
            rest[m] = Some(x);
            m += 1;
            if m == LANES {
                break;
            }
        }
        if m == LANES {
            for (lane, x) in lanes.iter_mut().zip(&rest) {
                lane.add_assign(x.expect("full chunk"));
            }
            rest = [None; LANES];
        } else {
            let [a, b, c, d] = lanes;
            let mut acc = a.add(&b).add(&c.add(&d));
            for x in rest[..m].iter() {
                acc.add_assign(x.expect("partial chunk"));
            }
            return acc;
        }
    }
}

/// The `n`-fold sum `s + s + ⋯ + s` (`n` summands; `n = 0` gives `0`),
/// computed with O(log n) semiring additions by binary doubling.
///
/// This is the `n · s` operation of Lemma 18; for finite semirings the
/// sequence `(n · s)` is ultimately periodic (the "lasso" of Lemma 38) but
/// doubling is simpler and already O(log n) ⊆ O_k(1) for the fixed-size
/// multiplicities that arise in permanent maintenance.
pub fn nat_mul<S: Semiring>(mut n: u64, s: &S) -> S {
    let mut base = s.clone();
    let mut acc = S::zero();
    while n > 0 {
        if n & 1 == 1 {
            acc.add_assign(&base);
        }
        n >>= 1;
        if n > 0 {
            base = base.add(&base);
        }
    }
    acc
}

/// A commutative ring: a semiring with additive inverses.
///
/// Rings admit the inclusion–exclusion elimination of permanent gates
/// (Lemma 15) and therefore constant-time updates (Corollary 17).
pub trait Ring: Semiring {
    /// The additive inverse `−self`.
    fn neg(&self) -> Self;

    /// Subtraction `self − rhs`.
    fn sub(&self, rhs: &Self) -> Self {
        self.add(&rhs.neg())
    }
}

/// A finite semiring, with its elements enumerable.
///
/// Finite semirings admit the counting-gate elimination of permanent gates
/// (Lemma 18) and therefore constant-time updates (Corollary 20): the
/// permanent of a `k × n` matrix depends only on the number of occurrences
/// of each column vector in `S^k`.
pub trait FiniteSemiring: Semiring + Eq + Hash {
    /// All elements of the semiring, in a fixed order.
    fn enumerate() -> Vec<Self>;

    /// The position of `self` in [`FiniteSemiring::enumerate`].
    fn index_of(&self) -> usize;

    /// Number of elements.
    fn cardinality() -> usize {
        Self::enumerate().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::Nat;

    #[test]
    fn nat_mul_matches_repeated_addition() {
        for n in 0..50u64 {
            assert_eq!(nat_mul(n, &Nat(7)), Nat(7 * n));
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for n in 0..10u64 {
            assert_eq!(Nat(3).pow(n), Nat(3u64.pow(n as u32)));
        }
        assert_eq!(Nat(5).pow(0), Nat(1));
    }

    #[test]
    fn sum_and_product_fold() {
        let xs = [Nat(1), Nat(2), Nat(3)];
        assert_eq!(Nat::sum(&xs), Nat(6));
        assert_eq!(Nat::product(&xs), Nat(6));
        let empty: [Nat; 0] = [];
        assert_eq!(Nat::sum(&empty), Nat(0));
        assert_eq!(Nat::product(&empty), Nat(1));
    }
}
