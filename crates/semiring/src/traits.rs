//! Core algebraic traits.

use std::fmt::Debug;
use std::hash::Hash;

/// A commutative semiring `(S, +, ·, 0, 1)`.
///
/// All semirings in the paper (and hence in this crate) are commutative in
/// both operations. Implementations must satisfy, for all `a, b, c`:
///
/// * `(a + b) + c = a + (b + c)`, `a + b = b + a`, `a + 0 = a`;
/// * `(a · b) · c = a · (b · c)`, `a · b = b · a`, `a · 1 = a`;
/// * `a · (b + c) = a · b + a · c`;
/// * `a · 0 = 0`.
///
/// These laws are checked for every instance by the property tests in
/// [`crate::laws`].
pub trait Semiring: Clone + PartialEq + Debug + Send + Sync + 'static {
    /// The additive identity `0`.
    fn zero() -> Self;
    /// The multiplicative identity `1`.
    fn one() -> Self;
    /// Semiring addition.
    fn add(&self, rhs: &Self) -> Self;
    /// Semiring multiplication.
    fn mul(&self, rhs: &Self) -> Self;

    /// Whether this element is the additive identity.
    ///
    /// Instances with a non-canonical representation of `0` must override.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Whether this element is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// In-place addition (override when avoiding a clone matters).
    fn add_assign(&mut self, rhs: &Self) {
        *self = self.add(rhs);
    }

    /// In-place multiplication.
    fn mul_assign(&mut self, rhs: &Self) {
        *self = self.mul(rhs);
    }

    /// Sum of a sequence of elements (empty sum is `0`).
    fn sum<'a, I>(iter: I) -> Self
    where
        Self: 'a,
        I: IntoIterator<Item = &'a Self>,
    {
        let mut acc = Self::zero();
        for x in iter {
            acc.add_assign(x);
        }
        acc
    }

    /// Product of a sequence of elements (empty product is `1`).
    fn product<'a, I>(iter: I) -> Self
    where
        Self: 'a,
        I: IntoIterator<Item = &'a Self>,
    {
        let mut acc = Self::one();
        for x in iter {
            acc.mul_assign(x);
        }
        acc
    }

    /// `self` raised to the `n`-th multiplicative power (`n = 0` gives `1`),
    /// by binary exponentiation.
    fn pow(&self, mut n: u64) -> Self {
        let mut base = self.clone();
        let mut acc = Self::one();
        while n > 0 {
            if n & 1 == 1 {
                acc.mul_assign(&base);
            }
            n >>= 1;
            if n > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }
}

/// The `n`-fold sum `s + s + ⋯ + s` (`n` summands; `n = 0` gives `0`),
/// computed with O(log n) semiring additions by binary doubling.
///
/// This is the `n · s` operation of Lemma 18; for finite semirings the
/// sequence `(n · s)` is ultimately periodic (the "lasso" of Lemma 38) but
/// doubling is simpler and already O(log n) ⊆ O_k(1) for the fixed-size
/// multiplicities that arise in permanent maintenance.
pub fn nat_mul<S: Semiring>(mut n: u64, s: &S) -> S {
    let mut base = s.clone();
    let mut acc = S::zero();
    while n > 0 {
        if n & 1 == 1 {
            acc.add_assign(&base);
        }
        n >>= 1;
        if n > 0 {
            base = base.add(&base);
        }
    }
    acc
}

/// A commutative ring: a semiring with additive inverses.
///
/// Rings admit the inclusion–exclusion elimination of permanent gates
/// (Lemma 15) and therefore constant-time updates (Corollary 17).
pub trait Ring: Semiring {
    /// The additive inverse `−self`.
    fn neg(&self) -> Self;

    /// Subtraction `self − rhs`.
    fn sub(&self, rhs: &Self) -> Self {
        self.add(&rhs.neg())
    }
}

/// A finite semiring, with its elements enumerable.
///
/// Finite semirings admit the counting-gate elimination of permanent gates
/// (Lemma 18) and therefore constant-time updates (Corollary 20): the
/// permanent of a `k × n` matrix depends only on the number of occurrences
/// of each column vector in `S^k`.
pub trait FiniteSemiring: Semiring + Eq + Hash {
    /// All elements of the semiring, in a fixed order.
    fn enumerate() -> Vec<Self>;

    /// The position of `self` in [`FiniteSemiring::enumerate`].
    fn index_of(&self) -> usize;

    /// Number of elements.
    fn cardinality() -> usize {
        Self::enumerate().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::Nat;

    #[test]
    fn nat_mul_matches_repeated_addition() {
        for n in 0..50u64 {
            assert_eq!(nat_mul(n, &Nat(7)), Nat(7 * n));
        }
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for n in 0..10u64 {
            assert_eq!(Nat(3).pow(n), Nat(3u64.pow(n as u32)));
        }
        assert_eq!(Nat(5).pow(0), Nat(1));
    }

    #[test]
    fn sum_and_product_fold() {
        let xs = [Nat(1), Nat(2), Nat(3)];
        assert_eq!(Nat::sum(&xs), Nat(6));
        assert_eq!(Nat::product(&xs), Nat(6));
        let empty: [Nat; 0] = [];
        assert_eq!(Nat::sum(&empty), Nat(0));
        assert_eq!(Nat::product(&empty), Nat(1));
    }
}
