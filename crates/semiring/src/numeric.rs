//! Numeric semirings: `B`, `ℕ`, `ℤ`, `ℚ`, `ℤ/m`, and approximate `f64`.

use crate::traits::{FiniteSemiring, Ring, Semiring};
use std::fmt;

/// The Boolean semiring `B = ({false, true}, ∨, ∧)`.
///
/// Summation in `B` is existential quantification; the Iverson bracket
/// `[φ]` of the paper takes values here before being transported into other
/// semirings.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Bool(pub bool);

impl Semiring for Bool {
    const ORDER_INSENSITIVE_ADD: bool = true;

    fn zero() -> Self {
        Bool(false)
    }
    fn one() -> Self {
        Bool(true)
    }
    fn add(&self, rhs: &Self) -> Self {
        Bool(self.0 || rhs.0)
    }
    fn mul(&self, rhs: &Self) -> Self {
        Bool(self.0 && rhs.0)
    }
    fn is_zero(&self) -> bool {
        !self.0
    }
    fn is_one(&self) -> bool {
        self.0
    }
    #[inline]
    fn sum_slice(xs: &[Self]) -> Self {
        // Disjunction short-circuits; `any` compiles to an early-exit scan,
        // which beats any fold the moment a `true` appears.
        Bool(xs.iter().any(|x| x.0))
    }
    #[inline]
    fn add_assign_slices(dst: &mut [Self], src: &[Self]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            d.0 |= s.0;
        }
    }
}

impl FiniteSemiring for Bool {
    fn enumerate() -> Vec<Self> {
        vec![Bool(false), Bool(true)]
    }
    fn index_of(&self) -> usize {
        self.0 as usize
    }
    fn cardinality() -> usize {
        2
    }
}

impl fmt::Display for Bool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The counting semiring `(ℕ, +, ·)` on `u64`.
///
/// Used for bag semantics and `#`-aggregates. Arithmetic uses the native
/// integer operations; overflow panics in debug builds and wraps in release
/// builds (the unit-cost model of the paper assumes machine words).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Nat(pub u64);

impl Semiring for Nat {
    const ORDER_INSENSITIVE_ADD: bool = true;

    fn zero() -> Self {
        Nat(0)
    }
    fn one() -> Self {
        Nat(1)
    }
    fn add(&self, rhs: &Self) -> Self {
        Nat(self.0.wrapping_add(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        Nat(self.0.wrapping_mul(rhs.0))
    }
    fn is_zero(&self) -> bool {
        self.0 == 0
    }
    fn is_one(&self) -> bool {
        self.0 == 1
    }
    #[inline]
    fn sum_slice(xs: &[Self]) -> Self {
        // Wrapping u64 addition is associative and commutative at the bit
        // level, so a straight reduction is legal and LLVM vectorizes it.
        let mut acc = 0u64;
        for x in xs {
            acc = acc.wrapping_add(x.0);
        }
        Nat(acc)
    }
    #[inline]
    fn add_assign_slices(dst: &mut [Self], src: &[Self]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            d.0 = d.0.wrapping_add(s.0);
        }
    }
}

/// As implemented, `Nat` arithmetic wraps, so it is the ring `ℤ/2⁶⁴`
/// and negation is two's complement. Delta-based maintenance (repairing
/// an addition gate by `new = old + Σ δ_child` instead of re-summing
/// its fan-in) relies on this: every identity holds mod 2⁶⁴, so results
/// are exact whenever the true counts fit in a `u64`.
impl Ring for Nat {
    fn neg(&self) -> Self {
        Nat(self.0.wrapping_neg())
    }
    fn sub(&self, rhs: &Self) -> Self {
        Nat(self.0.wrapping_sub(rhs.0))
    }
}

impl fmt::Display for Nat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The ring of integers `(ℤ, +, ·)` on `i64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, PartialOrd, Ord)]
pub struct Int(pub i64);

impl Semiring for Int {
    const ORDER_INSENSITIVE_ADD: bool = true;

    fn zero() -> Self {
        Int(0)
    }
    fn one() -> Self {
        Int(1)
    }
    fn add(&self, rhs: &Self) -> Self {
        Int(self.0.wrapping_add(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        Int(self.0.wrapping_mul(rhs.0))
    }
    fn is_zero(&self) -> bool {
        self.0 == 0
    }
    fn is_one(&self) -> bool {
        self.0 == 1
    }
    #[inline]
    fn sum_slice(xs: &[Self]) -> Self {
        let mut acc = 0i64;
        for x in xs {
            acc = acc.wrapping_add(x.0);
        }
        Int(acc)
    }
    #[inline]
    fn add_assign_slices(dst: &mut [Self], src: &[Self]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            d.0 = d.0.wrapping_add(s.0);
        }
    }
}

impl Ring for Int {
    fn neg(&self) -> Self {
        Int(self.0.wrapping_neg())
    }
    fn sub(&self, rhs: &Self) -> Self {
        Int(self.0.wrapping_sub(rhs.0))
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Exact rationals `(ℚ, +, ·)`: an `i64/i64` fraction kept in lowest terms
/// with a positive denominator. Intermediate products use `i128`; if the
/// reduced result does not fit `i64` the operation panics with a clear
/// message (exactness over silent error, per the design notes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Rat {
    num: i64,
    den: i64,
}

impl Rat {
    /// Construct `num/den`, normalizing sign and reducing by the gcd.
    ///
    /// # Panics
    /// Panics if `den == 0` or the reduced fraction overflows `i64`.
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den != 0, "Rat denominator must be nonzero");
        Self::reduce(num as i128, den as i128)
    }

    /// The integer `n` as a rational.
    pub fn int(n: i64) -> Self {
        Rat { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i64 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i64 {
        self.den
    }

    /// Approximate value as `f64`.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Multiplicative inverse. Panics on zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "division by zero rational");
        Self::reduce(self.den as i128, self.num as i128)
    }

    fn reduce(num: i128, den: i128) -> Self {
        debug_assert!(den != 0);
        let g = gcd_i128(num.unsigned_abs(), den.unsigned_abs()) as i128;
        let (mut n, mut d) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if d < 0 {
            n = -n;
            d = -d;
        }
        let num = i64::try_from(n).expect("Rat overflow: numerator exceeds i64");
        let den = i64::try_from(d).expect("Rat overflow: denominator exceeds i64");
        Rat { num, den }
    }
}

fn gcd_i128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Semiring for Rat {
    fn zero() -> Self {
        Rat { num: 0, den: 1 }
    }
    fn one() -> Self {
        Rat { num: 1, den: 1 }
    }
    fn add(&self, rhs: &Self) -> Self {
        let n = self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128;
        let d = self.den as i128 * rhs.den as i128;
        Self::reduce(n, d)
    }
    fn mul(&self, rhs: &Self) -> Self {
        let n = self.num as i128 * rhs.num as i128;
        let d = self.den as i128 * rhs.den as i128;
        Self::reduce(n, d)
    }
    fn is_zero(&self) -> bool {
        self.num == 0
    }
    fn is_one(&self) -> bool {
        self.num == 1 && self.den == 1
    }
}

impl Ring for Rat {
    fn neg(&self) -> Self {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// The finite ring `ℤ/m` for a runtime modulus `m ≥ 1`.
///
/// The modulus is part of the *value* (checked on every operation) rather
/// than the type, so that query plans can carry mixed moduli; operations
/// between mismatched moduli panic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Mod {
    value: u64,
    modulus: u64,
}

/// Default modulus used by `Mod::zero()`/`Mod::one()` before any
/// data-carrying element fixes the modulus. Chosen prime and small.
const DEFAULT_MODULUS: u64 = 5;

impl Mod {
    /// `value mod m`. Panics if `m == 0`.
    pub fn new(value: u64, modulus: u64) -> Self {
        assert!(modulus > 0, "modulus must be positive");
        Mod {
            value: value % modulus,
            modulus,
        }
    }

    /// The residue in `0..m`.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The modulus `m`.
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    fn join(&self, rhs: &Self) -> u64 {
        // Identity elements are polymorphic in the modulus: adopt the other
        // operand's modulus when one side is a bare identity constant.
        if self.modulus == rhs.modulus {
            self.modulus
        } else if self.modulus == DEFAULT_MODULUS {
            rhs.modulus
        } else if rhs.modulus == DEFAULT_MODULUS {
            self.modulus
        } else {
            panic!("modulus mismatch: {} vs {}", self.modulus, rhs.modulus);
        }
    }
}

impl Semiring for Mod {
    // Uniform-modulus residue addition is exact word arithmetic; mixed
    // moduli never arise from a single compiled query (all constants and
    // inputs share one `m`), and `sum_slice` falls back to the canonical
    // fold when they do.
    const ORDER_INSENSITIVE_ADD: bool = true;

    fn zero() -> Self {
        Mod::new(0, DEFAULT_MODULUS)
    }
    fn one() -> Self {
        Mod::new(1, DEFAULT_MODULUS)
    }
    fn add(&self, rhs: &Self) -> Self {
        let m = self.join(rhs);
        Mod::new((self.value + rhs.value) % m, m)
    }
    #[inline]
    fn sum_slice(xs: &[Self]) -> Self {
        let Some(first) = xs.first() else {
            return Self::zero();
        };
        let m = first.modulus;
        if xs.iter().any(|x| x.modulus != m) {
            // Mixed moduli: defer to the canonical fold, whose pairwise
            // `join` handles identity-modulus adoption (and panics on a
            // genuine mismatch exactly like the scalar path would).
            return crate::traits::lane_sum_slice(xs);
        }
        let mut acc = 0u64;
        for x in xs {
            acc = (acc + x.value) % m;
        }
        Mod::new(acc, m)
    }
    fn mul(&self, rhs: &Self) -> Self {
        let m = self.join(rhs);
        Mod::new((self.value * rhs.value) % m, m)
    }
    fn is_zero(&self) -> bool {
        self.value == 0
    }
    fn is_one(&self) -> bool {
        self.value == 1
    }
}

impl Ring for Mod {
    fn neg(&self) -> Self {
        Mod::new((self.modulus - self.value) % self.modulus, self.modulus)
    }
}

impl FiniteSemiring for Mod {
    fn enumerate() -> Vec<Self> {
        (0..DEFAULT_MODULUS)
            .map(|v| Mod::new(v, DEFAULT_MODULUS))
            .collect()
    }
    fn index_of(&self) -> usize {
        self.value as usize
    }
    fn cardinality() -> usize {
        DEFAULT_MODULUS as usize
    }
}

impl fmt::Display for Mod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (mod {})", self.value, self.modulus)
    }
}

/// Approximate reals `(ℝ, +, ·)` on `f64`.
///
/// Strictly speaking floating-point addition is not associative, so `F64`
/// violates the semiring laws at the ulp level; it is provided for
/// PageRank-style workloads (Example 9) where the paper's exact `ℚ` would
/// overflow. Equality is exact bit equality; the differential tests that
/// use `F64` compare with a tolerance instead.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct F64(pub f64);

impl Semiring for F64 {
    fn zero() -> Self {
        F64(0.0)
    }
    fn one() -> Self {
        F64(1.0)
    }
    fn add(&self, rhs: &Self) -> Self {
        F64(self.0 + rhs.0)
    }
    fn mul(&self, rhs: &Self) -> Self {
        F64(self.0 * rhs.0)
    }
}

impl Ring for F64 {
    fn neg(&self) -> Self {
        F64(-self.0)
    }
    fn sub(&self, rhs: &Self) -> Self {
        F64(self.0 - rhs.0)
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_is_existential() {
        assert_eq!(Bool(false).add(&Bool(true)), Bool(true));
        assert_eq!(Bool(true).mul(&Bool(false)), Bool(false));
        assert!(Bool::zero().is_zero() && Bool::one().is_one());
    }

    #[test]
    fn rat_reduces() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 7), Rat::zero());
    }

    #[test]
    fn rat_arithmetic() {
        let half = Rat::new(1, 2);
        let third = Rat::new(1, 3);
        assert_eq!(half.add(&third), Rat::new(5, 6));
        assert_eq!(half.mul(&third), Rat::new(1, 6));
        assert_eq!(half.sub(&half), Rat::zero());
        assert_eq!(half.recip(), Rat::int(2));
    }

    #[test]
    #[should_panic(expected = "denominator must be nonzero")]
    fn rat_zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn mod_ring_wraps() {
        let m = |v| Mod::new(v, 5);
        assert_eq!(m(3).add(&m(4)), m(2));
        assert_eq!(m(3).mul(&m(4)), m(2));
        assert_eq!(m(3).neg(), m(2));
        assert_eq!(m(0).neg(), m(0));
    }

    #[test]
    fn mod_identity_adopts_modulus() {
        let x = Mod::new(6, 7);
        assert_eq!(Mod::zero().add(&x), x);
        assert_eq!(Mod::one().mul(&x), x);
    }

    #[test]
    #[should_panic(expected = "modulus mismatch")]
    fn mod_mismatch_panics() {
        let _ = Mod::new(1, 3).add(&Mod::new(1, 7));
    }

    #[test]
    fn finite_indexing_roundtrips() {
        for (i, x) in Bool::enumerate().into_iter().enumerate() {
            assert_eq!(x.index_of(), i);
        }
        for (i, x) in Mod::enumerate().into_iter().enumerate() {
            assert_eq!(x.index_of(), i);
        }
    }
}
