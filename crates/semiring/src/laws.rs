//! Executable semiring laws, used by unit and property tests of every
//! instance (and by downstream crates to validate user-supplied semirings).

use crate::traits::{Ring, Semiring};

/// Assert all commutative-semiring laws on every triple drawn from
/// `samples`. Panics with a descriptive message on the first violation.
pub fn check_semiring_laws<S: Semiring>(samples: &[S]) {
    let zero = S::zero();
    let one = S::one();
    assert!(zero.is_zero(), "zero() must satisfy is_zero()");
    assert!(one.is_one(), "one() must satisfy is_one()");
    for a in samples {
        assert_eq!(a.add(&zero), *a, "additive identity failed for {a:?}");
        assert_eq!(a.mul(&one), *a, "multiplicative identity failed for {a:?}");
        assert_eq!(a.mul(&zero), zero, "annihilation failed for {a:?}");
        for b in samples {
            assert_eq!(a.add(b), b.add(a), "+ not commutative: {a:?}, {b:?}");
            assert_eq!(a.mul(b), b.mul(a), "· not commutative: {a:?}, {b:?}");
            for c in samples {
                assert_eq!(
                    a.add(b).add(c),
                    a.add(&b.add(c)),
                    "+ not associative: {a:?}, {b:?}, {c:?}"
                );
                assert_eq!(
                    a.mul(b).mul(c),
                    a.mul(&b.mul(c)),
                    "· not associative: {a:?}, {b:?}, {c:?}"
                );
                assert_eq!(
                    a.mul(&b.add(c)),
                    a.mul(b).add(&a.mul(c)),
                    "distributivity failed: {a:?}, {b:?}, {c:?}"
                );
            }
        }
    }
}

/// Assert the additional ring laws on every element of `samples`.
pub fn check_ring_laws<R: Ring>(samples: &[R]) {
    for a in samples {
        assert!(a.add(&a.neg()).is_zero(), "a + (−a) ≠ 0 for {a:?}");
        assert!(a.sub(a).is_zero(), "a − a ≠ 0 for {a:?}");
        for b in samples {
            assert_eq!(
                a.sub(b),
                a.add(&b.neg()),
                "sub inconsistent with neg: {a:?}, {b:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::{Bool, Int, Mod, Nat, Rat};
    use crate::pair::Pair;
    use crate::provenance::{Gen, Poly};
    use crate::tropical::{MaxPlus, MinMax, MinPlus};

    #[test]
    fn bool_laws() {
        check_semiring_laws(&[Bool(false), Bool(true)]);
    }

    #[test]
    fn nat_laws() {
        check_semiring_laws(&[Nat(0), Nat(1), Nat(2), Nat(7), Nat(100)]);
    }

    #[test]
    fn int_laws() {
        let xs = [Int(-5), Int(-1), Int(0), Int(1), Int(3), Int(12)];
        check_semiring_laws(&xs);
        check_ring_laws(&xs);
    }

    #[test]
    fn rat_laws() {
        let xs = [
            Rat::zero(),
            Rat::one(),
            Rat::new(1, 2),
            Rat::new(-3, 4),
            Rat::new(7, 5),
        ];
        check_semiring_laws(&xs);
        check_ring_laws(&xs);
    }

    #[test]
    fn mod_laws() {
        let xs: Vec<Mod> = (0..5).map(|v| Mod::new(v, 5)).collect();
        check_semiring_laws(&xs);
        check_ring_laws(&xs);
    }

    #[test]
    fn tropical_laws() {
        check_semiring_laws(&[MinPlus::INF, MinPlus(0), MinPlus(1), MinPlus(9)]);
        check_semiring_laws(&[MaxPlus::NEG_INF, MaxPlus(-3), MaxPlus(0), MaxPlus(8)]);
        check_semiring_laws(&[MinMax::INF, MinMax(0), MinMax(2), MinMax(11)]);
    }

    #[test]
    fn pair_laws() {
        let xs = [
            Pair(Nat(0), MinPlus::INF),
            Pair(Nat(1), MinPlus(0)),
            Pair(Nat(3), MinPlus(4)),
        ];
        check_semiring_laws(&xs);
    }

    #[test]
    fn poly_laws() {
        let xs = [
            Poly::zero(),
            Poly::one(),
            Poly::var(Gen(1)),
            Poly::var(Gen(2)).add(&Poly::var(Gen(1))),
            Poly::var(Gen(1)).mul(&Poly::var(Gen(1))),
        ];
        check_semiring_laws(&xs);
    }
}
