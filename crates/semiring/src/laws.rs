//! Executable semiring laws, used by unit and property tests of every
//! instance (and by downstream crates to validate user-supplied semirings).

use crate::traits::{lane_sum_iter, lane_sum_slice, Ring, Semiring};

/// Assert all commutative-semiring laws on every triple drawn from
/// `samples`. Panics with a descriptive message on the first violation.
pub fn check_semiring_laws<S: Semiring>(samples: &[S]) {
    let zero = S::zero();
    let one = S::one();
    assert!(zero.is_zero(), "zero() must satisfy is_zero()");
    assert!(one.is_one(), "one() must satisfy is_one()");
    for a in samples {
        assert_eq!(a.add(&zero), *a, "additive identity failed for {a:?}");
        assert_eq!(a.mul(&one), *a, "multiplicative identity failed for {a:?}");
        assert_eq!(a.mul(&zero), zero, "annihilation failed for {a:?}");
        for b in samples {
            assert_eq!(a.add(b), b.add(a), "+ not commutative: {a:?}, {b:?}");
            assert_eq!(a.mul(b), b.mul(a), "· not commutative: {a:?}, {b:?}");
            for c in samples {
                assert_eq!(
                    a.add(b).add(c),
                    a.add(&b.add(c)),
                    "+ not associative: {a:?}, {b:?}, {c:?}"
                );
                assert_eq!(
                    a.mul(b).mul(c),
                    a.mul(&b.mul(c)),
                    "· not associative: {a:?}, {b:?}, {c:?}"
                );
                assert_eq!(
                    a.mul(&b.add(c)),
                    a.mul(b).add(&a.mul(c)),
                    "distributivity failed: {a:?}, {b:?}, {c:?}"
                );
            }
        }
    }
}

/// Assert the bulk-kernel laws that the vectorized evaluators rely on,
/// over prefixes of `samples` of every length up to `samples.len()`
/// (covering the short-sequential, lane-mode, and remainder regimes of
/// the canonical fold):
///
/// * `sum_slice` agrees with the canonical 4-lane fold
///   ([`lane_sum_slice`]) — for `ORDER_INSENSITIVE_ADD` carriers this is
///   the associativity/commutativity claim of the flag, for the rest it
///   pins the default implementation;
/// * `sum_slice` agrees with a plain left-to-right iterated `add` when
///   the carrier declares order-insensitivity;
/// * `sum` (the iterator form) is bit-identical to the default slice
///   fold ([`lane_sum_iter`] ≡ [`lane_sum_slice`]);
/// * `add_assign_slices` equals elementwise `add`.
pub fn check_sum_kernel_laws<S: Semiring>(samples: &[S]) {
    for len in 0..=samples.len() {
        let xs = &samples[..len];
        let canonical = lane_sum_slice(xs);
        let bulk = S::sum_slice(xs);
        assert_eq!(
            bulk, canonical,
            "sum_slice disagrees with the canonical lane fold at len {len}"
        );
        let streamed = S::sum(xs.iter());
        assert_eq!(
            streamed,
            lane_sum_iter(xs.iter()),
            "sum does not route through lane_sum_iter at len {len}"
        );
        assert_eq!(
            lane_sum_iter(xs.iter()),
            canonical,
            "lane_sum_iter drifts from lane_sum_slice at len {len}"
        );
        if S::ORDER_INSENSITIVE_ADD {
            let mut seq = S::zero();
            for x in xs {
                seq.add_assign(x);
            }
            assert_eq!(
                bulk, seq,
                "ORDER_INSENSITIVE_ADD carrier: sum_slice ≠ iterated add at len {len}"
            );
        }
        let mut dst: Vec<S> = xs.to_vec();
        let src: Vec<S> = xs.iter().rev().cloned().collect();
        S::add_assign_slices(&mut dst, &src);
        for (i, ((d, a), b)) in dst.iter().zip(xs).zip(&src).enumerate() {
            assert_eq!(
                *d,
                a.add(b),
                "add_assign_slices ≠ elementwise add at index {i}, len {len}"
            );
        }
    }
}

/// Assert the additional ring laws on every element of `samples`.
pub fn check_ring_laws<R: Ring>(samples: &[R]) {
    for a in samples {
        assert!(a.add(&a.neg()).is_zero(), "a + (−a) ≠ 0 for {a:?}");
        assert!(a.sub(a).is_zero(), "a − a ≠ 0 for {a:?}");
        for b in samples {
            assert_eq!(
                a.sub(b),
                a.add(&b.neg()),
                "sub inconsistent with neg: {a:?}, {b:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numeric::{Bool, Int, Mod, Nat, Rat, F64};
    use crate::pair::Pair;
    use crate::provenance::{Gen, Poly};
    use crate::tropical::{MaxF, MaxPlus, MinMax, MinPlus};

    #[test]
    fn bool_laws() {
        check_semiring_laws(&[Bool(false), Bool(true)]);
    }

    #[test]
    fn nat_laws() {
        check_semiring_laws(&[Nat(0), Nat(1), Nat(2), Nat(7), Nat(100)]);
    }

    #[test]
    fn int_laws() {
        let xs = [Int(-5), Int(-1), Int(0), Int(1), Int(3), Int(12)];
        check_semiring_laws(&xs);
        check_ring_laws(&xs);
    }

    #[test]
    fn rat_laws() {
        let xs = [
            Rat::zero(),
            Rat::one(),
            Rat::new(1, 2),
            Rat::new(-3, 4),
            Rat::new(7, 5),
        ];
        check_semiring_laws(&xs);
        check_ring_laws(&xs);
    }

    #[test]
    fn mod_laws() {
        let xs: Vec<Mod> = (0..5).map(|v| Mod::new(v, 5)).collect();
        check_semiring_laws(&xs);
        check_ring_laws(&xs);
    }

    #[test]
    fn tropical_laws() {
        check_semiring_laws(&[MinPlus::INF, MinPlus(0), MinPlus(1), MinPlus(9)]);
        check_semiring_laws(&[MaxPlus::NEG_INF, MaxPlus(-3), MaxPlus(0), MaxPlus(8)]);
        check_semiring_laws(&[MinMax::INF, MinMax(0), MinMax(2), MinMax(11)]);
    }

    #[test]
    fn pair_laws() {
        let xs = [
            Pair(Nat(0), MinPlus::INF),
            Pair(Nat(1), MinPlus(0)),
            Pair(Nat(3), MinPlus(4)),
        ];
        check_semiring_laws(&xs);
    }

    // ≥ 13 samples so every carrier exercises the sequential (<8), lane,
    // and remainder regimes of the canonical fold.
    #[test]
    fn sum_kernel_laws_all_carriers() {
        let bools: Vec<Bool> = (0..13).map(|i| Bool(i % 3 == 0)).collect();
        check_sum_kernel_laws(&bools);

        let nats: Vec<Nat> = (0..13).map(|i| Nat(i * i + 1)).collect();
        check_sum_kernel_laws(&nats);

        let ints: Vec<Int> = (0..13).map(|i| Int(7 - 2 * i)).collect();
        check_sum_kernel_laws(&ints);

        let mods: Vec<Mod> = (0..13).map(|v| Mod::new(v * 3 + 1, 5)).collect();
        check_sum_kernel_laws(&mods);

        let minplus: Vec<MinPlus> = (0..13)
            .map(|i| {
                if i == 4 {
                    MinPlus::INF
                } else {
                    MinPlus(40 - i)
                }
            })
            .collect();
        check_sum_kernel_laws(&minplus);

        let maxplus: Vec<MaxPlus> = (0..13)
            .map(|i| {
                if i == 7 {
                    MaxPlus::NEG_INF
                } else {
                    MaxPlus(i - 6)
                }
            })
            .collect();
        check_sum_kernel_laws(&maxplus);

        let minmax: Vec<MinMax> = (0..13).map(|i| MinMax(100 - 5 * i)).collect();
        check_sum_kernel_laws(&minmax);

        let rats: Vec<Rat> = (1..14).map(|i| Rat::new(i, i + 1)).collect();
        check_sum_kernel_laws(&rats);

        // Order-sensitive carriers: the law degenerates to "default ≡
        // canonical fold", which is exactly the bit-identity contract the
        // evaluators need for F64.
        let floats: Vec<F64> = (0..13).map(|i| F64(0.1 * i as f64 + 1e-9)).collect();
        check_sum_kernel_laws(&floats);

        let maxf: Vec<MaxF> = (0..13).map(|i| MaxF(1.5 * i as f64 - 3.0)).collect();
        check_sum_kernel_laws(&maxf);

        let pairs: Vec<Pair<Nat, MinPlus>> =
            (0..13).map(|i| Pair(Nat(i), MinPlus(20 - i))).collect();
        check_sum_kernel_laws(&pairs);

        let polys: Vec<Poly> = (0..13)
            .map(|i| Poly::var(Gen(i % 4)).add(&Poly::one()))
            .collect();
        check_sum_kernel_laws(&polys);
    }

    #[test]
    fn poly_laws() {
        let xs = [
            Poly::zero(),
            Poly::one(),
            Poly::var(Gen(1)),
            Poly::var(Gen(2)).add(&Poly::var(Gen(1))),
            Poly::var(Gen(1)).mul(&Poly::var(Gen(1))),
        ];
        check_semiring_laws(&xs);
    }
}
