//! Tropical and bottleneck semirings: `(ℕ∪{+∞}, min, +)`, `(ℤ∪{−∞}, max, +)`,
//! and `(ℕ∪{+∞}, min, max)`.

use crate::traits::Semiring;
use std::fmt;

/// The tropical semiring `(ℕ ∪ {+∞}, min, +)`.
///
/// `min` plays the role of addition and `+` of multiplication, so a weighted
/// query such as the triangle query of the introduction evaluates to the
/// minimum total cost of a triangle. `+∞` (the additive identity) is
/// represented by `u64::MAX`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MinPlus(pub u64);

impl MinPlus {
    /// The additive identity `+∞`.
    pub const INF: MinPlus = MinPlus(u64::MAX);

    /// Finite value accessor; `None` for `+∞`.
    pub fn finite(&self) -> Option<u64> {
        (self.0 != u64::MAX).then_some(self.0)
    }
}

impl Semiring for MinPlus {
    // `min` over u64 is idempotent, associative, and commutative — any
    // fold order yields identical bits.
    const ORDER_INSENSITIVE_ADD: bool = true;

    fn zero() -> Self {
        Self::INF
    }
    fn one() -> Self {
        MinPlus(0)
    }
    fn add(&self, rhs: &Self) -> Self {
        MinPlus(self.0.min(rhs.0))
    }
    #[inline]
    fn sum_slice(xs: &[Self]) -> Self {
        let mut acc = u64::MAX;
        for x in xs {
            acc = acc.min(x.0);
        }
        MinPlus(acc)
    }
    #[inline]
    fn add_assign_slices(dst: &mut [Self], src: &[Self]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            d.0 = d.0.min(s.0);
        }
    }
    fn mul(&self, rhs: &Self) -> Self {
        // +∞ is absorbing; saturating_add keeps u64::MAX fixed.
        MinPlus(self.0.saturating_add(rhs.0))
    }
    fn is_zero(&self) -> bool {
        self.0 == u64::MAX
    }
    fn is_one(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for MinPlus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.finite() {
            Some(v) => write!(f, "{v}"),
            None => write!(f, "+inf"),
        }
    }
}

/// The arctic semiring `(ℤ ∪ {−∞}, max, +)` — the paper's `Qmax`
/// restricted to integers.
///
/// `−∞` (the additive identity) is represented by `i64::MIN`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MaxPlus(pub i64);

impl MaxPlus {
    /// The additive identity `−∞`.
    pub const NEG_INF: MaxPlus = MaxPlus(i64::MIN);

    /// Finite value accessor; `None` for `−∞`.
    pub fn finite(&self) -> Option<i64> {
        (self.0 != i64::MIN).then_some(self.0)
    }
}

impl Semiring for MaxPlus {
    const ORDER_INSENSITIVE_ADD: bool = true;

    fn zero() -> Self {
        Self::NEG_INF
    }
    fn one() -> Self {
        MaxPlus(0)
    }
    fn add(&self, rhs: &Self) -> Self {
        MaxPlus(self.0.max(rhs.0))
    }
    #[inline]
    fn sum_slice(xs: &[Self]) -> Self {
        let mut acc = i64::MIN;
        for x in xs {
            acc = acc.max(x.0);
        }
        MaxPlus(acc)
    }
    #[inline]
    fn add_assign_slices(dst: &mut [Self], src: &[Self]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            d.0 = d.0.max(s.0);
        }
    }
    fn mul(&self, rhs: &Self) -> Self {
        if self.0 == i64::MIN || rhs.0 == i64::MIN {
            Self::NEG_INF
        } else {
            MaxPlus(self.0.saturating_add(rhs.0))
        }
    }
    fn is_zero(&self) -> bool {
        self.0 == i64::MIN
    }
    fn is_one(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for MaxPlus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.finite() {
            Some(v) => write!(f, "{v}"),
            None => write!(f, "-inf"),
        }
    }
}

/// The bottleneck semiring `(ℕ ∪ {+∞}, min, max)`.
///
/// A weighted query evaluated here computes the minimax (bottleneck) cost:
/// the smallest possible maximum weight along a combination.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MinMax(pub u64);

impl MinMax {
    /// The additive identity `+∞`.
    pub const INF: MinMax = MinMax(u64::MAX);

    /// Finite value accessor; `None` for `+∞`.
    pub fn finite(&self) -> Option<u64> {
        (self.0 != u64::MAX).then_some(self.0)
    }
}

impl Semiring for MinMax {
    const ORDER_INSENSITIVE_ADD: bool = true;

    fn zero() -> Self {
        Self::INF
    }
    fn one() -> Self {
        MinMax(0)
    }
    fn add(&self, rhs: &Self) -> Self {
        MinMax(self.0.min(rhs.0))
    }
    #[inline]
    fn sum_slice(xs: &[Self]) -> Self {
        let mut acc = u64::MAX;
        for x in xs {
            acc = acc.min(x.0);
        }
        MinMax(acc)
    }
    #[inline]
    fn add_assign_slices(dst: &mut [Self], src: &[Self]) {
        assert_eq!(dst.len(), src.len(), "slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            d.0 = d.0.min(s.0);
        }
    }
    fn mul(&self, rhs: &Self) -> Self {
        MinMax(self.0.max(rhs.0))
    }
    fn is_zero(&self) -> bool {
        self.0 == u64::MAX
    }
    fn is_one(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for MinMax {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.finite() {
            Some(v) => write!(f, "{v}"),
            None => write!(f, "+inf"),
        }
    }
}

/// The real arctic semiring `(ℝ ∪ {−∞}, max, +)` on `f64` — the paper's
/// `Qmax` with floating-point values, used for nested queries that
/// maximize rational-valued aggregates (e.g. the average-neighbor-weight
/// example of the introduction).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MaxF(pub f64);

impl MaxF {
    /// The additive identity `−∞`.
    pub const NEG_INF: MaxF = MaxF(f64::NEG_INFINITY);

    /// Finite value accessor; `None` for `−∞`.
    pub fn finite(&self) -> Option<f64> {
        (self.0 != f64::NEG_INFINITY).then_some(self.0)
    }
}

impl Semiring for MaxF {
    fn zero() -> Self {
        Self::NEG_INF
    }
    fn one() -> Self {
        MaxF(0.0)
    }
    fn add(&self, rhs: &Self) -> Self {
        MaxF(self.0.max(rhs.0))
    }
    fn mul(&self, rhs: &Self) -> Self {
        MaxF(self.0 + rhs.0)
    }
}

impl fmt::Display for MaxF {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.finite() {
            Some(v) => write!(f, "{v}"),
            None => write!(f, "-inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minplus_optimizes() {
        assert_eq!(MinPlus(3).add(&MinPlus(5)), MinPlus(3));
        assert_eq!(MinPlus(3).mul(&MinPlus(5)), MinPlus(8));
        assert_eq!(MinPlus::INF.mul(&MinPlus(5)), MinPlus::INF);
        assert_eq!(MinPlus::INF.add(&MinPlus(5)), MinPlus(5));
    }

    #[test]
    fn maxplus_neg_inf_is_absorbing() {
        assert_eq!(MaxPlus::NEG_INF.mul(&MaxPlus(5)), MaxPlus::NEG_INF);
        assert_eq!(MaxPlus(-2).mul(&MaxPlus(5)), MaxPlus(3));
        assert_eq!(MaxPlus(-2).add(&MaxPlus(5)), MaxPlus(5));
    }

    #[test]
    fn minmax_is_bottleneck() {
        assert_eq!(MinMax(3).mul(&MinMax(5)), MinMax(5));
        assert_eq!(MinMax(3).add(&MinMax(5)), MinMax(3));
        assert_eq!(MinMax::INF.mul(&MinMax(5)), MinMax::INF);
        // one is the max-identity 0
        assert_eq!(MinMax::one().mul(&MinMax(5)), MinMax(5));
    }

    #[test]
    fn maxf_behaves_like_maxplus() {
        assert_eq!(MaxF(1.5).add(&MaxF(2.5)), MaxF(2.5));
        assert_eq!(MaxF(1.5).mul(&MaxF(2.5)), MaxF(4.0));
        assert_eq!(MaxF::NEG_INF.mul(&MaxF(3.0)), MaxF::NEG_INF);
        assert_eq!(MaxF::zero().add(&MaxF(3.0)), MaxF(3.0));
    }
}
