//! A minimal FxHash-style hasher.
//!
//! The standard library's SipHash is designed to resist HashDoS, which is
//! irrelevant for an analytical engine hashing small integer keys, and it
//! is measurably slower (see the perf-book guidance on hashing). To keep
//! the dependency set to the allowed list we implement the 15-line Fx
//! multiply–rotate hash ourselves rather than pulling in `rustc-hash`.

use std::hash::{BuildHasherDefault, Hasher};

/// The Firefox/rustc multiply–rotate hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&250], 500);
    }

    #[test]
    fn hash_distributes() {
        // sanity: sequential keys should not all collide mod 256
        let mut buckets = [0u32; 256];
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            buckets[(h.finish() % 256) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(max < 200, "suspiciously skewed: {max}");
    }
}
