//! Persistence performance regression test (PR 9) over the E9 workload
//! at n = 16 000.
//!
//! Pins the two properties that make the persistence layer worth its
//! bytes:
//!
//! 1. **Plan load beats recompile by ≥ 5×.** `.agqplan` stores the
//!    canonical flat circuit buffers; loading is a linear decode plus
//!    the linear `EvalPlan`/`EnumPlan` rebuilds, while recompiling
//!    re-runs tree-decomposition, circuit construction, and slot
//!    binding. Measured ≈ 20–80× at this size; the 5× gate leaves
//!    headroom for noisy CI while still catching a load path that
//!    accidentally re-enters the compiler.
//!
//! 2. **Snapshot + WAL restart beats a cold rebuild.** Recovering from
//!    a snapshot plus a 64-batch WAL tail must come in under the time a
//!    fresh `build_dynamic` takes — otherwise crash recovery would be
//!    pointless — and under a generous absolute ceiling so a quadratic
//!    replay loop can't hide behind a slow baseline.
//!
//! Budgets are only meaningful with optimizations on, so the assertions
//! are compiled under `not(debug_assertions)`: run via
//! `cargo test -p agq-persist --release` (CI does).

#![cfg(not(debug_assertions))]

use agq_core::{CompileOptions, TupleUpdate};
use agq_enumerate::EnumQueryEngine;
use agq_graph::generators;
use agq_logic::{Formula, Var};
use agq_perm::SegTreePerm;
use agq_persist::{attach_file_wal, load_engine, recover_engine, save_engine};
use agq_semiring::F64;
use agq_structure::{RelId, Signature, Structure};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

type Engine = EnumQueryEngine<F64, SegTreePerm<F64>>;

/// The E9 workload: symmetrized G(n, 2n), two-path query with x ≠ z.
fn e9_workload(n: usize) -> (Structure, Formula, RelId) {
    let g = generators::gnm(n, 2 * n, 7);
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let mut a = Structure::new(Arc::new(sig), n);
    for (u, v) in g.edges() {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    let (x, y, z) = (Var(0), Var(1), Var(2));
    let phi = Formula::Rel(e, vec![x, y])
        .and(Formula::Rel(e, vec![y, z]))
        .and(Formula::neq(x, z));
    (a, phi, e)
}

fn scratch(label: &str) -> (PathBuf, PathBuf, PathBuf) {
    let mut dir = std::env::temp_dir();
    dir.push(format!("agq_persist_reg_{}_{}", std::process::id(), label));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    (
        dir.join("q.agqplan"),
        dir.join("q.agqsnap"),
        dir.join("wal.agqlog"),
    )
}

#[test]
fn plan_load_beats_recompile() {
    /// Loading a serialized plan must be at least this many times
    /// faster than compiling it from the formula.
    const SPEEDUP_FLOOR: f64 = 5.0;

    let n = 16_000;
    let (a, phi, _) = e9_workload(n);
    let a = Arc::new(a);
    let opts = CompileOptions::default();

    // Cold compile, timed. A second compile would be the honest
    // baseline for "restart without persistence" — the first already
    // paid page-faults for the structure, so time the second.
    let engine = Engine::build_dynamic(&a, &phi, &opts).expect("build");
    let t = Instant::now();
    let rebuilt = Engine::build_dynamic(&a, &phi, &opts).expect("rebuild");
    let t_compile = t.elapsed();
    assert_eq!(engine.count(), rebuilt.count());

    let (plan, snap, _wal) = scratch("planload");
    save_engine(&engine, &plan, &snap).expect("save");

    // Warm the file cache with one load, then time the second.
    load_engine::<F64, SegTreePerm<F64>>(&plan, &snap).expect("first load");
    let t = Instant::now();
    let loaded = load_engine::<F64, SegTreePerm<F64>>(&plan, &snap).expect("second load");
    let t_load = t.elapsed();

    assert_eq!(
        loaded.count(),
        engine.count(),
        "loaded engine answers match"
    );
    let speedup = t_compile.as_secs_f64() / t_load.as_secs_f64();
    assert!(
        speedup >= SPEEDUP_FLOOR,
        "plan load {t_load:?} is only {speedup:.1}× faster than recompile \
         {t_compile:?}; floor is {SPEEDUP_FLOOR}× — the load path is doing \
         compiler work"
    );
}

#[test]
fn wal_recovery_beats_cold_rebuild() {
    /// Recovery (plan + snapshot load + 64-batch replay) must not cost
    /// more than this fraction of a cold compile — above 1.0 the WAL
    /// restart path would be slower than throwing the state away.
    const REBUILD_FRACTION: f64 = 1.0;
    /// Absolute ceiling so a slow baseline can't mask a quadratic
    /// replay loop; the measured recovery is tens of milliseconds.
    const ABSOLUTE_CEILING: Duration = Duration::from_secs(10);

    let n = 16_000;
    let (a, phi, e) = e9_workload(n);
    let a = Arc::new(a);
    let opts = CompileOptions::default();
    let edges: Vec<Vec<u32>> = a
        .relation(e)
        .iter()
        .map(|t| t.as_slice().to_vec())
        .collect();

    let mut live = Engine::build_dynamic(&a, &phi, &opts).expect("build");
    let (plan, snap, wal) = scratch("walrec");
    save_engine(&live, &plan, &snap).expect("save");
    attach_file_wal(&mut live, &wal).expect("attach wal");

    // 64 batches of 16 deterministic edge flips through the WAL.
    let mut present = vec![true; edges.len()];
    let mut s = 0x9e3779b97f4a7c15u64;
    for _ in 0..64 {
        let batch: Vec<TupleUpdate> = (0..16)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let ei = (s % edges.len() as u64) as usize;
                present[ei] = !present[ei];
                TupleUpdate {
                    rel: e,
                    tuple: edges[ei].clone(),
                    present: present[ei],
                }
            })
            .collect();
        live.apply_batch(&batch).expect("batch");
    }
    live.detach_wal();

    // The cold-rebuild baseline recovery has to beat.
    let t = Instant::now();
    let _cold = Engine::build_dynamic(&a, &phi, &opts).expect("rebuild");
    let t_rebuild = t.elapsed();

    let t = Instant::now();
    let (rec, report) =
        recover_engine::<F64, SegTreePerm<F64>>(&plan, &snap, &wal).expect("recover");
    let t_recover = t.elapsed();

    assert_eq!(report.batches_committed, 64);
    assert_eq!(report.batches_replayed, 64);
    assert!(!report.torn_tail && !report.corrupt_tail);
    assert_eq!(
        rec.count(),
        live.count(),
        "recovery reproduces the live state"
    );
    assert_eq!(rec.last_lsn(), live.last_lsn());

    assert!(
        t_recover < ABSOLUTE_CEILING,
        "64-batch recovery took {t_recover:?}; ceiling {ABSOLUTE_CEILING:?}"
    );
    let fraction = t_recover.as_secs_f64() / t_rebuild.as_secs_f64();
    assert!(
        fraction < REBUILD_FRACTION,
        "recovery {t_recover:?} is {:.0}% of a cold rebuild ({t_rebuild:?}); \
         past {:.0}% the restart path is slower than recompiling",
        fraction * 100.0,
        REBUILD_FRACTION * 100.0
    );
}
