//! Fault-injection suite: every on-disk damage mode the recovery path
//! claims to handle — truncated WAL tails, bit-flipped records,
//! duplicated tail batches, version-mismatched headers, corrupted
//! plan/snapshot bodies — must produce a clean typed error or an honest
//! [`RecoveryReport`], never a panic and never silently wrong answers.

use agq_core::{CompileOptions, TupleUpdate};
use agq_enumerate::EnumQueryEngine;
use agq_logic::{Formula, Var};
use agq_perm::SegTreePerm;
use agq_persist::{
    attach_file_wal, load_engine, recover_engine, save_engine, PersistError, FORMAT_VERSION,
};
use agq_semiring::F64;
use agq_structure::{RelId, Signature, Structure};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

type Engine = EnumQueryEngine<F64, SegTreePerm<F64>>;

fn scratch(label: &str) -> (PathBuf, PathBuf, PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let id = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "agq_recovery_{}_{}_{}",
        std::process::id(),
        label,
        id
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    (
        dir.join("q.agqplan"),
        dir.join("q.agqsnap"),
        dir.join("wal.agqlog"),
    )
}

/// A small fixed world: a 6-cycle with chords, φ = E(x,y) ∧ S(x).
fn build() -> (Engine, RelId, RelId) {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let s = sig.add_relation("S", 1);
    let mut a = Structure::new(Arc::new(sig), 8);
    for &(u, v) in &[(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)] {
        a.insert(e, &[u, v]);
        a.insert(e, &[v, u]);
    }
    for v in 0..5u32 {
        a.insert(s, &[v]);
    }
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(e, vec![x, y]).and(Formula::Rel(s, vec![x]));
    let eng = Engine::build_dynamic(&Arc::new(a), &phi, &CompileOptions::default())
        .expect("build_dynamic");
    (eng, e, s)
}

/// Save a snapshot, then journal `n_batches` single-update batches
/// through the WAL. Returns the paths plus the live engine.
fn save_and_churn(label: &str, n_batches: usize) -> (Engine, PathBuf, PathBuf, PathBuf) {
    let (mut live, _e, s) = build();
    let (plan, snap, wal) = scratch(label);
    save_engine(&live, &plan, &snap).expect("save");
    attach_file_wal(&mut live, &wal).expect("attach wal");
    for i in 0..n_batches {
        let v = (i as u32) % 8;
        live.apply_batch(&[TupleUpdate {
            rel: s,
            tuple: vec![v],
            present: i % 2 == 0,
        }])
        .expect("batch");
    }
    live.detach_wal();
    (live, plan, snap, wal)
}

fn answers(e: &Engine) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut it = e.enumerate();
    while let Some(t) = it.next() {
        out.push(t);
    }
    out
}

#[test]
fn truncated_wal_tail_recovers_committed_prefix() {
    let (_live, plan, snap, wal) = save_and_churn("trunc", 6);
    let full = std::fs::metadata(&wal).unwrap().len();
    // Cut mid-record: drop the last 5 bytes (inside the final commit
    // marker frame), un-committing the last batch.
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(full - 5).unwrap();
    drop(f);

    let (rec, report) = recover_engine::<F64, SegTreePerm<F64>>(&plan, &snap, &wal)
        .expect("torn tail is recoverable, not fatal");
    assert!(report.torn_tail, "tail cut mid-record must be reported");
    assert!(!report.corrupt_tail);
    assert_eq!(report.batches_committed, 5, "one batch lost to the tear");
    assert_eq!(report.batches_replayed, 5);
    assert!(report.truncated_at.is_some());
    // The recovered engine equals a replay of the first 5 batches.
    let (mut expect, _e2, s2) = build();
    for i in 0..5usize {
        expect
            .apply_update(&TupleUpdate {
                rel: s2,
                tuple: vec![(i as u32) % 8],
                present: i % 2 == 0,
            })
            .unwrap();
    }
    assert_eq!(rec.count(), expect.count());
    assert_eq!(answers(&rec), answers(&expect));
}

#[test]
fn bit_flipped_wal_record_truncates_from_the_flip() {
    let (_live, plan, snap, wal) = save_and_churn("flip", 6);
    let mut bytes = std::fs::read(&wal).unwrap();
    // Flip one bit a third of the way into the record stream.
    let pos = 8 + (bytes.len() - 8) / 3;
    bytes[pos] ^= 0x10;
    std::fs::write(&wal, &bytes).unwrap();

    let (rec, report) = recover_engine::<F64, SegTreePerm<F64>>(&plan, &snap, &wal)
        .expect("CRC failure mid-log is recoverable, not fatal");
    assert!(report.corrupt_tail, "CRC mismatch must be reported");
    assert!(
        report.batches_committed < 6,
        "batches at/after the flip are gone"
    );
    assert_eq!(report.batches_replayed, report.batches_committed);
    assert!(report.truncated_at.is_some());
    // Whatever prefix survived must replay to a consistent engine.
    let (mut expect, _e2, s2) = build();
    for i in 0..report.batches_replayed {
        expect
            .apply_update(&TupleUpdate {
                rel: s2,
                tuple: vec![(i as u32) % 8],
                present: i % 2 == 0,
            })
            .unwrap();
    }
    assert_eq!(answers(&rec), answers(&expect));
}

#[test]
fn duplicated_tail_batch_is_skipped_not_reapplied() {
    let (live, plan, snap, wal) = save_and_churn("dup", 4);
    // Duplicate the last batch's bytes wholesale (a storage layer
    // re-appending its buffer): find the last batch by re-appending the
    // tail third of the record stream… simplest faithful simulation:
    // append a copy of everything after the snapshot of batch 3's end.
    let bytes = std::fs::read(&wal).unwrap();
    // The last batch = one update record + one commit record. Scan from
    // the end: records are [len u32][crc u32][payload], so walk from the
    // header summing frames to find the last two frame starts.
    let mut starts = Vec::new();
    let mut pos = 8usize;
    while pos < bytes.len() {
        starts.push(pos);
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
    }
    let last_batch_start = starts[starts.len() - 2];
    let mut dup = bytes.clone();
    dup.extend_from_slice(&bytes[last_batch_start..]);
    std::fs::write(&wal, &dup).unwrap();

    let (rec, report) =
        recover_engine::<F64, SegTreePerm<F64>>(&plan, &snap, &wal).expect("recover");
    assert_eq!(report.batches_committed, 5, "duplicate parses as committed");
    assert_eq!(
        report.batches_skipped, 1,
        "…but is skipped by LSN monotonicity"
    );
    assert_eq!(report.batches_replayed, 4);
    assert_eq!(rec.count(), live.count(), "no double-application");
    assert_eq!(answers(&rec), answers(&live));
    assert_eq!(rec.last_lsn(), live.last_lsn());
}

#[test]
fn version_mismatch_headers_are_clean_errors() {
    let (_live, plan, snap, wal) = save_and_churn("ver", 2);
    // Bump the version word of each artifact in turn.
    for path in [&plan, &snap] {
        let mut bytes = std::fs::read(path).unwrap();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
        std::fs::write(path, &bytes).unwrap();
    }
    let mut wal_bytes = std::fs::read(&wal).unwrap();
    wal_bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&wal, &wal_bytes).unwrap();

    match load_engine::<F64, SegTreePerm<F64>>(&plan, &snap) {
        Err(PersistError::VersionMismatch { found, expected }) => {
            assert_eq!(found, FORMAT_VERSION + 7);
            assert_eq!(expected, FORMAT_VERSION);
        }
        Err(other) => panic!("expected VersionMismatch, got {other:?}"),
        Ok(_) => panic!("expected VersionMismatch, got a loaded engine"),
    }
    match agq_persist::scan_wal(&wal) {
        Err(PersistError::VersionMismatch { found: 99, .. }) => {}
        Err(other) => panic!("expected WAL VersionMismatch, got {other:?}"),
        Ok(_) => panic!("expected WAL VersionMismatch, got a clean scan"),
    }
}

#[test]
fn wrong_magic_and_swapped_artifacts_are_clean_errors() {
    let (_live, plan, snap, _wal) = save_and_churn("magic", 1);
    // Loading the snapshot as a plan (and vice versa) is a BadMagic.
    match load_engine::<F64, SegTreePerm<F64>>(&snap, &plan) {
        Err(PersistError::BadMagic { .. }) => {}
        Err(other) => panic!("expected BadMagic, got {other:?}"),
        Ok(_) => panic!("expected BadMagic, got a loaded engine"),
    }
}

#[test]
fn corrupted_plan_body_is_checksum_mismatch() {
    let (_live, plan, snap, _wal) = save_and_churn("body", 1);
    let mut bytes = std::fs::read(&plan).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&plan, &bytes).unwrap();
    match load_engine::<F64, SegTreePerm<F64>>(&plan, &snap) {
        Err(PersistError::ChecksumMismatch) => {}
        Err(other) => panic!("expected ChecksumMismatch, got {other:?}"),
        Ok(_) => panic!("expected ChecksumMismatch, got a loaded engine"),
    }
}

#[test]
fn carrier_mismatch_is_a_clean_error() {
    use agq_circuit::RingMaint;
    use agq_semiring::Int;
    let (_live, plan, snap, _wal) = save_and_churn("carrier", 1);
    // The artifacts were written for F64 (tag 4); loading as Int (tag 2)
    // must refuse before touching the body.
    match load_engine::<Int, RingMaint<Int>>(&plan, &snap) {
        Err(PersistError::CarrierMismatch { found, expected }) => {
            assert_eq!(found, 4);
            assert_eq!(expected, 2);
        }
        Err(other) => panic!("expected CarrierMismatch, got {other:?}"),
        Ok(_) => panic!("expected CarrierMismatch, got a loaded engine"),
    }
}

#[test]
fn empty_wal_recovers_to_the_snapshot() {
    let (mut live, plan, snap, wal) = save_and_churn("empty", 0);
    let (rec, report) =
        recover_engine::<F64, SegTreePerm<F64>>(&plan, &snap, &wal).expect("recover");
    assert_eq!(report.batches_committed, 0);
    assert_eq!(report.batches_replayed, 0);
    assert!(!report.torn_tail && !report.corrupt_tail);
    assert_eq!(rec.count(), live.count());
    assert_eq!(answers(&rec), answers(&live));
    // And the recovered engine keeps working: apply a fresh update to
    // both and compare.
    let (_e, s) = {
        let (_, e, s) = build();
        (e, s)
    };
    let mut rec = rec;
    let u = TupleUpdate {
        rel: s,
        tuple: vec![6],
        present: true,
    };
    live.apply_update(&u).unwrap();
    rec.apply_update(&u).unwrap();
    assert_eq!(answers(&rec), answers(&live));
}
