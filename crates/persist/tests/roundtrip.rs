//! Differential round-trip suite: an engine serialized to disk and
//! loaded back must be **byte-identical** to the live one — same
//! `count()`, same `answer(k)` stream, same enumeration order, and
//! point-query values whose canonical encodings match byte for byte
//! (`f64` compared through `to_bits`) — on all three maintenance
//! backends, including snapshots taken at random points *mid
//! update-stream* with the remaining updates flowing through the WAL.

use agq_circuit::{FiniteMaint, PermMaint, RingMaint};
use agq_core::{CompileOptions, TupleUpdate};
use agq_enumerate::{EnumQueryEngine, ShardedEngine};
use agq_logic::{Formula, Var};
use agq_perm::SegTreePerm;
use agq_persist::codec::ByteWriter;
use agq_persist::{
    attach_file_wal, attach_sharded_file_wal, recover_engine, recover_sharded, save_engine,
    save_sharded, PersistValue,
};
use agq_semiring::{Bool, Int, Semiring, F64};
use agq_structure::{Elem, RelId, Signature, Structure};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fresh scratch paths per invocation (proptest runs many cases; each
/// gets its own plan/snapshot/WAL triple).
fn scratch(label: &str) -> (PathBuf, PathBuf, PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let id = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "agq_roundtrip_{}_{}_{}",
        std::process::id(),
        label,
        id
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    (
        dir.join("q.agqplan"),
        dir.join("q.agqsnap"),
        dir.join("wal.agqlog"),
    )
}

/// Canonical byte encoding of a semiring value — byte equality here is
/// the suite's definition of "identical answers".
fn value_bytes<S: PersistValue>(v: &S) -> Vec<u8> {
    let mut w = ByteWriter::new();
    v.write_value(&mut w);
    w.into_bytes()
}

struct World {
    shadow: Structure,
    e: RelId,
    s: RelId,
    phi: Formula,
    e_tuples: Vec<[u32; 2]>,
    n: u32,
}

fn world(n: usize, edges: &[(u32, u32)]) -> Option<World> {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let s = sig.add_relation("S", 1);
    let mut a = Structure::new(Arc::new(sig), n);
    for &(u, v) in edges {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            a.insert(e, &[u, v]);
        }
    }
    for v in 0..n as u32 / 2 {
        a.insert(s, &[v]);
    }
    let e_tuples: Vec<[u32; 2]> = a
        .relation(e)
        .iter()
        .map(|t| [t.as_slice()[0], t.as_slice()[1]])
        .collect();
    if e_tuples.is_empty() {
        return None;
    }
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(e, vec![x, y]).and(Formula::Rel(s, vec![x]));
    Some(World {
        shadow: a,
        e,
        s,
        phi,
        e_tuples,
        n: n as u32,
    })
}

/// Resolve one random script step into a Gaifman-preserving update.
fn resolve_step(w: &World, kind: u32, pick: u32, present: bool) -> TupleUpdate {
    if kind.is_multiple_of(2) {
        TupleUpdate {
            rel: w.s,
            tuple: vec![pick % w.n],
            present,
        }
    } else {
        let t = w.e_tuples[pick as usize % w.e_tuples.len()];
        let t = if kind % 4 == 1 { t } else { [t[1], t[0]] };
        TupleUpdate {
            rel: w.e,
            tuple: t.to_vec(),
            present,
        }
    }
}

/// Enumerate in engine order (NOT sorted: the recovered engine must
/// reproduce the exact iteration order, not just the answer set).
fn enumeration_order<S: Semiring, P: PermMaint<S>>(e: &EnumQueryEngine<S, P>) -> Vec<Vec<Elem>> {
    let mut out = Vec::new();
    let mut it = e.enumerate();
    while let Some(t) = it.next() {
        out.push(t);
    }
    out
}

/// Drive one backend: build, apply the pre-snapshot updates, save,
/// journal the rest through the WAL, recover, and assert byte-identity.
fn run_single<S, P>(w: World, steps: &[(u32, u32, bool)], split: usize, label: &str)
where
    S: Semiring + PersistValue,
    P: PermMaint<S>,
{
    let opts = CompileOptions::default();
    let arc = Arc::new(w.shadow.clone());
    let mut live: EnumQueryEngine<S, P> =
        EnumQueryEngine::build_dynamic(&arc, &w.phi, &opts).expect("build_dynamic");

    let split = split % (steps.len() + 1);
    for &(kind, pick, present) in &steps[..split] {
        live.apply_update(&resolve_step(&w, kind, pick, present))
            .expect("gaifman-preserving update");
    }

    let (plan_path, snap_path, wal_path) = scratch(label);
    save_engine(&live, &plan_path, &snap_path).expect("save");
    let snapshot_lsn = live.last_lsn();

    attach_file_wal(&mut live, &wal_path).expect("attach wal");
    let tail: Vec<TupleUpdate> = steps[split..]
        .iter()
        .map(|&(kind, pick, present)| resolve_step(&w, kind, pick, present))
        .collect();
    let mut tail_batches = 0usize;
    for chunk in tail.chunks(3) {
        live.apply_batch(chunk).expect("batched updates");
        tail_batches += 1;
    }
    live.detach_wal();

    let (mut recovered, report) =
        recover_engine::<S, P>(&plan_path, &snap_path, &wal_path).expect("recover");

    assert_eq!(report.snapshot_lsn, snapshot_lsn, "{label}: snapshot lsn");
    assert_eq!(
        report.batches_replayed, tail_batches,
        "{label}: replay count"
    );
    assert!(
        !report.torn_tail && !report.corrupt_tail,
        "{label}: clean log"
    );
    assert_eq!(
        recovered.last_lsn(),
        live.last_lsn(),
        "{label}: lsn continuity"
    );

    assert_eq!(recovered.count(), live.count(), "{label}: count");
    assert_eq!(
        enumeration_order(&recovered),
        enumeration_order(&live),
        "{label}: enumeration order"
    );
    for k in 0..live.count() {
        assert_eq!(recovered.answer(k), live.answer(k), "{label}: answer({k})");
    }
    for a in 0..w.n {
        for b in 0..w.n {
            let t = [a, b];
            assert_eq!(
                value_bytes(&recovered.query(&t)),
                value_bytes(&live.query(&t)),
                "{label}: query({t:?}) not byte-identical"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// serialize → load → answer/count/enumerate, byte-identical to the
    /// live engine, on all three backends, with the snapshot taken at a
    /// random point of the update stream.
    #[test]
    fn roundtrip_is_byte_identical_all_backends(
        n in 6usize..11,
        edges in pvec((0u32..16, 0u32..16), 6..20),
        steps in pvec((0u32..4, 0u32..64, any::<bool>()), 0..14),
        split in 0usize..16,
    ) {
        if world(n, &edges).is_none() { return; }
        run_single::<F64, SegTreePerm<F64>>(
            world(n, &edges).unwrap(), &steps, split, "general-f64");
        run_single::<Int, RingMaint<Int>>(
            world(n, &edges).unwrap(), &steps, split, "ring-int");
        run_single::<Bool, FiniteMaint<Bool>>(
            world(n, &edges).unwrap(), &steps, split, "finite-bool");
    }
}

/// Sharded engine: save under the whole-lockset snapshot, churn through
/// the WAL, recover, and assert the routed answers match byte for byte.
fn run_sharded<S, P>(w: World, steps: &[(u32, u32, bool)], split: usize, label: &str)
where
    S: Semiring + Send + Sync,
    S: PersistValue,
    P: PermMaint<S> + Send + Sync,
{
    let opts = CompileOptions::default();
    let arc = Arc::new(w.shadow.clone());
    let live: ShardedEngine<S, P> =
        ShardedEngine::build(&arc, &w.phi, &opts, 4).expect("sharded build");

    let split = split % (steps.len() + 1);
    for &(kind, pick, present) in &steps[..split] {
        live.apply_update(&resolve_step(&w, kind, pick, present))
            .expect("gaifman-preserving update");
    }

    let (plan_path, snap_path, wal_path) = scratch(label);
    save_sharded(&live, &plan_path, &snap_path).expect("save");
    attach_sharded_file_wal(&live, &wal_path).expect("attach wal");
    let tail: Vec<TupleUpdate> = steps[split..]
        .iter()
        .map(|&(kind, pick, present)| resolve_step(&w, kind, pick, present))
        .collect();
    for chunk in tail.chunks(3) {
        live.apply_batch(chunk).expect("batched updates");
    }
    live.detach_wal();

    let (recovered, report) =
        recover_sharded::<S, P>(&plan_path, &snap_path, &wal_path).expect("recover");
    assert!(
        !report.torn_tail && !report.corrupt_tail,
        "{label}: clean log"
    );
    assert_eq!(recovered.num_shards(), live.num_shards(), "{label}: shards");
    assert_eq!(
        recovered.last_lsn(),
        live.last_lsn(),
        "{label}: lsn continuity"
    );
    assert_eq!(recovered.count(), live.count(), "{label}: count");
    assert_eq!(
        recovered.collect_answers(),
        live.collect_answers(),
        "{label}: answer stream"
    );
    for k in 0..live.count() {
        assert_eq!(recovered.answer(k), live.answer(k), "{label}: answer({k})");
    }
    for a in 0..w.n {
        for b in 0..w.n {
            let t = [a, b];
            assert_eq!(
                value_bytes(&recovered.query(&t)),
                value_bytes(&live.query(&t)),
                "{label}: query({t:?}) not byte-identical"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_roundtrip_is_byte_identical(
        n in 8usize..13,
        edges in pvec((0u32..16, 0u32..16), 6..18),
        steps in pvec((0u32..4, 0u32..64, any::<bool>()), 0..12),
        split in 0usize..16,
    ) {
        if world(n, &edges).is_none() { return; }
        run_sharded::<F64, SegTreePerm<F64>>(
            world(n, &edges).unwrap(), &steps, split, "sharded-general");
        run_sharded::<Int, RingMaint<Int>>(
            world(n, &edges).unwrap(), &steps, split, "sharded-ring");
        run_sharded::<Bool, FiniteMaint<Bool>>(
            world(n, &edges).unwrap(), &steps, split, "sharded-finite");
    }
}
