//! Deterministic chaos suite (requires `--features failpoints`): seeded
//! fault schedules — WAL append errors, mid-apply panics, worker delays
//! — are injected into a live sharded engine while it serves queries and
//! absorbs update batches. The suite asserts the fault contract end to
//! end:
//!
//! - no panic ever crosses the facade (every outcome is a typed `Err`),
//! - healthy shards keep serving correct answers throughout,
//! - a quarantined shard restored from snapshot + WAL replay
//!   ([`restore_quarantined_shard`]) converges **byte-identically** to a
//!   reference engine that never saw a fault, and
//! - `self_check` passes on the restored engine.
//!
//! Differential bookkeeping: the reference engine applies exactly the
//! batches the chaos engine made durable — `Ok(_)` and
//! `Err(ShardPanicked)` batches (journaled write-ahead, so the panic'd
//! batch is completed by restore replay), but not `Err(Wal)` fail-stop
//! rejections or `Err(ShardUnavailable)` post-quarantine rejections
//! (rejected before journaling, nothing applied anywhere).
#![cfg(feature = "failpoints")]

use agq_circuit::{FiniteMaint, PermMaint, RingMaint};
use agq_core::fault::{self, FaultSpec, Trigger};
use agq_core::{CompileOptions, DurabilityPolicy, TupleUpdate, WalFailure};
use agq_enumerate::{ShardedEngine, UpdateError};
use agq_logic::{Formula, Var};
use agq_perm::SegTreePerm;
use agq_persist::codec::ByteWriter;
use agq_persist::{
    attach_sharded_file_wal, recover_sharded, restore_quarantined_shard, save_sharded,
    PersistError, PersistValue,
};
use agq_semiring::{Bool, Int, Semiring, F64};
use agq_structure::{RelId, Signature, Structure};
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// The fail-point registry is process-global: chaos tests must not
/// overlap. (A panicking test poisons the mutex; later tests don't
/// care, they reconfigure from scratch.)
fn serial() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Silence the default panic hook while injected panics are expected;
/// restores the previous hook on drop. Only used under `serial()`.
struct QuietPanics;
impl QuietPanics {
    fn new() -> Self {
        // Injected panics are routine here — silence them; anything
        // else (a real assertion failure) still reports.
        std::panic::set_hook(Box::new(|info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("failpoint") {
                eprintln!("{info}");
            }
        }));
        QuietPanics
    }
}
impl Drop for QuietPanics {
    fn drop(&mut self) {
        // The hook cannot be swapped from a panicking thread (and a
        // panic here would abort the process mid-unwind).
        if !std::thread::panicking() {
            let _ = std::panic::take_hook();
        }
    }
}

fn scratch(label: &str) -> (PathBuf, PathBuf, PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let id = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut dir = std::env::temp_dir();
    dir.push(format!("agq_chaos_{}_{}_{}", std::process::id(), label, id));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    (
        dir.join("q.agqplan"),
        dir.join("q.agqsnap"),
        dir.join("wal.agqlog"),
    )
}

fn value_bytes<S: PersistValue>(v: &S) -> Vec<u8> {
    let mut w = ByteWriter::new();
    v.write_value(&mut w);
    w.into_bytes()
}

struct World {
    shadow: Structure,
    e: RelId,
    s: RelId,
    phi: Formula,
    e_tuples: Vec<[u32; 2]>,
    n: u32,
}

/// Multi-component world: `E` edges spread over several Gaifman
/// components (so there are healthy shards left to serve when one is
/// quarantined), `S` unary marks, φ = E(x,y) ∧ S(x).
fn world(n: usize, edges: &[(u32, u32)]) -> Option<World> {
    let mut sig = Signature::new();
    let e = sig.add_relation("E", 2);
    let s = sig.add_relation("S", 1);
    let mut a = Structure::new(Arc::new(sig), n);
    for &(u, v) in edges {
        let (u, v) = (u % n as u32, v % n as u32);
        if u != v {
            a.insert(e, &[u, v]);
        }
    }
    for v in 0..n as u32 / 2 {
        a.insert(s, &[v]);
    }
    let e_tuples: Vec<[u32; 2]> = a
        .relation(e)
        .iter()
        .map(|t| [t.as_slice()[0], t.as_slice()[1]])
        .collect();
    if e_tuples.is_empty() {
        return None;
    }
    let (x, y) = (Var(0), Var(1));
    let phi = Formula::Rel(e, vec![x, y]).and(Formula::Rel(s, vec![x]));
    Some(World {
        shadow: a,
        e,
        s,
        phi,
        e_tuples,
        n: n as u32,
    })
}

fn resolve_step(w: &World, kind: u32, pick: u32, present: bool) -> TupleUpdate {
    if kind.is_multiple_of(2) {
        TupleUpdate {
            rel: w.s,
            tuple: vec![pick % w.n],
            present,
        }
    } else {
        let t = w.e_tuples[pick as usize % w.e_tuples.len()];
        let t = if kind % 4 == 1 { t } else { [t[1], t[0]] };
        TupleUpdate {
            rel: w.e,
            tuple: t.to_vec(),
            present,
        }
    }
}

/// Assert the chaos engine and the never-faulted reference are
/// byte-identical: count, the full answer stream, direct access, and
/// every point query.
fn assert_equivalent<S, P>(
    chaos: &ShardedEngine<S, P>,
    reference: &ShardedEngine<S, P>,
    n: u32,
    label: &str,
) where
    S: Semiring + PersistValue + Send + Sync,
    P: PermMaint<S> + Send + Sync,
{
    assert_eq!(chaos.count(), reference.count(), "{label}: count");
    assert_eq!(
        chaos.collect_answers(),
        reference.collect_answers(),
        "{label}: answer stream"
    );
    for k in 0..reference.count() {
        assert_eq!(chaos.answer(k), reference.answer(k), "{label}: answer({k})");
    }
    for a in 0..n {
        for b in 0..n {
            let t = [a, b];
            assert_eq!(
                value_bytes(&chaos.query(&t)),
                value_bytes(&reference.query(&t)),
                "{label}: query({t:?}) not byte-identical"
            );
        }
    }
}

/// Drive one backend through a scripted fault run and verify
/// quarantine → restore → byte-identical convergence.
fn run_chaos<S, P>(w: World, steps: &[(u32, u32, bool)], seed: u64, panic_hit: u64, label: &str)
where
    S: Semiring + PersistValue + Send + Sync,
    P: PermMaint<S> + Send + Sync,
{
    let opts = CompileOptions::default();
    let arc = Arc::new(w.shadow.clone());
    let chaos: ShardedEngine<S, P> =
        ShardedEngine::build(&arc, &w.phi, &opts, 4).expect("chaos build");

    // Snapshot the pristine state, then journal everything: the
    // snapshot + WAL pair is what restores a quarantined shard.
    let (plan_path, snap_path, wal_path) = scratch(label);
    save_sharded(&chaos, &plan_path, &snap_path).expect("save pristine");
    attach_sharded_file_wal(&chaos, &wal_path).expect("attach wal");
    chaos.set_durability(DurabilityPolicy {
        attempts: 2,
        backoff: Duration::ZERO,
        on_failure: WalFailure::FailStop,
    });

    // Scripted schedule, a pure function of the proptest inputs:
    // seeded WAL append errors, one mid-apply panic, periodic worker
    // delays.
    fault::clear_all();
    fault::configure(
        "wal.append",
        FaultSpec::error(Trigger::Seeded {
            seed,
            per_mille: 250,
        }),
    );
    fault::configure("shard.apply", FaultSpec::panic(Trigger::Nth(panic_hit)));
    fault::configure("batch.worker", FaultSpec::delay_ms(1, Trigger::Every(5)));

    let _quiet = QuietPanics::new();
    let updates: Vec<TupleUpdate> = steps
        .iter()
        .map(|&(kind, pick, present)| resolve_step(&w, kind, pick, present))
        .collect();
    // Shadow of the durable relation contents, for mid-chaos serving
    // checks on healthy shards. (The reference engine is replayed only
    // *after* the run: fail points are process-global, so a live
    // reference would trip them too.)
    let mut e_set: std::collections::HashSet<[u32; 2]> = w.e_tuples.iter().copied().collect();
    let mut s_set: std::collections::HashSet<u32> = (0..w.n / 2).collect();
    let mut durable: Vec<Vec<TupleUpdate>> = Vec::new();
    for chunk in updates.chunks(3) {
        match chaos.apply_batch(chunk) {
            // Applied (or journaled then panic'd mid-apply): the batch
            // is durable, the reference will apply it in full.
            Ok(_) | Err(UpdateError::ShardPanicked { .. }) => {
                durable.push(chunk.to_vec());
                for u in chunk {
                    if u.rel == w.e {
                        let t = [u.tuple[0], u.tuple[1]];
                        if u.present {
                            e_set.insert(t);
                        } else {
                            e_set.remove(&t);
                        }
                    } else if u.present {
                        s_set.insert(u.tuple[0]);
                    } else {
                        s_set.remove(&u.tuple[0]);
                    }
                }
            }
            // Rejected before anything was journaled or applied.
            Err(UpdateError::Wal(_)) | Err(UpdateError::ShardUnavailable { .. }) => {}
            Err(e) => panic!("{label}: unexpected batch outcome {e}"),
        }
        // Healthy shards keep serving mid-chaos: φ = E(x,y) ∧ S(x), so
        // the expected indicator value falls out of the shadow sets.
        let quarantined = chaos.quarantined_shards();
        for t in w.e_tuples.iter().take(4) {
            let tup = [t[0], t[1]];
            if chaos
                .owning_shard(&tup)
                .is_some_and(|s| !quarantined.contains(&s))
            {
                let expect = if e_set.contains(&tup) && s_set.contains(&tup[0]) {
                    S::one()
                } else {
                    S::zero()
                };
                assert_eq!(
                    value_bytes(&chaos.query(&tup)),
                    value_bytes(&expect),
                    "{label}: healthy shard disagreed mid-chaos on {tup:?}"
                );
            }
        }
    }
    drop(_quiet);
    fault::clear_all();

    // Replay the durable history into a fresh, never-faulted reference.
    let reference: ShardedEngine<S, P> =
        ShardedEngine::build(&arc, &w.phi, &opts, 0).expect("reference build");
    for chunk in &durable {
        reference.apply_batch(chunk).expect("reference apply");
    }

    // The chaos engine journaled exactly the batches the reference
    // applied (its WAL-less LSN is just its applied-batch count), so
    // the LSNs must line up batch for batch.
    assert_eq!(
        chaos.last_lsn(),
        reference.last_lsn(),
        "{label}: lsn tracks journaled batches"
    );

    // Restore every quarantined shard from snapshot + WAL replay.
    let quarantined = chaos.quarantined_shards();
    chaos.detach_wal();
    if quarantined.len() == chaos.num_shards() {
        // Every shard went down: in-process restore borrows the shared
        // plan from a healthy peer, so with none left the documented
        // path is a full `recover_sharded` restart. Verify *that*
        // converges to the reference instead.
        let (recovered, _report) =
            recover_sharded::<S, P>(&plan_path, &snap_path, &wal_path).expect("full recovery");
        assert_eq!(
            recovered.self_check().expect("self_check"),
            Vec::<usize>::new()
        );
        assert_equivalent(&recovered, &reference, w.n, label);
        return;
    }
    for s in quarantined {
        restore_quarantined_shard(&chaos, s, &snap_path, &wal_path)
            .unwrap_or_else(|e| panic!("{label}: restore shard {s}: {e}"));
        assert!(!chaos.is_quarantined(s), "{label}: quarantine lifted");
    }
    assert!(chaos.quarantined_shards().is_empty());
    assert_eq!(
        chaos.self_check().expect("self_check after restore"),
        Vec::<usize>::new(),
        "{label}: no shard skipped"
    );
    assert_equivalent(&chaos, &reference, w.n, label);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Seeded chaos on all three maintenance backends.
    #[test]
    fn chaos_quarantine_restore_is_byte_identical(
        n in 8usize..13,
        edges in pvec((0u32..16, 0u32..16), 8..18),
        steps in pvec((0u32..4, 0u32..64, any::<bool>()), 6..16),
        seed in 0u64..u64::MAX,
        panic_hit in 1u64..12,
    ) {
        let _gate = serial();
        if world(n, &edges).is_none() { return; }
        run_chaos::<F64, SegTreePerm<F64>>(
            world(n, &edges).unwrap(), &steps, seed, panic_hit, "general-f64");
        run_chaos::<Int, RingMaint<Int>>(
            world(n, &edges).unwrap(), &steps, seed, panic_hit, "ring-int");
        run_chaos::<Bool, FiniteMaint<Bool>>(
            world(n, &edges).unwrap(), &steps, seed, panic_hit, "finite-bool");
    }
}

/// The acceptance scenario, fully deterministic: a WAL I/O error burst
/// that exhausts the retry budget (fail-stop rejection, LSN pinned)
/// followed by one worker panic (quarantine), with healthy shards
/// serving throughout, then restore + self_check + byte-identity.
#[test]
fn acceptance_wal_burst_then_worker_panic() {
    let _gate = serial();
    let w = world(10, &[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6), (7, 8)]).unwrap();
    let opts = CompileOptions::default();
    let arc = Arc::new(w.shadow.clone());
    let chaos: ShardedEngine<Int, RingMaint<Int>> =
        ShardedEngine::build(&arc, &w.phi, &opts, 4).unwrap();
    let reference: ShardedEngine<Int, RingMaint<Int>> =
        ShardedEngine::build(&arc, &w.phi, &opts, 0).unwrap();

    let (plan_path, snap_path, wal_path) = scratch("acceptance");
    save_sharded(&chaos, &plan_path, &snap_path).unwrap();
    attach_sharded_file_wal(&chaos, &wal_path).unwrap();
    chaos.set_durability(DurabilityPolicy {
        attempts: 2,
        backoff: Duration::ZERO,
        on_failure: WalFailure::FailStop,
    });

    fault::clear_all();
    // Batch 1 appends on hit 1. Batch 2 hits 2 and (retry) 3 — both
    // error: the retry budget is exhausted, the batch is rejected
    // fail-stop. Batch 3 appends on hit 4.
    fault::configure("wal.append", FaultSpec::error(Trigger::Range(2, 3)));

    let b1 = [resolve_step(&w, 1, 0, false)]; // remove an E tuple
    let b2 = [resolve_step(&w, 1, 1, false)];
    chaos.apply_batch(&b1).unwrap();
    reference.apply_batch(&b1).unwrap();
    assert_eq!(chaos.last_lsn(), 1);

    let err = chaos.apply_batch(&b2).unwrap_err();
    assert!(matches!(err, UpdateError::Wal(_)), "fail-stop rejection");
    assert_eq!(chaos.last_lsn(), 1, "LSN pinned on rejection");
    assert_equivalent(&chaos, &reference, w.n, "after wal burst");

    // Re-submit: the burst is over, the batch lands under LSN 2 with no
    // gap — and the earlier rejection left no trace in the log.
    chaos.apply_batch(&b2).unwrap();
    reference.apply_batch(&b2).unwrap();
    assert_eq!(chaos.last_lsn(), 2);

    // One worker panic on the next apply: the batch is journaled
    // (LSN 3), the owning shard is quarantined, no panic escapes. The
    // site's hit counter is global, so aim one past what the earlier
    // batches consumed.
    fault::configure(
        "shard.apply",
        FaultSpec::panic(Trigger::Nth(fault::hit_count("shard.apply") + 1)),
    );
    let b3 = [resolve_step(&w, 1, 2, false)];
    let quiet = QuietPanics::new();
    let err = chaos.apply_batch(&b3).unwrap_err();
    drop(quiet);
    fault::clear_all();
    let UpdateError::ShardPanicked { shards } = err else {
        panic!("expected ShardPanicked, got {err}");
    };
    assert_eq!(chaos.last_lsn(), 3, "panic'd batch was journaled first");
    assert_eq!(chaos.quarantined_shards(), shards);
    // The reference applies the journaled batch: restore replay will
    // complete it on the chaos side.
    reference.apply_batch(&b3).unwrap();

    // Healthy shards keep serving; the facade stays panic-free.
    for t in &w.e_tuples {
        let tup = [t[0], t[1]];
        if chaos
            .owning_shard(&tup)
            .is_some_and(|s| !shards.contains(&s))
        {
            assert_eq!(
                value_bytes(&chaos.query(&tup)),
                value_bytes(&reference.query(&tup)),
                "healthy shard serves correctly during quarantine"
            );
        }
    }
    assert_eq!(chaos.self_check().unwrap(), shards, "skips quarantined");

    // Restore from snapshot + WAL replay, then full byte-identity.
    chaos.detach_wal();
    for &s in &shards {
        let report = restore_quarantined_shard(&chaos, s, &snap_path, &wal_path).unwrap();
        assert_eq!(report.batches_replayed, 3, "whole journaled history");
    }
    assert!(chaos.quarantined_shards().is_empty());
    assert_eq!(chaos.self_check().unwrap(), Vec::<usize>::new());
    assert_equivalent(&chaos, &reference, w.n, "after restore");
}

/// An injected I/O error on the snapshot path surfaces as a typed
/// `PersistError::Io`, with no artifact corruption semantics.
#[test]
fn snapshot_save_fault_is_a_typed_error() {
    let _gate = serial();
    let w = world(8, &[(0, 1), (2, 3), (4, 5)]).unwrap();
    let arc = Arc::new(w.shadow.clone());
    let eng: ShardedEngine<Bool, FiniteMaint<Bool>> =
        ShardedEngine::build(&arc, &w.phi, &CompileOptions::default(), 0).unwrap();
    let (plan_path, snap_path, _wal) = scratch("snapfault");

    fault::clear_all();
    fault::configure("snapshot.save", FaultSpec::error(Trigger::Nth(1)));
    let err = save_sharded(&eng, &plan_path, &snap_path).unwrap_err();
    assert!(matches!(err, PersistError::Io(_)));
    fault::clear_all();
    save_sharded(&eng, &plan_path, &snap_path).expect("clean save after fault cleared");
}
